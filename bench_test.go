package comparenb

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6), wrapping internal/experiments at bench-friendly scale. The full
// paper-shaped runs live in cmd/experiments; EXPERIMENTS.md records
// paper-vs-measured for both. Run with:
//
//	go test -bench=. -benchmem
//
// Ablation benchmarks for the design choices DESIGN.md calls out follow
// the table/figure benchmarks.

import (
	"testing"
	"time"

	"comparenb/internal/datagen"
	"comparenb/internal/experiments"
	"comparenb/internal/metric"
	"comparenb/internal/pipeline"
	"comparenb/internal/table"
)

func benchArtificial(b *testing.B, sizes []int, epsT int) experiments.ArtificialConfig {
	b.Helper()
	return experiments.ArtificialConfig{
		Sizes:     sizes,
		Instances: 3,
		EpsT:      epsT,
		EpsD:      0.6,
		Timeout:   5 * time.Second,
		Seed:      1,
	}
}

// BenchmarkTable4ExactTAP measures the exact TAP solver across instance
// sizes (Table 4: super-linear growth, timeout wall).
func BenchmarkTable4ExactTAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Artificial(benchArtificial(b, []int{25, 50, 100}, 8))
		if len(res.Table4) != 3 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTable5Deviation measures Algorithm 3's objective deviation from
// optimal (Table 5).
func BenchmarkTable5Deviation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Artificial(benchArtificial(b, []int{50}, 8))
		if res.Table5[0].Comparable > 0 && res.Table5[0].AvgDevPct < 0 {
			b.Fatal("negative deviation")
		}
	}
}

// BenchmarkTable6Recall measures heuristic and baseline recall (Table 6).
func BenchmarkTable6Recall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Artificial(benchArtificial(b, []int{50}, 8))
		_ = res.Table6
	}
}

func benchDataset(b *testing.B, rows int) *table.Relation {
	b.Helper()
	ds, err := datagen.ENEDISLike(1, rows)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Rel
}

func benchConfig() pipeline.Config {
	cfg := pipeline.NewConfig()
	cfg.Perms = 150
	cfg.Seed = 1
	cfg.EpsT = 10
	cfg.EpsD = 1.5
	return cfg
}

// BenchmarkFig5QueryTimes measures the comparison-query runtime
// distribution (Figure 5: tight spread justifying uniform costs).
func BenchmarkFig5QueryTimes(b *testing.B) {
	rel := benchDataset(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(rel, 50, 1)
		if len(res.Times) != 50 {
			b.Fatal("missing timings")
		}
	}
}

// BenchmarkFig6SampleSize measures the sampling sweep on the ENEDIS-like
// dataset (Figure 6).
func BenchmarkFig6SampleSize(b *testing.B) {
	rel := benchDataset(b, 4000)
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SampleSizeSweep(rel, cfg, []float64{0.2, 0.4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7RuntimeByBudget measures the five Table-3 implementations
// across budgets (Figure 7).
func BenchmarkFig7RuntimeByBudget(b *testing.B) {
	rel := benchDataset(b, 4000)
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(rel, cfg, []int{5, 10}, 0.2, 0.4, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Threads measures multi-threading speedup of the generation
// of Q (Figure 8).
func BenchmarkFig8Threads(b *testing.B) {
	rel := benchDataset(b, 4000)
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(rel, cfg, []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Flights measures the sampling strategies on the
// Flights-like dataset (Figure 9).
func BenchmarkFig9Flights(b *testing.B) {
	ds, err := datagen.FlightsLike(1, 8000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SampleSizeSweep(ds.Rel, cfg, []float64{0.1, 0.3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10UserStudy measures the six Table-7 variants plus the
// simulated rating panel (Figure 10).
func BenchmarkFig10UserStudy(b *testing.B) {
	rel := benchDataset(b, 4000)
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(rel, cfg, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

func benchGenerate(b *testing.B, mutate func(*pipeline.Config)) {
	b.Helper()
	rel := benchDataset(b, 4000)
	cfg := benchConfig()
	mutate(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Generate(rel, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWSCOn / Off isolate Algorithm 2's group-by merging.
func BenchmarkAblationWSCOn(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) { c.UseWSC = true })
}
func BenchmarkAblationWSCOff(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) { c.UseWSC = false })
}

// BenchmarkAblationTransitivePruning isolates §3.3's insight pruning.
func BenchmarkAblationTransitivePruningOff(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) { c.DisableTransitivePruning = true })
}

// BenchmarkAblationUniformDistance swaps §4.2's part-weighted Hamming
// distance for uniform weights.
func BenchmarkAblationUniformDistance(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) { c.Weights = metric.UniformWeights })
}

// BenchmarkAblationCredibilityAggExists switches credibility to the ∃agg
// reading of Algorithm 1 (see Config.CredibilityAggExists).
func BenchmarkAblationCredibilityAggExists(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) { c.CredibilityAggExists = true })
}

// BenchmarkAblationBHGlobal applies the FDR correction globally instead of
// per attribute.
func BenchmarkAblationBHGlobal(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) { c.BHScope = pipeline.BHGlobal })
}

// BenchmarkAblationSharedPermutations measures the §5.1.1 trick of reusing
// permutations across measures by comparing against per-measure counts:
// here simply the full stats phase at two permutation budgets.
func BenchmarkAblationPerms300(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) { c.Perms = 300 })
}

// BenchmarkAblationGreedyPlus measures the 2-opt-extended heuristic
// against plain Algorithm 3 (BenchmarkAblationWSCOn is the plain run).
func BenchmarkAblationGreedyPlus(b *testing.B) {
	benchGenerate(b, func(c *pipeline.Config) {
		c.UseWSC = true
		c.Solver = pipeline.SolverHeuristicPlus
	})
}
