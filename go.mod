module comparenb

go 1.22
