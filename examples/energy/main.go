// Energy example: the ENEDIS scenario of the paper's evaluation —
// electricity consumption by location, year, consumption category and
// commercial sector. This example compares the notebook produced by the
// full interestingness function against the significance-only variant the
// user study preferred (Table 7 / §6.5), on the same dataset, and reports
// how the two notebooks differ.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"
	"time"

	"comparenb"
	"comparenb/internal/datagen"
	"comparenb/internal/userstudy"
)

func main() {
	gen, err := datagen.ENEDISLike(7, 8000)
	if err != nil {
		log.Fatal(err)
	}
	ds := comparenb.FromRelation(gen.Rel)
	fmt.Printf("ENEDIS-like dataset: %d rows, %d categorical attributes, %d measures, %d planted effects\n",
		gen.Rel.NumRows(), gen.Rel.NumCatAttrs(), gen.Rel.NumMeasures(), len(gen.Planted))

	run := func(cfg comparenb.Config) (*comparenb.Result, userstudy.Features) {
		cfg.Perms = 250
		cfg.Seed = 7
		start := time.Now()
		res, err := comparenb.Generate(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		f := userstudy.ExtractFeatures(res)
		fmt.Printf("%-20s %8v  insights=%-4d |Q|=%-5d notebook=%d  sig=%.3f diversity=%.3f conciseness=%.3f\n",
			cfg.Name, time.Since(start).Round(time.Millisecond),
			res.Counts.SignificantInsights, res.Counts.QueriesGenerated,
			len(res.Solution.Order), f.MeanSig, f.Diversity, f.MeanConciseness)
		return res, f
	}

	fmt.Println("\nGenerating a 10-query notebook with two interestingness variants:")
	full, _ := run(comparenb.WSCApprox(10, 1.5))
	sigOnly, _ := run(comparenb.WSCApproxSig(10, 1.5))

	// How different are the two notebooks?
	shared := 0
	in := map[comparenb.Query]bool{}
	for _, sq := range full.Sequence() {
		in[sq.Query] = true
	}
	for _, sq := range sigOnly.Sequence() {
		if in[sq.Query] {
			shared++
		}
	}
	fmt.Printf("\nnotebooks share %d of %d queries\n", shared, len(full.Sequence()))

	fmt.Println("\nFull-interestingness notebook, step by step:")
	for i, sq := range full.Sequence() {
		fmt.Printf("%2d. %s (interest %.3f, %d insights)\n",
			i+1, sq.Query.Describe(ds.Rel), sq.Interest, len(sq.Supported))
	}

	// Print the first query's SQL so the output is runnable.
	if seq := full.Sequence(); len(seq) > 0 {
		fmt.Println("\nSQL of step 1:")
		fmt.Println(comparenb.ComparisonSQL(ds.Rel, seq[0].Query))
	}
}
