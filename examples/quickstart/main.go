// Quickstart: the smallest end-to-end use of the comparenb public API.
//
// It builds the paper's Figure-2 COVID example in memory, generates a
// 3-query comparison notebook, and prints it as Markdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"comparenb"
)

func main() {
	// A single table with categorical attributes (continent, month,
	// setting) and one measure (cases) — the paper's running example,
	// extended with per-country rows so the statistical tests have samples
	// to work on. (At least three categorical attributes are needed for
	// the credibility term of Def. 4.3 to discriminate: with two, every
	// insight has |Qⁱ| = 1 and its surprise factor is constant.)
	b := comparenb.NewBuilder("covid",
		[]string{"continent", "month", "setting"}, []string{"cases"})
	rng := rand.New(rand.NewSource(1))
	// Per-continent rural/urban case levels and urban share. Asia's urban
	// stratum is rare but extreme: pooled means say "Europe has more cases
	// than Asia" while the per-setting comparison series disagrees — a
	// Simpson-style pattern that keeps the credibility term of Def. 4.3
	// informative (not every grouping attribute supports every insight).
	profile := map[string]struct {
		rural, urban float64
		urbanShare   float64
		mayFactor    float64
	}{
		"Africa":  {100, 150, 0.5, 1.35},
		"America": {150, 190, 0.5, 1.30},
		"Asia":    {70, 320, 0.15, 1.30},
		"Europe":  {150, 185, 0.5, 0.80},
		"Oceania": {85, 110, 0.5, 0.75},
	}
	for continent, p := range profile {
		for country := 0; country < 40; country++ {
			setting, level := "rural", p.rural
			if float64(country) < p.urbanShare*40 {
				setting, level = "urban", p.urban
			}
			noise := func() float64 { return 0.7 + 0.6*rng.Float64() }
			b.AddRow([]string{continent, "4", setting}, []float64{level * noise()})
			b.AddRow([]string{continent, "5", setting}, []float64{level * p.mayFactor * noise()})
		}
	}
	ds := comparenb.FromRelation(b.Build())

	cfg := comparenb.NewConfig()
	cfg.EpsT = 3 // three comparison queries in the notebook
	cfg.Perms = 300
	cfg.Seed = 1

	nb, res, err := comparenb.GenerateNotebook(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("-- tested %d candidate insights, %d significant, |Q| = %d --\n\n",
		res.Counts.InsightsEnumerated, res.Counts.SignificantInsights,
		res.Counts.QueriesGenerated)
	if err := nb.WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
