// Flightscale example: sampling strategies on a large dataset, the §5.1.2
// / Figure 9 scenario. On Flights-scale data the permutation tests
// dominate the runtime; offline sampling trades a controlled amount of
// detection quality for a large speedup, and unbalanced (per-attribute
// stratified) sampling preserves minority values that uniform sampling
// loses.
//
//	go run ./examples/flightscale [-rows 60000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"comparenb"
	"comparenb/internal/datagen"
)

func main() {
	rows := flag.Int("rows", 60000, "dataset rows (paper scale: 5.8M)")
	flag.Parse()

	gen, err := datagen.FlightsLike(3, *rows)
	if err != nil {
		log.Fatal(err)
	}
	ds := comparenb.FromRelation(gen.Rel)
	fmt.Printf("Flights-like dataset: %d rows, %d categorical attributes, %d measures\n\n",
		gen.Rel.NumRows(), gen.Rel.NumCatAttrs(), gen.Rel.NumMeasures())

	type outcome struct {
		name     string
		insights int
		elapsed  time.Duration
	}
	var results []outcome
	run := func(name string, cfg comparenb.Config) outcome {
		cfg.Perms = 200
		cfg.Seed = 3
		cfg.MaxPairsPerAttr = 400
		start := time.Now()
		res, err := comparenb.Generate(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		o := outcome{name: name, insights: res.Counts.SignificantInsights, elapsed: time.Since(start)}
		results = append(results, o)
		return o
	}

	fmt.Println("strategy            sample   runtime      insights  vs full")
	ref := run("no sampling", comparenb.WSCApprox(10, 1.5))
	fmt.Printf("%-18s %6s %10v %10d %8s\n", ref.name, "100%", ref.elapsed.Round(time.Millisecond), ref.insights, "100%")
	for _, frac := range []float64{0.30, 0.10, 0.05} {
		unb := run("unbalanced", comparenb.WSCUnbApprox(10, 1.5, frac))
		rnd := run("random", comparenb.WSCRandApprox(10, 1.5, frac))
		for _, o := range []outcome{unb, rnd} {
			pct := 100 * float64(o.insights) / float64(ref.insights)
			fmt.Printf("%-18s %5.0f%% %10v %10d %7.1f%%\n",
				o.name, frac*100, o.elapsed.Round(time.Millisecond), o.insights, pct)
		}
	}
	fmt.Println("\nUnbalanced sampling keeps rare attribute values in the test pools, so it")
	fmt.Println("detects a larger share of the full-data insights at equal sample size (§6.3.1).")
}
