// Vaccine example: exploring an unknown small dataset, the paper's
// motivating scenario (§1) — "a data enthusiast with some basic knowledge
// of SQL, having to explore an unknown open data set in CSV format".
//
// The program generates the Vaccine-like dataset (Table 2 shape: 5045
// rows, 6 categorical attributes, 1 measure), writes it to a temporary
// CSV, then does what a user of the library would do with a CSV they have
// never seen: load it with type inference, generate a notebook with the
// exact TAP solver (the dataset is small enough — §6.2 shows exact
// resolution is feasible at Vaccine scale), and save it as .ipynb.
//
//	go run ./examples/vaccine
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"comparenb"
	"comparenb/internal/datagen"
)

func main() {
	gen, err := datagen.VaccineLike(42)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "comparenb-vaccine")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	csvPath := filepath.Join(dir, "vaccine.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := gen.Rel.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// From here on: exactly what a library user does with a foreign CSV.
	ds, err := comparenb.LoadCSV(csvPath, comparenb.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: categorical=%v numeric=%v\n",
		csvPath, ds.Report.Categorical, ds.Report.Numeric)

	cfg := comparenb.NaiveExact(8, 1.5) // exact TAP, 8-query notebook
	cfg.Perms = 300
	cfg.Seed = 42
	cfg.ExactTimeout = 30 * time.Second
	cfg.MaxPairsPerAttr = 300 // the 107-value attribute has 5671 pairs; cap for demo speed

	start := time.Now()
	nb, res, err := comparenb.GenerateNotebook(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated in %v: %d significant insights, notebook of %d queries (TAP optimal: %v)\n",
		time.Since(start).Round(time.Millisecond),
		res.Counts.SignificantInsights, nb.NumQueries(),
		res.ExactStats != nil && res.ExactStats.Certified)

	out := "vaccine_notebook.ipynb"
	of, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := nb.WriteIPYNB(of); err != nil {
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", out)

	// Show the first selected query and the hypothesis query behind its
	// top insight, as the paper's Figures 2 and 3 do.
	if seq := res.Sequence(); len(seq) > 0 {
		fmt.Println("\nFirst comparison query:")
		fmt.Println(comparenb.ComparisonSQL(ds.Rel, seq[0].Query))
		fmt.Println("\nHypothesis query postulating its first insight:")
		fmt.Println(comparenb.HypothesisSQL(ds.Rel, seq[0], seq[0].Supported[0]))
	}
}
