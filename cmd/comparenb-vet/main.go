// Command comparenb-vet runs the project's static-analysis suite
// (internal/analysis) over the module and prints findings in the standard
// file:line:col form. It exits 1 when there are findings, so it slots into
// scripts/check.sh and CI the same way go vet does.
//
// Usage:
//
//	comparenb-vet [-list] [-checks name,name] [-json] [-sarif] [-baseline file] [dir]
//
// dir defaults to "." and may be any directory inside the module (the
// whole module is always checked — analyzers reason about cross-package
// properties like determinism, so partial runs would under-report).
//
// A baseline file (default: .comparenb-vet-baseline.json at the module
// root, when present) suppresses accepted, justified findings; entries
// that no longer match anything are reported as stale and fail the run,
// so the baseline can only shrink.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comparenb/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list available analyzers and exit")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON instead of file:line:col lines")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 instead of file:line:col lines")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (default: "+analysis.BaselineFile+" at the module root, if present; \"none\" disables)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "comparenb-vet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	analyzers := analysis.All()
	if *checks != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "comparenb-vet:", err)
			os.Exit(2)
		}
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept "./..." go-style patterns for muscle-memory compatibility;
		// the module is always checked whole.
		dir = strings.TrimSuffix(args[0], "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	modDir, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comparenb-vet:", err)
		os.Exit(2)
	}

	diags, err := analysis.CheckModule(dir, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comparenb-vet:", err)
		os.Exit(2)
	}

	var stale []analysis.BaselineEntry
	if bl := loadBaseline(*baselinePath, modDir); bl != nil {
		diags, stale = analysis.ApplyBaseline(modDir, bl, diags)
	}

	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(os.Stdout, modDir, diags); err != nil {
			fmt.Fprintln(os.Stderr, "comparenb-vet:", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, modDir, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "comparenb-vet:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}

	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "comparenb-vet: stale baseline entry: %s in %s (%q) no longer matches any finding; remove it\n",
			e.Analyzer, e.File, e.Message)
	}
	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "comparenb-vet: %d finding(s), %d stale baseline entr(ies)\n", len(diags), len(stale))
		os.Exit(1)
	}
}

// loadBaseline resolves the baseline file: an explicit -baseline path is
// required to exist; the default module-root file is optional; "none"
// disables baselining entirely.
func loadBaseline(flagPath, modDir string) *analysis.Baseline {
	if flagPath == "none" {
		return nil
	}
	path := flagPath
	optional := false
	if path == "" {
		path = modDir + string(os.PathSeparator) + analysis.BaselineFile
		optional = true
	}
	bl, err := analysis.LoadBaseline(path)
	if err != nil {
		if optional && os.IsNotExist(err) {
			return nil
		}
		fmt.Fprintln(os.Stderr, "comparenb-vet:", err)
		os.Exit(2)
	}
	return bl
}
