// Command comparenb-vet runs the project's static-analysis suite
// (internal/analysis) over the module and prints findings in the standard
// file:line:col form. It exits 1 when there are findings, so it slots into
// scripts/check.sh and CI the same way go vet does.
//
// Usage:
//
//	comparenb-vet [-list] [-checks name,name] [dir]
//
// dir defaults to "." and may be any directory inside the module (the
// whole module is always checked — analyzers reason about cross-package
// properties like determinism, so partial runs would under-report).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comparenb/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list available analyzers and exit")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *checks != "" {
		names := strings.Split(*checks, ",")
		analyzers = analysis.ByName(names)
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "comparenb-vet: unknown analyzer in -checks=%s (try -list)\n", *checks)
			os.Exit(2)
		}
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept "./..." go-style patterns for muscle-memory compatibility;
		// the module is always checked whole.
		dir = strings.TrimSuffix(args[0], "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	diags, err := analysis.CheckModule(dir, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comparenb-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "comparenb-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
