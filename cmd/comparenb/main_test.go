package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the binary and drives the full CSV → notebook
// flow: type inference, generation, every output format, and the JSON
// report.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "comparenb-cli")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// A small CSV with a strong, obvious structure.
	var sb strings.Builder
	sb.WriteString("region,product,channel,sales\n")
	regions := []string{"north", "south", "east"}
	products := []string{"widget", "gadget"}
	channels := []string{"web", "store"}
	for i := 0; i < 600; i++ {
		r := regions[i%3]
		p := products[i%2]
		c := channels[(i/3)%2]
		v := 100 + (i%3)*50 + (i%2)*20 + i%7
		sb.WriteString(r + "," + p + "," + c + ",")
		sb.WriteString(intToStr(v))
		sb.WriteString("\n")
	}
	csvPath := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, format := range []string{"nb.ipynb", "nb.md", "nb.html"} {
		outPath := filepath.Join(dir, format)
		reportPath := filepath.Join(dir, "report-"+format+".json")
		cmd := exec.Command(bin,
			"-in", csvPath, "-out", outPath, "-report", reportPath,
			"-queries", "3", "-perms", "200", "-seed", "1")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("%s: %v\n%s", format, err, out)
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		content := string(data)
		switch {
		case strings.HasSuffix(format, ".ipynb"):
			var doc map[string]any
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatalf("ipynb not JSON: %v", err)
			}
			if doc["nbformat"].(float64) != 4 {
				t.Error("nbformat != 4")
			}
		case strings.HasSuffix(format, ".md"):
			if !strings.Contains(content, "```sql") {
				t.Error("markdown missing SQL block")
			}
		case strings.HasSuffix(format, ".html"):
			if !strings.Contains(content, "<pre><code>") {
				t.Error("html missing code block")
			}
		}
		rep, err := os.ReadFile(reportPath)
		if err != nil {
			t.Fatal(err)
		}
		var report map[string]any
		if err := json.Unmarshal(rep, &report); err != nil {
			t.Fatalf("report not JSON: %v", err)
		}
		if report["dataset"] != "sales" {
			t.Errorf("report dataset = %v", report["dataset"])
		}
	}

	// Error paths.
	if err := exec.Command(bin, "-in", filepath.Join(dir, "absent.csv")).Run(); err == nil {
		t.Error("missing input: want non-zero exit")
	}
	if err := exec.Command(bin, "-in", csvPath, "-solver", "bogus").Run(); err == nil {
		t.Error("bad solver: want non-zero exit")
	}
	if err := exec.Command(bin, "-in", csvPath, "-out", filepath.Join(dir, "x.pdf")).Run(); err == nil {
		t.Error("bad extension: want non-zero exit")
	}
}

func intToStr(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestCLINoCompress checks the -no-compress escape hatch end to end: the
// notebook is byte-identical with the columnar layer on or off, the run
// report records the flag and the per-column stats, and -obs-summary
// surfaces the compression table only when the layer ran.
func TestCLINoCompress(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "comparenb-cli")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Large enough that cube builds take the encoded path (minEncodeRows).
	var sb strings.Builder
	sb.WriteString("region,product,channel,sales\n")
	regions := []string{"north", "south", "east", "west"}
	products := []string{"widget", "gadget", "doodad"}
	channels := []string{"web", "store"}
	for i := 0; i < 4000; i++ {
		sb.WriteString(regions[i%4] + "," + products[(i/2)%3] + "," + channels[(i/5)%2] + ",")
		sb.WriteString(intToStr(100 + (i%4)*50 + (i%3)*20 + i%11))
		sb.WriteString("\n")
	}
	csvPath := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(extra ...string) (nb []byte, report map[string]any, stderr string) {
		outPath := filepath.Join(dir, "nb.md")
		repPath := filepath.Join(dir, "report.json")
		args := append([]string{
			"-in", csvPath, "-out", outPath, "-report", repPath,
			"-queries", "3", "-perms", "100", "-seed", "1", "-obs-summary"}, extra...)
		cmd := exec.Command(bin, args...)
		var errBuf strings.Builder
		cmd.Stderr = &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("run %v: %v\n%s", extra, err, errBuf.String())
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := os.ReadFile(repPath)
		if err != nil {
			t.Fatal(err)
		}
		var repDoc map[string]any
		if err := json.Unmarshal(rep, &repDoc); err != nil {
			t.Fatalf("report not JSON: %v", err)
		}
		return data, repDoc, errBuf.String()
	}

	nbEnc, repEnc, errEnc := run()
	nbRaw, repRaw, errRaw := run("-no-compress")

	if string(nbEnc) != string(nbRaw) {
		t.Errorf("notebook differs with -no-compress (%d vs %d bytes)", len(nbEnc), len(nbRaw))
	}
	comp, ok := repEnc["compression"].([]any)
	if !ok || len(comp) != 4 {
		t.Errorf("compressed report compression = %v, want 4 columns", repEnc["compression"])
	}
	if _, ok := repRaw["compression"]; ok {
		t.Error("-no-compress report still carries compression stats")
	}
	cfg := repRaw["config"].(map[string]any)
	if cfg["no_compress"] != true {
		t.Error("-no-compress not recorded in report config")
	}
	if !strings.Contains(errEnc, "columnar compression") {
		t.Errorf("-obs-summary did not print the compression table:\n%s", errEnc)
	}
	if strings.Contains(errRaw, "columnar compression") {
		t.Error("-obs-summary printed a compression table under -no-compress")
	}
}
