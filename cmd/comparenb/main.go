// Command comparenb generates a comparison notebook from a CSV file: the
// end-to-end flow of the paper's Figure 1, from the command line.
//
//	comparenb -in covid.csv -out covid.ipynb -queries 10
//
// The CSV must have a header row; columns whose every value parses as a
// number become measures, the rest become categorical attributes
// (override with -categorical / -numeric / -drop).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"comparenb"
)

// main defers real work to run so deferred cleanups (CPU profile stop,
// observability flush) execute on every exit path; os.Exit lives here only.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comparenb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in          = flag.String("in", "", "input CSV file (required)")
		out         = flag.String("out", "", "output file: .ipynb, .md or .html (default stdout as markdown)")
		queries     = flag.Int("queries", 10, "notebook size ε_t")
		epsD        = flag.Float64("epsd", 1.5, "distance bound ε_d")
		perms       = flag.Int("perms", 300, "permutations per statistical test")
		alpha       = flag.Float64("alpha", 0.05, "FDR level (insight significant when q ≤ alpha)")
		seed        = flag.Int64("seed", 1, "RNG seed")
		solver      = flag.String("solver", "heuristic", "TAP solver: heuristic | heuristic+2opt | exact | topk")
		sampling    = flag.String("sampling", "none", "test sampling: none | random | unbalanced")
		frac        = flag.Float64("sample-frac", 0.2, "sampling fraction when -sampling is set")
		useWSC      = flag.Bool("wsc", true, "merge group-by sets (Algorithm 2)")
		threads     = flag.Int("threads", 0, "worker threads for the parallel phases (0 = GOMAXPROCS); output is identical at any setting")
		cacheBudget = flag.Int64("cache-budget", 64<<20, "cube-cache bound in bytes (0 = unbounded)")
		timeBudget  = flag.Duration("time-budget", 0, "soft wall-clock budget, e.g. 30s: the governor splits it across the stats/hypothesis/TAP phases and each degrades gracefully when its share expires (0 = unbudgeted)")
		memBudget   = flag.Int64("mem-budget", 0, "hard cube-cache memory budget in bytes: cubes that would exceed it are answered but not cached (0 = disarmed)")
		noCompress  = flag.Bool("no-compress", false, "disable the compressed columnar storage layer (cubes build from raw columns; outputs are identical either way)")
		maxRows     = flag.Int("max-rows", 0, "refuse CSV inputs with more data rows than this instead of loading them (0 = unlimited)")
		cats        = flag.String("categorical", "", "comma-separated columns to force categorical")
		nums        = flag.String("numeric", "", "comma-separated columns to force numeric")
		drop        = flag.String("drop", "", "comma-separated columns to ignore")
		maxCard     = flag.Int("max-cardinality", 0, "drop inferred-categorical columns above this cardinality (0 = keep)")
		report      = flag.String("report", "", "also write a machine-readable JSON run report to this file")
		median      = flag.Bool("median", false, "additionally test median-greater insights (extension)")
		hypotheses  = flag.Bool("hypotheses", false, "include each insight's hypothesis query in the notebook")
		profileOnly = flag.Bool("profile", false, "print the dataset profile and exit (no notebook)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of the run's spans to this file (load in Perfetto / chrome://tracing)")
		metricsOut  = flag.String("metrics-out", "", "write a Prometheus-style text exposition of the run's counters and timings to this file")
		obsSummary  = flag.Bool("obs-summary", false, "print a per-phase observability summary to stderr after the run")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		verbose     = flag.Bool("v", false, "print run statistics to stderr")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}

	ds, err := comparenb.LoadCSV(*in, comparenb.CSVOptions{
		ForceCategorical:          splitList(*cats),
		ForceNumeric:              splitList(*nums),
		Drop:                      splitList(*drop),
		MaxCategoricalCardinality: *maxCard,
		MaxRows:                   *maxRows,
	})
	if err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "loaded %d rows; categorical=%v numeric=%v dropped=%v\n",
			ds.Report.Rows, ds.Report.Categorical, ds.Report.Numeric, ds.Report.Dropped)
	}

	if *profileOnly {
		fmt.Print(comparenb.ProfileDataset(ds))
		return nil
	}

	cfg := comparenb.NewConfig()
	cfg.EpsT = *queries
	cfg.EpsD = *epsD
	cfg.Perms = *perms
	cfg.Alpha = *alpha
	cfg.Seed = *seed
	cfg.UseWSC = *useWSC
	cfg.Threads = *threads
	cfg.CubeCacheBudget = *cacheBudget
	cfg.TimeBudget = *timeBudget
	cfg.MemBudget = *memBudget
	cfg.NoCompress = *noCompress
	cfg.IncludeHypotheses = *hypotheses
	if *median {
		cfg.InsightTypes = comparenb.ExtendedInsightTypes
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	switch *solver {
	case "heuristic":
		cfg.Solver = comparenb.SolverHeuristic
	case "exact":
		cfg.Solver = comparenb.SolverExact
		cfg.ExactTimeout = 5 * time.Minute
	case "topk":
		cfg.Solver = comparenb.SolverTopK
	case "heuristic+2opt":
		cfg.Solver = comparenb.SolverHeuristicPlus
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}
	switch *sampling {
	case "none":
		cfg.Sampling = comparenb.SamplingNone
	case "random":
		cfg.Sampling = comparenb.SamplingRandom
		cfg.SampleFrac = *frac
	case "unbalanced":
		cfg.Sampling = comparenb.SamplingUnbalanced
		cfg.SampleFrac = *frac
	default:
		return fmt.Errorf("unknown sampling %q", *sampling)
	}

	// Observability: one run-scoped registry, flushed on every exit path —
	// an interrupted run still leaves valid (marked) partial artifacts.
	var reg *comparenb.ObsRegistry
	if *traceOut != "" || *metricsOut != "" || *obsSummary {
		reg = comparenb.NewObsRegistry()
		if *traceOut != "" {
			reg.EnableTracing(0)
		}
		cfg.Obs = reg
	}
	flushObs := func() error {
		if reg == nil {
			return nil
		}
		if *traceOut != "" {
			if err := writeFile(*traceOut, reg.WriteTrace); err != nil {
				return err
			}
		}
		if *metricsOut != "" {
			if err := writeFile(*metricsOut, reg.WriteMetrics); err != nil {
				return err
			}
		}
		if *obsSummary {
			return reg.WriteSummary(os.Stderr)
		}
		return nil
	}
	// printCompression reports what the columnar layer bought, per column,
	// when the run used it; part of -obs-summary because compression is an
	// internal mechanism, not notebook content.
	printCompression := func(res *comparenb.Result) {
		if !*obsSummary || res == nil {
			return
		}
		comp := res.Report().Compression
		if len(comp) == 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "\ncolumnar compression (%d columns):\n", len(comp))
		var raw, enc int
		for _, c := range comp {
			raw += c.RawBytes
			enc += c.EncodedBytes
			fmt.Fprintf(os.Stderr, "  %-24s %-12s %-12s %8d B -> %8d B  (%.1fx)\n",
				c.Name, c.Kind, c.Encoding, c.RawBytes, c.EncodedBytes, c.Ratio)
		}
		ratio := 0.0
		if enc > 0 {
			ratio = float64(raw) / float64(enc)
		}
		fmt.Fprintf(os.Stderr, "  %-24s %-12s %-12s %8d B -> %8d B  (%.1fx)\n",
			"total", "", "", raw, enc, ratio)
	}

	// Ctrl-C / SIGTERM cancel the run at the next phase-safe checkpoint:
	// the hard stop, as opposed to -time-budget's graceful degradation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	nb, res, err := comparenb.GenerateNotebookContext(ctx, ds, cfg)
	if err != nil {
		// Flush what the run recorded before it died: the trace is valid
		// JSON of the spans so far and the metrics exposition carries the
		// "# interrupted" marker.
		reg.MarkInterrupted()
		if ferr := flushObs(); ferr != nil {
			fmt.Fprintln(os.Stderr, "comparenb: observability flush:", ferr)
		}
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted; no notebook written")
		}
		return err
	}
	if *verbose && res.TAP.Degraded {
		fmt.Fprintf(os.Stderr, "time budget %v expired during the exact search: degraded to %s (optimality gap ≤ %.2f%%)\n",
			*timeBudget, res.TAP.Solver, 100*res.TAP.Gap)
	}
	if *verbose && res.Degraded.Any() {
		fmt.Fprintf(os.Stderr,
			"degraded phases %v: perms_effective=%d pairs_skipped=%d hypo_dropped=%d mem_evictions=%d (details in -report JSON)\n",
			res.Degraded.Phases, res.Degraded.PermsEffective, res.Degraded.PairsSkipped,
			res.Degraded.HypoDropped, res.Degraded.MemEvictions)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr,
			"tested %d insights, %d significant (%d pruned as deducible); |Q|=%d; notebook=%d queries\n",
			res.Counts.InsightsEnumerated, res.Counts.SignificantInsights,
			res.Counts.PrunedTransitive, res.Counts.QueriesGenerated, len(res.Solution.Order))
		fmt.Fprintf(os.Stderr, "cube cache: %d hits, %d rollups, %d misses, %d evictions\n",
			res.Counts.CacheHits, res.Counts.CacheRollups, res.Counts.CacheMisses, res.Counts.CacheEvictions)
		fmt.Fprintf(os.Stderr, "timings: stats=%v hypo=%v tap=%v total=%v\n",
			res.Timings.StatTests.Round(time.Millisecond), res.Timings.HypoEval.Round(time.Millisecond),
			res.Timings.TAP.Round(time.Millisecond), res.Timings.Total.Round(time.Millisecond))
	}

	if *report != "" {
		if err := writeFile(*report, res.Report().WriteJSON); err != nil {
			return err
		}
	}

	switch {
	case *out == "":
		if err := nb.WriteMarkdown(os.Stdout); err != nil {
			return err
		}
	case strings.HasSuffix(*out, ".ipynb"):
		if err := writeFile(*out, nb.WriteIPYNB); err != nil {
			return err
		}
	case strings.HasSuffix(*out, ".md"):
		if err := writeFile(*out, nb.WriteMarkdown); err != nil {
			return err
		}
	case strings.HasSuffix(*out, ".html"):
		if err := writeFile(*out, nb.WriteHTML); err != nil {
			return err
		}
	default:
		return fmt.Errorf("output must end in .ipynb, .md or .html, got %q", *out)
	}

	// Observability artifacts flush after the notebook so the notebook's
	// own verification queries are included in the counters.
	if err := flushObs(); err != nil {
		return err
	}
	printCompression(res)
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// writeFile creates path, streams write into it and closes it, reporting
// the first failure — including the Close error, which is where a full
// disk or a flushed write error actually surfaces.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // best-effort: the write error is the one to report
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
