// Command compare runs a single ad-hoc comparison query against a CSV —
// the manual workflow the paper automates, kept handy for spot checks:
// print the Definition 3.1 SQL, execute its operator tree, show the
// result, and test both insight hypotheses on it.
//
//	compare -in covid.csv -group continent -by month -val 4 -val2 5 -measure cases -agg sum
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"comparenb"
	"comparenb/internal/engine"
	"comparenb/internal/insight"
	"comparenb/internal/pipeline"
	"comparenb/internal/sqlgen"
	"comparenb/internal/stats"
	"comparenb/internal/table"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV file (required)")
		group   = flag.String("group", "", "grouping attribute A (required)")
		by      = flag.String("by", "", "selection attribute B (required)")
		val     = flag.String("val", "", "first selected value of B (required)")
		val2    = flag.String("val2", "", "second selected value of B (required)")
		measure = flag.String("measure", "", "measure M (required)")
		aggName = flag.String("agg", "sum", "aggregate: sum | avg | min | max | count")
		perms   = flag.Int("perms", 500, "permutations for the significance tests")
		seed    = flag.Int64("seed", 1, "RNG seed")
		timeout = flag.Duration("timeout", 0, "abort the significance tests after this long (0 = no limit)")
		cats    = flag.String("categorical", "", "comma-separated columns to force categorical")
		maxRows = flag.Int("max-rows", 0, "refuse CSV inputs with more data rows than this (0 = unlimited)")
		explain = flag.Bool("explain", false, "also print the operator tree")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile (at exit) to this file")
	)
	flag.Parse()
	// Deliberately a slice, not a map: missing-flag errors must come out in
	// a stable order (the maporder analyzer would flag the map version).
	for _, req := range []struct{ name, v string }{
		{"-in", *in}, {"-group", *group}, {"-by", *by}, {"-val", *val}, {"-val2", *val2}, {"-measure", *measure},
	} {
		if req.v == "" {
			fmt.Fprintf(os.Stderr, "compare: %s is required\n", req.name)
			flag.Usage()
			os.Exit(2)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() also runs this, so error exits still flush the profile.
		stopProfiles = func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}
	}
	defer finishProfiles(*memProf)

	opts := comparenb.CSVOptions{MaxRows: *maxRows}
	if *cats != "" {
		opts.ForceCategorical = splitComma(*cats)
	}
	ds, err := comparenb.LoadCSV(*in, opts)
	if err != nil {
		fatal(err)
	}
	rel := ds.Rel

	attrA := rel.CatIndexOf(*group)
	attrB := rel.CatIndexOf(*by)
	meas := rel.MeasIndexOf(*measure)
	if attrA < 0 || attrB < 0 || meas < 0 {
		fatal(fmt.Errorf("unknown column: group=%q (cat %d), by=%q (cat %d), measure=%q (meas %d); categorical=%v numeric=%v",
			*group, attrA, *by, attrB, *measure, meas, ds.Report.Categorical, ds.Report.Numeric))
	}
	c1, ok1 := rel.CodeOf(attrB, *val)
	c2, ok2 := rel.CodeOf(attrB, *val2)
	if !ok1 || !ok2 {
		fatal(fmt.Errorf("value not in dom(%s): %q ok=%v, %q ok=%v", *by, *val, ok1, *val2, ok2))
	}
	agg, err := engine.ParseAgg(*aggName)
	if err != nil {
		fatal(err)
	}

	q := insight.Query{GroupBy: attrA, Attr: attrB, Val: c1, Val2: c2, Meas: meas, Agg: agg}
	fmt.Println("-- comparison query (Def. 3.1):")
	fmt.Println(pipeline.ComparisonSQL(rel, q))

	plan := engine.ComparisonPlan(rel, attrA, attrB, c1, c2, meas, agg)
	if *explain {
		fmt.Println("\n-- operator tree:")
		fmt.Println(plan.Explain())
	}
	rows, err := plan.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n-- result:")
	fmt.Print(rows)

	// Support + significance for both paper insight types.
	res := engine.CompareDirect(rel, attrA, attrB, c1, c2, meas, agg)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fmt.Println("\n-- insights:")
	for _, typ := range insight.AllTypes {
		supports := insight.Supports(res, typ)
		p, err := significance(ctx, rel, attrB, c1, c2, meas, typ, *perms, *seed)
		if err != nil {
			fatal(fmt.Errorf("significance test for %s: %w", typ, err))
		}
		verdict := "not supported by this comparison"
		if supports {
			verdict = "SUPPORTED by this comparison"
		}
		fmt.Printf("%-18s (%s = %s vs %s): %s; permutation p = %.4f\n",
			typ, *by, *val, *val2, verdict, p)
		fmt.Println("  hypothesis query:")
		kind := sqlgen.MeanGreater
		if typ == insight.VarianceGreater {
			kind = sqlgen.VarianceGreater
		}
		fmt.Println(indent(sqlgen.Hypothesis(rel, sqlgen.Params{
			GroupBy: attrA, SelAttr: attrB, Val: c1, Val2: c2, Meas: meas, Agg: agg,
		}, kind)))
	}
}

// significance runs the raw-data permutation test of Table 1, with the
// seeded block streams so the p-value depends only on the seed. A
// cancelled or expired ctx aborts the test and returns its error.
func significance(ctx context.Context, rel *table.Relation, attrB int, c1, c2 int32, meas int, typ insight.Type, perms int, seed int64) (float64, error) {
	xs := engine.FilterMeasure(rel, attrB, c1, meas)
	ys := engine.FilterMeasure(rel, attrB, c2, meas)
	if len(xs) < 2 || len(ys) < 2 {
		return 1, nil
	}
	threads := runtime.GOMAXPROCS(0)
	pp, err := stats.NewPairPermSeededCtx(ctx, len(xs), len(ys), perms, seed, threads)
	if err != nil {
		return 1, err
	}
	pooled := append(append(make([]float64, 0, len(xs)+len(ys)), xs...), ys...)
	_, p, err := pp.PValueThreadsCtx(ctx, pooled, typ.TestStat(), threads)
	return p, err
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func indent(s string) string {
	out := "    "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "    "
		}
	}
	return out
}

// stopProfiles, when set, stops the running CPU profile; fatal and the
// normal exit path both call it so the profile survives error exits.
var stopProfiles func()

// finishProfiles closes out profiling at exit: stop the CPU profile and,
// when requested, write the heap profile after a GC settles the heap.
func finishProfiles(memPath string) {
	if stopProfiles != nil {
		stopProfiles()
		stopProfiles = nil
	}
	if memPath == "" {
		return
	}
	f, err := os.Create(memPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare: memprofile:", err)
		return
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "compare: memprofile:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "compare: memprofile:", err)
	}
}

func fatal(err error) {
	if stopProfiles != nil {
		stopProfiles()
		stopProfiles = nil
	}
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
