// Command loadgen drives a running comparenbd with concurrent notebook
// jobs and reports latency percentiles and shed rate as JSON — the load
// half of scripts/loadtest.sh.
//
//	comparenbd -addr 127.0.0.1:0 -addr-file /tmp/addr &
//	loadgen -addr "$(cat /tmp/addr)" -tenants 3 -jobs 4 -out bench.json
//
// loadgen uploads its own deterministic dataset (internal/datagen Tiny),
// fires tenants × jobs requests at once, polls each job to a terminal
// state, and can download one finished job's trace and metrics artifacts
// for obscheck validation (-trace-out / -metrics-out), the daemon's
// flight-recorder snapshot (-flight-out), and one job's flight trace
// (-jobtrace-out). Every request carries a deterministic W3C traceparent
// derived from (tenant, seed); the run fails if the server echoes a
// different trace id. Alongside client-side latency percentiles the
// summary reports the server's own p50/p99 scraped from the
// comparenb_server_job_e2e_seconds histogram on /metrics. A 429 shed is
// not a failure: loadgen honors the Retry-After header with capped,
// jittered backoff and re-submits, counting a job as shed only once its
// retry budget is spent.
//
// With -resume, loadgen submits nothing: it waits for a restarted
// durable daemon to report ready (/readyz), then follows every journaled
// job to a terminal state and summarises the recovery — the verification
// half of the crash smoke in scripts/check.sh. With -journal it also
// asserts every recovered job kept the trace id its admission record
// carried across the crash.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"comparenb/internal/datagen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// jobOutcome is one request's fate as seen by the client.
type jobOutcome struct {
	state         string // done | failed | cancelled | shed
	jobID         string
	trace         string        // trace id sent with the request
	traceMismatch bool          // server echoed a different trace id
	latency       time.Duration // POST to terminal status
	retries       int           // 429s absorbed before admission
}

type benchLatency struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// benchServerLatency is the server's own view of job latency, read back
// from the comparenb_server_job_e2e_seconds histogram on /metrics.
// Quantiles are bucket upper bounds (log2-spaced), so they bound the
// client-side percentiles from above.
type benchServerLatency struct {
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	Count int64   `json:"count"`
}

type benchCache struct {
	Hits       int64 `json:"hits"`
	RollupHits int64 `json:"rollup_hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

type benchOut struct {
	Addr          string       `json:"addr"`
	Tenants       int          `json:"tenants"`
	JobsPerTenant int          `json:"jobs_per_tenant"`
	Rows          int          `json:"rows"`
	Perms         int          `json:"perms"`
	Requests      int          `json:"requests"`
	Completed     int          `json:"completed"`
	Shed          int          `json:"shed"`
	Failed        int          `json:"failed"`
	Retries       int          `json:"retries"`
	TraceMismatch int          `json:"trace_mismatch"`
	WallMS        int64        `json:"wall_ms"`
	JobsPerSecond float64      `json:"jobs_per_second"`
	ShedRate      float64      `json:"shed_rate"`
	Latency       benchLatency `json:"latency"`

	ServerLatency benchServerLatency `json:"server_latency"`

	Cache benchCache `json:"cache"`
}

func run() error {
	var (
		addr        = flag.String("addr", "", "daemon address, host:port or http://host:port (required)")
		tenants     = flag.Int("tenants", 3, "concurrent tenants")
		jobs        = flag.Int("jobs", 4, "jobs per tenant, all submitted at once")
		rows        = flag.Int("rows", 400, "rows of the generated dataset")
		queries     = flag.Int("queries", 5, "notebook size per job")
		perms       = flag.Int("perms", 100, "permutations per statistical test")
		seed        = flag.Int64("seed", 1, "dataset and pipeline seed")
		relation    = flag.String("relation", "loadgen", "relation name to upload under")
		out         = flag.String("out", "", "write the JSON results here (default stdout)")
		traceOut    = flag.String("trace-out", "", "download one finished job's Chrome trace artifact to this file")
		metricsOut  = flag.String("metrics-out", "", "download the same job's metrics exposition to this file")
		jobtraceOut = flag.String("jobtrace-out", "", "download the same job's flight-recorder trace (GET /v1/jobs/{id}/trace) to this file")
		flightOut   = flag.String("flight-out", "", "download the daemon's flight snapshot (GET /debug/flight) to this file")
		pollEvery   = flag.Duration("poll", 15*time.Millisecond, "job status poll interval")
		maxRetries  = flag.Int("max-retries", 5, "re-submissions after a 429 before a job counts as shed")
		retryCap    = flag.Duration("retry-cap", 5*time.Second, "upper bound on one Retry-After backoff sleep")
		resume      = flag.Bool("resume", false, "submit nothing; wait for a restarted daemon's recovery and summarise journaled jobs")
		resumeWait  = flag.Duration("resume-timeout", 2*time.Minute, "with -resume, how long to wait for readiness and terminal jobs")
		journalPath = flag.String("journal", "", "with -resume, the daemon's journal.jsonl: recovered jobs must keep their admission trace_id")
	)
	flag.Parse()
	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	base := *addr
	if !strings.HasPrefix(base, "http") {
		base = "http://" + base
	}
	cl := &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}, maxRetries: *maxRetries, retryCap: *retryCap}

	if *resume {
		return runResume(cl, *out, *journalPath, *pollEvery, *resumeWait)
	}

	ds, err := datagen.Tiny(*seed, *rows)
	if err != nil {
		return err
	}
	var csv bytes.Buffer
	if err := ds.Rel.WriteCSV(&csv); err != nil {
		return err
	}
	if err := cl.upload(*relation, csv.Bytes()); err != nil {
		return err
	}

	total := *tenants * *jobs
	outcomes := make([]jobOutcome, total)
	begin := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < *tenants; t++ {
		for k := 0; k < *jobs; k++ {
			wg.Add(1)
			go func(t, k int) {
				defer wg.Done()
				tenant := "tenant-" + strconv.Itoa(t)
				// Distinct seeds keep jobs from being pure cache replays
				// of one another while staying deterministic.
				jobSeed := *seed + int64(k)
				outcomes[t**jobs+k] = cl.oneJob(tenant, *relation, *queries, *perms, jobSeed, *pollEvery)
			}(t, k)
		}
	}
	wg.Wait()
	wall := time.Since(begin)

	res := benchOut{
		Addr: base, Tenants: *tenants, JobsPerTenant: *jobs,
		Rows: *rows, Perms: *perms, Requests: total, WallMS: wall.Milliseconds(),
	}
	var latencies []time.Duration
	var doneID string
	for _, o := range outcomes {
		switch o.state {
		case "done":
			res.Completed++
			latencies = append(latencies, o.latency)
			doneID = o.jobID
		case "shed":
			res.Shed++
		default:
			res.Failed++
		}
		res.Retries += o.retries
		if o.traceMismatch {
			res.TraceMismatch++
		}
	}
	if res.TraceMismatch > 0 {
		return fmt.Errorf("%d of %d jobs came back under a different trace id than submitted", res.TraceMismatch, total)
	}
	res.ShedRate = float64(res.Shed) / float64(total)
	if wall > 0 {
		res.JobsPerSecond = float64(res.Completed) / wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.Latency = benchLatency{
		P50MS: percentileMS(latencies, 0.50),
		P95MS: percentileMS(latencies, 0.95),
		P99MS: percentileMS(latencies, 0.99),
	}
	if err := cl.cacheCounters(&res.Cache); err != nil {
		return err
	}
	if err := cl.serverLatency(&res.ServerLatency); err != nil {
		return err
	}
	if res.ServerLatency.Count < int64(res.Completed) {
		return fmt.Errorf("server e2e histogram counts %d jobs, loadgen completed %d",
			res.ServerLatency.Count, res.Completed)
	}

	if doneID != "" {
		if *traceOut != "" {
			if err := cl.download("/v1/jobs/"+doneID+"/result?format=trace", *traceOut); err != nil {
				return err
			}
		}
		if *metricsOut != "" {
			if err := cl.download("/v1/jobs/"+doneID+"/result?format=metrics", *metricsOut); err != nil {
				return err
			}
		}
		if *jobtraceOut != "" {
			if err := cl.download("/v1/jobs/"+doneID+"/trace", *jobtraceOut); err != nil {
				return err
			}
		}
	} else if *traceOut != "" || *metricsOut != "" || *jobtraceOut != "" {
		return fmt.Errorf("no job completed; cannot download trace/metrics artifacts")
	}
	if *flightOut != "" {
		if err := cl.download("/debug/flight", *flightOut); err != nil {
			return err
		}
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// percentileMS is the nearest-rank percentile in milliseconds (0 when
// nothing completed).
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

type client struct {
	base       string
	http       *http.Client
	maxRetries int           // 429 re-submissions per job
	retryCap   time.Duration // bound on one backoff sleep
}

func (c *client) upload(name string, csv []byte) error {
	req, err := http.NewRequest("POST", c.base+"/v1/relations?name="+name, bytes.NewReader(csv))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	// 409 means a previous loadgen run already loaded it; reuse it.
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("upload: %s: %s", resp.Status, body)
	}
	return nil
}

// requestTraceparent derives a deterministic per-request W3C traceparent
// from (tenant, seed): reruns of one workload carry the same trace ids,
// so a server-side flight recorder or journal can be diffed across runs.
func requestTraceparent(tenant string, seed int64) (header, traceID string) {
	sum := sha256.Sum256([]byte(fmt.Sprintf("loadgen|%s|%d", tenant, seed)))
	traceID = hex.EncodeToString(sum[:16])
	parent := hex.EncodeToString(sum[16:24])
	return "00-" + traceID + "-" + parent + "-01", traceID
}

// oneJob submits one notebook job and follows it to a terminal state.
// Sheds (429) are absorbed by sleeping the server's Retry-After — scaled
// by attempt, capped, deterministically jittered so one tenant's jobs
// don't re-stampede in lockstep — and re-submitting, up to maxRetries.
// Each submission carries a deterministic traceparent; the server must
// echo the same trace id in the 202 body or the run fails.
func (c *client) oneJob(tenant, relation string, queries, perms int, seed int64, poll time.Duration) jobOutcome {
	begin := time.Now()
	reqBody, err := json.Marshal(map[string]any{
		"relation": relation,
		"tenant":   tenant,
		"queries":  queries,
		"perms":    perms,
		"seed":     seed,
	})
	if err != nil {
		return jobOutcome{state: "failed"}
	}
	traceparent, traceID := requestTraceparent(tenant, seed)

	var admit struct {
		JobID   string `json:"job_id"`
		TraceID string `json:"trace_id"`
	}
	retries := 0
	for {
		req, err := http.NewRequest("POST", c.base+"/v1/notebooks", bytes.NewReader(reqBody))
		if err != nil {
			return jobOutcome{state: "failed", trace: traceID}
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", traceparent)
		resp, err := c.http.Do(req)
		if err != nil {
			return jobOutcome{state: "failed", trace: traceID, retries: retries}
		}
		decErr := json.NewDecoder(resp.Body).Decode(&admit)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if retries >= c.maxRetries {
				return jobOutcome{state: "shed", trace: traceID, retries: retries}
			}
			retries++
			time.Sleep(c.backoff(resp.Header.Get("Retry-After"), tenant, seed, retries))
			continue
		}
		if decErr != nil || resp.StatusCode != http.StatusAccepted {
			return jobOutcome{state: "failed", trace: traceID, retries: retries}
		}
		break
	}

	for {
		var st struct {
			State string `json:"state"`
		}
		if err := c.getJSON("/v1/jobs/"+admit.JobID, &st); err != nil {
			return jobOutcome{state: "failed", jobID: admit.JobID, trace: traceID, retries: retries}
		}
		if terminalJobState(st.State) {
			o := jobOutcome{
				state: st.State, jobID: admit.JobID, trace: traceID,
				traceMismatch: admit.TraceID != traceID,
				latency:       time.Since(begin), retries: retries,
			}
			fmt.Fprintf(os.Stderr, "loadgen: job %s %s %s in %dms trace=%s\n",
				o.jobID, tenant, o.state, o.latency.Milliseconds(), admit.TraceID)
			return o
		}
		time.Sleep(poll)
	}
}

// terminalJobState mirrors the server's terminal states, including the
// quarantine state a durable daemon can surface after crash recovery.
func terminalJobState(st string) bool {
	switch st {
	case "done", "failed", "cancelled", "failed_permanent":
		return true
	}
	return false
}

// backoff turns a Retry-After header into one sleep: the advertised
// seconds (default 1s) scaled by the attempt number, capped, plus up to
// 50% jitter keyed on (tenant, seed, attempt) so reruns are repeatable.
func (c *client) backoff(retryAfter, tenant string, seed int64, attempt int) time.Duration {
	base := time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		base = time.Duration(secs) * time.Second
	}
	d := base * time.Duration(attempt)
	if d > c.retryCap {
		d = c.retryCap
	}
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s|%d|%d", tenant, seed, attempt) // fnv never errors
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d/2 + jitter // in [d/2, d]
}

// resumeOut is the -resume summary: the fate of every journaled job
// after a restart, as seen through the public API.
type resumeOut struct {
	Addr          string `json:"addr"`
	Jobs          int    `json:"jobs"`
	Done          int    `json:"done"`
	Failed        int    `json:"failed"`
	Quarantined   int    `json:"quarantined"`
	Cancelled     int    `json:"cancelled"`
	TraceVerified int    `json:"trace_verified"`
	WaitMS        int64  `json:"wait_ms"`
}

// runResume waits for a restarted daemon to become ready, then follows
// all journaled jobs to terminal states. It fails (nonzero exit) when
// the daemon never readies, a job never settles, or the journal turned
// out empty — a crash smoke that recovered nothing proved nothing.
func runResume(cl *client, out, journalPath string, poll, timeout time.Duration) error {
	admitted, err := journalTraces(journalPath)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	begin := time.Now()
	deadline := begin.Add(timeout)
	for {
		if resp, err := cl.http.Get(cl.base + "/readyz"); err == nil {
			ready := resp.StatusCode == http.StatusOK
			_ = resp.Body.Close()
			if ready {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("resume: daemon not ready after %s", timeout)
		}
		time.Sleep(poll)
	}

	res := resumeOut{Addr: cl.base}
	var jobs []struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		TraceID string `json:"trace_id"`
	}
	for {
		if err := cl.getJSON("/v1/jobs", &jobs); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		res.Jobs, res.Done, res.Failed, res.Quarantined, res.Cancelled = len(jobs), 0, 0, 0, 0
		settled := true
		for _, j := range jobs {
			switch j.State {
			case "done":
				res.Done++
			case "failed":
				res.Failed++
			case "failed_permanent":
				res.Quarantined++
			case "cancelled":
				res.Cancelled++
			default:
				settled = false
			}
		}
		if settled && len(jobs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			if res.Jobs == 0 {
				return fmt.Errorf("resume: daemon recovered no journaled jobs — nothing to verify")
			}
			return fmt.Errorf("resume: %d of %d recovered jobs still unsettled after %s", res.Jobs-res.Done-res.Failed-res.Quarantined-res.Cancelled, res.Jobs, timeout)
		}
		time.Sleep(poll)
	}
	res.WaitMS = time.Since(begin).Milliseconds()

	// Crash recovery must keep trace correlation: every job the journal
	// admitted under a trace id must come back under the same one.
	if len(admitted) > 0 {
		seen := map[string]string{}
		for _, j := range jobs {
			seen[j.ID] = j.TraceID
		}
		for id, trace := range admitted {
			got, ok := seen[id]
			if !ok {
				return fmt.Errorf("resume: journaled job %s missing after recovery", id)
			}
			if got != trace {
				return fmt.Errorf("resume: job %s recovered with trace_id %q, journal admitted %q", id, got, trace)
			}
			res.TraceVerified++
		}
		if res.TraceVerified == 0 {
			return fmt.Errorf("resume: journal %s admitted no traced jobs — nothing to verify", journalPath)
		}
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// journalTraces reads a daemon's journal.jsonl and maps job id → the
// trace id its admission record carried. Returns an empty map when no
// path was given (trace verification off). A torn final line is ignored,
// mirroring the daemon's own replay.
func journalTraces(path string) (map[string]string, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	traces := map[string]string{}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec struct {
			Type  string `json:"t"`
			ID    string `json:"id"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if i == len(lines)-1 {
				continue // torn tail from the crash
			}
			return nil, fmt.Errorf("journal %s line %d: %w", path, i+1, err)
		}
		if rec.Type == "job-admit" && rec.Trace != "" {
			traces[rec.ID] = rec.Trace
		}
	}
	return traces, nil
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *client) download(path, dst string) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// serverLatency scrapes the global comparenb_server_job_e2e_seconds
// histogram from /metrics and computes nearest-rank p50/p99 from its
// cumulative buckets — the server's own admit-to-done latency, free of
// client-side polling granularity.
func (c *client) serverLatency(out *benchServerLatency) error {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	const family = "comparenb_server_job_e2e_seconds"
	type bucket struct {
		le  float64
		cum int64
	}
	var buckets []bucket
	for _, line := range strings.Split(string(data), "\n") {
		// Global lines only: the per-tenant instances carry a tenant label.
		if rest, ok := strings.CutPrefix(line, family+`_bucket{le="`); ok {
			le, cum, ok := strings.Cut(rest, `"} `)
			if !ok {
				continue
			}
			b := bucket{le: math.Inf(1)}
			if le != "+Inf" {
				if b.le, err = strconv.ParseFloat(le, 64); err != nil {
					continue
				}
			}
			if b.cum, err = strconv.ParseInt(cum, 10, 64); err != nil {
				continue
			}
			buckets = append(buckets, b)
		} else if rest, ok := strings.CutPrefix(line, family+"_count "); ok {
			out.Count, _ = strconv.ParseInt(rest, 10, 64)
		}
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	quantileMS := func(q float64) float64 {
		if out.Count == 0 {
			return 0
		}
		rank := int64(math.Ceil(q * float64(out.Count)))
		if rank < 1 {
			rank = 1
		}
		ms := 0.0
		for _, b := range buckets {
			if math.IsInf(b.le, 1) {
				// The overflow bucket has no finite bound; report the
				// largest finite one rather than an unmarshalable Inf.
				break
			}
			ms = b.le * 1000
			if b.cum >= rank {
				break
			}
		}
		return ms
	}
	out.P50MS = quantileMS(0.50)
	out.P99MS = quantileMS(0.99)
	return nil
}

// cacheCounters scrapes the shared cache's counters from /metrics.
func (c *client) cacheCounters(out *benchCache) error {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		switch name {
		case "comparenb_engine_cache_hits_total":
			out.Hits = n
		case "comparenb_engine_cache_rollup_hits_total":
			out.RollupHits = n
		case "comparenb_engine_cache_misses_total":
			out.Misses = n
		case "comparenb_engine_cache_evictions_total":
			out.Evictions = n
		}
	}
	return nil
}
