// Command loadgen drives a running comparenbd with concurrent notebook
// jobs and reports latency percentiles and shed rate as JSON — the load
// half of scripts/loadtest.sh.
//
//	comparenbd -addr 127.0.0.1:0 -addr-file /tmp/addr &
//	loadgen -addr "$(cat /tmp/addr)" -tenants 3 -jobs 4 -out bench.json
//
// loadgen uploads its own deterministic dataset (internal/datagen Tiny),
// fires tenants × jobs requests at once, polls each job to a terminal
// state, and can download one finished job's trace and metrics artifacts
// for obscheck validation (-trace-out / -metrics-out).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"comparenb/internal/datagen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// jobOutcome is one request's fate as seen by the client.
type jobOutcome struct {
	state   string // done | failed | cancelled | shed
	jobID   string
	latency time.Duration // POST to terminal status
}

type benchLatency struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

type benchCache struct {
	Hits       int64 `json:"hits"`
	RollupHits int64 `json:"rollup_hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

type benchOut struct {
	Addr          string       `json:"addr"`
	Tenants       int          `json:"tenants"`
	JobsPerTenant int          `json:"jobs_per_tenant"`
	Rows          int          `json:"rows"`
	Perms         int          `json:"perms"`
	Requests      int          `json:"requests"`
	Completed     int          `json:"completed"`
	Shed          int          `json:"shed"`
	Failed        int          `json:"failed"`
	WallMS        int64        `json:"wall_ms"`
	JobsPerSecond float64      `json:"jobs_per_second"`
	ShedRate      float64      `json:"shed_rate"`
	Latency       benchLatency `json:"latency"`
	Cache         benchCache   `json:"cache"`
}

func run() error {
	var (
		addr       = flag.String("addr", "", "daemon address, host:port or http://host:port (required)")
		tenants    = flag.Int("tenants", 3, "concurrent tenants")
		jobs       = flag.Int("jobs", 4, "jobs per tenant, all submitted at once")
		rows       = flag.Int("rows", 400, "rows of the generated dataset")
		queries    = flag.Int("queries", 5, "notebook size per job")
		perms      = flag.Int("perms", 100, "permutations per statistical test")
		seed       = flag.Int64("seed", 1, "dataset and pipeline seed")
		relation   = flag.String("relation", "loadgen", "relation name to upload under")
		out        = flag.String("out", "", "write the JSON results here (default stdout)")
		traceOut   = flag.String("trace-out", "", "download one finished job's Chrome trace to this file")
		metricsOut = flag.String("metrics-out", "", "download the same job's metrics exposition to this file")
		pollEvery  = flag.Duration("poll", 15*time.Millisecond, "job status poll interval")
	)
	flag.Parse()
	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	base := *addr
	if !strings.HasPrefix(base, "http") {
		base = "http://" + base
	}
	cl := &client{base: base, http: &http.Client{Timeout: 5 * time.Minute}}

	ds, err := datagen.Tiny(*seed, *rows)
	if err != nil {
		return err
	}
	var csv bytes.Buffer
	if err := ds.Rel.WriteCSV(&csv); err != nil {
		return err
	}
	if err := cl.upload(*relation, csv.Bytes()); err != nil {
		return err
	}

	total := *tenants * *jobs
	outcomes := make([]jobOutcome, total)
	begin := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < *tenants; t++ {
		for k := 0; k < *jobs; k++ {
			wg.Add(1)
			go func(t, k int) {
				defer wg.Done()
				tenant := "tenant-" + strconv.Itoa(t)
				// Distinct seeds keep jobs from being pure cache replays
				// of one another while staying deterministic.
				jobSeed := *seed + int64(k)
				outcomes[t**jobs+k] = cl.oneJob(tenant, *relation, *queries, *perms, jobSeed, *pollEvery)
			}(t, k)
		}
	}
	wg.Wait()
	wall := time.Since(begin)

	res := benchOut{
		Addr: base, Tenants: *tenants, JobsPerTenant: *jobs,
		Rows: *rows, Perms: *perms, Requests: total, WallMS: wall.Milliseconds(),
	}
	var latencies []time.Duration
	var doneID string
	for _, o := range outcomes {
		switch o.state {
		case "done":
			res.Completed++
			latencies = append(latencies, o.latency)
			doneID = o.jobID
		case "shed":
			res.Shed++
		default:
			res.Failed++
		}
	}
	res.ShedRate = float64(res.Shed) / float64(total)
	if wall > 0 {
		res.JobsPerSecond = float64(res.Completed) / wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.Latency = benchLatency{
		P50MS: percentileMS(latencies, 0.50),
		P95MS: percentileMS(latencies, 0.95),
		P99MS: percentileMS(latencies, 0.99),
	}
	if err := cl.cacheCounters(&res.Cache); err != nil {
		return err
	}

	if doneID != "" {
		if *traceOut != "" {
			if err := cl.download("/v1/jobs/"+doneID+"/result?format=trace", *traceOut); err != nil {
				return err
			}
		}
		if *metricsOut != "" {
			if err := cl.download("/v1/jobs/"+doneID+"/result?format=metrics", *metricsOut); err != nil {
				return err
			}
		}
	} else if *traceOut != "" || *metricsOut != "" {
		return fmt.Errorf("no job completed; cannot download trace/metrics artifacts")
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// percentileMS is the nearest-rank percentile in milliseconds (0 when
// nothing completed).
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

type client struct {
	base string
	http *http.Client
}

func (c *client) upload(name string, csv []byte) error {
	req, err := http.NewRequest("POST", c.base+"/v1/relations?name="+name, bytes.NewReader(csv))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	// 409 means a previous loadgen run already loaded it; reuse it.
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("upload: %s: %s", resp.Status, body)
	}
	return nil
}

// oneJob submits one notebook job and follows it to a terminal state.
func (c *client) oneJob(tenant, relation string, queries, perms int, seed int64, poll time.Duration) jobOutcome {
	begin := time.Now()
	reqBody, err := json.Marshal(map[string]any{
		"relation": relation,
		"tenant":   tenant,
		"queries":  queries,
		"perms":    perms,
		"seed":     seed,
	})
	if err != nil {
		return jobOutcome{state: "failed"}
	}
	resp, err := c.http.Post(c.base+"/v1/notebooks", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return jobOutcome{state: "failed"}
	}
	var admit struct {
		JobID string `json:"job_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&admit)
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return jobOutcome{state: "shed"}
	}
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return jobOutcome{state: "failed"}
	}
	for {
		var st struct {
			State string `json:"state"`
		}
		if err := c.getJSON("/v1/jobs/"+admit.JobID, &st); err != nil {
			return jobOutcome{state: "failed", jobID: admit.JobID}
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return jobOutcome{state: st.State, jobID: admit.JobID, latency: time.Since(begin)}
		}
		time.Sleep(poll)
	}
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *client) download(path, dst string) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// cacheCounters scrapes the shared cache's counters from /metrics.
func (c *client) cacheCounters(out *benchCache) error {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		switch name {
		case "comparenb_engine_cache_hits_total":
			out.Hits = n
		case "comparenb_engine_cache_rollup_hits_total":
			out.RollupHits = n
		case "comparenb_engine_cache_misses_total":
			out.Misses = n
		case "comparenb_engine_cache_evictions_total":
			out.Evictions = n
		}
	}
	return nil
}
