// Command comparenbd is the long-lived notebook-generation daemon: it
// serves the internal/server HTTP API, loading relations once and
// running concurrent notebook-generation jobs against one shared cube
// cache.
//
//	comparenbd -addr 127.0.0.1:8080 -load covid=covid.csv
//
// Shutdown is two-stage: the first SIGINT/SIGTERM drains (no new
// admissions, queued jobs fail with 503, running jobs finish), a second
// signal hard-cancels running jobs. See docs/SERVER.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"comparenb/internal/server"
)

// buildLogger maps -log-format onto the slog handler the server logs
// job lifecycle (info) and per-request access lines (debug) through.
// Levels below info stay off by default; "off" discards everything.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "off":
		return slog.New(slog.NewTextHandler(io.Discard, nil)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want json, text, or off", format)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comparenbd:", err)
		os.Exit(1)
	}
}

func run() error {
	var preloads []string
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile      = flag.String("addr-file", "", "write the actual listen address to this file once bound (for scripts using -addr :0)")
		maxConc       = flag.Int("max-concurrent", 2, "job worker count: notebook generations running at once")
		queueDepth    = flag.Int("queue-depth", 64, "global admission queue bound; beyond it requests are shed with 429")
		tenantConc    = flag.Int("tenant-concurrent", 0, "per-tenant running-job cap (0 = max-concurrent)")
		tenantQueue   = flag.Int("tenant-queue-depth", 0, "per-tenant queue share (0 = queue-depth)")
		jobTimeBudget = flag.Duration("job-time-budget", 0, "cap on each job's soft TimeBudget, e.g. 30s (0 = requests choose freely)")
		jobThreads    = flag.Int("job-threads", 0, "cap on per-job worker threads (0 = uncapped)")
		cacheBudget   = flag.Int64("cache-budget", 256<<20, "shared cube-cache soft budget in bytes")
		memBudget     = flag.Int64("mem-budget", 0, "shared cube-cache hard admission budget in bytes (0 = disarmed)")
		noCompress    = flag.Bool("no-compress", false, "disable the compressed columnar layer daemon-wide")
		maxUpload     = flag.Int64("max-upload", 32<<20, "CSV upload size bound in bytes")
		maxRelations  = flag.Int("max-relations", 64, "session registry bound")
		maxRows       = flag.Int("max-rows", 1<<20, "row bound per loaded relation")
		drainTimeout  = flag.Duration("drain-timeout", 0, "how long a drain waits for running jobs before hard-cancelling them (0 = indefinitely)")
		stateDir      = flag.String("state-dir", "", "root of the durable state (job journal + artifact store); empty = in-memory, nothing survives a restart")
		maxAttempts   = flag.Int("max-attempts", 3, "execution attempts per job before a crash-interrupted job is quarantined (with -state-dir)")
		retryBase     = flag.Duration("retry-base", 250*time.Millisecond, "first re-enqueue backoff for crash-interrupted jobs; doubles per attempt (with -state-dir)")
		logFormat     = flag.String("log-format", "json", "structured log format on stderr: json, text, or off")
		flightRecent  = flag.Int("flight-recent", 64, "flight recorder: most-recent completed jobs kept queryable at /debug/flight")
		flightSlowest = flag.Int("flight-slowest", 16, "flight recorder: slowest completed jobs kept alongside the recent ring")
	)
	flag.Func("load", "preload a relation at startup, as name=path (repeatable)", func(v string) error {
		preloads = append(preloads, v)
		return nil
	})
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		return err
	}

	srv, err := server.New(server.Options{
		MaxConcurrent:    *maxConc,
		QueueDepth:       *queueDepth,
		TenantConcurrent: *tenantConc,
		TenantQueueDepth: *tenantQueue,
		JobTimeBudget:    *jobTimeBudget,
		JobThreads:       *jobThreads,
		CacheBudget:      *cacheBudget,
		CacheMemBudget:   *memBudget,
		NoCompress:       *noCompress,
		MaxUploadBytes:   *maxUpload,
		MaxRelations:     *maxRelations,
		MaxRows:          *maxRows,
		DrainTimeout:     *drainTimeout,
		StateDir:         *stateDir,
		MaxAttempts:      *maxAttempts,
		RetryBase:        *retryBase,
		FlightRecent:     *flightRecent,
		FlightSlowest:    *flightSlowest,
		Logger:           logger,
	})
	if err != nil {
		return err
	}
	for _, p := range preloads {
		name, path, ok := strings.Cut(p, "=")
		if !ok {
			return fmt.Errorf("-load %q: want name=path", p)
		}
		if err := srv.LoadRelationFile(name, path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "comparenbd: preloaded relation %q from %s\n", name, path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "comparenbd: listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}

	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(runCtx) }()

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		cancelRun()
		<-runDone
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "comparenbd: %v: draining (queued jobs fail, running jobs finish; signal again to hard-stop)\n", sig)
	}

	// Drain: stop admitting jobs, then stop accepting connections once
	// in-flight requests (including SSE streams of finishing jobs) end.
	cancelRun()
	shutErr := make(chan error, 1)
	go func() { shutErr <- hs.Shutdown(context.Background()) }()

	for drained := false; !drained; {
		select {
		case <-sigCh:
			fmt.Fprintln(os.Stderr, "comparenbd: second signal: hard-cancelling running jobs")
			srv.HardStop()
			_ = hs.Close() // tears down SSE streams; Shutdown result below is the one reported
		case err := <-runDone:
			if err != nil {
				return err
			}
			drained = true
		}
	}
	_ = hs.Close() // unblock Shutdown if SSE clients linger past the drain
	<-shutErr
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "comparenbd: drained, bye")
	return nil
}
