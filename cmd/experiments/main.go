// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6). Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	experiments [flags] <experiment>
//
// where <experiment> is one of
//
//	table4 table5 table6   exact TAP scalability / heuristic quality / recall
//	fig5                   comparison-query runtime distribution
//	fig6                   sample-size tuning on the ENEDIS-like dataset
//	fig7                   runtime by budget for the 5 implementations
//	fig8                   multi-threading speedup
//	fig9                   sampling strategies on the Flights-like dataset
//	fig10                  simulated human evaluation (Table 7 variants)
//	all                    everything above
//
// The artificial tables (4–6) share instances, so requesting any of them
// runs the shared protocol once.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"comparenb/internal/datagen"
	"comparenb/internal/experiments"
	"comparenb/internal/pipeline"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master RNG seed")
		quick     = flag.Bool("quick", false, "scale everything down for a fast smoke run")
		instances = flag.Int("instances", 30, "artificial instances per size (tables 4-6)")
		epsT      = flag.Int("epst", 10, "TAP solution size ε_t")
		epsD      = flag.Float64("epsd", 0.6, "TAP distance bound ε_d (artificial tables)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "exact-solver timeout per instance (paper: 1h)")
		enedis    = flag.Int("enedis-rows", 20000, "rows of the ENEDIS-like dataset")
		flights   = flag.Int("flights-rows", 100000, "rows of the Flights-like dataset")
		perms     = flag.Int("perms", 300, "permutations per statistical test")
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
		maxPairs  = flag.Int("max-pairs", 0, "cap value pairs tested per attribute (0 = all)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table2|table4|table5|table6|fig5|fig6|fig7|fig8|fig9|fig10|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	what := flag.Arg(0)

	if *quick {
		*instances = 5
		*enedis = 4000
		*flights = 8000
		*perms = 150
		*timeout = 10 * time.Second
	}

	base := pipeline.NewConfig()
	base.Perms = *perms
	base.Seed = *seed
	base.Threads = *threads
	base.MaxPairsPerAttr = *maxPairs
	base.EpsT = 10
	base.EpsD = 1.5

	run := func(name string, fn func() error) {
		switch what {
		case name, "all":
			start := time.Now()
			if err := fn(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	// Tables 4–6 share one protocol; run it once for any of the three.
	artificialDone := false
	artificial := func() error {
		if artificialDone {
			return nil
		}
		artificialDone = true
		cfg := experiments.DefaultArtificial()
		cfg.Instances = *instances
		cfg.EpsT = *epsT
		cfg.EpsD = *epsD
		cfg.Timeout = *timeout
		cfg.Seed = *seed
		if *quick {
			cfg.Sizes = []int{25, 50, 100}
		}
		fmt.Println(experiments.Artificial(cfg))
		return nil
	}
	run("table2", func() error {
		var rows []experiments.Table2Row
		v, err := datagen.VaccineLike(*seed)
		if err != nil {
			return err
		}
		rows = append(rows, experiments.Table2(v.Rel))
		e, err := datagen.ENEDISLike(*seed, *enedis)
		if err != nil {
			return err
		}
		rows = append(rows, experiments.Table2(e.Rel))
		f, err := datagen.FlightsLike(*seed, *flights)
		if err != nil {
			return err
		}
		rows = append(rows, experiments.Table2(f.Rel))
		fmt.Println(experiments.RenderTable2(rows))
		return nil
	})
	run("table4", artificial)
	run("table5", artificial)
	run("table6", artificial)

	var enedisDS *datagen.Dataset
	loadEnedis := func() error {
		if enedisDS != nil {
			return nil
		}
		var err error
		enedisDS, err = datagen.ENEDISLike(*seed, *enedis)
		return err
	}

	run("fig5", func() error {
		if err := loadEnedis(); err != nil {
			return err
		}
		n := 300
		if *quick {
			n = 60
		}
		fmt.Println(experiments.Fig5(enedisDS.Rel, n, *seed))
		return nil
	})

	run("fig6", func() error {
		if err := loadEnedis(); err != nil {
			return err
		}
		fracs := []float64{0.05, 0.10, 0.20, 0.40, 0.60, 0.80}
		if *quick {
			fracs = []float64{0.2, 0.6}
		}
		res, err := experiments.SampleSizeSweep(enedisDS.Rel, base, fracs)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSampleSweep("Figure 6: Adjusting sample size (ENEDIS-like)", res))
		return nil
	})

	run("fig7", func() error {
		if err := loadEnedis(); err != nil {
			return err
		}
		budgets := []int{5, 10, 20, 40}
		if *quick {
			budgets = []int{5, 10}
		}
		cells, err := experiments.Fig7(enedisDS.Rel, base, budgets, 0.20, 0.40, *timeout)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig7(cells))
		return nil
	})

	run("fig8", func() error {
		if err := loadEnedis(); err != nil {
			return err
		}
		threadCounts := []int{1, 2, 4, 8, 16, 24, 32, 48}
		if *quick {
			threadCounts = []int{1, 2, 4}
		}
		points, err := experiments.Fig8(enedisDS.Rel, base, threadCounts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig8(points))
		return nil
	})

	run("fig9", func() error {
		ds, err := datagen.FlightsLike(*seed, *flights)
		if err != nil {
			return err
		}
		fracs := []float64{0.05, 0.10, 0.20, 0.30}
		if *quick {
			fracs = []float64{0.1, 0.3}
		}
		res, err := experiments.SampleSizeSweep(ds.Rel, base, fracs)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSampleSweep("Figure 9: Runtime and % of insights (Flights-like)", res))
		return nil
	})

	run("fig10", func() error {
		if err := loadEnedis(); err != nil {
			return err
		}
		cfg := base
		cfg.EpsT = 10
		res, err := experiments.Fig10(enedisDS.Rel, cfg, *timeout)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})

	run("ablations", func() error {
		if err := loadEnedis(); err != nil {
			return err
		}
		n, inst := 100, 10
		epsDs := []float64{0.6, 0.8, 1.0}
		if *quick {
			n, inst = 40, 4
			epsDs = []float64{0.8}
		}
		res := experiments.AblationResult{
			Solvers: experiments.SolverQuality(n, inst, *epsT, epsDs, *timeout, *seed),
		}
		var err error
		res.Distance, err = experiments.DistanceAblation(enedisDS.Rel, base)
		if err != nil {
			return err
		}
		res.Credibility, err = experiments.CredibilityReadings(enedisDS.Rel, base)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})

	run("fdr", func() error {
		rows := 20000
		if *quick {
			rows = 4000
		}
		fdr, err := experiments.NullFDR(rows, *perms, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFDR(fdr, 0.05))
		return nil
	})

	switch what {
	case "table2", "table4", "table5", "table6", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablations", "fdr", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", what)
		os.Exit(2)
	}
}
