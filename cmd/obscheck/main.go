// Command obscheck validates observability artifacts written by
// comparenb's -trace-out and -metrics-out flags: the trace must be
// well-formed Chrome trace-event JSON with balanced per-track nesting and
// monotone timestamps, and the metrics file must be a well-formed
// Prometheus-style exposition. It also validates flight-recorder
// snapshots downloaded from a comparenbd's GET /debug/flight. The CI
// smoke uses it to gate the artifacts without loading them into a UI.
//
//	obscheck -trace run.trace.json -metrics run.metrics.txt -flight flight.json
//
// Exit status 0 when every given artifact validates, 1 otherwise. A file
// whose flag is omitted is skipped, so either artifact can be checked
// alone.
package main

import (
	"flag"
	"fmt"
	"os"

	"comparenb/internal/obs"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "Chrome trace-event JSON file to validate")
		metricsPath = flag.String("metrics", "", "metrics exposition file to validate")
		flightPath  = flag.String("flight", "", "flight-recorder snapshot JSON (GET /debug/flight) to validate")
		quiet       = flag.Bool("q", false, "print nothing on success")
	)
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" && *flightPath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check; pass -trace, -metrics, and/or -flight")
		flag.Usage()
		os.Exit(2)
	}

	ok := true
	if *tracePath != "" {
		ok = checkFile(*tracePath, "trace", obs.ValidateTrace, *quiet) && ok
	}
	if *metricsPath != "" {
		ok = checkFile(*metricsPath, "metrics", obs.ValidateMetrics, *quiet) && ok
	}
	if *flightPath != "" {
		ok = checkFile(*flightPath, "flight", obs.ValidateFlight, *quiet) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func checkFile(path, kind string, validate func([]byte) error, quiet bool) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		return false
	}
	if err := validate(data); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %s %s: %v\n", kind, path, err)
		return false
	}
	if !quiet {
		fmt.Printf("obscheck: %s %s OK (%d bytes)\n", kind, path, len(data))
	}
	return true
}
