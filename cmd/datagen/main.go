// Command datagen emits the synthetic datasets used by the experiments as
// CSV, so they can be inspected, re-used, or fed back through the
// comparenb CLI.
//
//	datagen -dataset enedis -rows 20000 -seed 1 > enedis.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"comparenb/internal/datagen"
)

func main() {
	var (
		which = flag.String("dataset", "tiny", "tiny | vaccine | enedis | flights")
		rows  = flag.Int("rows", 0, "row count (0 = dataset default)")
		seed  = flag.Int64("seed", 1, "RNG seed")
		truth = flag.Bool("truth", false, "print the planted ground truth to stderr")
	)
	flag.Parse()

	var (
		ds  *datagen.Dataset
		err error
	)
	switch *which {
	case "tiny":
		ds, err = datagen.Tiny(*seed, *rows)
	case "vaccine":
		ds, err = datagen.VaccineLike(*seed)
	case "enedis":
		ds, err = datagen.ENEDISLike(*seed, *rows)
	case "flights":
		ds, err = datagen.FlightsLike(*seed, *rows)
	default:
		err = fmt.Errorf("unknown dataset %q", *which)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	if err := ds.Rel.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *truth {
		fmt.Fprintf(os.Stderr, "# %d planted insights\n", len(ds.Planted))
		for _, p := range ds.Planted {
			fmt.Fprintf(os.Stderr, "%s: meas%d %s > %s (%v)\n",
				ds.Rel.CatName(p.Attr), p.Meas, p.Val, p.Val2, p.Type)
		}
	}
}
