// Package comparenb automatically generates SQL notebooks of comparison
// queries for exploratory data analysis, implementing Chanson, Labroche,
// Marcel, Rizzi and T'Kindt, "Automatic generation of comparison notebooks
// for interactive data exploration" (EDBT 2022).
//
// Given a single-table dataset whose columns are either categorical
// attributes or numeric measures, the library
//
//  1. runs permutation tests (with Benjamini–Hochberg FDR correction) to
//     find significant comparison insights — "the mean/variance of measure
//     M is greater for B = val than for B = val'";
//  2. evaluates hypothesis queries from in-memory partial aggregates to
//     keep only the comparison queries that actually evidence an insight;
//  3. scores each query by a manifold interestingness (significance ×
//     surprise × conciseness); and
//  4. solves the Traveling Analyst Problem (exactly, or with the paper's
//     sort-by-efficiency heuristic) to pick a short, coherent sequence —
//     the comparison notebook — exportable as Jupyter (.ipynb) or Markdown.
//
// Quick start:
//
//	ds, err := comparenb.LoadCSV("covid.csv", comparenb.CSVOptions{
//		ForceCategorical: []string{"month"},
//	})
//	if err != nil { ... }
//	cfg := comparenb.NewConfig()
//	cfg.EpsT = 10 // ten queries in the notebook
//	res, err := comparenb.Generate(ds, cfg)
//	if err != nil { ... }
//	nb := comparenb.BuildNotebook(res)
//	nb.WriteIPYNB(os.Stdout)
//
// The exported identifiers below alias the implementation packages, so the
// whole public surface lives here.
package comparenb

import (
	"context"
	"fmt"
	"io"

	"comparenb/internal/engine"
	"comparenb/internal/insight"
	"comparenb/internal/metric"
	"comparenb/internal/notebook"
	"comparenb/internal/obs"
	"comparenb/internal/pipeline"
	"comparenb/internal/profile"
	"comparenb/internal/sampling"
	"comparenb/internal/table"
	"comparenb/internal/tap"
)

// Dataset is a loaded single-table dataset.
type Dataset struct {
	// Rel is the columnar relation.
	Rel *Relation
	// Report describes how CSV columns were classified (nil for datasets
	// built programmatically).
	Report *CSVReport
}

// Core data types.
type (
	// Relation is the in-memory columnar table R[A1..An, M1..Mm].
	Relation = table.Relation
	// Builder assembles a Relation row by row.
	Builder = table.Builder
	// CSVOptions controls CSV import (type inference overrides etc.).
	CSVOptions = table.CSVOptions
	// CSVReport describes the loader's decisions.
	CSVReport = table.CSVReport

	// Config controls a generation run; see NewConfig and the presets.
	Config = pipeline.Config
	// Result is everything a run produced (queries, insights, solution).
	Result = pipeline.Result
	// ScoredQuery is a retained comparison query with its interestingness.
	ScoredQuery = pipeline.ScoredQuery
	// Timings is the per-phase runtime breakdown.
	Timings = pipeline.Timings
	// Counts summarises the run.
	Counts = pipeline.Counts
	// TAPOutcome records which solver rung produced the notebook sequence
	// and whether the time budget forced a degradation.
	TAPOutcome = pipeline.TAPOutcome

	// Insight is a significant comparison insight (M, B, val, val', type).
	Insight = insight.Insight
	// Query is the 6-tuple (A, B, val, val', M, agg) of Definition 3.1.
	Query = insight.Query
	// InsightType is mean-greater or variance-greater.
	InsightType = insight.Type

	// Agg is a SQL aggregation function (sum, avg, min, max, count).
	Agg = engine.Agg

	// Notebook is the generated artifact, exportable to ipynb/Markdown.
	Notebook = notebook.Notebook

	// ObsRegistry is a run's observability hub: spans, deterministic
	// counters/gauges and timing histograms, exportable as a Chrome
	// trace, a metrics exposition, or a human summary. Set Config.Obs to
	// a fresh NewObsRegistry() per run to collect; observability never
	// changes outputs.
	ObsRegistry = obs.Registry

	// InterestParams and ConcisenessParams tune §4.2's interestingness.
	InterestParams = metric.InterestParams
	// ConcisenessParams are the α and δ of the conciseness function.
	ConcisenessParams = metric.ConcisenessParams
	// DistanceWeights are the query-part weights of the Hamming distance.
	DistanceWeights = metric.Weights

	// SamplingStrategy selects none/random/unbalanced test sampling.
	SamplingStrategy = sampling.Strategy
	// SolverKind selects the TAP solver (heuristic, exact, top-k).
	SolverKind = pipeline.SolverKind

	// TAPInstance is a standalone Traveling Analyst Problem instance.
	TAPInstance = tap.Instance
	// TAPSolution is an ordered query selection with its totals.
	TAPSolution = tap.Solution
)

// Insight types. MedianGreater is the §7 extension type, enabled by
// setting Config.InsightTypes to ExtendedInsightTypes.
const (
	MeanGreater     = insight.MeanGreater
	VarianceGreater = insight.VarianceGreater
	MedianGreater   = insight.MedianGreater
)

// DefaultInsightTypes are the paper's two insight types (T = 2);
// ExtendedInsightTypes additionally enables median-greater.
var (
	DefaultInsightTypes  = insight.AllTypes
	ExtendedInsightTypes = insight.ExtendedTypes
)

// Sampling strategies (§5.1.2).
const (
	SamplingNone       = sampling.None
	SamplingRandom     = sampling.Random
	SamplingUnbalanced = sampling.Unbalanced
)

// TAP solvers.
const (
	SolverHeuristic     = pipeline.SolverHeuristic
	SolverExact         = pipeline.SolverExact
	SolverTopK          = pipeline.SolverTopK
	SolverHeuristicPlus = pipeline.SolverHeuristicPlus
)

// Aggregation functions.
const (
	Sum   = engine.Sum
	Avg   = engine.Avg
	Min   = engine.Min
	Max   = engine.Max
	Count = engine.Count
)

// NewObsRegistry returns an empty run-scoped observability registry;
// assign it to Config.Obs, run, then export with WriteTrace /
// WriteMetrics / WriteSummary. Call EnableTracing before the run to
// collect spans (counters are always collected).
func NewObsRegistry() *ObsRegistry { return obs.New() }

// NewConfig returns the default configuration (full data, heuristic
// solver, 10-query notebook).
func NewConfig() Config { return pipeline.NewConfig() }

// Presets reproducing the paper's implementations (Tables 3 and 7).
var (
	NaiveExact       = pipeline.NaiveExact
	NaiveApprox      = pipeline.NaiveApprox
	WSCApprox        = pipeline.WSCApprox
	WSCUnbApprox     = pipeline.WSCUnbApprox
	WSCRandApprox    = pipeline.WSCRandApprox
	WSCApproxSig     = pipeline.WSCApproxSig
	WSCApproxSigCred = pipeline.WSCApproxSigCred
)

// LoadCSV loads a dataset from a CSV file with a header row, inferring
// which columns are categorical attributes and which are measures.
func LoadCSV(path string, opts CSVOptions) (*Dataset, error) {
	rel, rep, err := table.FromCSVFile(path, opts)
	if err != nil {
		return nil, err
	}
	return &Dataset{Rel: rel, Report: rep}, nil
}

// ReadCSV is LoadCSV over an io.Reader.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	rel, rep, err := table.FromCSV(r, opts)
	if err != nil {
		return nil, err
	}
	return &Dataset{Rel: rel, Report: rep}, nil
}

// FromRelation wraps a programmatically built relation.
func FromRelation(rel *Relation) *Dataset { return &Dataset{Rel: rel} }

// NewBuilder assembles a Relation row by row: categorical attribute names
// first, then measure names.
func NewBuilder(name string, catNames, measNames []string) *Builder {
	return table.NewBuilder(name, catNames, measNames)
}

// Profile is a dataset profile: per-attribute cardinalities/entropies,
// measure statistics, functional dependencies, and the Lemma 3.2/3.5
// enumeration counts.
type Profile = profile.Profile

// ProfileDataset computes the profile of a dataset — the data-profiling
// step a user would otherwise perform by hand (§1).
func ProfileDataset(ds *Dataset) *Profile { return profile.New(ds.Rel) }

// Generate runs the full pipeline over the dataset.
func Generate(ds *Dataset, cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), ds, cfg)
}

// GenerateContext is Generate with cooperative cancellation: cancelling
// ctx abandons the run at the next phase-safe checkpoint and returns
// ctx's error with no partial result. This is the hard stop; the soft,
// always-produce-a-notebook deadline is Config.TimeBudget, which lets
// the analysis finish and degrades the TAP solver instead of failing
// (see Result.TAP for what actually answered).
func GenerateContext(ctx context.Context, ds *Dataset, cfg Config) (*Result, error) {
	if ds == nil || ds.Rel == nil {
		return nil, fmt.Errorf("comparenb: nil dataset")
	}
	return pipeline.GenerateContext(ctx, ds.Rel, cfg)
}

// BuildNotebook renders a generation result as a comparison notebook.
func BuildNotebook(res *Result) *Notebook { return pipeline.BuildNotebook(res) }

// GenerateNotebook is the one-call convenience: Generate + BuildNotebook.
func GenerateNotebook(ds *Dataset, cfg Config) (*Notebook, *Result, error) {
	return GenerateNotebookContext(context.Background(), ds, cfg)
}

// GenerateNotebookContext is GenerateNotebook with cooperative
// cancellation (see GenerateContext).
func GenerateNotebookContext(ctx context.Context, ds *Dataset, cfg Config) (*Notebook, *Result, error) {
	res, err := GenerateContext(ctx, ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	return BuildNotebook(res), res, nil
}

// ComparisonSQL renders a comparison query as the Figure-2 SQL text.
func ComparisonSQL(rel *Relation, q Query) string {
	return pipeline.ComparisonSQL(rel, q)
}

// HypothesisSQL renders the hypothesis query postulating ins for sq.
func HypothesisSQL(rel *Relation, sq ScoredQuery, ins Insight) string {
	return pipeline.HypothesisSQL(rel, sq, ins)
}
