package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func flightEntry(id string, e2eUS float64) FlightEntry {
	return FlightEntry{
		ID:          id,
		TraceID:     "0af7651916cd43dd8448eb211c80319c",
		Labels:      map[string]string{"tenant": "t0", "state": "done"},
		QueueWaitUS: e2eUS / 10,
		RunUS:       e2eUS / 2,
		E2EUS:       e2eUS,
		ShiftUS:     e2eUS / 8,
		Tracks:      []string{"run"},
		Spans: []SpanSnapshot{
			{Name: "run", Track: 0, StartUS: 0, DurUS: e2eUS / 2},
			{Name: "phase/stats", Track: 0, StartUS: 1, DurUS: e2eUS / 4},
		},
		SpanTotal:   2,
		SpanDropped: 0,
	}
}

// TestFlightRecorderRetention: the recency ring keeps the newest N in
// newest-first order while the slowest set retains tail outliers that
// scrolled out of recency.
func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	// One huge outlier first, then a stream of fast jobs that evict it
	// from recency.
	f.Add(flightEntry("j000001", 9e6))
	for i := 2; i <= 9; i++ {
		f.Add(flightEntry(fmt.Sprintf("j%06d", i), float64(i)*100))
	}
	snap := f.Snapshot()
	if snap.Total != 9 {
		t.Errorf("total = %d, want 9", snap.Total)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(snap.Recent))
	}
	for i, want := range []string{"j000009", "j000008", "j000007", "j000006"} {
		if snap.Recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s (newest first)", i, snap.Recent[i].ID, want)
		}
	}
	if len(snap.Slowest) != 2 || snap.Slowest[0].ID != "j000001" {
		t.Fatalf("slowest = %+v, want the 9s outlier first", snap.Slowest)
	}
	if snap.Slowest[1].ID != "j000009" {
		t.Errorf("slowest[1] = %s, want j000009", snap.Slowest[1].ID)
	}

	// Get finds entries in recency and in slowest-only retention.
	if _, ok := f.Get("j000008"); !ok {
		t.Error("Get missed a recent entry")
	}
	if e, ok := f.Get("j000001"); !ok || e.E2EUS != 9e6 {
		t.Error("Get missed the slowest-retained outlier")
	}
	if _, ok := f.Get("j000002"); ok {
		t.Error("Get found an evicted entry")
	}
}

// TestFlightSnapshotValidates: the JSON a server would serve at
// /debug/flight round-trips through ValidateFlight.
func TestFlightSnapshotValidates(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	f.Add(flightEntry("j000001", 1500))
	f.Add(flightEntry("j000002", 800))
	data, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlight(data); err != nil {
		t.Fatalf("snapshot does not validate: %v", err)
	}
	// An empty recorder is structurally valid too (server just booted).
	empty, err := json.Marshal(NewFlightRecorder(0, 0).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlight(empty); err != nil {
		t.Errorf("empty snapshot does not validate: %v", err)
	}
}

func TestValidateFlightRejects(t *testing.T) {
	good := flightEntry("j000001", 1500)
	wrap := func(e FlightEntry) []byte {
		data, err := json.Marshal(FlightSnapshot{Total: 1, Recent: []FlightEntry{e}, Slowest: []FlightEntry{}})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	noID := good
	noID.ID = ""
	negDur := good
	negDur.RunUS = -1
	qwOverE2E := good
	qwOverE2E.QueueWaitUS = good.E2EUS + 10
	badTrack := good
	badTrack.Spans = []SpanSnapshot{{Name: "x", Track: 5, StartUS: 0, DurUS: 1}}
	badTrack.SpanTotal = 1
	overTotal := good
	overTotal.SpanTotal = 1 // claims 1 but retains 2
	cases := map[string][]byte{
		"not json":        []byte("{"),
		"missing keys":    []byte("{}"),
		"empty id":        wrap(noID),
		"negative dur":    wrap(negDur),
		"queue wait > e2": wrap(qwOverE2E),
		"unknown track":   wrap(badTrack),
		"spans > total":   wrap(overTotal),
	}
	for name, data := range cases {
		if err := ValidateFlight(data); err == nil {
			t.Errorf("%s: ValidateFlight accepted invalid input", name)
		}
	}
	if err := ValidateFlight(wrap(good)); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

// TestFlightEntryWriteTrace: the per-job Chrome trace rendering is
// obscheck-valid and carries the annotation track plus the trace id.
func TestFlightEntryWriteTrace(t *testing.T) {
	e := flightEntry("j000001", 1500)
	var buf bytes.Buffer
	if err := e.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("flight trace does not validate: %v", err)
	}
	s := buf.String()
	for _, want := range []string{`"job/e2e"`, `"job/queue-wait"`, `"job/run"`, `"phase/stats"`, e.TraceID} {
		if !strings.Contains(s, want) {
			t.Errorf("flight trace missing %s", want)
		}
	}
}

// TestFlightEntryWriteTraceClamped: adversarial annotation values (run
// longer than e2e, negative shift) are clamped into a valid nesting
// rather than producing an invalid trace.
func TestFlightEntryWriteTraceClamped(t *testing.T) {
	e := FlightEntry{
		ID:          "j000001",
		QueueWaitUS: 5000, // exceeds e2e
		RunUS:       9000, // exceeds e2e
		E2EUS:       1000,
		ShiftUS:     -50,
		Tracks:      []string{"run"},
		Spans:       []SpanSnapshot{{Name: "run", Track: 0, StartUS: 0, DurUS: 900}},
		SpanTotal:   1,
	}
	var buf bytes.Buffer
	if err := e.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("clamped flight trace does not validate: %v", err)
	}
}

// TestSnapshotSpans lifts spans out of a live registry and checks the
// truncation cap records honestly.
func TestSnapshotSpans(t *testing.T) {
	r := New()
	r.EnableTracing(16)
	ctx := NewContext(context.Background(), r)
	for i := 0; i < 6; i++ {
		sp := StartSpan(ctx, "s")
		sp.End()
	}
	spans, tracks := r.SnapshotSpans(4)
	if len(spans) != 4 {
		t.Errorf("snapshot len = %d, want truncation to 4", len(spans))
	}
	if len(tracks) != 1 || tracks[0] != "run" {
		t.Errorf("tracks = %v, want [run]", tracks)
	}
	if spans[0].Name != "s" || spans[0].DurUS < 0 {
		t.Errorf("bad span snapshot %+v", spans[0])
	}
	// Nil / untraced registries answer nils.
	var nilReg *Registry
	if s, tr := nilReg.SnapshotSpans(0); s != nil || tr != nil {
		t.Error("nil registry snapshot not nil")
	}
	if s, _ := New().SnapshotSpans(0); s != nil {
		t.Error("untraced registry snapshot not nil")
	}
}

// TestRegistryTraceID: the bound trace id surfaces in both exports and
// stays out of DeterministicState.
func TestRegistryTraceID(t *testing.T) {
	r := New()
	r.EnableTracing(8)
	r.SetTraceID("0af7651916cd43dd8448eb211c80319c")
	r.Counter("x").Inc()
	if r.TraceID() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("TraceID = %q", r.TraceID())
	}
	var trace, metrics bytes.Buffer
	if err := r.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(trace.Bytes()); err != nil {
		t.Fatalf("trace with id does not validate: %v", err)
	}
	if !strings.Contains(trace.String(), `"otherData":{"trace_id":"0af7651916cd43dd8448eb211c80319c"}`) {
		t.Error("trace export missing otherData.trace_id")
	}
	if err := r.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(metrics.Bytes()); err != nil {
		t.Fatalf("metrics with id do not validate: %v", err)
	}
	if !strings.Contains(metrics.String(), "# trace_id 0af7651916cd43dd8448eb211c80319c") {
		t.Error("metrics export missing # trace_id comment")
	}
	if _, ok := r.DeterministicState()["trace"]; ok {
		t.Error("trace id leaked into DeterministicState")
	}
	// Nil-safety.
	var nilReg *Registry
	nilReg.SetTraceID("x")
	if nilReg.TraceID() != "" {
		t.Error("nil registry TraceID != empty")
	}
	if !nilReg.StartTime().IsZero() {
		t.Error("nil registry StartTime != zero")
	}
}

// TestWriteMetricsLabeledTiming: a timing registered with an inline
// label set exports with the labels merged before le, one TYPE header
// per family, and sparse bucket lines.
func TestWriteMetricsLabeledTiming(t *testing.T) {
	r := New()
	r.Timing(`server_job_e2e{tenant="a"}`).Observe(3_000_000)
	r.Timing(`server_job_e2e{tenant="b"}`).Observe(5_000_000)
	r.Timing("server_job_e2e").Observe(1_000_000)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Fatalf("labeled metrics do not validate: %v", err)
	}
	s := buf.String()
	for _, want := range []string{
		`comparenb_server_job_e2e_seconds_bucket{tenant="a",le=`,
		`comparenb_server_job_e2e_seconds_bucket{tenant="b",le="+Inf"} 1`,
		`comparenb_server_job_e2e_seconds_sum{tenant="a"} `,
		`comparenb_server_job_e2e_seconds_count{tenant="b"} 1`,
		`comparenb_server_job_e2e_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("labeled metrics missing %q", want)
		}
	}
	if n := strings.Count(s, "# TYPE comparenb_server_job_e2e_seconds histogram"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want once per family", n)
	}
	// Sparse: one observation → exactly two bucket lines (its own + Inf)
	// per instance, not 64.
	if n := strings.Count(s, `comparenb_server_job_e2e_seconds_bucket{tenant="a",`); n != 2 {
		t.Errorf("tenant=a bucket lines = %d, want 2 (sparse + Inf)", n)
	}
}
