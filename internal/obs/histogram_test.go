package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func bucketOf(t *testing.T, tm *Timing) int {
	t.Helper()
	counts := tm.Buckets()
	hit := -1
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if hit >= 0 {
			t.Fatalf("observation landed in two buckets (%d and %d)", hit, i)
		}
		if c != 1 {
			t.Fatalf("bucket %d count = %d, want 1", i, c)
		}
		hit = i
	}
	if hit < 0 {
		t.Fatal("observation landed in no bucket")
	}
	return hit
}

// TestHistogramBucketBoundaries pins the log2 bucket map at its edges:
// zero and one share bucket 0, an exact power of two 2^k is the upper
// bound of bucket k, 2^k+1 spills into bucket k+1, and MaxInt64 lands in
// the +Inf tail.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{1 << 10, 10},
		{1<<10 + 1, 11},
		{1 << 30, 30},
		{1 << 62, 62},
		{1<<62 + 1, 63},
		{math.MaxInt64, 63},
	}
	for _, tc := range cases {
		var tm Timing
		tm.Observe(time.Duration(tc.ns))
		if got := bucketOf(t, &tm); got != tc.bucket {
			t.Errorf("Observe(%d ns): bucket %d, want %d", tc.ns, got, tc.bucket)
		}
	}
	// Negative durations clamp to zero → bucket 0.
	var tm Timing
	tm.Observe(-time.Hour)
	if got := bucketOf(t, &tm); got != 0 {
		t.Errorf("Observe(-1h): bucket %d, want 0", got)
	}
	if tm.Sum() != 0 {
		t.Errorf("clamped sum = %v, want 0", tm.Sum())
	}
}

// TestBucketBound pins the exported bound helper against bucketIndex:
// every observation's bucket bound is >= the observed value, and the
// previous bucket's bound is < it.
func TestBucketBound(t *testing.T) {
	if BucketBound(0) != 1 {
		t.Errorf("BucketBound(0) = %v, want 1ns", BucketBound(0))
	}
	if BucketBound(TimingBuckets-1) != time.Duration(math.MaxInt64) {
		t.Errorf("last bound = %v, want MaxInt64 sentinel", BucketBound(TimingBuckets-1))
	}
	for _, ns := range []int64{1, 2, 3, 100, 1e6, 1e9, 1 << 40, math.MaxInt64} {
		b := bucketIndex(ns)
		if int64(BucketBound(b)) < ns {
			t.Errorf("ns=%d: bound(bucket %d) = %d < observation", ns, b, int64(BucketBound(b)))
		}
		if b > 0 && b < TimingBuckets-1 && int64(BucketBound(b-1)) >= ns {
			t.Errorf("ns=%d: previous bound %d should be below it", ns, int64(BucketBound(b-1)))
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (meaningful under -race) and checks the totals balance.
func TestHistogramConcurrentObserve(t *testing.T) {
	var tm Timing
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tm.Observe(time.Duration(1 + (w*per+i)%1000000))
			}
		}(w)
	}
	wg.Wait()
	if tm.Count() != workers*per {
		t.Fatalf("count = %d, want %d", tm.Count(), workers*per)
	}
	var sum int64
	for _, c := range tm.Buckets() {
		sum += c
	}
	if sum != workers*per {
		t.Errorf("bucket sum = %d, want %d", sum, workers*per)
	}
}

// TestQuantileMonotone: the nearest-rank estimate is monotone in q, the
// empty histogram answers 0, and the estimate brackets the data.
func TestQuantileMonotone(t *testing.T) {
	var empty Timing
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	var nilT *Timing
	if got := nilT.Quantile(0.5); got != 0 {
		t.Errorf("nil quantile = %v, want 0", got)
	}

	var tm Timing
	for i := 1; i <= 1000; i++ {
		tm.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(-1)
	for _, q := range []float64{-0.5, 0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 1.5} {
		got := tm.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %v < previous %v — not monotone", q, got, prev)
		}
		prev = got
	}
	// The p50 of 1µs..1000µs is ~500µs; the log2 estimate answers the
	// upper bound of the bucket holding rank 500, which is 2^19 ns.
	if p50 := tm.Quantile(0.5); p50 != time.Duration(1<<19) {
		t.Errorf("p50 = %v, want %v", p50, time.Duration(1<<19))
	}
	if p100 := tm.Quantile(1); p100 < 1000*time.Microsecond {
		t.Errorf("p100 = %v, below the maximum observation", p100)
	}
}

// TestQuantileSingleObservation: rank arithmetic at n=1 must not
// underflow to rank 0.
func TestQuantileSingleObservation(t *testing.T) {
	var tm Timing
	tm.Observe(3 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 1} {
		got := tm.Quantile(q)
		if got < 3*time.Millisecond || got > 8*time.Millisecond {
			t.Errorf("Quantile(%v) = %v, want the ~4ms bucket bound", q, got)
		}
	}
}
