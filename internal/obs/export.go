package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// metricPrefix namespaces every exported metric.
const metricPrefix = "comparenb_"

// WriteTrace exports the recorded spans as Chrome trace-event JSON (the
// "JSON Array Format" with a traceEvents wrapper), loadable in Perfetto
// or chrome://tracing. Each track becomes a thread (tid) with an "M"
// thread_name metadata event; each span becomes a "X" complete event
// with fractional-microsecond ts/dur so nesting survives rounding. The
// export is built from whatever the buffer holds, so a trace flushed
// after an interrupted run is still complete, valid JSON.
func (r *Registry) WriteTrace(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",")
	if id := r.TraceID(); id != "" {
		fmt.Fprintf(&buf, "\"otherData\":{\"trace_id\":%s},", quoteJSON(id))
	}
	buf.WriteString("\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteString(s)
	}
	if r != nil {
		r.mu.Lock()
		tracks := append([]string(nil), r.tracks...)
		r.mu.Unlock()
		for tid, label := range tracks {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
				tid, quoteJSON(label)))
		}
		if ring := r.spans.Load(); ring != nil {
			recs := append([]spanRecord(nil), ring.records()...)
			// Deterministic-ish layout: by track, then start time, then
			// longest-first so parents precede children on ties.
			sort.SliceStable(recs, func(i, j int) bool {
				if recs[i].track != recs[j].track {
					return recs[i].track < recs[j].track
				}
				if recs[i].start != recs[j].start {
					return recs[i].start < recs[j].start
				}
				return recs[i].dur > recs[j].dur
			})
			for _, rec := range recs {
				emit(fmt.Sprintf(`{"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}`,
					quoteJSON(rec.name), rec.track,
					float64(rec.start)/1e3, float64(rec.dur)/1e3))
			}
		}
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteMetrics exports the registry as Prometheus-style text exposition.
// Deterministic counters and gauges come first (thread-invariant; safe
// to diff across runs); non-deterministic timing histograms follow under
// an explicit divider. An interrupted run carries a "# interrupted"
// marker on the second line so partial artifacts are recognisable.
func (r *Registry) WriteMetrics(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("# comparenb metrics exposition\n")
	if r.Interrupted() {
		buf.WriteString("# interrupted\n")
	}
	if id := r.TraceID(); id != "" {
		fmt.Fprintf(&buf, "# trace_id %s\n", id)
	}
	if r != nil {
		r.mu.Lock()
		counters := sortedKeys(r.counters)
		gauges := sortedKeys(r.gauges)
		timings := sortedKeys(r.timings)
		r.mu.Unlock()

		buf.WriteString("# --- deterministic counters and gauges ---\n")
		for _, name := range counters {
			full := metricPrefix + name + "_total"
			fmt.Fprintf(&buf, "# TYPE %s counter\n%s %d\n", full, full, r.Counter(name).Value())
		}
		for _, name := range gauges {
			full := metricPrefix + name
			fmt.Fprintf(&buf, "# TYPE %s gauge\n%s %d\n", full, full, r.Gauge(name).Value())
		}

		buf.WriteString("# --- non-deterministic timings (wall clock; varies run to run) ---\n")
		if r.TracingEnabled() {
			fmt.Fprintf(&buf, "# TYPE %sobs_spans_total counter\n%sobs_spans_total %d\n",
				metricPrefix, metricPrefix, r.SpanCount())
			fmt.Fprintf(&buf, "# TYPE %sobs_spans_dropped_total counter\n%sobs_spans_dropped_total %d\n",
				metricPrefix, metricPrefix, r.Dropped())
		}
		typed := make(map[string]bool)
		for _, name := range timings {
			writeHistogram(&buf, name, r.Timing(name), typed)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// formatSeconds renders a nanosecond bucket bound as seconds ("1e-06").
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// splitTimingName splits a registry timing key into its metric base name
// and an optional inline label set: `server_job_e2e{tenant="t0"}` →
// ("server_job_e2e", `tenant="t0"`). Keys without braces have no labels.
func splitTimingName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// writeHistogram emits one timing as a Prometheus histogram family.
// Bucket lines are cumulative and sparse — only buckets that received at
// least one observation get a line, plus the mandatory +Inf bound — so a
// 64-bucket histogram costs output proportional to its occupancy. The
// `# TYPE` header is emitted once per family via typed: labeled
// instances of one base (per-tenant timings) share a single header even
// though the registry keys sort them apart.
func writeHistogram(buf *bytes.Buffer, name string, t *Timing, typed map[string]bool) {
	base, labels := splitTimingName(name)
	full := metricPrefix + base + "_seconds"
	if !typed[full] {
		typed[full] = true
		fmt.Fprintf(buf, "# TYPE %s histogram\n", full)
	}
	leLabel := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return "{" + labels + `,le="` + le + `"}`
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	counts := t.Buckets()
	cum := int64(0)
	for i := 0; i < TimingBuckets-1; i++ {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		fmt.Fprintf(buf, "%s_bucket%s %d\n", full, leLabel(formatSeconds(int64(BucketBound(i)))), cum)
	}
	fmt.Fprintf(buf, "%s_bucket%s %d\n", full, leLabel("+Inf"), t.Count())
	fmt.Fprintf(buf, "%s_sum%s %s\n", full, plain, strconv.FormatFloat(t.Sum().Seconds(), 'g', -1, 64))
	fmt.Fprintf(buf, "%s_count%s %d\n", full, plain, t.Count())
}

// WriteSummary writes the human-readable per-phase digest that
// -obs-summary prints on stderr: timings first, then the deterministic
// counters and gauges.
func (r *Registry) WriteSummary(w io.Writer) error {
	var buf bytes.Buffer
	if r == nil {
		buf.WriteString("obs: no registry\n")
		_, err := w.Write(buf.Bytes())
		return err
	}
	buf.WriteString("── observability summary ──\n")
	if r.Interrupted() {
		buf.WriteString("status: INTERRUPTED (partial run)\n")
	}
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	timings := sortedKeys(r.timings)
	r.mu.Unlock()
	if len(timings) > 0 {
		buf.WriteString("timings (non-deterministic):\n")
		for _, name := range timings {
			t := r.Timing(name)
			mean := time.Duration(0)
			if n := t.Count(); n > 0 {
				mean = t.Sum() / time.Duration(n)
			}
			fmt.Fprintf(&buf, "  %-32s n=%-6d total=%-12s mean=%s\n",
				name, t.Count(), t.Sum().Round(time.Microsecond), mean.Round(time.Microsecond))
		}
	}
	if len(counters)+len(gauges) > 0 {
		buf.WriteString("deterministic counters/gauges:\n")
		for _, name := range counters {
			fmt.Fprintf(&buf, "  %-40s %d\n", name, r.Counter(name).Value())
		}
		for _, name := range gauges {
			fmt.Fprintf(&buf, "  %-40s %d (gauge)\n", name, r.Gauge(name).Value())
		}
	}
	if r.TracingEnabled() {
		fmt.Fprintf(&buf, "trace: %d spans recorded, %d dropped\n", r.SpanCount(), r.Dropped())
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// sortedKeys returns the map's keys in sorted order (the collect-then-
// sort idiom the maporder analyzer requires before emitting).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// quoteJSON renders s as a JSON string literal.
func quoteJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// json.Marshal of a string cannot fail; keep the exporter total.
		return strconv.Quote(s)
	}
	return string(b)
}

// traceEvent mirrors the Chrome trace-event fields ValidateTrace needs.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

// traceFile is the JSON-object trace container.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// tsEpsilonUs absorbs the ±1 ns double-rounding of fractional-µs
// timestamps when checking containment.
const tsEpsilonUs = 0.0015

// ValidateTrace parses data as Chrome trace-event JSON and checks the
// structural invariants the exporter promises: every event well-formed,
// per-track timestamps monotone in emission order, and spans on one
// track properly nested (each pair of spans is containment-or-disjoint).
func ValidateTrace(data []byte) error {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	perTrack := make(map[int][]traceEvent)
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			if ev.Name == "" {
				return fmt.Errorf("obs: trace event %d has empty name", i)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				return fmt.Errorf("obs: trace event %d (%s) has negative ts/dur", i, ev.Name)
			}
			if last := perTrack[ev.Tid]; len(last) > 0 && ev.Ts < last[len(last)-1].Ts-tsEpsilonUs {
				return fmt.Errorf("obs: track %d timestamps not monotone at event %q (ts %.3f after %.3f)",
					ev.Tid, ev.Name, ev.Ts, last[len(last)-1].Ts)
			}
			perTrack[ev.Tid] = append(perTrack[ev.Tid], ev)
		default:
			return fmt.Errorf("obs: trace event %d has unsupported phase %q", i, ev.Ph)
		}
	}
	tids := make([]int, 0, len(perTrack))
	for tid := range perTrack {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		if err := checkNesting(tid, perTrack[tid]); err != nil {
			return err
		}
	}
	return nil
}

// checkNesting verifies containment-or-disjoint for one track's events,
// which must already be sorted by (ts asc, dur desc).
func checkNesting(tid int, evs []traceEvent) error {
	var stack []traceEvent
	for _, ev := range evs {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.Ts+top.Dur <= ev.Ts+tsEpsilonUs {
				stack = stack[:len(stack)-1]
				continue
			}
			break
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if ev.Ts+ev.Dur > top.Ts+top.Dur+tsEpsilonUs {
				return fmt.Errorf("obs: track %d span %q [%.3f, %.3f] overlaps %q [%.3f, %.3f] without nesting",
					tid, ev.Name, ev.Ts, ev.Ts+ev.Dur, top.Name, top.Ts, top.Ts+top.Dur)
			}
		}
		stack = append(stack, ev)
	}
	return nil
}

// ValidateMetrics checks that data parses as Prometheus-style text
// exposition: every non-comment line is "name[{labels}] value" with a
// float-parsable value, and at least one sample is present.
func ValidateMetrics(data []byte) error {
	samples := 0
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("obs: metrics line %d is not \"name value\": %q", ln+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		if !validMetricName(name) {
			return fmt.Errorf("obs: metrics line %d has malformed name %q", ln+1, name)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("obs: metrics line %d has non-numeric value %q: %w", ln+1, val, err)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("obs: metrics exposition contains no samples")
	}
	return nil
}

// validMetricName accepts "name" or "name{label=\"v\",...}" with the
// Prometheus identifier charset.
func validMetricName(name string) bool {
	base := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return false
		}
		base = name[:i]
	}
	if base == "" {
		return false
	}
	for i := 0; i < len(base); i++ {
		c := base[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
