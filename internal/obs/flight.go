package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// maxFlightSpans bounds how many spans one flight entry retains, so the
// recorder's memory stays proportional to its ring sizes rather than to
// the busiest job's trace volume. Truncation is recorded in SpanTotal vs
// len(Spans), never silent.
const maxFlightSpans = 2048

// SpanSnapshot is one closed span lifted out of a per-job registry into
// the server-lifetime flight recorder: offsets become fractional
// microseconds relative to the job registry's start, matching the
// Chrome-trace export unit.
type SpanSnapshot struct {
	Name    string  `json:"name"`
	Track   int32   `json:"track"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// SnapshotSpans copies up to max recorded spans (<= 0 selects the flight
// default) plus the track label table out of the registry. Call after
// the run has completed; returns nils when tracing was never enabled.
func (r *Registry) SnapshotSpans(max int) ([]SpanSnapshot, []string) {
	if r == nil {
		return nil, nil
	}
	ring := r.spans.Load()
	if ring == nil {
		return nil, nil
	}
	if max <= 0 {
		max = maxFlightSpans
	}
	recs := ring.records()
	if len(recs) > max {
		recs = recs[:max]
	}
	out := make([]SpanSnapshot, len(recs))
	for i, rec := range recs {
		out[i] = SpanSnapshot{
			Name:    rec.name,
			Track:   rec.track,
			StartUS: float64(rec.start) / 1e3,
			DurUS:   float64(rec.dur) / 1e3,
		}
	}
	r.mu.Lock()
	tracks := append([]string(nil), r.tracks...)
	r.mu.Unlock()
	return out, tracks
}

// FlightEntry is one completed job's record in the flight recorder: its
// span tree snapshot plus the admission-side annotations (queue wait,
// run wall, end-to-end) the per-job registry cannot see. All durations
// are fractional microseconds. ShiftUS is the offset of the job
// registry's start (= span time zero) from admission, so spans and
// annotations share one timeline in the rendered trace.
type FlightEntry struct {
	ID          string            `json:"id"`
	TraceID     string            `json:"trace_id,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
	QueueWaitUS float64           `json:"queue_wait_us"`
	RunUS       float64           `json:"run_us"`
	E2EUS       float64           `json:"e2e_us"`
	ShiftUS     float64           `json:"shift_us"`
	Tracks      []string          `json:"tracks,omitempty"`
	Spans       []SpanSnapshot    `json:"spans,omitempty"`
	SpanTotal   int64             `json:"span_total"`
	SpanDropped int64             `json:"span_dropped"`
}

// WriteTrace renders the entry as Chrome trace-event JSON on the
// admission timeline: the job's own tracks keep their tids, and a
// synthetic final "job" track carries the e2e / queue-wait / run
// annotation spans. The output satisfies ValidateTrace (and therefore
// cmd/obscheck): per-track monotone timestamps and proper nesting.
func (e *FlightEntry) WriteTrace(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",")
	if e.TraceID != "" {
		fmt.Fprintf(&buf, "\"otherData\":{\"trace_id\":%s},", quoteJSON(e.TraceID))
	}
	buf.WriteString("\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteString(s)
	}
	jobTid := len(e.Tracks)
	for tid, label := range e.Tracks {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tid, quoteJSON(label)))
	}
	emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"job"}}`, jobTid))

	spans := append([]SpanSnapshot(nil), e.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Track != spans[j].Track {
			return spans[i].Track < spans[j].Track
		}
		if spans[i].StartUS < spans[j].StartUS {
			return true
		}
		if spans[i].StartUS > spans[j].StartUS {
			return false
		}
		return spans[i].DurUS > spans[j].DurUS
	})
	shift := e.ShiftUS
	if shift < 0 {
		shift = 0
	}
	for _, sp := range spans {
		emit(fmt.Sprintf(`{"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}`,
			quoteJSON(sp.Name), sp.Track, shift+sp.StartUS, sp.DurUS))
	}

	// Annotation spans, clamped into [0, e2e] so the job track always
	// nests: queue-wait hugs admission, run follows it.
	e2e := e.E2EUS
	if e2e < 0 {
		e2e = 0
	}
	qw := e.QueueWaitUS
	if qw < 0 {
		qw = 0
	} else if qw > e2e {
		qw = e2e
	}
	runStart := shift
	if runStart < qw {
		runStart = qw
	}
	if runStart > e2e {
		runStart = e2e
	}
	run := e.RunUS
	if run < 0 {
		run = 0
	}
	if runStart+run > e2e {
		run = e2e - runStart
	}
	emit(fmt.Sprintf(`{"name":"job/e2e","ph":"X","pid":1,"tid":%d,"ts":0.000,"dur":%.3f}`, jobTid, e2e))
	emit(fmt.Sprintf(`{"name":"job/queue-wait","ph":"X","pid":1,"tid":%d,"ts":0.000,"dur":%.3f}`, jobTid, qw))
	emit(fmt.Sprintf(`{"name":"job/run","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}`, jobTid, runStart, run))
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// FlightSnapshot is the /debug/flight payload: the most recent entries
// (newest first) and the slowest-by-e2e entries (slowest first) kept
// since the server started, plus the lifetime total.
type FlightSnapshot struct {
	Total   int64         `json:"total"`
	Recent  []FlightEntry `json:"recent"`
	Slowest []FlightEntry `json:"slowest"`
}

// FlightRecorder is a bounded server-lifetime record of completed jobs:
// a ring of the N most recent entries plus a separate slowest-N set
// ordered by end-to-end latency, so tail outliers survive long after
// they scrolled out of the recency window.
type FlightRecorder struct {
	mu        sync.Mutex
	total     int64
	recentCap int
	slowCap   int
	recent    []FlightEntry // ring; head is the next write slot
	head      int
	slowest   []FlightEntry // sorted by E2EUS descending
}

// NewFlightRecorder returns a recorder keeping recentCap most-recent and
// slowCap slowest entries (<= 0 selects 64 and 16).
func NewFlightRecorder(recentCap, slowCap int) *FlightRecorder {
	if recentCap <= 0 {
		recentCap = 64
	}
	if slowCap <= 0 {
		slowCap = 16
	}
	return &FlightRecorder{recentCap: recentCap, slowCap: slowCap}
}

// Add records one completed job. Nil-safe.
func (f *FlightRecorder) Add(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if len(f.recent) < f.recentCap {
		f.recent = append(f.recent, e)
		f.head = len(f.recent) % f.recentCap
	} else {
		f.recent[f.head] = e
		f.head = (f.head + 1) % f.recentCap
	}
	i := sort.Search(len(f.slowest), func(i int) bool { return f.slowest[i].E2EUS <= e.E2EUS })
	if i < f.slowCap {
		f.slowest = append(f.slowest, FlightEntry{})
		copy(f.slowest[i+1:], f.slowest[i:])
		f.slowest[i] = e
		if len(f.slowest) > f.slowCap {
			f.slowest = f.slowest[:f.slowCap]
		}
	}
}

// Snapshot copies the recorder's state, recent entries newest first.
// Nil-safe (zero snapshot).
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{Recent: []FlightEntry{}, Slowest: []FlightEntry{}}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	recent := make([]FlightEntry, 0, len(f.recent))
	for i := 1; i <= len(f.recent); i++ {
		recent = append(recent, f.recent[(f.head-i+len(f.recent))%len(f.recent)])
	}
	return FlightSnapshot{
		Total:   f.total,
		Recent:  recent,
		Slowest: append([]FlightEntry{}, f.slowest...),
	}
}

// Get returns the retained entry for a job id, searching the recency
// ring newest-first and then the slowest set. Nil-safe.
func (f *FlightRecorder) Get(id string) (FlightEntry, bool) {
	if f == nil {
		return FlightEntry{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 1; i <= len(f.recent); i++ {
		e := f.recent[(f.head-i+len(f.recent))%len(f.recent)]
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range f.slowest {
		if e.ID == id {
			return e, true
		}
	}
	return FlightEntry{}, false
}

// flightFile mirrors FlightSnapshot with pointer slices so ValidateFlight
// can distinguish "empty" from "missing".
type flightFile struct {
	Total   *int64         `json:"total"`
	Recent  *[]FlightEntry `json:"recent"`
	Slowest *[]FlightEntry `json:"slowest"`
}

// ValidateFlight checks that data parses as a /debug/flight snapshot and
// that every retained entry is internally consistent: non-empty job id,
// non-negative durations, queue wait bounded by end-to-end, and span
// track indices within the entry's track table.
func ValidateFlight(data []byte) error {
	var ff flightFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ff); err != nil {
		return fmt.Errorf("obs: flight snapshot is not valid JSON: %w", err)
	}
	if ff.Total == nil || ff.Recent == nil || ff.Slowest == nil {
		return fmt.Errorf("obs: flight snapshot missing total/recent/slowest")
	}
	check := func(section string, entries []FlightEntry) error {
		for i, e := range entries {
			if e.ID == "" {
				return fmt.Errorf("obs: flight %s[%d] has empty job id", section, i)
			}
			if e.QueueWaitUS < 0 || e.RunUS < 0 || e.E2EUS < 0 || e.ShiftUS < 0 {
				return fmt.Errorf("obs: flight %s[%d] (%s) has negative duration", section, i, e.ID)
			}
			if e.QueueWaitUS > e.E2EUS+tsEpsilonUs {
				return fmt.Errorf("obs: flight %s[%d] (%s) queue wait %.3f exceeds e2e %.3f",
					section, i, e.ID, e.QueueWaitUS, e.E2EUS)
			}
			if int64(len(e.Spans)) > e.SpanTotal {
				return fmt.Errorf("obs: flight %s[%d] (%s) retains %d spans but claims total %d",
					section, i, e.ID, len(e.Spans), e.SpanTotal)
			}
			for j, sp := range e.Spans {
				if sp.Name == "" {
					return fmt.Errorf("obs: flight %s[%d] (%s) span %d has empty name", section, i, e.ID, j)
				}
				if sp.StartUS < 0 || sp.DurUS < 0 {
					return fmt.Errorf("obs: flight %s[%d] (%s) span %q has negative ts/dur", section, i, e.ID, sp.Name)
				}
				if sp.Track < 0 || int(sp.Track) >= len(e.Tracks) {
					return fmt.Errorf("obs: flight %s[%d] (%s) span %q on unknown track %d",
						section, i, e.ID, sp.Name, sp.Track)
				}
			}
		}
		return nil
	}
	if err := check("recent", *ff.Recent); err != nil {
		return err
	}
	return check("slowest", *ff.Slowest)
}
