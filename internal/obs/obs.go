// Package obs is the zero-dependency observability layer for a
// notebook-generation run: hierarchical wall-clock spans (run → phase →
// sub-stage → kernel), a registry of deterministic counters and gauges,
// and non-deterministic timing histograms, kept strictly apart.
//
// Design contract (enforced by internal/pipeline tests):
//
//   - A Registry is run-scoped: create one per Generate call. Counters
//     start at zero and are never reset, so report fields read from the
//     registry are exact per-run totals.
//   - Deterministic counters and gauges depend only on the Config and
//     input data — never on goroutine scheduling or wall clock — so
//     DeterministicState is byte-identical across Config.Threads.
//     Anything timing-derived goes into a Timing histogram instead.
//   - Every method is nil-safe on a nil *Registry, nil *Counter, nil
//     *Gauge and nil *Timing, and span collection is a no-op until
//     EnableTracing is called: a run without observability pays one
//     atomic pointer load per StartSpan and nothing else.
//   - Span collection is allocation-light: EnableTracing preallocates a
//     fixed span buffer; when it fills, later spans are counted as
//     dropped rather than grown into.
//
// Trace tracks mirror goroutines: spans on one track are opened and
// closed LIFO by a single goroutine, which is what makes the exported
// Chrome trace properly nested per track. Worker pools fork a fresh
// track per goroutine with ForkTrack.
package obs

import (
	"context"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone non-negative sum updated with atomic adds.
// Counters hold deterministic quantities only: the multiset of Add calls
// must be invariant under goroutine scheduling, so the sum is
// thread-invariant even though the add order is not.
type Counter struct{ v atomic.Int64 }

// NewCounter returns a standalone counter not attached to any registry.
// Components that must count before a registry exists (e.g. a cube cache
// built outside a pipeline run) start with one of these and rebind to a
// registry via their Instrument hook.
func NewCounter() *Counter { return &Counter{} }

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds 1. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-writer-wins deterministic value (e.g. the effective
// permutation count after shedding). Like counters, gauges must be set
// to scheduling-invariant values.
type Gauge struct{ v atomic.Int64 }

// Set stores n. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// TimingBuckets is the fixed bucket count of every Timing histogram.
// Bucket i (for 0 < i < TimingBuckets-1) covers durations in
// (2^(i-1), 2^i] nanoseconds; bucket 0 covers [0, 1] ns and the last
// bucket is the +Inf tail for anything past 2^62 ns (~146 years). Fixed
// power-of-two boundaries make Observe a single bits.Len64 — no search,
// no per-histogram configuration — and let scrapers compute quantiles
// from the exported buckets without the server picking percentiles.
const TimingBuckets = 64

// bucketIndex maps a non-negative nanosecond duration onto its bucket.
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	// bits.Len64(ns-1) is ceil(log2(ns)) for ns >= 2, so an exact power
	// of two 2^k lands in bucket k — the bucket whose upper bound it is.
	b := bits.Len64(uint64(ns) - 1)
	if b >= TimingBuckets {
		return TimingBuckets - 1
	}
	return b
}

// BucketBound returns bucket i's inclusive upper bound in nanoseconds.
// The final bucket is the +Inf tail and returns MaxInt64 as a sentinel.
func BucketBound(i int) time.Duration {
	if i <= 0 {
		return 1
	}
	if i >= TimingBuckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(int64(1) << uint(i))
}

// Timing is a fixed-boundary log2-bucket histogram of wall-clock
// durations. Observe is lock-free and allocation-free: one bits.Len64
// plus three atomic adds. Timings are the non-deterministic half of the
// registry: they vary run to run and thread count to thread count, and
// are therefore exported in a separate section and excluded from
// DeterministicState.
type Timing struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [TimingBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
// Nil-safe, lock-free, allocation-free.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.sumNs.Add(ns)
	t.buckets[bucketIndex(ns)].Add(1)
}

// Count returns the number of observations.
func (t *Timing) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Sum returns the total observed duration.
func (t *Timing) Sum() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.sumNs.Load())
}

// Buckets snapshots the per-bucket counts (not cumulative). The snapshot
// is not atomic with respect to concurrent Observe calls; each bucket is
// individually consistent. Returns the zero array for a nil timing.
func (t *Timing) Buckets() [TimingBuckets]int64 {
	var out [TimingBuckets]int64
	if t == nil {
		return out
	}
	for i := range t.buckets {
		out[i] = t.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by nearest rank over
// the bucket counts, returning the upper bound of the bucket holding
// that rank — an overestimate by at most one bucket width (2x). Returns
// 0 when the histogram is empty. Monotone in q by construction.
func (t *Timing) Quantile(q float64) time.Duration {
	if t == nil {
		return 0
	}
	counts := t.Buckets()
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(float64(n)*q + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(TimingBuckets - 1)
}

// maxTracks bounds trace-track allocation so runaway pool forking cannot
// grow the track table without bound; spans past the cap are untracked.
const maxTracks = 4096

// defaultSpanCapacity is the EnableTracing buffer size when the caller
// passes capacity <= 0 (64Ki spans ≈ 3 MiB).
const defaultSpanCapacity = 1 << 16

// Registry is the per-run observability hub. The zero value is not
// usable; call New. All methods are safe for concurrent use and nil-safe
// on a nil receiver.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timings  map[string]*Timing
	tracks   []string // index = track id; track 0 is the run's main track
	trace    string   // request-scoped trace identity; empty when untraced

	spans       atomic.Pointer[spanRing]
	spanObs     atomic.Pointer[SpanObserver]
	interrupted atomic.Bool
}

// New returns an empty run-scoped registry with tracing disabled.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timings:  make(map[string]*Timing),
		tracks:   []string{"run"},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (whose methods are no-ops) on a nil registry. Hot paths should
// fetch the handle once and reuse it rather than look up per event.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timing returns the named timing histogram, creating it on first use.
// Nil-safe.
func (r *Registry) Timing(name string) *Timing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timings[name]
	if t == nil {
		t = &Timing{}
		r.timings[name] = t
	}
	return t
}

// EnableTracing arms span collection with a preallocated buffer of the
// given capacity (<= 0 selects the default). Call before the run starts;
// enabling mid-run is not synchronised with in-flight StartSpan calls.
// Nil-safe; repeat calls keep the first buffer.
func (r *Registry) EnableTracing(capacity int) {
	if r == nil {
		return
	}
	if capacity <= 0 {
		capacity = defaultSpanCapacity
	}
	ring := &spanRing{buf: make([]spanRecord, capacity)}
	r.spans.CompareAndSwap(nil, ring)
}

// TracingEnabled reports whether EnableTracing has been called.
func (r *Registry) TracingEnabled() bool {
	return r != nil && r.spans.Load() != nil
}

// NewTrack allocates a fresh trace track (one per goroutine that emits
// spans) and returns its id. Returns -1 — meaning "untracked", which
// StartSpan treats as a no-op — on a nil registry, when tracing is
// disabled, or past the track cap.
func (r *Registry) NewTrack(label string) int32 {
	if !r.TracingEnabled() {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.tracks) >= maxTracks {
		return -1
	}
	id := int32(len(r.tracks))
	r.tracks = append(r.tracks, label+"#"+strconv.Itoa(len(r.tracks)))
	return id
}

// SetTraceID binds a request-scoped trace identity (a W3C trace-id hex
// string) to the registry. The trace ID surfaces only in trace and
// metrics exports — never in DeterministicState or any notebook/report
// bytes — so correlation never perturbs determinism-gated artifacts.
// Nil-safe.
func (r *Registry) SetTraceID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace = id
	r.mu.Unlock()
}

// TraceID returns the bound trace identity ("" when none). Nil-safe.
func (r *Registry) TraceID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// StartTime returns the wall-clock instant the registry was created —
// the zero offset of every span. Zero time on a nil registry.
func (r *Registry) StartTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// MarkInterrupted records that the run was cancelled or ran out of
// budget, so exported artifacts carry the partial-result marker.
func (r *Registry) MarkInterrupted() {
	if r != nil {
		r.interrupted.Store(true)
	}
}

// Interrupted reports whether MarkInterrupted was called.
func (r *Registry) Interrupted() bool {
	return r != nil && r.interrupted.Load()
}

// DeterministicState snapshots every counter and gauge into a flat map —
// the exact state that must be invariant across Config.Threads. Timings
// and spans are deliberately excluded. Returns nil on a nil registry.
func (r *Registry) DeterministicState() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		names = append(names, "counter/"+name)
	}
	for name := range r.gauges {
		names = append(names, "gauge/"+name)
	}
	sort.Strings(names)
	out := make(map[string]int64, len(names))
	for _, key := range names {
		if name, ok := trimPrefix(key, "counter/"); ok {
			out[key] = r.counters[name].Value()
		} else if name, ok := trimPrefix(key, "gauge/"); ok {
			out[key] = r.gauges[name].Value()
		}
	}
	r.mu.Unlock()
	return out
}

// trimPrefix is strings.TrimPrefix with an ok flag, avoiding a strings
// import for two call sites.
func trimPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// ctxKey keys the registry+track pair in a context.
type ctxKey struct{}

// ctxVal is the single value threaded through contexts: which registry
// to report to and which trace track this goroutine writes spans on.
type ctxVal struct {
	reg   *Registry
	track int32
}

// NewContext returns ctx carrying the registry on the main track.
// A nil registry returns ctx unchanged.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{reg: r, track: 0})
}

// FromContext returns the registry carried by ctx, or nil. A nil ctx is
// tolerated (several kernels accept one and substitute Background later).
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.reg
	}
	return nil
}

// ForkTrack returns ctx rebound to a fresh trace track, for handing to a
// worker goroutine so its spans do not interleave with the parent's on
// one track. When tracing is disabled (the common case) it returns ctx
// unchanged at the cost of one context lookup.
func ForkTrack(ctx context.Context, label string) context.Context {
	if ctx == nil {
		return ctx
	}
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || !v.reg.TracingEnabled() {
		return ctx
	}
	t := v.reg.NewTrack(label)
	if t < 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{reg: v.reg, track: t})
}

// StartSpan opens a wall-clock span named name on ctx's track. The
// returned Span is a value; call End exactly once. When ctx carries no
// registry or tracing is disabled the span is a zero Span and End is a
// no-op — StartSpan costs one context lookup and allocates nothing.
func StartSpan(ctx context.Context, name string) Span {
	if ctx == nil {
		return Span{}
	}
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.reg == nil || v.track < 0 || v.reg.spans.Load() == nil {
		return Span{}
	}
	return Span{reg: v.reg, track: v.track, name: name, start: time.Since(v.reg.start)}
}
