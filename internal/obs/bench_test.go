package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkStartSpanDisabled is the cost every kernel pays when tracing is
// off: one context lookup, no allocation.
func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := NewContext(context.Background(), New())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(ctx, "bench")
		sp.End()
	}
}

// BenchmarkStartSpanEnabled is the enabled cost: claim a preallocated ring
// slot and two clock reads, still allocation-free.
func BenchmarkStartSpanEnabled(b *testing.B) {
	r := New()
	r.EnableTracing(1 << 20)
	ctx := NewContext(context.Background(), r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(ctx, "bench")
		sp.End()
	}
}

// BenchmarkStartSpanNoRegistry is the fully-unwired cost (no registry in
// the context at all) — the Generate-without-Config.Obs... path never hits
// this, but library kernels called standalone do.
func BenchmarkStartSpanNoRegistry(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(ctx, "bench")
		sp.End()
	}
}

// BenchmarkCounterAdd is the prefetched-handle hot-path counter cost.
func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkTimingObserve prices the histogram path.
func BenchmarkTimingObserve(b *testing.B) {
	tm := New().Timing("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Observe(time.Duration(i) * time.Microsecond)
	}
}
