package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every entry point must be a no-op on nil receivers and nil contexts:
	// the disabled-observability path runs through exactly these calls.
	var r *Registry
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	r.Gauge("x").Set(9)
	r.Timing("x").Observe(time.Second)
	r.EnableTracing(8)
	r.MarkInterrupted()
	if r.TracingEnabled() || r.Interrupted() {
		t.Error("nil registry reports enabled/interrupted")
	}
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Timing("x").Count() != 0 {
		t.Error("nil handles hold values")
	}
	if r.DeterministicState() != nil {
		t.Error("nil registry DeterministicState != nil")
	}
	if got := NewContext(context.Background(), nil); got != context.Background() {
		t.Error("NewContext(nil registry) changed ctx")
	}
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Error("FromContext invented a registry")
	}
	if ForkTrack(nil, "w") != nil {
		t.Error("ForkTrack(nil ctx) != nil ctx")
	}
	sp := StartSpan(nil, "x")
	sp.End() // must not panic
	sp = StartSpan(context.Background(), "x")
	sp.End()
}

func TestCounterGaugeTiming(t *testing.T) {
	r := New()
	c := r.Counter("jobs")
	if c != r.Counter("jobs") {
		t.Error("Counter not memoised by name")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}

	g := r.Gauge("width")
	g.Set(5)
	g.Set(3)
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want last write 3", g.Value())
	}

	tm := r.Timing("lat")
	tm.Observe(500 * time.Nanosecond) // first bucket (≤1µs)
	tm.Observe(2 * time.Microsecond)
	tm.Observe(20 * time.Second) // past the last bound → +Inf bucket
	tm.Observe(-time.Second)     // clamped to 0
	if tm.Count() != 4 {
		t.Errorf("timing count = %d, want 4", tm.Count())
	}
	if tm.Sum() != 500*time.Nanosecond+2*time.Microsecond+20*time.Second {
		t.Errorf("timing sum = %v", tm.Sum())
	}
}

func TestDeterministicStateExcludesTimings(t *testing.T) {
	r := New()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(7)
	r.Timing("wall").Observe(time.Millisecond)
	got := r.DeterministicState()
	want := map[string]int64{"counter/a": 2, "gauge/b": 7}
	if len(got) != len(want) {
		t.Fatalf("state = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("state[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestSpanCollection(t *testing.T) {
	r := New()
	ctx := NewContext(context.Background(), r)
	// Disabled: spans vanish.
	sp := StartSpan(ctx, "ignored")
	sp.End()
	if r.SpanCount() != 0 {
		t.Fatalf("span recorded while tracing disabled")
	}

	r.EnableTracing(4)
	outer := StartSpan(ctx, "outer")
	inner := StartSpan(ctx, "inner")
	inner.End()
	outer.End()
	if r.SpanCount() != 2 {
		t.Fatalf("span count = %d, want 2", r.SpanCount())
	}

	// Overflow: capacity 4, two used — two more fit, the rest drop.
	for i := 0; i < 5; i++ {
		s := StartSpan(ctx, "spill")
		s.End()
	}
	if r.SpanCount() != 4 {
		t.Errorf("span count = %d, want capacity 4", r.SpanCount())
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
}

func TestEnableTracingKeepsFirstBuffer(t *testing.T) {
	r := New()
	r.EnableTracing(4)
	ctx := NewContext(context.Background(), r)
	s := StartSpan(ctx, "one")
	s.End()
	r.EnableTracing(64) // must not discard the recorded span
	if r.SpanCount() != 1 {
		t.Errorf("span count = %d after repeat EnableTracing, want 1", r.SpanCount())
	}
}

func TestForkTrack(t *testing.T) {
	r := New()
	ctx := NewContext(context.Background(), r)
	if got := ForkTrack(ctx, "w"); got != ctx {
		t.Error("ForkTrack with tracing disabled must return ctx unchanged")
	}
	r.EnableTracing(16)
	w1 := ForkTrack(ctx, "w")
	w2 := ForkTrack(ctx, "w")
	if w1 == ctx || w2 == ctx || w1 == w2 {
		t.Error("ForkTrack did not allocate fresh tracks")
	}
	s1 := StartSpan(w1, "a")
	s2 := StartSpan(w2, "b")
	s2.End()
	s1.End()
	if r.SpanCount() != 2 {
		t.Errorf("span count = %d, want 2", r.SpanCount())
	}
}

func TestTrackCap(t *testing.T) {
	r := New()
	r.EnableTracing(16)
	ctx := NewContext(context.Background(), r)
	for i := 0; i < maxTracks+10; i++ {
		ForkTrack(ctx, "w")
	}
	// Past the cap ForkTrack degrades to the parent track; NewTrack
	// reports the condition as -1.
	if id := r.NewTrack("overflow"); id != -1 {
		t.Errorf("NewTrack past cap = %d, want -1", id)
	}
	if got := ForkTrack(ctx, "w"); got != ctx {
		t.Error("ForkTrack past cap must return ctx unchanged")
	}
}
