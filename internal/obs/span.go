package obs

import (
	"sync/atomic"
	"time"
)

// Span is an open wall-clock interval on one trace track. The zero Span
// (returned when tracing is off) is valid and End is a no-op, so call
// sites need no conditionals:
//
//	sp := obs.StartSpan(ctx, "stats/pair")
//	defer sp.End()
//
// Spans on one track must close LIFO (guaranteed when a track is owned
// by a single goroutine), which is what makes the exported trace
// properly nested.
type Span struct {
	reg   *Registry
	start time.Duration // offset from Registry.start
	track int32
	name  string
}

// End closes the span and records it. Recording is one atomic add plus a
// struct store into the preallocated buffer; when the buffer is full the
// span is counted as dropped instead. A registered span observer (see
// Registry.ObserveSpans) is notified after the record lands.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	ring := s.reg.spans.Load()
	if ring == nil {
		return
	}
	end := time.Since(s.reg.start)
	ring.add(spanRecord{name: s.name, track: s.track, start: s.start, dur: end - s.start})
	if fn := s.reg.spanObs.Load(); fn != nil {
		(*fn)(s.name, s.start, end-s.start)
	}
}

// SpanObserver receives one callback per closed span: the span's name and
// its start offset / duration relative to the registry's start. Observers
// run synchronously inside Span.End on whatever goroutine closed the span
// — they must be safe for concurrent use and cheap; anything slow belongs
// behind a buffered channel on the observer's side. Progress streaming is
// the intended use (internal/server turns phase spans into SSE events);
// observers must never feed notebook or report bytes, which keeps the
// determinism contract untouched.
type SpanObserver func(name string, start, dur time.Duration)

// ObserveSpans registers fn as the registry's span observer (nil clears
// it). Like EnableTracing, call before the run starts; spans are only
// collected — and therefore only observed — while tracing is enabled.
// Nil-safe; the last registered observer wins.
func (r *Registry) ObserveSpans(fn SpanObserver) {
	if r == nil {
		return
	}
	if fn == nil {
		r.spanObs.Store(nil)
		return
	}
	r.spanObs.Store(&fn)
}

// spanRecord is one closed span. Offsets are relative to Registry.start,
// taken from Go's monotonic clock.
type spanRecord struct {
	name  string
	start time.Duration
	dur   time.Duration
	track int32
}

// spanRing is the preallocated span sink. Slots are claimed with one
// atomic increment; each claimed slot is written by exactly one
// goroutine and read only after the run has joined all workers, so slot
// writes need no lock. When the buffer fills, further spans are dropped
// (and counted) rather than reallocated — tracing must not introduce
// run-sized allocations into the hot path.
type spanRing struct {
	next    atomic.Int64
	dropped atomic.Int64
	buf     []spanRecord
}

func (r *spanRing) add(rec spanRecord) {
	i := r.next.Add(1) - 1
	if i >= int64(len(r.buf)) {
		r.dropped.Add(1)
		return
	}
	r.buf[i] = rec
}

// records returns the recorded spans (a view into the buffer, not a
// copy). Only call after the run has completed.
func (r *spanRing) records() []spanRecord {
	n := r.next.Load()
	if n > int64(len(r.buf)) {
		n = int64(len(r.buf))
	}
	return r.buf[:n]
}

// Dropped reports how many spans were discarded because the trace buffer
// was full (0 when tracing is disabled).
func (r *Registry) Dropped() int64 {
	if r == nil {
		return 0
	}
	ring := r.spans.Load()
	if ring == nil {
		return 0
	}
	return ring.dropped.Load()
}

// SpanCount reports how many spans were recorded (0 when tracing is
// disabled). Like records, only meaningful once the run has completed.
func (r *Registry) SpanCount() int {
	if r == nil {
		return 0
	}
	ring := r.spans.Load()
	if ring == nil {
		return 0
	}
	return len(ring.records())
}
