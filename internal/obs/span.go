package obs

import (
	"sync/atomic"
	"time"
)

// Span is an open wall-clock interval on one trace track. The zero Span
// (returned when tracing is off) is valid and End is a no-op, so call
// sites need no conditionals:
//
//	sp := obs.StartSpan(ctx, "stats/pair")
//	defer sp.End()
//
// Spans on one track must close LIFO (guaranteed when a track is owned
// by a single goroutine), which is what makes the exported trace
// properly nested.
type Span struct {
	reg   *Registry
	start time.Duration // offset from Registry.start
	track int32
	name  string
}

// End closes the span and records it. Recording is one atomic add plus a
// struct store into the preallocated buffer; when the buffer is full the
// span is counted as dropped instead.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	ring := s.reg.spans.Load()
	if ring == nil {
		return
	}
	end := time.Since(s.reg.start)
	ring.add(spanRecord{name: s.name, track: s.track, start: s.start, dur: end - s.start})
}

// spanRecord is one closed span. Offsets are relative to Registry.start,
// taken from Go's monotonic clock.
type spanRecord struct {
	name  string
	start time.Duration
	dur   time.Duration
	track int32
}

// spanRing is the preallocated span sink. Slots are claimed with one
// atomic increment; each claimed slot is written by exactly one
// goroutine and read only after the run has joined all workers, so slot
// writes need no lock. When the buffer fills, further spans are dropped
// (and counted) rather than reallocated — tracing must not introduce
// run-sized allocations into the hot path.
type spanRing struct {
	next    atomic.Int64
	dropped atomic.Int64
	buf     []spanRecord
}

func (r *spanRing) add(rec spanRecord) {
	i := r.next.Add(1) - 1
	if i >= int64(len(r.buf)) {
		r.dropped.Add(1)
		return
	}
	r.buf[i] = rec
}

// records returns the recorded spans (a view into the buffer, not a
// copy). Only call after the run has completed.
func (r *spanRing) records() []spanRecord {
	n := r.next.Load()
	if n > int64(len(r.buf)) {
		n = int64(len(r.buf))
	}
	return r.buf[:n]
}

// Dropped reports how many spans were discarded because the trace buffer
// was full (0 when tracing is disabled).
func (r *Registry) Dropped() int64 {
	if r == nil {
		return 0
	}
	ring := r.spans.Load()
	if ring == nil {
		return 0
	}
	return ring.dropped.Load()
}

// SpanCount reports how many spans were recorded (0 when tracing is
// disabled). Like records, only meaningful once the run has completed.
func (r *Registry) SpanCount() int {
	if r == nil {
		return 0
	}
	ring := r.spans.Load()
	if ring == nil {
		return 0
	}
	return len(ring.records())
}
