package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildRegistry records a realistic little run: nested spans on the main
// track, concurrent workers on forked tracks, counters, a gauge and a
// timing.
func buildRegistry(t *testing.T) *Registry {
	t.Helper()
	r := New()
	r.EnableTracing(0)
	ctx := NewContext(context.Background(), r)
	run := StartSpan(ctx, "run")
	phase := StartSpan(ctx, "phase/stats")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := ForkTrack(ctx, "worker")
			for j := 0; j < 3; j++ {
				sp := StartSpan(wctx, "stats/pair")
				inner := StartSpan(wctx, "stats/pair/permblock")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	phase.End()
	run.End()
	r.Counter("stats_perms_evaluated").Add(1200)
	r.Gauge("stats_perms_effective_min").Set(0)
	r.Timing("phase_stats").Observe(3 * time.Millisecond)
	return r
}

func TestWriteTraceRoundTrip(t *testing.T) {
	r := buildRegistry(t)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	s := buf.String()
	for _, want := range []string{`"run"`, `"phase/stats"`, `"stats/pair/permblock"`, `"worker#`, `"displayTimeUnit":"ms"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestWriteTraceEmptyRegistryValidates(t *testing.T) {
	// An interrupted run can flush before anything was recorded; the
	// artifact must still be valid JSON.
	var buf bytes.Buffer
	if err := New().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("empty trace does not validate: %v", err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     `{"traceEvents":[`,
		"bad phase":    `{"traceEvents":[{"name":"a","ph":"B","tid":0,"ts":1}]}`,
		"empty name":   `{"traceEvents":[{"name":"","ph":"X","tid":0,"ts":1,"dur":1}]}`,
		"negative ts":  `{"traceEvents":[{"name":"a","ph":"X","tid":0,"ts":-5,"dur":1}]}`,
		"non-monotone": `{"traceEvents":[{"name":"a","ph":"X","tid":0,"ts":10,"dur":1},{"name":"b","ph":"X","tid":0,"ts":2,"dur":1}]}`,
		"overlap":      `{"traceEvents":[{"name":"a","ph":"X","tid":0,"ts":0,"dur":10},{"name":"b","ph":"X","tid":0,"ts":5,"dur":10}]}`,
	}
	for name, data := range cases {
		if err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: ValidateTrace accepted invalid input", name)
		}
	}
	// Disjoint spans and properly nested spans on one track are fine.
	ok := `{"traceEvents":[{"name":"a","ph":"X","tid":0,"ts":0,"dur":10},{"name":"b","ph":"X","tid":0,"ts":2,"dur":3},{"name":"c","ph":"X","tid":0,"ts":20,"dur":1}]}`
	if err := ValidateTrace([]byte(ok)); err != nil {
		t.Errorf("nested+disjoint rejected: %v", err)
	}
}

func TestWriteMetricsRoundTrip(t *testing.T) {
	r := buildRegistry(t)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Fatalf("exported metrics do not validate: %v", err)
	}
	s := buf.String()
	for _, want := range []string{
		"comparenb_stats_perms_evaluated_total 1200",
		"comparenb_stats_perms_effective_min 0",
		"comparenb_phase_stats_seconds_count 1",
		`comparenb_phase_stats_seconds_bucket{le="+Inf"} 1`,
		"comparenb_obs_spans_total ",
		"comparenb_obs_spans_dropped_total 0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(s, "# interrupted") {
		t.Error("uninterrupted run carries the interrupted marker")
	}
	// Deterministic section must precede the non-deterministic one.
	det := strings.Index(s, "deterministic counters")
	nondet := strings.Index(s, "non-deterministic timings")
	if det < 0 || nondet < 0 || det > nondet {
		t.Error("metrics sections missing or out of order")
	}
}

func TestWriteMetricsInterruptedMarker(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	r.MarkInterrupted()
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 3)
	if len(lines) < 2 || lines[1] != "# interrupted" {
		t.Errorf("second line = %q, want \"# interrupted\"", lines[1])
	}
	if err := ValidateMetrics(buf.Bytes()); err != nil {
		t.Errorf("interrupted exposition does not validate: %v", err)
	}
}

func TestValidateMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"comments only": "# nothing\n",
		"no value":      "lonely_name\n",
		"bad name":      "9name 3\n",
		"bad value":     "name abc\n",
	}
	for name, data := range cases {
		if err := ValidateMetrics([]byte(data)); err == nil {
			t.Errorf("%s: ValidateMetrics accepted invalid input", name)
		}
	}
	if err := ValidateMetrics([]byte("a_total 3\nb{le=\"0.1\"} 4.5\n")); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestWriteSummary(t *testing.T) {
	r := buildRegistry(t)
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"phase_stats", "stats_perms_evaluated", "spans recorded"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}
