package cover

import (
	"math"
	"math/rand"
	"testing"
)

func allPairs(n int) []Pair {
	var out []Pair
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out = append(out, Pair{A: a, B: b})
		}
	}
	return out
}

func TestNewPairNormalises(t *testing.T) {
	if NewPair(3, 1) != (Pair{A: 1, B: 3}) {
		t.Error("NewPair did not sort")
	}
	if NewPair(1, 3) != NewPair(3, 1) {
		t.Error("NewPair not order-insensitive")
	}
}

func TestEnumerateCandidates(t *testing.T) {
	cs := EnumerateCandidates(4, 0)
	// 2^4 − 1 (empty excluded by mask) − 4 singletons = 11.
	if len(cs) != 11 {
		t.Errorf("len = %d, want 11", len(cs))
	}
	capped := EnumerateCandidates(4, 2)
	if len(capped) != 6 {
		t.Errorf("capped len = %d, want C(4,2)=6", len(capped))
	}
	for _, c := range capped {
		if len(c.Attrs) != 2 {
			t.Errorf("capped candidate has %d attrs", len(c.Attrs))
		}
	}
}

func TestGreedyPicksBigCheapSet(t *testing.T) {
	// One big set covering everything, cheaper than the pairs combined.
	n := 4
	cands := EnumerateCandidates(n, 0)
	for i := range cands {
		switch len(cands[i].Attrs) {
		case n:
			cands[i].Weight = 5 // full cube: best ratio 5/6 per pair
		case 3:
			cands[i].Weight = 10
		default:
			cands[i].Weight = 2
		}
	}
	chosen, err := Greedy(allPairs(n), cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || len(cands[chosen[0]].Attrs) != n {
		t.Errorf("greedy chose %v, want the single full set", chosen)
	}
}

func TestGreedyFallsBackToPairs(t *testing.T) {
	// Big sets are prohibitively heavy: the cover should be the 2-sets.
	n := 3
	cands := EnumerateCandidates(n, 0)
	for i := range cands {
		if len(cands[i].Attrs) == 2 {
			cands[i].Weight = 1
		} else {
			cands[i].Weight = 1000
		}
	}
	chosen, err := Greedy(allPairs(n), cands)
	if err != nil {
		t.Fatal(err)
	}
	if TotalWeight(cands, chosen) != 3 {
		t.Errorf("greedy weight = %v, want 3 (three 2-sets)", TotalWeight(cands, chosen))
	}
}

func TestGreedyCoversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		cands := EnumerateCandidates(n, 0)
		for i := range cands {
			cands[i].Weight = 1 + rng.Float64()*float64(len(cands[i].Attrs))
		}
		universe := allPairs(n)
		chosen, err := Greedy(universe, cands)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range universe {
			covered := false
			for _, ci := range chosen {
				if cands[ci].covers(p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("pair %v not covered by %v", p, chosen)
			}
		}
	}
}

// TestGreedyWithinLogFactor checks the classical guarantee: greedy weight
// ≤ H(|U|) × optimal.
func TestGreedyWithinLogFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 4
		cands := EnumerateCandidates(n, 0)
		for i := range cands {
			cands[i].Weight = 0.5 + rng.Float64()*3
		}
		universe := allPairs(n)
		chosen, err := Greedy(universe, cands)
		if err != nil {
			t.Fatal(err)
		}
		_, optW := OptimalForTest(universe, cands)
		h := 0.0
		for k := 1; k <= len(universe); k++ {
			h += 1 / float64(k)
		}
		if got := TotalWeight(cands, chosen); got > optW*h+1e-9 {
			t.Errorf("greedy %v exceeds H(%d)×opt = %v", got, len(universe), optW*h)
		}
	}
}

func TestGreedyUncoverable(t *testing.T) {
	cands := []Candidate{{Attrs: []int{0, 1}, Weight: 1}}
	_, err := Greedy([]Pair{{A: 0, B: 2}}, cands)
	if err == nil {
		t.Error("uncoverable universe: want error")
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	chosen, err := Greedy(nil, EnumerateCandidates(3, 0))
	if err != nil || len(chosen) != 0 {
		t.Errorf("empty universe: chosen=%v err=%v", chosen, err)
	}
}

func TestGreedySubsetUniverse(t *testing.T) {
	// Only one pair needed: greedy should pick exactly one candidate that
	// covers it, the lightest per gain.
	cands := EnumerateCandidates(5, 0)
	for i := range cands {
		cands[i].Weight = float64(len(cands[i].Attrs))
	}
	chosen, err := Greedy([]Pair{{A: 1, B: 3}}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 {
		t.Fatalf("chose %d sets, want 1", len(chosen))
	}
	c := cands[chosen[0]]
	if len(c.Attrs) != 2 || !c.covers(Pair{A: 1, B: 3}) {
		t.Errorf("chose %v, want the {1,3} 2-set", c.Attrs)
	}
	if math.Abs(TotalWeight(cands, chosen)-2) > 1e-12 {
		t.Errorf("weight = %v, want 2", TotalWeight(cands, chosen))
	}
}
