// Package cover implements the group-by merging of §5.2.2 (Algorithm 2):
// choosing the cheapest collection of group-by sets that covers every
// 2-group-by set, as a greedy weighted set cover. Hypothesis queries over
// a pair {A, B} can then be answered by rolling up any chosen superset
// cube, so the pair's data is "evaluated for free once in memory".
package cover

import (
	"fmt"
	"sort"
)

// Pair is an unordered 2-group-by set {A, B}, stored with A < B.
type Pair struct {
	A, B int
}

// NewPair normalises an unordered pair.
func NewPair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Candidate is a group-by set g ∈ G = 2^A minus singletons, with the
// weight the optimizer estimated for its memory footprint.
type Candidate struct {
	Attrs  []int // sorted attribute indexes, len ≥ 2
	Weight float64
}

// covers reports whether the candidate's attribute set contains both
// members of the pair.
func (c Candidate) covers(p Pair) bool {
	okA, okB := false, false
	for _, a := range c.Attrs {
		if a == p.A {
			okA = true
		}
		if a == p.B {
			okB = true
		}
	}
	return okA && okB
}

// EnumerateCandidates builds G = 2^A \ singletons over n attributes,
// optionally capped at maxSize attributes per set (0 = no cap). Weights
// are filled by the caller (Algorithm 2 line 6 "estimate the size of q").
func EnumerateCandidates(n, maxSize int) []Candidate {
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	var out []Candidate
	for mask := 1; mask < 1<<n; mask++ {
		var attrs []int
		for a := 0; a < n; a++ {
			if mask&(1<<a) != 0 {
				attrs = append(attrs, a)
			}
		}
		if len(attrs) >= 2 && len(attrs) <= maxSize {
			out = append(out, Candidate{Attrs: attrs})
		}
	}
	return out
}

// Greedy approximates the weighted set cover: it repeatedly picks the
// candidate with the best weight-per-newly-covered-pair ratio until every
// pair in universe is covered, the classical O(|U|·log|G|)-quality greedy
// (§5.2.2, [28]). It returns the indexes of the chosen candidates, in
// choice order, and an error if the candidates cannot cover the universe.
func Greedy(universe []Pair, candidates []Candidate) ([]int, error) {
	uncovered := make(map[Pair]bool, len(universe))
	for _, p := range universe {
		uncovered[NewPair(p.A, p.B)] = true
	}
	var chosen []int
	used := make([]bool, len(candidates))
	for len(uncovered) > 0 {
		best := -1
		bestRatio := 0.0
		bestGain := 0
		for ci, c := range candidates {
			if used[ci] {
				continue
			}
			gain := 0
			for p := range uncovered {
				if c.covers(p) {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			ratio := c.Weight / float64(gain)
			//nolint:floateq // deterministic tie-break: candidates are scanned in fixed index order, so exact equality picks a stable winner
			if best == -1 || ratio < bestRatio || (ratio == bestRatio && gain > bestGain) {
				best, bestRatio, bestGain = ci, ratio, gain
			}
		}
		if best == -1 {
			return chosen, fmt.Errorf("cover: %d pairs cannot be covered by any candidate", len(uncovered))
		}
		used[best] = true
		chosen = append(chosen, best)
		for p := range uncovered {
			if candidates[best].covers(p) {
				delete(uncovered, p)
			}
		}
	}
	return chosen, nil
}

// TotalWeight sums the weights of the chosen candidates.
func TotalWeight(candidates []Candidate, chosen []int) float64 {
	w := 0.0
	for _, ci := range chosen {
		w += candidates[ci].Weight
	}
	return w
}

// OptimalForTest solves the weighted set cover exactly by exhaustive
// subset enumeration. Exponential: only usable for small candidate sets;
// tests use it to bound the greedy's approximation quality.
func OptimalForTest(universe []Pair, candidates []Candidate) ([]int, float64) {
	norm := make([]Pair, len(universe))
	for i, p := range universe {
		norm[i] = NewPair(p.A, p.B)
	}
	bestW := -1.0
	var best []int
	for mask := 0; mask < 1<<len(candidates); mask++ {
		w := 0.0
		var sel []int
		for ci := range candidates {
			if mask&(1<<ci) != 0 {
				w += candidates[ci].Weight
				sel = append(sel, ci)
			}
		}
		if bestW >= 0 && w >= bestW {
			continue
		}
		ok := true
		for _, p := range norm {
			covered := false
			for _, ci := range sel {
				if candidates[ci].covers(p) {
					covered = true
					break
				}
			}
			if !covered {
				ok = false
				break
			}
		}
		if ok {
			bestW = w
			best = sel
		}
	}
	sort.Ints(best)
	return best, bestW
}
