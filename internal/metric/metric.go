// Package metric implements §4.2: the manifold interestingness of a
// comparison query (conciseness × significance × surprise), the weighted
// Hamming distance over query parts, and the uniform cost model.
package metric

import (
	"math"
	"sort"

	"comparenb/internal/insight"
)

// ConcisenessParams are the α and δ of the conciseness function. α sets
// the growth rate of the ideal number of groups given the number of tuples
// (the slope of the ideal ratio); δ spreads the ideal ratio.
type ConcisenessParams struct {
	Alpha float64
	Delta float64
}

// DefaultConciseness mirrors the paper's "empirically tuned" setting: the
// ideal result size is 2% of the aggregated tuples, with a spread that
// keeps the score discriminative across four orders of magnitude of θ.
var DefaultConciseness = ConcisenessParams{Alpha: 0.02, Delta: 1}

// Conciseness evaluates the paper's non-monotonic conciseness function
//
//	conciseness(θ, γ) = exp( −(γ − θα)² / θ^δ )
//
// where θ is the number of tuples aggregated by the query and γ the number
// of groups in its result. γ > θ makes no sense in grouping and scores 0;
// θ = 0 also scores 0 (an empty comparison is never concise).
func Conciseness(theta, gamma int, p ConcisenessParams) float64 {
	if theta <= 0 || gamma > theta || gamma <= 0 {
		return 0
	}
	t := float64(theta)
	g := float64(gamma)
	d := g - t*p.Alpha
	return math.Exp(-(d * d) / math.Pow(t, p.Delta))
}

// ThetaGamma is one observed (tuples aggregated, result groups) pair.
type ThetaGamma struct {
	Theta, Gamma int
}

// CalibrateConciseness derives conciseness parameters from observed
// candidate queries, automating the paper's "empirically tuned to a good
// trade-off": α is set to the median γ/θ ratio (so a typical query sits at
// the conciseness peak) and δ to 1 (the spread that keeps the score
// discriminative across the observed θ range). Falls back to
// DefaultConciseness when no usable samples exist.
func CalibrateConciseness(samples []ThetaGamma) ConcisenessParams {
	ratios := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.Theta > 0 && s.Gamma > 0 && s.Gamma <= s.Theta {
			ratios = append(ratios, float64(s.Gamma)/float64(s.Theta))
		}
	}
	if len(ratios) == 0 {
		return DefaultConciseness
	}
	sort.Float64s(ratios)
	alpha := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		alpha = (alpha + ratios[len(ratios)/2-1]) / 2
	}
	if alpha <= 0 {
		return DefaultConciseness
	}
	return ConcisenessParams{Alpha: alpha, Delta: 1}
}

// InterestParams bundles the knobs of Def. 4.3.
type InterestParams struct {
	// Omega is ω, the weight ruling the importance of sig(i).
	Omega float64
	// Conciseness holds α and δ.
	Conciseness ConcisenessParams
	// UseConciseness, UseCredibility allow the ablations used by the user
	// study variants (Table 7): WSC-approx-sig drops both, and
	// WSC-approx-sig-cred keeps credibility only.
	UseConciseness bool
	UseCredibility bool
}

// DefaultInterest is the full interestingness of Def. 4.3.
var DefaultInterest = InterestParams{
	Omega:          1,
	Conciseness:    DefaultConciseness,
	UseConciseness: true,
	UseCredibility: true,
}

// Interest evaluates Def. 4.3 for a query supporting the given insights:
//
//	interest(q) = conciseness(θ, γ) × Σ_{i∈I_q} ω · sig(i) · (1 − cred(i)/|Qⁱ|)
//
// The (1 − cred/|Qⁱ|) factor is the probability of the insight being a
// type II error — the surprise of the insight: the fewer queries support
// it, the more surprising seeing it is.
func Interest(theta, gamma int, supported []insight.Insight, p InterestParams) float64 {
	sum := 0.0
	for _, i := range supported {
		term := p.Omega * i.Sig
		if p.UseCredibility && i.NumHypo > 0 {
			term *= 1 - float64(i.Credibility)/float64(i.NumHypo)
		}
		sum += term
	}
	if p.UseConciseness {
		sum *= Conciseness(theta, gamma, p.Conciseness)
	}
	return sum
}

// Weights are the part weights of the distance: "val, val' the highest,
// followed by B, then A, and finally M and agg have the lowest impact".
type Weights struct {
	Val, Val2, B, A, M, Agg float64
}

// DefaultWeights follows the ordering prescribed in §4.2.
var DefaultWeights = Weights{Val: 4, Val2: 4, B: 3, A: 2, M: 1, Agg: 1}

// UniformWeights is the ablation where every query part counts equally.
var UniformWeights = Weights{Val: 1, Val2: 1, B: 1, A: 1, M: 1, Agg: 1}

func (w Weights) total() float64 { return w.Val + w.Val2 + w.B + w.A + w.M + w.Agg }

// Distance is the weighted Hamming distance between two comparison
// queries, normalised to [0, 1]. Two selection values only count as equal
// when they denote the same value of the same attribute (codes from
// different attributes are incomparable), which keeps equality transitive
// and the distance a metric — the triangle inequality the TAP formulation
// requires (§4.2).
func Distance(q1, q2 insight.Query, w Weights) float64 {
	d := 0.0
	sameB := q1.Attr == q2.Attr
	if !sameB {
		d += w.B
	}
	if !sameB || q1.Val != q2.Val {
		d += w.Val
	}
	if !sameB || q1.Val2 != q2.Val2 {
		d += w.Val2
	}
	if q1.GroupBy != q2.GroupBy {
		d += w.A
	}
	if q1.Meas != q2.Meas {
		d += w.M
	}
	if q1.Agg != q2.Agg {
		d += w.Agg
	}
	return d / w.total()
}

// UniformCost is the cost model argued for in §4.2: the evaluation cost of
// all comparison queries is roughly the same (Figure 5), so every query
// costs 1 and the time budget ε_t simply bounds the number of queries in
// the notebook.
func UniformCost(insight.Query) float64 { return 1 }
