package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"comparenb/internal/engine"
	"comparenb/internal/insight"
)

func TestConcisenessPeaksAtIdealRatio(t *testing.T) {
	p := ConcisenessParams{Alpha: 0.02, Delta: 1}
	theta := 10000
	ideal := int(0.02 * float64(theta))
	peak := Conciseness(theta, ideal, p)
	if !(peak > 0.99) {
		t.Errorf("conciseness at ideal γ = %v, want ≈ 1", peak)
	}
	if far := Conciseness(theta, 5, p); far >= peak {
		t.Errorf("too few groups should score below the peak: %v >= %v", far, peak)
	}
	if far := Conciseness(theta, 2000, p); far >= peak {
		t.Errorf("too many groups should score below the peak: %v >= %v", far, peak)
	}
}

func TestConcisenessUndefinedZone(t *testing.T) {
	p := DefaultConciseness
	if got := Conciseness(10, 11, p); got != 0 {
		t.Errorf("γ > θ must score 0, got %v", got)
	}
	if got := Conciseness(0, 0, p); got != 0 {
		t.Errorf("θ = 0 must score 0, got %v", got)
	}
	if got := Conciseness(10, 0, p); got != 0 {
		t.Errorf("γ = 0 must score 0, got %v", got)
	}
}

func TestConcisenessRange(t *testing.T) {
	f := func(theta, gamma uint16) bool {
		v := Conciseness(int(theta), int(gamma), DefaultConciseness)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterestFullFormula(t *testing.T) {
	ins := []insight.Insight{
		{Sig: 0.99, Credibility: 1, NumHypo: 4},
		{Sig: 0.97, Credibility: 4, NumHypo: 4},
	}
	p := DefaultInterest
	theta, gamma := 1000, 20 // ideal ratio for α=0.02 → conciseness 1
	got := Interest(theta, gamma, ins, p)
	want := Conciseness(theta, gamma, p.Conciseness) * (0.99*(1-0.25) + 0.97*0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Interest = %v, want %v", got, want)
	}
}

func TestInterestAblations(t *testing.T) {
	ins := []insight.Insight{{Sig: 0.99, Credibility: 2, NumHypo: 4}}
	sigOnly := InterestParams{Omega: 1}
	if got := Interest(10, 5, ins, sigOnly); got != 0.99 {
		t.Errorf("sig-only interest = %v, want 0.99", got)
	}
	sigCred := InterestParams{Omega: 1, UseCredibility: true}
	if got := Interest(10, 5, ins, sigCred); math.Abs(got-0.99*0.5) > 1e-12 {
		t.Errorf("sig+cred interest = %v, want %v", got, 0.99*0.5)
	}
}

func TestInterestOmegaScales(t *testing.T) {
	ins := []insight.Insight{{Sig: 0.95, NumHypo: 2}}
	p := InterestParams{Omega: 3}
	if got := Interest(10, 5, ins, p); math.Abs(got-3*0.95) > 1e-12 {
		t.Errorf("omega-scaled interest = %v", got)
	}
}

func TestInterestEmptyInsights(t *testing.T) {
	if got := Interest(10, 5, nil, DefaultInterest); got != 0 {
		t.Errorf("no insights → interest %v, want 0", got)
	}
}

func randQuery(rng *rand.Rand) insight.Query {
	return insight.Query{
		GroupBy: rng.Intn(4),
		Attr:    rng.Intn(4),
		Val:     int32(rng.Intn(5)),
		Val2:    int32(rng.Intn(5)),
		Meas:    rng.Intn(3),
		Agg:     engine.AllAggs[rng.Intn(len(engine.AllAggs))],
	}
}

func TestDistanceIdentityAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 200; k++ {
		q1, q2 := randQuery(rng), randQuery(rng)
		if d := Distance(q1, q1, DefaultWeights); d != 0 {
			t.Fatalf("d(q,q) = %v", d)
		}
		d12 := Distance(q1, q2, DefaultWeights)
		d21 := Distance(q2, q1, DefaultWeights)
		if d12 != d21 {
			t.Fatalf("asymmetric: %v vs %v", d12, d21)
		}
		if d12 < 0 || d12 > 1 {
			t.Fatalf("out of range: %v", d12)
		}
		if q1 != q2 && d12 == 0 {
			t.Fatalf("distinct queries at distance 0: %+v %+v", q1, q2)
		}
	}
}

// TestDistanceTriangleInequality verifies the property §4.2 insists on: a
// proper metric so the TAP never trades interestingness for distance.
func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range []Weights{DefaultWeights, UniformWeights} {
		for k := 0; k < 2000; k++ {
			a, b, c := randQuery(rng), randQuery(rng), randQuery(rng)
			dab := Distance(a, b, w)
			dbc := Distance(b, c, w)
			dac := Distance(a, c, w)
			if dac > dab+dbc+1e-12 {
				t.Fatalf("triangle violated: d(a,c)=%v > %v+%v; a=%+v b=%+v c=%+v", dac, dab, dbc, a, b, c)
			}
		}
	}
}

func TestDistanceOrderingOfParts(t *testing.T) {
	base := insight.Query{GroupBy: 0, Attr: 1, Val: 0, Val2: 1, Meas: 0, Agg: engine.Sum}
	w := DefaultWeights
	chVal := base
	chVal.Val = 2
	chA := base
	chA.GroupBy = 2
	chAgg := base
	chAgg.Agg = engine.Avg
	dVal := Distance(base, chVal, w)
	dA := Distance(base, chA, w)
	dAgg := Distance(base, chAgg, w)
	if !(dVal > dA && dA > dAgg) {
		t.Errorf("part ordering violated: val=%v A=%v agg=%v", dVal, dA, dAgg)
	}
	// Changing B implies changing the selection values too: the largest
	// single-part jump.
	chB := base
	chB.Attr = 2
	if dB := Distance(base, chB, w); !(dB > dVal) {
		t.Errorf("changing B (%v) must cost more than changing one value (%v)", dB, dVal)
	}
}

func TestUniformCost(t *testing.T) {
	if got := UniformCost(insight.Query{}); got != 1 {
		t.Errorf("UniformCost = %v, want 1", got)
	}
}

func TestCalibrateConciseness(t *testing.T) {
	// Typical queries have γ/θ ≈ 0.05: calibration should put the peak
	// there.
	var samples []ThetaGamma
	for i := 1; i <= 21; i++ {
		samples = append(samples, ThetaGamma{Theta: 1000, Gamma: 50 + i - 11})
	}
	p := CalibrateConciseness(samples)
	if math.Abs(p.Alpha-0.05) > 0.001 {
		t.Errorf("calibrated α = %v, want ≈ 0.05 (median ratio)", p.Alpha)
	}
	// The median query must now score near the conciseness peak.
	if got := Conciseness(1000, 50, p); got < 0.99 {
		t.Errorf("median query conciseness = %v, want ≈ 1", got)
	}
	// Degenerate inputs fall back to the defaults.
	if got := CalibrateConciseness(nil); got != DefaultConciseness {
		t.Errorf("nil samples: %+v", got)
	}
	if got := CalibrateConciseness([]ThetaGamma{{Theta: 0, Gamma: 0}}); got != DefaultConciseness {
		t.Errorf("degenerate samples: %+v", got)
	}
}
