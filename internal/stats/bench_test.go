package stats

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPool(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func BenchmarkPermTestMean(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pooled := benchPool(2000, 2)
	pp := NewPairPerm(1000, 1000, 200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.PValue(pooled, MeanDiff)
	}
}

func BenchmarkPermTestVariance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pooled := benchPool(2000, 2)
	pp := NewPairPerm(1000, 1000, 200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.PValue(pooled, VarDiff)
	}
}

func BenchmarkPermTestMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pooled := benchPool(400, 2)
	pp := NewPairPerm(200, 200, 100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.PValue(pooled, MedianDiff)
	}
}

func BenchmarkBenjaminiHochberg(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ps := make([]float64, 10000)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BenjaminiHochberg(ps)
	}
}

func BenchmarkMedianQuickselect(b *testing.B) {
	xs := benchPool(10000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Median(xs)
	}
}

// BenchmarkPermSeededGen measures drawing the block-seeded permutation set
// (the NewPairPermSeeded path the pipeline uses).
func BenchmarkPermSeededGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewPairPermSeeded(1000, 1000, 200, 1, 1)
	}
}

// BenchmarkPermTestMeanParallel evaluates the same seeded permutation set
// at several worker widths; the p-value is bit-identical at every width.
func BenchmarkPermTestMeanParallel(b *testing.B) {
	pooled := benchPool(2000, 2)
	pp := NewPairPermSeeded(1000, 1000, 200, 1, 1)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pp.PValueThreads(pooled, MeanDiff, threads)
			}
		})
	}
}
