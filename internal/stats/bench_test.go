package stats

import (
	"math/rand"
	"testing"
)

func benchPool(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func BenchmarkPermTestMean(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pooled := benchPool(2000, 2)
	pp := NewPairPerm(1000, 1000, 200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.PValue(pooled, MeanDiff)
	}
}

func BenchmarkPermTestVariance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pooled := benchPool(2000, 2)
	pp := NewPairPerm(1000, 1000, 200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.PValue(pooled, VarDiff)
	}
}

func BenchmarkPermTestMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pooled := benchPool(400, 2)
	pp := NewPairPerm(200, 200, 100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.PValue(pooled, MedianDiff)
	}
}

func BenchmarkBenjaminiHochberg(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ps := make([]float64, 10000)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BenjaminiHochberg(ps)
	}
}

func BenchmarkMedianQuickselect(b *testing.B) {
	xs := benchPool(10000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Median(xs)
	}
}
