package stats

import "sort"

// BenjaminiHochberg computes BH-adjusted p-values (q-values) for a family
// of tests, in the input order:
//
//	q_(i) = min_{j ≥ i} ( p_(j) · n / j ),  capped at 1
//
// where p_(1) ≤ … ≤ p_(n) are the sorted raw p-values. Rejecting exactly
// the hypotheses with q ≤ α controls the false-discovery rate at α, which
// is the correction the paper applies to all permutation-test p-values
// (§5.1.1).
func BenjaminiHochberg(p []float64) []float64 {
	n := len(p)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p[order[a]] < p[order[b]] })

	q := make([]float64, n)
	minSoFar := 1.0
	for rank := n; rank >= 1; rank-- {
		idx := order[rank-1]
		v := p[idx] * float64(n) / float64(rank)
		if v < minSoFar {
			minSoFar = v
		}
		q[idx] = minSoFar
	}
	return q
}

// RejectBH reports, in input order, which hypotheses the BH procedure
// rejects at level alpha.
func RejectBH(p []float64, alpha float64) []bool {
	q := BenjaminiHochberg(p)
	out := make([]bool, len(p))
	for i, v := range q {
		out[i] = v <= alpha
	}
	return out
}
