package stats

import "math"

// Tol is the default tolerance for float comparisons in the statistical
// code: loose enough to absorb accumulated rounding across the sums and
// divisions a test statistic goes through, tight enough that genuinely
// different statistics never collide.
const Tol = 1e-12

// NearZero reports whether x is within Tol of zero. Use it instead of
// `x == 0` when x is a computed quantity (a variance, a standard error, a
// weight sum) that is mathematically zero in the degenerate case but may
// carry rounding noise.
func NearZero(x float64) bool { return math.Abs(x) <= Tol }

// ApproxEqual reports whether a and b agree within tol: absolutely for
// values near zero, relatively otherwise. NaN is equal to nothing;
// infinities are equal only to themselves via the relative branch's
// overflow (callers comparing infinities should handle them first).
func ApproxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
