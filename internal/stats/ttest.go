package stats

import "math"

// WelchResult is the outcome of a Welch two-sample t-test.
type WelchResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT runs Welch's unequal-variance t-test on two samples; the user
// study analysis (§6.5) uses it to decide whether two notebook variants'
// ratings differ significantly. Degenerate inputs (fewer than two values,
// or two zero-variance samples) give P = 1 when the means agree within
// tolerance and P = 0 when they provably differ.
func WelchT(x, y []float64) WelchResult {
	nx, ny := float64(len(x)), float64(len(y))
	if nx < 2 || ny < 2 {
		return WelchResult{T: math.NaN(), DF: math.NaN(), P: 1}
	}
	mx, my := Mean(x), Mean(y)
	vx, vy := Variance(x), Variance(y)
	se2 := vx/nx + vy/ny
	if NearZero(se2) {
		if ApproxEqual(mx, my, Tol) {
			return WelchResult{T: 0, DF: nx + ny - 2, P: 1}
		}
		return WelchResult{T: math.Inf(sign(mx - my)), DF: nx + ny - 2, P: 0}
	}
	t := (mx - my) / math.Sqrt(se2)
	df := se2 * se2 / ((vx*vx)/(nx*nx*(nx-1)) + (vy*vy)/(ny*ny*(ny-1)))
	return WelchResult{T: t, DF: df, P: studentTTwoSided(t, df)}
}

// PairedT runs the paired-samples t-test: x[i] and y[i] are two ratings by
// the same rater, so the test statistic is the mean of the differences
// over their standard error, with n−1 degrees of freedom. More powerful
// than WelchT when ratings share per-rater bias (as the simulated panel's
// do). Returns P = 1 for degenerate inputs; P = 0 when the difference is
// nonzero and exactly constant.
func PairedT(x, y []float64) WelchResult {
	if len(x) != len(y) || len(x) < 2 {
		return WelchResult{T: math.NaN(), DF: math.NaN(), P: 1}
	}
	d := make([]float64, len(x))
	for i := range x {
		d[i] = x[i] - y[i]
	}
	md := Mean(d)
	vd := Variance(d)
	n := float64(len(d))
	if NearZero(vd) {
		if NearZero(md) {
			return WelchResult{T: 0, DF: n - 1, P: 1}
		}
		return WelchResult{T: math.Inf(sign(md)), DF: n - 1, P: 0}
	}
	t := md / math.Sqrt(vd/n)
	df := n - 1
	return WelchResult{T: t, DF: df, P: studentTTwoSided(t, df)}
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// studentTTwoSided returns P(|T| ≥ |t|) for T ~ Student-t with df degrees
// of freedom, via the regularized incomplete beta function:
//
//	p = I_{df/(df+t²)}(df/2, 1/2)
func studentTTwoSided(t, df float64) float64 {
	if math.IsNaN(t) || math.IsNaN(df) || df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the continued-fraction expansion (Numerical Recipes betacf),
// accurate to ~1e-10 for the parameter ranges a t-test produces.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
