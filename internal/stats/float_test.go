package stats

import (
	"math"
	"testing"
)

func TestNearZero(t *testing.T) {
	cases := []struct {
		x    float64
		want bool
	}{
		{0, true},
		{1e-13, true},
		{-1e-13, true},
		{1e-11, false},
		{1, false},
		{math.NaN(), false},
		{math.Inf(1), false},
	}
	for _, c := range cases {
		if got := NearZero(c.x); got != c.want {
			t.Errorf("NearZero(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{0, 0, 1e-12, true},
		{0.1 + 0.2, 0.3, 1e-12, true}, // the classic ulp mismatch
		{1, 1 + 1e-9, 1e-12, false},
		{1e18, 1e18 + 1, 1e-12, true}, // relative branch
		{1, 2, 1e-12, false},
		{math.NaN(), 1, 1e-12, false},
		{math.NaN(), math.NaN(), 1e-12, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

// TestWelchDegenerateNearZero checks the epsilon guards: two constant
// samples whose means were computed along different paths still hit the
// degenerate branch.
func TestWelchDegenerateNearZero(t *testing.T) {
	x := []float64{5, 5, 5}
	y := []float64{5, 5, 5}
	res := WelchT(x, y)
	if res.P != 1 || res.T != 0 {
		t.Errorf("equal constant samples: got T=%v P=%v, want T=0 P=1", res.T, res.P)
	}
	y2 := []float64{7, 7, 7}
	res2 := WelchT(x, y2)
	if res2.P != 0 || !math.IsInf(res2.T, -1) {
		t.Errorf("different constant samples: got T=%v P=%v, want T=-Inf P=0", res2.T, res2.P)
	}
}
