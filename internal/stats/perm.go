package stats

import (
	"math"
	"math/rand"
)

// TestStat selects the permutation test statistic of Table 1.
type TestStat int

const (
	// MeanDiff is |μX − μY|, the statistic for mean-greater insights.
	MeanDiff TestStat = iota
	// VarDiff is |σ²X − σ²Y|, the statistic for variance-greater insights.
	VarDiff
	// MedianDiff is |median(X) − median(Y)|, the statistic for the
	// median-greater extension type (the paper's §7 future work: new
	// insight types need a statistic, a hypothesis query, and adapted
	// scoring — this is the statistic).
	MedianDiff
)

func (s TestStat) String() string {
	switch s {
	case MeanDiff:
		return "|mean(X)-mean(Y)|"
	case VarDiff:
		return "|var(X)-var(Y)|"
	case MedianDiff:
		return "|median(X)-median(Y)|"
	default:
		return "TestStat(?)"
	}
}

// PairPerm holds a fixed set of label permutations for a two-sample test
// where side X has nx elements and side Y has ny. The paper's optimization
// of §5.1.1 — "we use the same permutations to check all possible insights
// on different measures for a given attribute" — is exactly reusing one
// PairPerm across measures: the pooled rows are the same, only the measure
// vector changes.
//
// Only the X-side index sets are stored (the Y side is the complement):
// for the mean and variance statistics the Y-side moments are derived from
// the pooled totals, so each permutation costs O(nx) instead of O(nx+ny).
type PairPerm struct {
	nx, ny int
	xIdx   [][]int32 // per permutation: the pooled indexes labelled X
}

// NewPairPerm draws nperm independent permutations of the pooled labels.
func NewPairPerm(nx, ny, nperm int, rng *rand.Rand) *PairPerm {
	n := nx + ny
	p := &PairPerm{nx: nx, ny: ny, xIdx: make([][]int32, nperm)}
	scratch := make([]int32, n)
	for i := range scratch {
		scratch[i] = int32(i)
	}
	for k := 0; k < nperm; k++ {
		// Partial Fisher–Yates: only the first nx draws are needed to
		// label side X uniformly.
		for i := 0; i < nx && i < n-1; i++ {
			j := i + rng.Intn(n-i)
			scratch[i], scratch[j] = scratch[j], scratch[i]
		}
		p.xIdx[k] = append([]int32(nil), scratch[:nx]...)
	}
	return p
}

// NumPerms returns the number of stored permutations.
func (p *PairPerm) NumPerms() int { return len(p.xIdx) }

// PValue runs the permutation test on pooled, which must contain side X's
// values followed by side Y's (len = nx+ny). It returns the observed
// statistic and the one-tailed p-value
//
//	p = (1 + #{permuted stat ≥ observed}) / (nperm + 1)
//
// with the +1 smoothing that keeps p > 0. NaN values in pooled must have
// been filtered by the caller; if the pool is too small for the statistic
// the p-value is 1 (nothing can be concluded).
func (p *PairPerm) PValue(pooled []float64, stat TestStat) (obs, pvalue float64) {
	if len(pooled) != p.nx+p.ny {
		panic("stats: pooled length does not match PairPerm sides")
	}
	if p.nx == 0 || p.ny == 0 {
		return math.NaN(), 1
	}
	var total, totalSq float64
	for _, v := range pooled {
		total += v
		totalSq += v * v
	}
	obs = p.statistic(pooled, nil, stat, total, totalSq)
	if math.IsNaN(obs) {
		return obs, 1
	}
	ge := 0
	for _, idx := range p.xIdx {
		if p.statistic(pooled, idx, stat, total, totalSq) >= obs {
			ge++
		}
	}
	return obs, float64(1+ge) / float64(1+len(p.xIdx))
}

// statistic computes the chosen statistic with side X being the pooled
// positions in xIdx (or the first nx positions when xIdx is nil).
func (p *PairPerm) statistic(pooled []float64, xIdx []int32, stat TestStat, total, totalSq float64) float64 {
	nx, ny := float64(p.nx), float64(p.ny)
	switch stat {
	case MeanDiff:
		sx := 0.0
		if xIdx == nil {
			for _, v := range pooled[:p.nx] {
				sx += v
			}
		} else {
			for _, i := range xIdx {
				sx += pooled[i]
			}
		}
		return math.Abs(sx/nx - (total-sx)/ny)
	case VarDiff:
		sx, qx := 0.0, 0.0
		if xIdx == nil {
			for _, v := range pooled[:p.nx] {
				sx += v
				qx += v * v
			}
		} else {
			for _, i := range xIdx {
				v := pooled[i]
				sx += v
				qx += v * v
			}
		}
		mx := sx / nx
		my := (total - sx) / ny
		vx := qx/nx - mx*mx
		vy := (totalSq-qx)/ny - my*my
		return math.Abs(vx - vy)
	case MedianDiff:
		xs := make([]float64, p.nx)
		ys := make([]float64, 0, p.ny)
		if xIdx == nil {
			copy(xs, pooled[:p.nx])
			ys = append(ys, pooled[p.nx:]...)
		} else {
			inX := make([]bool, len(pooled))
			for k, i := range xIdx {
				xs[k] = pooled[i]
				inX[i] = true
			}
			for i, v := range pooled {
				if !inX[i] {
					ys = append(ys, v)
				}
			}
		}
		return math.Abs(Median(xs) - Median(ys))
	default:
		panic("stats: unknown test statistic")
	}
}
