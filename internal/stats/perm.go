package stats

import (
	"context"
	"math"
	"math/rand"
)

// TestStat selects the permutation test statistic of Table 1.
type TestStat int

const (
	// MeanDiff is |μX − μY|, the statistic for mean-greater insights.
	MeanDiff TestStat = iota
	// VarDiff is |σ²X − σ²Y|, the statistic for variance-greater insights.
	VarDiff
	// MedianDiff is |median(X) − median(Y)|, the statistic for the
	// median-greater extension type (the paper's §7 future work: new
	// insight types need a statistic, a hypothesis query, and adapted
	// scoring — this is the statistic).
	MedianDiff
)

func (s TestStat) String() string {
	switch s {
	case MeanDiff:
		return "|mean(X)-mean(Y)|"
	case VarDiff:
		return "|var(X)-var(Y)|"
	case MedianDiff:
		return "|median(X)-median(Y)|"
	default:
		return "TestStat(?)"
	}
}

// PairPerm holds a fixed set of label permutations for a two-sample test
// where side X has nx elements and side Y has ny. The paper's optimization
// of §5.1.1 — "we use the same permutations to check all possible insights
// on different measures for a given attribute" — is exactly reusing one
// PairPerm across measures: the pooled rows are the same, only the measure
// vector changes.
//
// Only the X-side index sets are stored (the Y side is the complement):
// for the mean and variance statistics the Y-side moments are derived from
// the pooled totals, so each permutation costs O(nx) instead of O(nx+ny).
type PairPerm struct {
	nx, ny int
	xIdx   [][]int32 // per permutation: the pooled indexes labelled X
}

// permBlock is the resample-block width of the seeded generator: block b
// of NewPairPermSeeded covers permutations [b*permBlock, (b+1)*permBlock)
// and is drawn from its own RNG stream seeded by (seed, b). Because the
// block layout depends only on nperm, the permutations — and therefore
// every p-value computed from them — are bit-identical no matter how many
// workers generate or evaluate the blocks.
const permBlock = 64

// NewPairPerm draws nperm independent permutations of the pooled labels
// from a single sequential RNG stream. Prefer NewPairPermSeeded, whose
// block streams decouple the draw from any particular execution order;
// this constructor remains for callers that already hold an *rand.Rand.
func NewPairPerm(nx, ny, nperm int, rng *rand.Rand) *PairPerm {
	p := &PairPerm{nx: nx, ny: ny, xIdx: make([][]int32, nperm)}
	scratch := identityScratch(nx + ny)
	for k := 0; k < nperm; k++ {
		p.xIdx[k] = drawPerm(scratch, nx, rng)
	}
	return p
}

// NewPairPermSeeded draws nperm permutations in blocks of permBlock, block
// b from an RNG stream seeded with mix(seed, b), generating blocks on up
// to `threads` workers. The output is a pure function of
// (nx, ny, nperm, seed): thread count and scheduling cannot change a bit
// of it — the property the pipeline's determinism-across-threads contract
// rests on.
func NewPairPermSeeded(nx, ny, nperm int, seed int64, threads int) *PairPerm {
	// The background context never cancels, so the error is impossible.
	p, _ := NewPairPermSeededCtx(context.Background(), nx, ny, nperm, seed, threads)
	return p
}

// drawPerm labels side X by a partial Fisher–Yates over scratch: only the
// first nx draws are needed to label side X uniformly. scratch keeps its
// shuffled state between calls within one stream; the draw stays uniform
// because any starting arrangement of the pool is measure-preserving.
func drawPerm(scratch []int32, nx int, rng *rand.Rand) []int32 {
	n := len(scratch)
	for i := 0; i < nx && i < n-1; i++ {
		j := i + rng.Intn(n-i)
		scratch[i], scratch[j] = scratch[j], scratch[i]
	}
	return append([]int32(nil), scratch[:nx]...)
}

func identityScratch(n int) []int32 {
	scratch := make([]int32, n)
	for i := range scratch {
		scratch[i] = int32(i)
	}
	return scratch
}

// mixSeed derives a well-spread per-block seed (splitmix64 finalizer).
func mixSeed(base, block int64) int64 {
	z := uint64(base) + uint64(block+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// NumPerms returns the number of stored permutations.
func (p *PairPerm) NumPerms() int { return len(p.xIdx) }

// PValue runs the permutation test on pooled, which must contain side X's
// values followed by side Y's (len = nx+ny). It returns the observed
// statistic and the one-tailed p-value
//
//	p = (1 + #{permuted stat ≥ observed}) / (nperm + 1)
//
// with the +1 smoothing that keeps p > 0. NaN values in pooled must have
// been filtered by the caller; if the pool is too small for the statistic
// the p-value is 1 (nothing can be concluded).
func (p *PairPerm) PValue(pooled []float64, stat TestStat) (obs, pvalue float64) {
	return p.PValueThreads(pooled, stat, 1)
}

// PValueThreads is PValue with the nperm resamples split across up to
// `threads` workers. Each permutation's statistic is computed
// independently and the exceedance count is an integer sum, so the
// p-value is bit-identical for every thread count.
func (p *PairPerm) PValueThreads(pooled []float64, stat TestStat, threads int) (obs, pvalue float64) {
	// The background context never cancels, so the error is impossible.
	obs, pvalue, _ = p.PValueThreadsCtx(context.Background(), pooled, stat, threads)
	return obs, pvalue
}

// permScratch holds the per-worker buffers of the median statistic, so the
// hot loop allocates nothing per permutation.
type permScratch struct {
	xs, ys []float64
	inX    []bool
}

func newPermScratch(p *PairPerm, stat TestStat) *permScratch {
	if stat != MedianDiff {
		return nil
	}
	return &permScratch{
		xs:  make([]float64, p.nx),
		ys:  make([]float64, 0, p.ny),
		inX: make([]bool, p.nx+p.ny),
	}
}

// statistic computes the chosen statistic with side X being the pooled
// positions in xIdx (or the first nx positions when xIdx is nil). scratch
// is required for MedianDiff and ignored otherwise.
func (p *PairPerm) statistic(pooled []float64, xIdx []int32, stat TestStat, total, totalSq float64, scratch *permScratch) float64 {
	nx, ny := float64(p.nx), float64(p.ny)
	switch stat {
	case MeanDiff:
		sx := 0.0
		if xIdx == nil {
			for _, v := range pooled[:p.nx] {
				sx += v
			}
		} else {
			for _, i := range xIdx {
				sx += pooled[i]
			}
		}
		return math.Abs(sx/nx - (total-sx)/ny)
	case VarDiff:
		sx, qx := 0.0, 0.0
		if xIdx == nil {
			for _, v := range pooled[:p.nx] {
				sx += v
				qx += v * v
			}
		} else {
			for _, i := range xIdx {
				v := pooled[i]
				sx += v
				qx += v * v
			}
		}
		mx := sx / nx
		my := (total - sx) / ny
		vx := qx/nx - mx*mx
		vy := (totalSq-qx)/ny - my*my
		return math.Abs(vx - vy)
	case MedianDiff:
		xs := scratch.xs
		ys := scratch.ys[:0]
		if xIdx == nil {
			copy(xs, pooled[:p.nx])
			ys = append(ys, pooled[p.nx:]...)
		} else {
			inX := scratch.inX
			for i := range inX {
				inX[i] = false
			}
			for k, i := range xIdx {
				xs[k] = pooled[i]
				inX[i] = true
			}
			for i, v := range pooled {
				if !inX[i] {
					ys = append(ys, v)
				}
			}
		}
		scratch.ys = ys
		return math.Abs(Median(xs) - Median(ys))
	default:
		panic("stats: unknown test statistic")
	}
}
