package stats

import (
	"context"
	"errors"
	"testing"

	"comparenb/internal/faultinject"
)

// TestCtxVariantsMatchUncancelled: with a live context the ctx variants
// are bit-identical to the legacy entry points at every thread count.
func TestCtxVariantsMatchUncancelled(t *testing.T) {
	const nx, ny, nperm = 9, 7, 500
	pooled := make([]float64, nx+ny)
	for i := range pooled {
		pooled[i] = float64((i*i)%13) / 3.0
	}
	want := NewPairPermSeeded(nx, ny, nperm, 99, 1)
	for _, threads := range []int{1, 2, 5} {
		got, err := NewPairPermSeededCtx(context.Background(), nx, ny, nperm, 99, threads)
		if err != nil {
			t.Fatalf("threads=%d: unexpected error %v", threads, err)
		}
		for k := range want.xIdx {
			for j := range want.xIdx[k] {
				if got.xIdx[k][j] != want.xIdx[k][j] {
					t.Fatalf("threads=%d: permutation %d differs", threads, k)
				}
			}
		}
		for _, stat := range []TestStat{MeanDiff, VarDiff, MedianDiff} {
			wObs, wPV := want.PValueThreads(pooled, stat, 1)
			gObs, gPV, err := got.PValueThreadsCtx(context.Background(), pooled, stat, threads)
			if err != nil {
				t.Fatalf("threads=%d stat=%v: unexpected error %v", threads, stat, err)
			}
			// exact: determinism-across-threads is an exact, bit-level contract
			if wObs != gObs || wPV != gPV {
				t.Fatalf("threads=%d stat=%v: (%v,%v) != legacy (%v,%v)",
					threads, stat, gObs, gPV, wObs, wPV)
			}
		}
	}
}

// TestNewPairPermSeededCtxCancelled: a pre-cancelled context aborts the
// draw with the context's error.
func TestNewPairPermSeededCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, threads := range []int{1, 4} {
		if _, err := NewPairPermSeededCtx(ctx, 5, 5, 1000, 1, threads); !errors.Is(err, context.Canceled) {
			t.Errorf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
	}
}

// TestPValueThreadsCtxCancelMidway injects a cancellation at the k-th
// evaluation checkpoint via the fault-injection registry and checks the
// test aborts with the context's error on both the serial and parallel
// paths.
func TestPValueThreadsCtxCancelMidway(t *testing.T) {
	const nx, ny, nperm = 6, 6, 4000
	pooled := make([]float64, nx+ny)
	for i := range pooled {
		pooled[i] = float64(i % 5)
	}
	p := NewPairPermSeeded(nx, ny, nperm, 3, 1)
	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		restore := faultinject.Set(faultinject.StatsPermEval, faultinject.OnCall(3, cancel))
		_, _, err := p.PValueThreadsCtx(ctx, pooled, MeanDiff, threads)
		restore()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
	}
}

// TestNewPairPermSeededCtxCancelMidway injects a cancellation at the
// k-th block checkpoint and checks the generator gives up.
func TestNewPairPermSeededCtxCancelMidway(t *testing.T) {
	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		restore := faultinject.Set(faultinject.StatsPermBlock, faultinject.OnCall(2, cancel))
		_, err := NewPairPermSeededCtx(ctx, 5, 5, 10*permBlock, 1, threads)
		restore()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
	}
}
