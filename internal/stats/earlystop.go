package stats

import (
	"context"
	"math"
	"math/rand"

	"comparenb/internal/faultinject"
	// Aliased: `obs` is the conventional name of the observed statistic in
	// this package's named returns, which would shadow the package.
	obspkg "comparenb/internal/obs"
)

// earlyStopDelta is the per-check confidence parameter δ of the
// sequential Monte-Carlo bound: each block-boundary check uses a
// Hoeffding interval that covers the true exceedance probability with
// probability 1−δ. With permBlock = 64 and the pipeline's default
// permutation counts there are at most a handful of checks per test, so
// the union-bound error stays within a few percent — acceptable for a
// mode that only runs when the time budget is already under pressure.
const earlyStopDelta = 0.01

// PermBlock is the draw-block width of the seeded permutation streams,
// exported so budget-pressure callers can align truncation caps to whole
// blocks (the early-stopping kernel only checks its bound at block
// boundaries).
const PermBlock = permBlock

// earlyStopDecided reports whether, after m evaluated permutations with
// ge exceedances, the verdict of the test relative to alpha is already
// certain up to the Hoeffding bound: the true exceedance probability p
// satisfies |ge/m − p| ≤ sqrt(ln(2/δ)/(2m)) with probability 1−δ, so
// once the whole interval falls on one side of alpha, evaluating more
// permutations cannot (with confidence 1−δ) flip the verdict.
//
// The "certainly insignificant" direction is exact with respect to the
// BH correction: adjusted q-values are never smaller than the raw p, so
// p > alpha already implies q > alpha. The "certainly significant"
// direction is a heuristic under BH (the per-test threshold can be as
// small as alpha/n); the truncated p̂ still enters the correction, it
// is just a coarser estimate — which is the recorded degradation.
func earlyStopDecided(ge, m int, alpha float64) bool {
	if m == 0 {
		return false
	}
	phat := float64(ge) / float64(m)
	eps := math.Sqrt(math.Log(2/earlyStopDelta) / (2 * float64(m)))
	return phat+eps < alpha || phat-eps > alpha
}

// PValueEarlyStop is the budget-pressure variant of the permutation
// test: it draws and evaluates the same block-seeded permutation
// sequence as NewPairPermSeeded (block b from mixSeed(seed, b)), but
// lazily, one block at a time, stopping at the first block boundary
// where earlyStopDecided says the verdict relative to alpha cannot
// flip. It returns the observed statistic, the p-value estimate
// (1+ge)/(1+m) over the m permutations actually evaluated, and m
// itself (the `perms_effective` the run report records).
//
// Determinism: the truncation point is a pure function of
// (pooled, stat, nx, ny, nperm, seed, alpha) — blocks are evaluated in
// order on one goroutine and the bound is checked only at fixed block
// boundaries — so degraded runs that force this kernel everywhere are
// still byte-identical across thread counts. What the kernel does NOT
// promise is equality with the full test: sharing permutations across
// measures is skipped and the p-value is a truncated estimate, which is
// why the pipeline only selects it under budget pressure and records
// the switch in the report.
//
// Cancelling ctx aborts at the next block boundary with ctx's error.
// The StatsEarlyStop fault-injection site fires before every block.
func PValueEarlyStop(ctx context.Context, nx, ny, nperm int, seed int64, pooled []float64, stat TestStat, alpha float64) (obs, pvalue float64, permsUsed int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(pooled) != nx+ny {
		panic("stats: pooled length does not match early-stop sides")
	}
	if nx == 0 || ny == 0 || nperm <= 0 {
		return math.NaN(), 1, 0, ctx.Err()
	}
	p := &PairPerm{nx: nx, ny: ny}
	var total, totalSq float64
	for _, v := range pooled {
		total += v
		totalSq += v * v
	}
	scratch := newPermScratch(p, stat)
	obs = p.statistic(pooled, nil, stat, total, totalSq, scratch)
	if math.IsNaN(obs) {
		return obs, 1, 0, ctx.Err()
	}
	reg := obspkg.FromContext(ctx)
	sp := obspkg.StartSpan(ctx, "stats/pair/earlystop")
	defer sp.End()
	ge, m := 0, 0
	stopped := false
	nblocks := (nperm + permBlock - 1) / permBlock
	blocksRun := 0
	for b := 0; b < nblocks; b++ {
		faultinject.Fire(faultinject.StatsEarlyStop)
		if err := ctx.Err(); err != nil {
			return obs, 1, m, err
		}
		bsp := obspkg.StartSpan(ctx, "stats/pair/permblock")
		// Identical draws to NewPairPermSeeded's block b: same stream
		// seed, same partial Fisher–Yates over a persistent scratch —
		// the evaluated prefix is the full test's permutation prefix.
		rng := rand.New(rand.NewSource(mixSeed(seed, int64(b))))
		pool := identityScratch(nx + ny)
		hi := (b + 1) * permBlock
		if hi > nperm {
			hi = nperm
		}
		for k := b * permBlock; k < hi; k++ {
			n := len(pool)
			for i := 0; i < nx && i < n-1; i++ {
				j := i + rng.Intn(n-i)
				pool[i], pool[j] = pool[j], pool[i]
			}
			if p.statistic(pooled, pool[:nx], stat, total, totalSq, scratch) >= obs {
				ge++
			}
		}
		bsp.End()
		m = hi
		blocksRun = b + 1
		if earlyStopDecided(ge, m, alpha) {
			stopped = b+1 < nblocks
			break
		}
	}
	// Accounting is one handle fetch + bulk adds per test; every quantity
	// is a pure function of the inputs, so the sums are thread-invariant.
	reg.Counter("stats_earlystop_tests").Inc()
	reg.Counter("stats_perm_blocks_drawn").Add(int64(blocksRun))
	reg.Counter("stats_perms_evaluated").Add(int64(m))
	if stopped {
		reg.Counter("stats_earlystop_triggers").Inc()
	}
	return obs, float64(1+ge) / float64(1+m), m, ctx.Err()
}
