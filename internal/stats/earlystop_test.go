package stats

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"comparenb/internal/faultinject"
)

// clearPair returns two samples whose means are so far apart that the
// permutation null is rejected decisively — the early stop's
// "certainly insignificant" direction never applies, but a null pair
// (below) stops after one block.
func clearPair(n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = 100 + float64(i%7)
		ys[i] = float64(i % 7)
	}
	return xs, ys
}

// nullPair returns two samples drawn from the same deterministic
// sequence, so the true p-value is large and the early stop should
// certify "insignificant" after very few blocks.
func nullPair(n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = float64((i * 37) % 11)
		ys[i] = float64((i*37 + 5) % 11)
	}
	return xs, ys
}

func pooled(xs, ys []float64) []float64 {
	return append(append(make([]float64, 0, len(xs)+len(ys)), xs...), ys...)
}

func TestEarlyStopTruncatesNullPair(t *testing.T) {
	xs, ys := nullPair(60)
	const nperm = 2048
	obs, p, used, err := PValueEarlyStop(context.Background(), len(xs), len(ys), nperm, 7, pooled(xs, ys), MeanDiff, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(obs) {
		t.Fatal("observed statistic is NaN on finite data")
	}
	if used >= nperm {
		t.Errorf("null pair evaluated all %d permutations; early stop never triggered", used)
	}
	if used%permBlock != 0 && used != nperm {
		t.Errorf("truncation point %d is not a block boundary", used)
	}
	if p <= 0.05 {
		t.Errorf("null pair p = %v, want clearly insignificant", p)
	}
}

func TestEarlyStopPrefixMatchesFullTest(t *testing.T) {
	// When no stop triggers (alpha = 0 disables the "significant" side
	// and the pair is decisively significant so phat stays at 0 — with
	// alpha 0 the insignificant side needs phat > eps too), force full
	// evaluation by using an alpha no interval can clear: the verdict
	// interval always straddles it, so all nperm permutations run and
	// the p-value must equal the eager kernel's bit for bit.
	xs, ys := clearPair(40)
	const nperm, seed = 200, 99
	pl := pooled(xs, ys)

	// alpha = 0.5 with a decisively significant pair: phat = 0, and
	// 0 + eps < 0.5 requires m >= ln(2/δ)/(2·0.25) ≈ 11 — one block
	// decides. So use the *same seed* eager kernel truncated never:
	// compare against the early kernel run with an unreachable alpha.
	unreachable := math.Nextafter(0, 1) // no interval fits below it, phat-eps>alpha needs phat>eps
	obsE, pE, used, err := PValueEarlyStop(context.Background(), len(xs), len(ys), nperm, seed, pl, MeanDiff, unreachable)
	if err != nil {
		t.Fatal(err)
	}
	if used != nperm {
		t.Fatalf("unreachable alpha still stopped early at %d of %d", used, nperm)
	}
	pp := NewPairPermSeeded(len(xs), len(ys), nperm, seed, 3)
	obsF, pF := pp.PValueThreads(pl, MeanDiff, 3)
	if obsE != obsF { // exact: bit-identity is the contract under test
		t.Errorf("observed statistic differs: early %v, full %v", obsE, obsF)
	}
	if pE != pF { // exact: bit-identity is the contract under test
		t.Errorf("untruncated early-stop p = %v differs from full kernel p = %v", pE, pF)
	}
}

func TestEarlyStopDeterministic(t *testing.T) {
	xs, ys := nullPair(48)
	pl := pooled(xs, ys)
	_, p1, used1, err1 := PValueEarlyStop(context.Background(), len(xs), len(ys), 1024, 3, pl, VarDiff, 0.05)
	_, p2, used2, err2 := PValueEarlyStop(context.Background(), len(xs), len(ys), 1024, 3, pl, VarDiff, 0.05)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if used1 != used2 || p1 != p2 { // exact: determinism is the contract under test
		t.Errorf("two identical runs disagree: (%v, %d) vs (%v, %d)", p1, used1, p2, used2)
	}
}

func TestEarlyStopCancellation(t *testing.T) {
	xs, ys := clearPair(40)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer faultinject.Set(faultinject.StatsEarlyStop, faultinject.OnCall(2, cancel))()
	_, _, used, err := PValueEarlyStop(ctx, len(xs), len(ys), 2048, 1, pooled(xs, ys), MeanDiff, math.Nextafter(0, 1))
	if err == nil {
		t.Fatal("cancelled early-stop test returned no error")
	}
	if used >= 2048 {
		t.Errorf("cancellation did not abort the loop: %d permutations ran", used)
	}
}

func TestEarlyStopFiresSitePerBlock(t *testing.T) {
	var fired atomic.Int64
	defer faultinject.Set(faultinject.StatsEarlyStop,
		faultinject.Always(func() { fired.Add(1) }))()
	xs, ys := clearPair(30)
	_, _, used, err := PValueEarlyStop(context.Background(), len(xs), len(ys), 256, 5, pooled(xs, ys), MeanDiff, math.Nextafter(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64((used + permBlock - 1) / permBlock); fired.Load() != want {
		t.Errorf("StatsEarlyStop fired %d times for %d perms, want %d", fired.Load(), used, want)
	}
}

func TestEarlyStopDegenerateInputs(t *testing.T) {
	obs, p, used, err := PValueEarlyStop(context.Background(), 0, 0, 100, 1, nil, MeanDiff, 0.05)
	if err != nil || !math.IsNaN(obs) || p != 1 || used != 0 {
		t.Errorf("empty sides: obs=%v p=%v used=%d err=%v, want NaN/1/0/nil", obs, p, used, err)
	}
	nan := []float64{math.NaN(), 1, 2, 3}
	obs, p, _, err = PValueEarlyStop(context.Background(), 2, 2, 100, 1, nan, MeanDiff, 0.05)
	if err != nil || !math.IsNaN(obs) || p != 1 {
		t.Errorf("NaN pool: obs=%v p=%v err=%v, want NaN observed and p=1", obs, p, err)
	}
}
