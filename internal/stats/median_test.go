package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianKnown(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2}, 1.5},
		{[]float64{2, 1, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5, 5}, 5},
		{[]float64{-1, 0, 1}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{9, 1, 5, 3, 7}
	Median(in)
	want := []float64{9, 1, 5, 3, 7}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

// Property: Median agrees with the sort-based definition.
func TestQuickMedianMatchesSort(t *testing.T) {
	f := func(in []float64) bool {
		clean := in[:0:0]
		for _, v := range in {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		got := Median(clean)
		s := append([]float64(nil), clean...)
		sort.Float64s(s)
		var want float64
		n := len(s)
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		return got == want || math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickselectAllPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		in := make([]float64, n)
		for i := range in {
			in[i] = math.Floor(rng.Float64() * 10) // duplicates likely
		}
		s := append([]float64(nil), in...)
		sort.Float64s(s)
		for k := 0; k < n; k++ {
			buf := append([]float64(nil), in...)
			if got := quickselect(buf, k); got != s[k] {
				t.Fatalf("quickselect(%v, %d) = %v, want %v", in, k, got, s[k])
			}
		}
	}
}

func TestPermTestDetectsMedianShift(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nx, ny := 60, 60
	pooled := make([]float64, 0, nx+ny)
	for i := 0; i < nx; i++ {
		pooled = append(pooled, rng.NormFloat64())
	}
	for i := 0; i < ny; i++ {
		pooled = append(pooled, rng.NormFloat64()+2)
	}
	pp := NewPairPerm(nx, ny, 300, rng)
	obs, p := pp.PValue(pooled, MedianDiff)
	if obs < 1.2 {
		t.Errorf("observed |median diff| = %v, want ≈ 2", obs)
	}
	if p > 0.02 {
		t.Errorf("p = %v, want significant", p)
	}
}

func TestMedianDiffNullUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	small := 0
	reps := 100
	for r := 0; r < reps; r++ {
		pooled := make([]float64, 40)
		for i := range pooled {
			pooled[i] = rng.NormFloat64()
		}
		pp := NewPairPerm(20, 20, 100, rng)
		if _, p := pp.PValue(pooled, MedianDiff); p < 0.05 {
			small++
		}
	}
	if float64(small)/float64(reps) > 0.13 {
		t.Errorf("%d/%d null median p-values < 0.05", small, reps)
	}
}
