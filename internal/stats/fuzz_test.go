package stats

import (
	"math"
	"testing"
)

// naiveStatistic recomputes a permutation's statistic the obvious
// O(nx+ny) way — materialise both sides, then call the descriptive
// helpers — with none of the pooled-moment algebra the production path
// uses. It is the differential reference for FuzzPValue.
func naiveStatistic(p *PairPerm, pooled []float64, xIdx []int32, stat TestStat) float64 {
	xs := make([]float64, 0, p.nx)
	ys := make([]float64, 0, p.ny)
	if xIdx == nil {
		xs = append(xs, pooled[:p.nx]...)
		ys = append(ys, pooled[p.nx:]...)
	} else {
		inX := make([]bool, len(pooled))
		for _, i := range xIdx {
			inX[i] = true
			xs = append(xs, pooled[i])
		}
		for i, v := range pooled {
			if !inX[i] {
				ys = append(ys, v)
			}
		}
	}
	switch stat {
	case MeanDiff:
		return math.Abs(Mean(xs) - Mean(ys))
	case VarDiff:
		// Population variance, matching the pooled-moment formula
		// E[v²] − E[v]² used by the production statistic.
		popVar := func(v []float64) float64 {
			m := Mean(v)
			s := 0.0
			for _, x := range v {
				s += (x - m) * (x - m)
			}
			return s / float64(len(v))
		}
		return math.Abs(popVar(xs) - popVar(ys))
	case MedianDiff:
		return math.Abs(Median(xs) - Median(ys))
	default:
		panic("unknown stat")
	}
}

// FuzzPValue cross-checks the optimised permutation test against the
// naive reference on fuzzer-built pools. The production path derives the
// Y side from pooled totals, so individual statistics are only equal up
// to floating-point reordering; the assertion therefore brackets the
// production exceedance count between the reference's strict and loose
// counts instead of demanding bit equality. Thread counts 1 and 3 must
// agree exactly — that IS bit-level.
func FuzzPValue(f *testing.F) {
	f.Add([]byte{4, 3, 0}, int64(1))
	f.Add([]byte{2, 2, 1, 10, 20, 30, 250}, int64(42))
	f.Add([]byte{8, 5, 2, 1, 1, 1, 1, 200, 200, 200, 200}, int64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) < 3 {
			return
		}
		nx := 2 + int(data[0])%8
		ny := 2 + int(data[1])%8
		stat := TestStat(int(data[2]) % 3)
		pooled := make([]float64, nx+ny)
		body := data[3:]
		for i := range pooled {
			b := byte(i * 37)
			if len(body) > 0 {
				b = body[i%len(body)]
			}
			pooled[i] = float64(b) / 16.0
		}
		const nperm = 160
		p := NewPairPermSeeded(nx, ny, nperm, seed, 2)

		obs, pv := p.PValueThreads(pooled, stat, 1)
		obs3, pv3 := p.PValueThreads(pooled, stat, 3)
		// exact: thread-count independence is an exact, bit-level contract
		if obs != obs3 || pv != pv3 {
			t.Fatalf("thread dependence: (%v,%v) threads=1 vs (%v,%v) threads=3", obs, pv, obs3, pv3)
		}
		if pv <= 0 || pv > 1 || math.IsNaN(pv) {
			t.Fatalf("p-value out of (0,1]: %v", pv)
		}

		refObs := naiveStatistic(p, pooled, nil, stat)
		if math.Abs(obs-refObs) > 1e-9*(1+math.Abs(refObs)) {
			t.Fatalf("observed statistic: production %v vs naive %v", obs, refObs)
		}
		// Bracket the production count: strict (naive stat clearly above
		// obs) ≤ production ≤ loose (naive stat not clearly below).
		tol := 1e-9 * (1 + math.Abs(refObs))
		strict, loose := 0, 0
		for _, idx := range p.xIdx {
			s := naiveStatistic(p, pooled, idx, stat)
			if s >= refObs+tol {
				strict++
			}
			if s >= refObs-tol {
				loose++
			}
		}
		got := int(math.Round(pv*float64(1+nperm))) - 1
		if got < strict || got > loose {
			t.Fatalf("exceedance count %d outside naive bracket [%d, %d] (stat=%v)", got, strict, loose, stat)
		}
	})
}

// FuzzTTest checks the t-test invariants on fuzzer-built samples:
// p-values stay in [0,1], Welch is symmetric in its arguments bit for
// bit, and a sample paired with itself is never significant.
func FuzzTTest(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{5, 6, 7, 8})
	f.Add([]byte{0, 0}, []byte{255, 255, 255})
	f.Add([]byte{7}, []byte{})
	f.Fuzz(func(t *testing.T, bx, by []byte) {
		decode := func(bs []byte) []float64 {
			out := make([]float64, len(bs))
			for i, b := range bs {
				out[i] = float64(int(b)-128) / 8.0
			}
			return out
		}
		x, y := decode(bx), decode(by)

		w := WelchT(x, y)
		if w.P < 0 || w.P > 1 || math.IsNaN(w.P) {
			t.Fatalf("WelchT p-value out of range: %+v", w)
		}
		rev := WelchT(y, x)
		// exact: argument symmetry of Welch's t is exact: the statistic only negates
		if w.P != rev.P {
			t.Fatalf("WelchT asymmetric: p=%v vs reversed p=%v", w.P, rev.P)
		}
		if !math.IsNaN(w.T) && !math.IsNaN(rev.T) && math.Abs(w.T+rev.T) > 1e-12*(1+math.Abs(w.T)) {
			t.Fatalf("WelchT statistic not negated on swap: %v vs %v", w.T, rev.T)
		}

		pt := PairedT(x, y)
		if pt.P < 0 || pt.P > 1 || math.IsNaN(pt.P) {
			t.Fatalf("PairedT p-value out of range: %+v", pt)
		}
		self := PairedT(x, x)
		// exact: identical samples give exactly p = 1 by the degenerate-input contract
		if self.P != 1 {
			t.Fatalf("PairedT(x, x).P = %v, want 1", self.P)
		}
	})
}
