package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}

func TestDescriptive(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Sum(x); got != 40 {
		t.Errorf("Sum = %v, want 40", got)
	}
	if got := PopVariance(x); got != 4 {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(x); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(x); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestDescriptiveDegenerate(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of a single value should be NaN")
	}
	if got := PopVariance([]float64{3}); got != 0 {
		t.Errorf("PopVariance single value = %v, want 0", got)
	}
}

func TestPermTestDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nx, ny := 60, 60
	pooled := make([]float64, 0, nx+ny)
	for i := 0; i < nx; i++ {
		pooled = append(pooled, rng.NormFloat64())
	}
	for i := 0; i < ny; i++ {
		pooled = append(pooled, rng.NormFloat64()+2.0) // big shift
	}
	pp := NewPairPerm(nx, ny, 500, rng)
	obs, p := pp.PValue(pooled, MeanDiff)
	if obs < 1.5 {
		t.Errorf("observed |mean diff| = %v, want around 2", obs)
	}
	if p > 0.01 {
		t.Errorf("p = %v, want highly significant", p)
	}
}

func TestPermTestNullIsUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Under H0, p-values should be roughly uniform: their mean over many
	// repetitions should be near 0.5, and very few should be < 0.05.
	reps := 200
	small := 0
	sum := 0.0
	for r := 0; r < reps; r++ {
		nx, ny := 25, 25
		pooled := make([]float64, nx+ny)
		for i := range pooled {
			pooled[i] = rng.NormFloat64()
		}
		pp := NewPairPerm(nx, ny, 120, rng)
		_, p := pp.PValue(pooled, MeanDiff)
		sum += p
		if p < 0.05 {
			small++
		}
	}
	if mean := sum / float64(reps); mean < 0.4 || mean > 0.6 {
		t.Errorf("mean null p-value = %v, want ≈ 0.5", mean)
	}
	if float64(small)/float64(reps) > 0.12 {
		t.Errorf("%d/%d null p-values < 0.05, want ≈ 5%%", small, reps)
	}
}

func TestPermTestDetectsVarianceShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nx, ny := 80, 80
	pooled := make([]float64, 0, nx+ny)
	for i := 0; i < nx; i++ {
		pooled = append(pooled, rng.NormFloat64()*5)
	}
	for i := 0; i < ny; i++ {
		pooled = append(pooled, rng.NormFloat64()*0.5)
	}
	pp := NewPairPerm(nx, ny, 500, rng)
	_, p := pp.PValue(pooled, VarDiff)
	if p > 0.01 {
		t.Errorf("variance-shift p = %v, want highly significant", p)
	}
}

func TestPermSharedAcrossMeasures(t *testing.T) {
	// The same PairPerm must be reusable for different measure vectors and
	// give deterministic results.
	rng := rand.New(rand.NewSource(5))
	pp := NewPairPerm(10, 12, 100, rng)
	m1 := make([]float64, 22)
	m2 := make([]float64, 22)
	for i := range m1 {
		m1[i] = float64(i)
		m2[i] = float64(i * i)
	}
	_, p1a := pp.PValue(m1, MeanDiff)
	_, p2 := pp.PValue(m2, MeanDiff)
	_, p1b := pp.PValue(m1, MeanDiff)
	if p1a != p1b {
		t.Errorf("PValue not deterministic: %v vs %v", p1a, p1b)
	}
	if p1a == 0 || p2 == 0 {
		t.Error("smoothed p-values must be strictly positive")
	}
}

func TestPermPValueBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx := 2 + r.Intn(20)
		ny := 2 + r.Intn(20)
		pooled := make([]float64, nx+ny)
		for i := range pooled {
			pooled[i] = r.NormFloat64()
		}
		pp := NewPairPerm(nx, ny, 60, rng)
		for _, st := range []TestStat{MeanDiff, VarDiff} {
			_, p := pp.PValue(pooled, st)
			if p <= 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermEmptySide(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pp := NewPairPerm(0, 5, 10, rng)
	obs, p := pp.PValue(make([]float64, 5), MeanDiff)
	if !math.IsNaN(obs) || p != 1 {
		t.Errorf("empty side: obs=%v p=%v, want NaN, 1", obs, p)
	}
}

func TestPermPooledLengthPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pp := NewPairPerm(3, 3, 10, rng)
	defer func() {
		if recover() == nil {
			t.Error("mismatched pooled length did not panic")
		}
	}()
	pp.PValue(make([]float64, 5), MeanDiff)
}

func TestBenjaminiHochbergKnown(t *testing.T) {
	// Worked example: raw p = {0.01, 0.04, 0.03, 0.005}.
	// sorted: 0.005, 0.01, 0.03, 0.04 → raw q: 0.02, 0.02, 0.04, 0.04.
	p := []float64{0.01, 0.04, 0.03, 0.005}
	q := BenjaminiHochberg(p)
	want := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range q {
		if !almostEqual(q[i], want[i], 1e-12) {
			t.Errorf("q[%d] = %v, want %v", i, q[i], want[i])
		}
	}
}

func TestBenjaminiHochbergProperties(t *testing.T) {
	f := func(raw []float64) bool {
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(math.Mod(v, 1)) // clamp into [0,1)
		}
		q := BenjaminiHochberg(p)
		if len(q) != len(p) {
			return false
		}
		for i := range q {
			// q ≥ p (BH never makes p-values more significant) and q ≤ 1.
			if q[i] < p[i]-1e-12 || q[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBenjaminiHochbergMonotone(t *testing.T) {
	p := []float64{0.001, 0.002, 0.01, 0.2, 0.9}
	q := BenjaminiHochberg(p)
	for i := 1; i < len(q); i++ {
		if q[i] < q[i-1] {
			t.Errorf("adjusted q not monotone over sorted p: %v", q)
		}
	}
}

func TestRejectBH(t *testing.T) {
	p := []float64{0.001, 0.5, 0.012, 0.9}
	rej := RejectBH(p, 0.05)
	if !rej[0] || rej[1] || !rej[2] || rej[3] {
		t.Errorf("RejectBH = %v", rej)
	}
	if got := RejectBH(nil, 0.05); got != nil && len(got) != 0 {
		t.Errorf("RejectBH(nil) = %v", got)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	res := WelchT(x, y)
	if !almostEqual(res.T, -1.8973665961, 1e-9) {
		t.Errorf("T = %v, want -1.8974", res.T)
	}
	if !almostEqual(res.DF, 5.8823529412, 1e-9) {
		t.Errorf("DF = %v, want 5.8824", res.DF)
	}
	if res.P < 0.09 || res.P > 0.13 {
		t.Errorf("P = %v, want ≈ 0.108", res.P)
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	x := []float64{3, 3, 3}
	res := WelchT(x, x)
	if res.P != 1 || res.T != 0 {
		t.Errorf("identical zero-variance samples: T=%v P=%v", res.T, res.P)
	}
	res = WelchT([]float64{1, 1, 1}, []float64{2, 2, 2})
	if res.P != 0 {
		t.Errorf("separated zero-variance samples: P=%v, want 0", res.P)
	}
}

func TestWelchTSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, 20)
	y := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64() + 0.5
	}
	a, b := WelchT(x, y), WelchT(y, x)
	if !almostEqual(a.T, -b.T, 1e-12) || !almostEqual(a.P, b.P, 1e-12) {
		t.Errorf("asymmetry: (%v,%v) vs (%v,%v)", a.T, a.P, b.T, b.P)
	}
}

func TestWelchTSmallSamples(t *testing.T) {
	res := WelchT([]float64{1}, []float64{2, 3})
	if res.P != 1 {
		t.Errorf("undersized sample: P=%v, want 1", res.P)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.37, 0.5, 0.92} {
		if got := regIncBeta(1, 1, x); !almostEqual(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.2, 0.6} {
		a, b := 2.5, 4.0
		if got := regIncBeta(a, b, x) + regIncBeta(b, a, 1-x); !almostEqual(got, 1, 1e-10) {
			t.Errorf("symmetry violated at x=%v: %v", x, got)
		}
	}
}

func TestStudentTTwoSidedMonotone(t *testing.T) {
	// p must decrease as |t| grows.
	prev := 1.0
	for _, tv := range []float64{0, 0.5, 1, 2, 4, 8} {
		p := studentTTwoSided(tv, 10)
		if p > prev+1e-12 {
			t.Errorf("p(t=%v) = %v not monotone", tv, p)
		}
		prev = p
	}
	if p := studentTTwoSided(0, 10); !almostEqual(p, 1, 1e-10) {
		t.Errorf("p(t=0) = %v, want 1", p)
	}
}

func TestPairedTKnown(t *testing.T) {
	// Differences 2,2,2,2 with no variance → P = 0 (certain difference).
	res := PairedT([]float64{3, 4, 5, 6}, []float64{1, 2, 3, 4})
	if res.P != 0 {
		t.Errorf("constant difference: P = %v, want 0", res.P)
	}
	// Identical pairs → P = 1.
	x := []float64{1, 5, 3}
	res = PairedT(x, x)
	if res.P != 1 || res.T != 0 {
		t.Errorf("identical pairs: T=%v P=%v", res.T, res.P)
	}
	// Hand-checked example: d = {1, -1, 2, 0, 3} → mean 1, sd^2 = 2.5,
	// t = 1 / sqrt(2.5/5) = sqrt(2) ≈ 1.4142, df = 4, p ≈ 0.23.
	res = PairedT([]float64{2, 1, 4, 3, 8}, []float64{1, 2, 2, 3, 5})
	if !almostEqual(res.T, math.Sqrt2, 1e-9) {
		t.Errorf("T = %v, want √2", res.T)
	}
	if res.P < 0.2 || res.P > 0.26 {
		t.Errorf("P = %v, want ≈ 0.23", res.P)
	}
}

func TestPairedTDegenerate(t *testing.T) {
	if res := PairedT([]float64{1}, []float64{2}); res.P != 1 {
		t.Errorf("single pair: P = %v", res.P)
	}
	if res := PairedT([]float64{1, 2}, []float64{1}); res.P != 1 {
		t.Errorf("mismatched lengths: P = %v", res.P)
	}
}

// TestPairedTMorePowerfulThanWelch: with a shared per-subject offset, the
// paired test must detect a shift Welch dilutes.
func TestPairedTMorePowerfulThanWelch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	x := make([]float64, 12)
	y := make([]float64, 12)
	for i := range x {
		base := rng.NormFloat64() * 10 // large shared offset
		x[i] = base + 1 + rng.NormFloat64()*0.3
		y[i] = base + rng.NormFloat64()*0.3
	}
	paired := PairedT(x, y)
	welch := WelchT(x, y)
	if paired.P >= welch.P {
		t.Errorf("paired P=%v not smaller than Welch P=%v despite shared offsets", paired.P, welch.P)
	}
	if paired.P > 0.01 {
		t.Errorf("paired test missed a clear shift: P=%v", paired.P)
	}
}
