package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestSeededPermsThreadInvariant pins the block-stream contract: the drawn
// permutations are a pure function of (nx, ny, nperm, seed) — generating
// the blocks on more workers cannot change a single index.
func TestSeededPermsThreadInvariant(t *testing.T) {
	const nx, ny = 37, 53
	for _, nperm := range []int{1, permBlock - 1, permBlock, permBlock + 1, 4*permBlock + 7} {
		base := NewPairPermSeeded(nx, ny, nperm, 99, 1)
		for _, threads := range []int{2, 4, 8} {
			par := NewPairPermSeeded(nx, ny, nperm, 99, threads)
			for k := range base.xIdx {
				for i := range base.xIdx[k] {
					if base.xIdx[k][i] != par.xIdx[k][i] {
						t.Fatalf("nperm=%d threads=%d: perm %d index %d differs", nperm, threads, k, i)
					}
				}
			}
		}
	}
}

func TestSeededPermsDifferAcrossSeeds(t *testing.T) {
	a := NewPairPermSeeded(20, 20, 50, 1, 1)
	b := NewPairPermSeeded(20, 20, 50, 2, 1)
	same := true
	for k := range a.xIdx {
		for i := range a.xIdx[k] {
			if a.xIdx[k][i] != b.xIdx[k][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 drew identical permutation sets")
	}
}

// TestPValueThreadsBitIdentical checks the evaluation half: splitting the
// resamples across workers leaves the p-value bit-identical for every
// statistic (the exceedance count is an integer sum).
func TestPValueThreadsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const nx, ny = 80, 120
	pooled := make([]float64, nx+ny)
	for i := range pooled {
		pooled[i] = rng.NormFloat64()
		if i < nx {
			pooled[i] += 0.3 // a real effect, so p is non-trivial
		}
	}
	p := NewPairPermSeeded(nx, ny, 500, 11, 1)
	for _, stat := range []TestStat{MeanDiff, VarDiff, MedianDiff} {
		obs1, p1 := p.PValueThreads(pooled, stat, 1)
		for _, threads := range []int{2, 4, 8} {
			obs, pv := p.PValueThreads(pooled, stat, threads)
			if math.Float64bits(obs) != math.Float64bits(obs1) || math.Float64bits(pv) != math.Float64bits(p1) {
				t.Errorf("%s threads=%d: (obs, p) = (%v, %v), serial (%v, %v)", stat, threads, obs, pv, obs1, p1)
			}
		}
		if p1 <= 0 || p1 > 1 {
			t.Errorf("%s: p = %v out of (0, 1]", stat, p1)
		}
	}
}

// TestSeededMatchesSequentialFirstBlock sanity-checks the generator against
// the single-stream constructor: block 0 uses the stream seeded with
// mixSeed(seed, 0), so its permutations must match NewPairPerm drawn from
// that same source.
func TestSeededMatchesSequentialFirstBlock(t *testing.T) {
	const nx, ny, seed = 15, 25, 77
	seeded := NewPairPermSeeded(nx, ny, permBlock, seed, 1)
	seq := NewPairPerm(nx, ny, permBlock, rand.New(rand.NewSource(mixSeed(seed, 0))))
	for k := range seeded.xIdx {
		for i := range seeded.xIdx[k] {
			if seeded.xIdx[k][i] != seq.xIdx[k][i] {
				t.Fatalf("perm %d index %d: seeded %d, sequential %d", k, i, seeded.xIdx[k][i], seq.xIdx[k][i])
			}
		}
	}
}
