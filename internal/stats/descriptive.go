// Package stats implements the statistical machinery of the paper:
// resampling (permutation) tests for the mean-greater and variance-greater
// insight types (Table 1, §5.1.1), shared permutations across measures,
// Benjamini–Hochberg FDR correction, and the Welch t-test used by the user
// study analysis (§6.5). Everything is deterministic given a seed.
package stats

import "math"

// Mean returns the arithmetic mean of x, or NaN for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Sum returns the sum of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Variance returns the unbiased sample variance of x (denominator n−1), or
// NaN when len(x) < 2.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population variance of x (denominator n), or NaN
// for empty input. The permutation test statistic |σ²X − σ²Y| of Table 1
// uses this form so that single-element sides still yield a number.
func PopVariance(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the sample standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Median returns the median of x (the mean of the two middle values for
// even lengths), or NaN for empty input. x is not modified.
func Median(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return math.NaN()
	}
	buf := append([]float64(nil), x...)
	lo := quickselect(buf, (n-1)/2)
	if n%2 == 1 {
		return lo
	}
	hi := quickselect(buf, n/2)
	return (lo + hi) / 2
}

// quickselect returns the k-th smallest element (0-based), partially
// reordering buf in place. Hoare partitioning with median-of-three pivots:
// expected O(n).
func quickselect(buf []float64, k int) float64 {
	lo, hi := 0, len(buf)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		// Median-of-three pivot to dodge sorted-input quadratics.
		if buf[mid] < buf[lo] {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi] < buf[lo] {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[hi] < buf[mid] {
			buf[hi], buf[mid] = buf[mid], buf[hi]
		}
		pivot := buf[mid]
		i, j := lo, hi
		for i <= j {
			for buf[i] < pivot {
				i++
			}
			for buf[j] > pivot {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return buf[k]
		}
	}
	return buf[lo]
}
