package stats

import (
	"context"
	"math"
	"math/rand"

	"comparenb/internal/faultinject"
	// Aliased: `obs` is the conventional name of the observed statistic in
	// this package's named returns, which would shadow the package.
	obspkg "comparenb/internal/obs"
)

// permCheckStride is how many permutations an evaluation worker processes
// between two context polls (and faultinject ticks). Stride counts, not
// wall clock, so instrumentation cannot change which permutations are
// evaluated — cancellation only decides whether the loop finishes.
const permCheckStride = 256

// NewPairPermSeededCtx is NewPairPermSeeded with cooperative
// cancellation: each block generator polls ctx before starting a block
// and the whole draw aborts with ctx's error once cancelled. When ctx is
// never cancelled the output is bit-identical to NewPairPermSeeded's for
// every thread count — the checkpoints read, never perturb, the streams.
func NewPairPermSeededCtx(ctx context.Context, nx, ny, nperm int, seed int64, threads int) (*PairPerm, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &PairPerm{nx: nx, ny: ny, xIdx: make([][]int32, nperm)}
	nblocks := (nperm + permBlock - 1) / permBlock
	genBlock := func(ctx context.Context, b int) {
		sp := obspkg.StartSpan(ctx, "stats/pair/permblock")
		defer sp.End()
		faultinject.Fire(faultinject.StatsPermBlock)
		rng := rand.New(rand.NewSource(mixSeed(seed, int64(b))))
		scratch := identityScratch(nx + ny)
		lo := b * permBlock
		hi := lo + permBlock
		if hi > nperm {
			hi = nperm
		}
		for k := lo; k < hi; k++ {
			p.xIdx[k] = drawPerm(scratch, nx, rng)
		}
	}
	if err := forEachBlockCtx(ctx, threads, nblocks, genBlock); err != nil {
		return nil, err
	}
	// One bulk add per call (not per block) keeps the accounting off the
	// hot path; the total is a pure function of nperm, so thread-invariant.
	obspkg.FromContext(ctx).Counter("stats_perm_blocks_drawn").Add(int64(nblocks))
	return p, nil
}

// forEachBlockCtx runs fn(0..n-1) on up to `threads` goroutines, polling
// ctx before each block. A cancelled context stops every worker at its
// next block boundary; blocks already started run to completion, so fn
// never observes a half-initialised slot. Each parallel worker gets its
// own trace track so block spans never interleave on one track. Returns
// ctx's error, if any.
func forEachBlockCtx(ctx context.Context, threads, n int, fn func(ctx context.Context, b int)) error {
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for b := 0; b < n; b++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(ctx, b)
		}
		return ctx.Err()
	}
	done := make(chan struct{}, threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			wctx := obspkg.ForkTrack(ctx, "perm-block")
			for b := w; b < n; b += threads {
				if wctx.Err() != nil {
					return
				}
				fn(wctx, b)
			}
		}(w)
	}
	for w := 0; w < threads; w++ {
		<-done
	}
	return ctx.Err()
}

// PValueThreadsCtx is PValueThreads with cooperative cancellation: every
// worker polls ctx each permCheckStride permutations and the test aborts
// with ctx's error once cancelled. When ctx is never cancelled the
// result is bit-identical to PValueThreads' for every thread count: the
// exceedance count is an integer sum over a fixed stride partition that
// the checkpoints do not touch.
func (p *PairPerm) PValueThreadsCtx(ctx context.Context, pooled []float64, stat TestStat, threads int) (obs, pvalue float64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(pooled) != p.nx+p.ny {
		panic("stats: pooled length does not match PairPerm sides")
	}
	if p.nx == 0 || p.ny == 0 {
		return math.NaN(), 1, ctx.Err()
	}
	var total, totalSq float64
	for _, v := range pooled {
		total += v
		totalSq += v * v
	}
	obs = p.statistic(pooled, nil, stat, total, totalSq, newPermScratch(p, stat))
	if math.IsNaN(obs) {
		return obs, 1, ctx.Err()
	}
	nperm := len(p.xIdx)
	if threads > nperm {
		threads = nperm
	}
	// Handle fetched once per test, charged once per test: the evaluated
	// count is a pure function of nperm, so the sum is thread-invariant.
	permsEvaluated := obspkg.FromContext(ctx).Counter("stats_perms_evaluated")
	sp := obspkg.StartSpan(ctx, "stats/pair/permeval")
	defer sp.End()
	if threads <= 1 {
		scratch := newPermScratch(p, stat)
		ge := 0
		for k, idx := range p.xIdx {
			if k%permCheckStride == 0 {
				faultinject.Fire(faultinject.StatsPermEval)
				if err := ctx.Err(); err != nil {
					return obs, 1, err
				}
			}
			if p.statistic(pooled, idx, stat, total, totalSq, scratch) >= obs {
				ge++
			}
		}
		permsEvaluated.Add(int64(nperm))
		return obs, float64(1+ge) / float64(1+nperm), ctx.Err()
	}
	counts := make([]int, threads)
	done := make(chan struct{}, threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			wsp := obspkg.StartSpan(obspkg.ForkTrack(ctx, "perm-eval"), "stats/pair/permeval")
			defer wsp.End()
			scratch := newPermScratch(p, stat)
			ge, step := 0, 0
			for k := w; k < nperm; k += threads {
				if step%permCheckStride == 0 {
					faultinject.Fire(faultinject.StatsPermEval)
					if ctx.Err() != nil {
						return
					}
				}
				step++
				if p.statistic(pooled, p.xIdx[k], stat, total, totalSq, scratch) >= obs {
					ge++
				}
			}
			counts[w] = ge
		}(w)
	}
	for w := 0; w < threads; w++ {
		<-done
	}
	if err := ctx.Err(); err != nil {
		return obs, 1, err
	}
	ge := 0
	for _, c := range counts {
		ge += c
	}
	permsEvaluated.Add(int64(nperm))
	return obs, float64(1+ge) / float64(1+nperm), nil
}
