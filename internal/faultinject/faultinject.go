// Package faultinject provides deterministic, build-time-cheap fault
// hooks for the pipeline's robustness tests. Production code marks
// interesting execution points with Fire(site); tests register hooks that
// inject slowness or trigger cancellation at exactly those points.
//
// Design constraints, in order:
//
//   - Cheap when disabled. With no hooks registered, Fire is one atomic
//     pointer load and a nil check — no map lookup, no lock, no
//     allocation. The hooks therefore stay compiled into release builds
//     (no build tags to drift out of sync) without showing up in
//     profiles.
//   - Deterministic. Hooks decide when to act by counting calls (see
//     OnCall), never by wall-clock time, so an injected fault lands on
//     the same logical operation every run regardless of scheduling.
//   - Race-free. Fire may be called from any number of goroutines while
//     a test registers or clears hooks; the registry is an immutable
//     snapshot swapped atomically.
//
// Typical use in a test:
//
//	ctx, cancel := context.WithCancel(context.Background())
//	defer faultinject.Set(faultinject.StatsPermEval,
//	    faultinject.OnCall(3, func() { cancel() }))()
//	_, err := pipeline.GenerateContext(ctx, rel, cfg) // err is ctx.Err()
//
// See docs/ROBUSTNESS.md for the catalogue of sites and recipes.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Site names. Each constant marks one instrumented execution point; the
// string doubles as the registry key and as documentation of where the
// hook fires.
const (
	// EngineCubeShard fires once per shard scan of the parallel cube
	// build (internal/engine.BuildCubeParallelCtx), before the shard's
	// rows are aggregated.
	EngineCubeShard = "engine.cube.shard"
	// StatsPermBlock fires once per permutation block drawn by
	// stats.NewPairPermSeededCtx, before the block's resamples are
	// generated.
	StatsPermBlock = "stats.perm.block"
	// StatsPermEval fires once per worker stride chunk of
	// stats.(*PairPerm).PValueThreadsCtx, before the chunk's permutation
	// statistics are evaluated.
	StatsPermEval = "stats.perm.eval"
	// TapSearchTick fires when the exact TAP solver starts and then at
	// every periodic budget checkpoint of the branch-and-bound search
	// (every few thousand nodes).
	TapSearchTick = "tap.search.tick"
	// StatsEarlyStop fires once per block boundary of the early-stopping
	// permutation kernel (stats.PValueEarlyStop), before the block's
	// resamples are evaluated — i.e. at every point where the sequential
	// confidence bound may truncate the test.
	StatsEarlyStop = "stats.earlystop.block"
	// GovernorRebalance fires every time the resource governor re-splits
	// the remaining time budget at a phase boundary
	// (governor.(*Governor).StartPhase).
	GovernorRebalance = "governor.rebalance"
	// CacheAdmit fires once per memory-budget admission decision of the
	// cube cache (engine.CubeCache with a mem budget set), before the
	// estimate is compared against the budget.
	CacheAdmit = "engine.cache.admit"
	// TableEncodeColumn fires once per column of the lazy relation
	// encoding pass (table.(*Relation).Encoded), before the column is
	// scanned and encoded. A hook that panics table.EncodeAbort aborts
	// the encode permanently — Encoded recovers it, pins the relation to
	// nil, and the engine falls back to the raw float64 kernels. Any
	// other panic value propagates.
	TableEncodeColumn = "table.encode.column"
	// ServerAdmit fires once per notebook-job admission decision of the
	// notebook-generation server (internal/server), before the tenant
	// quotas and queue bounds are consulted. A Sleep hook here holds the
	// admission decision open — the deterministic way to line a request up
	// against a concurrent drain in shutdown tests.
	ServerAdmit = "server.admit"
	// ServerSessionLoad fires once per relation-load request of the
	// notebook-generation server (internal/server), after admission but
	// before the CSV is read, so tests can race a load against shutdown or
	// inject slowness into session establishment.
	ServerSessionLoad = "server.session.load"
	// DiskWrite fires immediately before every payload write of the
	// durability layer (internal/durable): a journal-record append or an
	// artifact-store temp-file write. A hook that kills the process here
	// simulates a crash before any bytes reached the kernel.
	DiskWrite = "durable.disk.write"
	// DiskFsync fires immediately before every fsync of the durability
	// layer — journal syncs, artifact-file syncs and directory syncs. A
	// crash here leaves bytes written but not yet durable.
	DiskFsync = "durable.disk.fsync"
	// DiskRename fires immediately before the atomic rename that makes a
	// stored file visible under its final name. A crash here leaves only
	// the invisible temp file, which the store sweeps on reopen.
	DiskRename = "durable.disk.rename"
)

// Hook is a registered fault handler. It runs synchronously inside the
// instrumented code path, so it must be safe for concurrent use and
// should be quick unless slowness is the point.
type Hook func(site string)

// registry is an immutable snapshot of the registered hooks. Mutation
// always builds a fresh map and swaps the pointer, so Fire can read
// without locking.
type registry struct {
	hooks map[string][]Hook
}

var (
	active atomic.Pointer[registry]
	mu     sync.Mutex // serialises Set / Reset rebuilds
)

// Fire runs the hooks registered for site, if any. With no hooks
// registered anywhere it costs one atomic load.
func Fire(site string) {
	r := active.Load()
	if r == nil {
		return
	}
	for _, h := range r.hooks[site] {
		h(site)
	}
}

// Enabled reports whether any hook is currently registered. Instrumented
// code does not need to call this — Fire already short-circuits — but
// tests use it to assert cleanup happened.
func Enabled() bool { return active.Load() != nil }

// Set registers a hook at site and returns a restore function that
// removes exactly that registration (other hooks, including other hooks
// on the same site, survive). Tests should defer the restore:
//
//	defer faultinject.Set(site, hook)()
func Set(site string, h Hook) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	next := cloneLocked()
	next.hooks[site] = append(next.hooks[site], h)
	publishLocked(next)
	idx := len(next.hooks[site]) - 1
	return func() {
		mu.Lock()
		defer mu.Unlock()
		cur := cloneLocked()
		hooks := cur.hooks[site]
		if idx < len(hooks) {
			hooks = append(append([]Hook(nil), hooks[:idx]...), hooks[idx+1:]...)
		}
		if len(hooks) == 0 {
			delete(cur.hooks, site)
		} else {
			cur.hooks[site] = hooks
		}
		publishLocked(cur)
	}
}

// Reset removes every registered hook. Tests that register several hooks
// can defer one Reset instead of stacking restores.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Store(nil)
}

// cloneLocked deep-copies the current registry so the published snapshot
// is never mutated in place. Callers hold mu.
func cloneLocked() *registry {
	next := &registry{hooks: make(map[string][]Hook)}
	if cur := active.Load(); cur != nil {
		for site, hooks := range cur.hooks {
			// Map-to-map copy: iteration order cannot be observed.
			next.hooks[site] = append([]Hook(nil), hooks...) //nolint:maporder
		}
	}
	return next
}

// publishLocked swaps in the rebuilt registry, dropping to nil when it is
// empty so Fire stays on its cheapest path. Callers hold mu.
func publishLocked(r *registry) {
	if len(r.hooks) == 0 {
		active.Store(nil)
		return
	}
	active.Store(r)
}

// OnCall returns a hook that runs f exactly once, on the n-th time the
// hook fires (1-based), counting atomically across goroutines. Counting
// calls rather than elapsed time is what keeps injected faults landing on
// the same logical operation every run.
func OnCall(n uint64, f func()) Hook {
	var calls atomic.Uint64
	return func(string) {
		if calls.Add(1) == n {
			f()
		}
	}
}

// Always returns a hook that runs f on every firing.
func Always(f func()) Hook {
	return func(string) { f() }
}

// Sleep returns a hook that sleeps for d on every firing — injected
// slowness, for driving a deadline past expiry at a chosen point.
func Sleep(d time.Duration) Hook {
	return func(string) { time.Sleep(d) }
}
