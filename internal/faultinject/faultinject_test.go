package faultinject

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFireWithoutHooksIsNoop(t *testing.T) {
	if Enabled() {
		t.Fatal("registry not empty at test start")
	}
	Fire(EngineCubeShard) // must not panic or block
}

func TestSetFireRestore(t *testing.T) {
	var hits atomic.Int64
	restore := Set(StatsPermEval, Always(func() { hits.Add(1) }))
	if !Enabled() {
		t.Fatal("Set did not enable the registry")
	}
	Fire(StatsPermEval)
	Fire(StatsPermEval)
	Fire(StatsPermBlock) // different site: no hook
	if got := hits.Load(); got != 2 {
		t.Fatalf("hook fired %d times, want 2", got)
	}
	restore()
	if Enabled() {
		t.Fatal("restore left the registry enabled")
	}
	Fire(StatsPermEval)
	if got := hits.Load(); got != 2 {
		t.Fatalf("hook fired after restore: %d", got)
	}
}

func TestOnCallFiresExactlyOnce(t *testing.T) {
	defer Reset()
	var fired atomic.Int64
	Set(TapSearchTick, OnCall(3, func() { fired.Add(1) }))
	for i := 0; i < 10; i++ {
		Fire(TapSearchTick)
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("OnCall(3) fired %d times over 10 calls, want 1", got)
	}
}

func TestMultipleHooksSameSite(t *testing.T) {
	defer Reset()
	var a, b atomic.Int64
	restoreA := Set(EngineCubeShard, Always(func() { a.Add(1) }))
	Set(EngineCubeShard, Always(func() { b.Add(1) }))
	Fire(EngineCubeShard)
	if a.Load() != 1 || b.Load() != 1 {
		t.Fatalf("hooks fired a=%d b=%d, want 1/1", a.Load(), b.Load())
	}
	restoreA()
	Fire(EngineCubeShard)
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatalf("after restoring a: a=%d b=%d, want 1/2", a.Load(), b.Load())
	}
}

// TestConcurrentFire exercises Fire from many goroutines while hooks are
// being registered and removed; run under -race this pins the registry's
// publication discipline.
func TestConcurrentFire(t *testing.T) {
	defer Reset()
	var hits atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Fire(StatsPermBlock)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		restore := Set(StatsPermBlock, Always(func() { hits.Add(1) }))
		time.Sleep(100 * time.Microsecond)
		restore()
	}
	close(stop)
	wg.Wait()
	if hits.Load() == 0 {
		t.Error("no hook firing observed across 50 register/unregister cycles")
	}
}

func TestSleepHookSleeps(t *testing.T) {
	defer Reset()
	Set(TapSearchTick, Sleep(10*time.Millisecond))
	start := time.Now()
	Fire(TapSearchTick)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("Sleep hook returned after %v, want >= 10ms", elapsed)
	}
}
