package table

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickCSVNeverPanics feeds arbitrary text through the CSV loader: it
// may return an error but must never panic, and a successful load must
// have consistent shape.
func TestQuickCSVNeverPanics(t *testing.T) {
	f := func(body string) bool {
		rel, rep, err := FromCSV(strings.NewReader(body), CSVOptions{Name: "fuzz"})
		if err != nil {
			return true
		}
		if rel.NumRows() != rep.Rows {
			return false
		}
		if rel.NumCatAttrs() != len(rep.Categorical) || rel.NumMeasures() != len(rep.Numeric) {
			return false
		}
		for a := 0; a < rel.NumCatAttrs(); a++ {
			if len(rel.CatCol(a)) != rel.NumRows() {
				return false
			}
		}
		for m := 0; m < rel.NumMeasures(); m++ {
			if len(rel.MeasCol(m)) != rel.NumRows() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCSVRoundTripStable: loading the CSV we wrote produces the same
// relation (for relations without NaN and without embedded newlines that
// the csv writer would quote — WriteCSV handles quoting, so any values
// are fine).
func TestQuickCSVRoundTripStable(t *testing.T) {
	f := func(vals []string, meas []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range meas {
			if v != v { // skip NaN inputs
				return true
			}
		}
		b := NewBuilder("q", []string{"a"}, []string{"m"})
		for i, v := range vals {
			mv := 0.0
			if len(meas) > 0 {
				mv = meas[i%len(meas)]
			}
			b.AddRow([]string{v}, []float64{mv})
		}
		r1 := b.Build()
		var sb strings.Builder
		if err := r1.WriteCSV(&sb); err != nil {
			return false
		}
		r2, _, err := FromCSV(strings.NewReader(sb.String()), CSVOptions{
			Name:             "q",
			ForceCategorical: []string{"a"},
			ForceNumeric:     []string{"m"},
		})
		if err != nil {
			// encoding/csv cannot represent a lone "\r" etc.; an error is
			// acceptable, silent corruption is not.
			return true
		}
		if r2.NumRows() != r1.NumRows() {
			return false
		}
		for i := 0; i < r1.NumRows(); i++ {
			v1 := r1.Value(0, r1.CatCol(0)[i])
			v2 := r2.Value(0, r2.CatCol(0)[i])
			if normalizeCRLF(v1) != normalizeCRLF(v2) {
				return false
			}
			if r1.MeasCol(0)[i] != r2.MeasCol(0)[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// normalizeCRLF mirrors encoding/csv's documented newline normalisation
// inside quoted fields.
func normalizeCRLF(s string) string {
	return strings.ReplaceAll(s, "\r\n", "\n")
}
