package table

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// FuzzCSV feeds arbitrary bytes through the CSV loader. The loader may
// refuse the input, but it must never panic, never return a partial
// relation alongside an error, never exceed an armed MaxRows, and every
// string a successful load retains must be valid UTF-8 — those strings
// flow verbatim into notebooks and JSON reports.
func FuzzCSV(f *testing.F) {
	f.Add([]byte("continent,cases\nAfrica,3\nAsia,4\n"), int64(0))
	f.Add([]byte("a,b\n1\n"), int64(0))                    // ragged row
	f.Add([]byte("a,a\n1,2\n"), int64(0))                  // duplicate header
	f.Add([]byte(",b\n1,2\n"), int64(0))                   // empty header
	f.Add([]byte("a,b\nx,\xff\n"), int64(0))               // invalid UTF-8 cell
	f.Add([]byte("a,b\n1,2\n3,4\n5,6\n"), int64(2))        // MaxRows exceeded
	f.Add([]byte("a,\"b\nc\",d\n\"x,y\",2,3\n"), int64(0)) // quoting
	f.Fuzz(func(t *testing.T, data []byte, maxRows int64) {
		opts := CSVOptions{Name: "fuzz"}
		if maxRows > 0 {
			opts.MaxRows = int(maxRows % 1024)
		}
		rel, rep, err := FromCSV(bytes.NewReader(data), opts)
		if err != nil {
			if rel != nil || rep != nil {
				t.Fatalf("FromCSV returned partial result alongside error %v", err)
			}
			return
		}
		if opts.MaxRows > 0 && rel.NumRows() > opts.MaxRows {
			t.Fatalf("loaded %d rows past MaxRows=%d", rel.NumRows(), opts.MaxRows)
		}
		if rel.NumRows() != rep.Rows {
			t.Fatalf("relation rows %d != report rows %d", rel.NumRows(), rep.Rows)
		}
		if rel.NumCatAttrs() != len(rep.Categorical) || rel.NumMeasures() != len(rep.Numeric) {
			t.Fatalf("relation shape disagrees with report: %v / %v", rep.Categorical, rep.Numeric)
		}
		for a := 0; a < rel.NumCatAttrs(); a++ {
			if !utf8.ValidString(rel.CatName(a)) {
				t.Fatalf("attribute %d name is invalid UTF-8", a)
			}
			if len(rel.CatCol(a)) != rel.NumRows() {
				t.Fatalf("attribute %d column length %d != %d rows", a, len(rel.CatCol(a)), rel.NumRows())
			}
			for v := 0; v < rel.DomSize(a); v++ {
				if !utf8.ValidString(rel.Value(a, int32(v))) {
					t.Fatalf("attribute %d value %d is invalid UTF-8", a, v)
				}
			}
		}
		for m := 0; m < rel.NumMeasures(); m++ {
			if !utf8.ValidString(rel.MeasName(m)) {
				t.Fatalf("measure %d name is invalid UTF-8", m)
			}
			if len(rel.MeasCol(m)) != rel.NumRows() {
				t.Fatalf("measure %d column length %d != %d rows", m, len(rel.MeasCol(m)), rel.NumRows())
			}
		}
	})
}

// TestQuickCSVNeverPanics feeds arbitrary text through the CSV loader: it
// may return an error but must never panic, and a successful load must
// have consistent shape.
func TestQuickCSVNeverPanics(t *testing.T) {
	f := func(body string) bool {
		rel, rep, err := FromCSV(strings.NewReader(body), CSVOptions{Name: "fuzz"})
		if err != nil {
			return true
		}
		if rel.NumRows() != rep.Rows {
			return false
		}
		if rel.NumCatAttrs() != len(rep.Categorical) || rel.NumMeasures() != len(rep.Numeric) {
			return false
		}
		for a := 0; a < rel.NumCatAttrs(); a++ {
			if len(rel.CatCol(a)) != rel.NumRows() {
				return false
			}
		}
		for m := 0; m < rel.NumMeasures(); m++ {
			if len(rel.MeasCol(m)) != rel.NumRows() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCSVRoundTripStable: loading the CSV we wrote produces the same
// relation (for relations without NaN and without embedded newlines that
// the csv writer would quote — WriteCSV handles quoting, so any values
// are fine).
func TestQuickCSVRoundTripStable(t *testing.T) {
	f := func(vals []string, meas []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range meas {
			if v != v { // skip NaN inputs
				return true
			}
		}
		b := NewBuilder("q", []string{"a"}, []string{"m"})
		for i, v := range vals {
			mv := 0.0
			if len(meas) > 0 {
				mv = meas[i%len(meas)]
			}
			b.AddRow([]string{v}, []float64{mv})
		}
		r1 := b.Build()
		var sb strings.Builder
		if err := r1.WriteCSV(&sb); err != nil {
			return false
		}
		r2, _, err := FromCSV(strings.NewReader(sb.String()), CSVOptions{
			Name:             "q",
			ForceCategorical: []string{"a"},
			ForceNumeric:     []string{"m"},
		})
		if err != nil {
			// encoding/csv cannot represent a lone "\r" etc.; an error is
			// acceptable, silent corruption is not.
			return true
		}
		if r2.NumRows() != r1.NumRows() {
			return false
		}
		for i := 0; i < r1.NumRows(); i++ {
			v1 := r1.Value(0, r1.CatCol(0)[i])
			v2 := r2.Value(0, r2.CatCol(0)[i])
			if normalizeCRLF(v1) != normalizeCRLF(v2) {
				return false
			}
			if r1.MeasCol(0)[i] != r2.MeasCol(0)[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// normalizeCRLF mirrors encoding/csv's documented newline normalisation
// inside quoted fields.
func normalizeCRLF(s string) string {
	return strings.ReplaceAll(s, "\r\n", "\n")
}

// FuzzEncoding drives the columnar encoder with arbitrary bytes: the first
// byte picks a dictionary width for the categorical interpretation, the
// rest decode as float64 bit patterns (measure) and as codes modulo the
// width (categorical). Whatever regime the encoder picks — const, seq,
// frame-of-reference, bit-packed dictionary, or a raw fallback — the round
// trip must be bit-for-bit lossless; the engine's encoded kernels are only
// correct because this property has no exceptions.
func FuzzEncoding(f *testing.F) {
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{1, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1}) // NaN-ish bit pattern
	f.Add([]byte{255, 0x80, 0, 0, 0, 0, 0, 0, 0})  // -0.0 bit pattern
	f.Add([]byte{7, 0x40, 0x45, 0, 0, 0, 0, 0, 0, 0x40, 0x45, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		dom := int(data[0])%1000 + 1
		body := data[1:]
		n := len(body) / 8
		if n == 0 {
			return
		}
		vals := make([]float64, n)
		codes := make([]int32, n)
		for i := 0; i < n; i++ {
			bits := binary.LittleEndian.Uint64(body[i*8:])
			vals[i] = math.Float64frombits(bits)
			codes[i] = int32(bits % uint64(dom))
		}

		mc := encodeMeas(vals)
		if mc.Len() != n {
			t.Fatalf("measure Len = %d, want %d", mc.Len(), n)
		}
		got := make([]float64, n)
		mc.UnpackValues(got, 0, n)
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("measure %s: row %d = %x, want %x",
					mc.Encoding(), i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
			if v := mc.Value(i); math.Float64bits(v) != math.Float64bits(vals[i]) {
				t.Fatalf("measure %s: Value(%d) disagrees with UnpackValues", mc.Encoding(), i)
			}
		}

		cc := encodeCat(codes, dom)
		if cc.Len() != n {
			t.Fatalf("cat Len = %d, want %d", cc.Len(), n)
		}
		gotc := make([]int32, n)
		cc.UnpackCodes(gotc, 0, n)
		for i := range codes {
			if gotc[i] != codes[i] || cc.Code(i) != codes[i] {
				t.Fatalf("cat %s: row %d = %d/%d, want %d", cc.Encoding(), i, gotc[i], cc.Code(i), codes[i])
			}
		}
	})
}
