// Package table implements the columnar, in-memory relation that the whole
// system runs on. A Relation matches the paper's setting: one table
// R[A1..An, M1..Mm] whose Ai are categorical attributes and whose Mj are
// numeric measures. Categorical columns are dictionary-encoded: each column
// stores one int32 code per row plus a code→string dictionary, so the active
// domain dom(Ai) is the dictionary itself and group-by keys are cheap
// integer compositions.
package table

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the two attribute families of the paper's schema.
type Kind int

const (
	// Categorical attributes are the Ai: grouping/selection attributes.
	Categorical Kind = iota
	// Numeric attributes are the measures Mj.
	Numeric
)

func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Relation is an immutable columnar table. Build one with a Builder or
// FromCSV; afterwards it is safe for concurrent readers.
type Relation struct {
	name string
	rows int

	catNames []string
	catCols  [][]int32
	catDicts [][]string
	catIndex []map[string]int32

	measNames []string
	measCols  [][]float64

	// Lazily built compressed view; see Encoded in encode.go. Guarded by
	// encodeOnce so concurrent first readers encode at most once.
	encodeOnce sync.Once
	encodeDone atomic.Bool
	encoded    *EncodedRelation
}

// Name returns the relation name (e.g. the CSV base name).
func (r *Relation) Name() string { return r.name }

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int { return r.rows }

// NumCatAttrs returns n, the number of categorical attributes.
func (r *Relation) NumCatAttrs() int { return len(r.catNames) }

// NumMeasures returns m, the number of measures.
func (r *Relation) NumMeasures() int { return len(r.measNames) }

// CatName returns the name of categorical attribute a.
func (r *Relation) CatName(a int) string { return r.catNames[a] }

// MeasName returns the name of measure m.
func (r *Relation) MeasName(m int) string { return r.measNames[m] }

// CatNames returns a copy of all categorical attribute names.
func (r *Relation) CatNames() []string {
	out := make([]string, len(r.catNames))
	copy(out, r.catNames)
	return out
}

// MeasNames returns a copy of all measure names.
func (r *Relation) MeasNames() []string {
	out := make([]string, len(r.measNames))
	copy(out, r.measNames)
	return out
}

// CatIndexOf returns the index of the categorical attribute with the given
// name, or -1 if there is no such attribute.
func (r *Relation) CatIndexOf(name string) int {
	for i, n := range r.catNames {
		if n == name {
			return i
		}
	}
	return -1
}

// MeasIndexOf returns the index of the measure with the given name, or -1.
func (r *Relation) MeasIndexOf(name string) int {
	for i, n := range r.measNames {
		if n == name {
			return i
		}
	}
	return -1
}

// CatCol returns the dictionary codes of categorical attribute a. The slice
// is owned by the relation: callers must not modify it.
func (r *Relation) CatCol(a int) []int32 { return r.catCols[a] }

// MeasCol returns the values of measure m. The slice is owned by the
// relation: callers must not modify it.
func (r *Relation) MeasCol(m int) []float64 { return r.measCols[m] }

// DomSize returns |dom(Aa)|, the active-domain size of attribute a.
func (r *Relation) DomSize(a int) int { return len(r.catDicts[a]) }

// Value decodes code c of attribute a back to its string value.
func (r *Relation) Value(a int, c int32) string { return r.catDicts[a][c] }

// Dict returns a copy of attribute a's dictionary (code → value).
func (r *Relation) Dict(a int) []string {
	out := make([]string, len(r.catDicts[a]))
	copy(out, r.catDicts[a])
	return out
}

// CodeOf returns the code for value v of attribute a, and whether the value
// occurs in the active domain.
func (r *Relation) CodeOf(a int, v string) (int32, bool) {
	c, ok := r.catIndex[a][v]
	return c, ok
}

// Select materialises the sub-relation consisting of the given row indexes
// (in order). Dictionaries are shared with the parent, so codes remain
// comparable across parent and sample — which is what the sampling-based
// statistical tests of §5.1.2 need.
func (r *Relation) Select(rows []int) *Relation {
	s := &Relation{
		name:      r.name,
		rows:      len(rows),
		catNames:  r.catNames,
		catDicts:  r.catDicts,
		catIndex:  r.catIndex,
		measNames: r.measNames,
	}
	s.catCols = make([][]int32, len(r.catCols))
	for a, col := range r.catCols {
		sub := make([]int32, len(rows))
		for i, ri := range rows {
			sub[i] = col[ri]
		}
		s.catCols[a] = sub
	}
	s.measCols = make([][]float64, len(r.measCols))
	for m, col := range r.measCols {
		sub := make([]float64, len(rows))
		for i, ri := range rows {
			sub[i] = col[ri]
		}
		s.measCols[m] = sub
	}
	return s
}

// Row formats row i as attribute=value pairs, mainly for debugging and
// error messages.
func (r *Relation) Row(i int) string {
	parts := make([]string, 0, len(r.catNames)+len(r.measNames))
	for a, n := range r.catNames {
		parts = append(parts, fmt.Sprintf("%s=%s", n, r.catDicts[a][r.catCols[a][i]]))
	}
	for m, n := range r.measNames {
		parts = append(parts, fmt.Sprintf("%s=%g", n, r.measCols[m][i]))
	}
	return "{" + join(parts, ", ") + "}"
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// Builder assembles a Relation row by row. The zero value is not usable;
// create one with NewBuilder.
type Builder struct {
	rel      *Relation
	finished bool
}

// NewBuilder creates a builder for a relation with the given categorical
// attribute names and measure names.
func NewBuilder(name string, catNames, measNames []string) *Builder {
	r := &Relation{
		name:      name,
		catNames:  append([]string(nil), catNames...),
		measNames: append([]string(nil), measNames...),
	}
	r.catCols = make([][]int32, len(catNames))
	r.catDicts = make([][]string, len(catNames))
	r.catIndex = make([]map[string]int32, len(catNames))
	for i := range catNames {
		r.catIndex[i] = make(map[string]int32)
	}
	r.measCols = make([][]float64, len(measNames))
	return &Builder{rel: r}
}

// AddRow appends one tuple. cats and meas must match the builder's schema
// lengths; AddRow panics otherwise, since this is a programming error.
func (b *Builder) AddRow(cats []string, meas []float64) {
	if b.finished {
		panic("table: AddRow after Build")
	}
	r := b.rel
	if len(cats) != len(r.catNames) || len(meas) != len(r.measNames) {
		panic(fmt.Sprintf("table: AddRow arity mismatch: got %d cats %d meas, want %d and %d",
			len(cats), len(meas), len(r.catNames), len(r.measNames)))
	}
	for a, v := range cats {
		code, ok := r.catIndex[a][v]
		if !ok {
			code = int32(len(r.catDicts[a]))
			r.catDicts[a] = append(r.catDicts[a], v)
			r.catIndex[a][v] = code
		}
		r.catCols[a] = append(r.catCols[a], code)
	}
	for m, v := range meas {
		r.measCols[m] = append(r.measCols[m], v)
	}
	r.rows++
}

// Build finalises and returns the relation. The builder must not be used
// afterwards.
func (b *Builder) Build() *Relation {
	b.finished = true
	return b.rel
}

// SortedDomain returns the codes of attribute a ordered by their string
// values. Deterministic enumeration of val/val' pairs (Lemma 3.2/3.5) uses
// this so runs are reproducible regardless of input row order.
func (r *Relation) SortedDomain(a int) []int32 {
	codes := make([]int32, len(r.catDicts[a]))
	for i := range codes {
		codes[i] = int32(i)
	}
	dict := r.catDicts[a]
	sort.Slice(codes, func(i, j int) bool { return dict[codes[i]] < dict[codes[j]] })
	return codes
}
