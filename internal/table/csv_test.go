package table

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleCSV = `continent,month,cases,rate
Africa,4,31598,0.5
America,4,1104862,1.25
Africa,5,92626,0.8
America,5,1404912,2.0
`

func TestFromCSVInference(t *testing.T) {
	r, rep, err := FromCSV(strings.NewReader(sampleCSV), CSVOptions{Name: "covid", ForceCategorical: []string{"month"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Categorical, []string{"continent", "month"}) {
		t.Errorf("Categorical = %v", rep.Categorical)
	}
	if !reflect.DeepEqual(rep.Numeric, []string{"cases", "rate"}) {
		t.Errorf("Numeric = %v", rep.Numeric)
	}
	if r.NumRows() != 4 || rep.Rows != 4 {
		t.Errorf("rows = %d/%d, want 4", r.NumRows(), rep.Rows)
	}
	if got := r.MeasCol(1)[1]; got != 1.25 {
		t.Errorf("rate[1] = %v, want 1.25", got)
	}
}

func TestFromCSVMonthNumericWithoutForce(t *testing.T) {
	r, rep, err := FromCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Numeric) != 3 {
		t.Errorf("Numeric = %v, want month inferred numeric", rep.Numeric)
	}
	if r.NumCatAttrs() != 1 {
		t.Errorf("NumCatAttrs = %d, want 1", r.NumCatAttrs())
	}
}

func TestFromCSVForceNumericBadCellsBecomeNaN(t *testing.T) {
	data := "a,m\nx,1\ny,oops\n"
	r, _, err := FromCSV(strings.NewReader(data), CSVOptions{ForceNumeric: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r.MeasCol(0)[1]) {
		t.Errorf("bad cell = %v, want NaN", r.MeasCol(0)[1])
	}
}

func TestFromCSVDrop(t *testing.T) {
	r, rep, err := FromCSV(strings.NewReader(sampleCSV), CSVOptions{Drop: []string{"rate"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Dropped, []string{"rate"}) {
		t.Errorf("Dropped = %v", rep.Dropped)
	}
	if r.MeasIndexOf("rate") != -1 {
		t.Error("dropped column still present")
	}
}

func TestFromCSVMaxCardinalityDropsKeyLike(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("id,grp,m\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("row")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(string(rune('a' + i%26)))
		sb.WriteString(string(rune('A'+i/26)) + ",g,1\n")
	}
	r, rep, err := FromCSV(strings.NewReader(sb.String()), CSVOptions{MaxCategoricalCardinality: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0] != "id" {
		t.Errorf("Dropped = %v, want [id]", rep.Dropped)
	}
	if r.CatIndexOf("grp") == -1 {
		t.Error("low-cardinality column was dropped")
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, _, err := FromCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input: want error")
	}
	if _, _, err := FromCSV(strings.NewReader("a,b\n1\n"), CSVOptions{}); err == nil {
		t.Error("ragged row: want error")
	}
}

// TestFromCSVSentinelErrors locks the error taxonomy: each malformed
// input class must fail with its own sentinel (matchable via errors.Is)
// and a message naming the offending position.
func TestFromCSVSentinelErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		opts CSVOptions
		want error
		msg  string // substring locating the problem for a human
	}{
		{"ragged row", "a,b\nx,1\ny\n", CSVOptions{}, ErrRaggedRow, "row 3"},
		{"empty header", "a,,c\n1,2,3\n", CSVOptions{}, ErrEmptyHeader, "column 2"},
		{"blank header", "a, \t,c\n1,2,3\n", CSVOptions{}, ErrEmptyHeader, "column 2"},
		{"duplicate header", "a,b,a\n1,2,3\n", CSVOptions{}, ErrDuplicateHeader, `"a"`},
		{"invalid UTF-8 header", "a,b\xff\nx,1\n", CSVOptions{}, ErrInvalidUTF8, "column 2"},
		{"invalid UTF-8 cell", "a,b\nx,1\ny,\xffz\n", CSVOptions{}, ErrInvalidUTF8, "row 3"},
		{"too many rows", "a,b\nx,1\ny,2\nz,3\n", CSVOptions{MaxRows: 2}, ErrTooManyRows, "more than 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel, rep, err := FromCSV(strings.NewReader(tc.data), tc.opts)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want errors.Is(%v)", err, tc.want)
			}
			if rel != nil || rep != nil {
				t.Error("failed load returned a partial relation or report")
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Errorf("err = %q, want mention of %q", err, tc.msg)
			}
		})
	}
}

// TestFromCSVMaxRowsBoundary: an input with exactly MaxRows data rows
// loads in full; one more row refuses.
func TestFromCSVMaxRowsBoundary(t *testing.T) {
	const data = "a,m\nx,1\ny,2\nz,3\n"
	r, _, err := FromCSV(strings.NewReader(data), CSVOptions{MaxRows: 3})
	if err != nil {
		t.Fatalf("MaxRows=3 on 3 rows: %v", err)
	}
	if r.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", r.NumRows())
	}
	if _, _, err := FromCSV(strings.NewReader(data), CSVOptions{MaxRows: 2}); !errors.Is(err, ErrTooManyRows) {
		t.Errorf("MaxRows=2 on 3 rows: err = %v, want ErrTooManyRows", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r1, _, err := FromCSV(strings.NewReader(sampleCSV), CSVOptions{Name: "covid", ForceCategorical: []string{"month"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r2, _, err := FromCSV(&buf, CSVOptions{Name: "covid", ForceCategorical: []string{"month"}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumRows() != r1.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", r2.NumRows(), r1.NumRows())
	}
	for i := 0; i < r1.NumRows(); i++ {
		if r1.Row(i) != r2.Row(i) {
			t.Errorf("row %d: %s != %s", i, r1.Row(i), r2.Row(i))
		}
	}
}

func TestFromCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	r, _, err := FromCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "mini" {
		t.Errorf("Name = %q, want mini (from file name)", r.Name())
	}
	if _, _, err := FromCSVFile(filepath.Join(dir, "absent.csv"), CSVOptions{}); err == nil {
		t.Error("missing file: want error")
	}
}

func TestFromCSVCustomComma(t *testing.T) {
	data := "a;m\nx;1\ny;2\n"
	r, _, err := FromCSV(strings.NewReader(data), CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 2 || r.NumMeasures() != 1 {
		t.Errorf("semicolon CSV parsed wrong: rows=%d meas=%d", r.NumRows(), r.NumMeasures())
	}
}
