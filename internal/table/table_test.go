package table

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildTestRelation(t *testing.T) *Relation {
	t.Helper()
	b := NewBuilder("covid", []string{"continent", "month"}, []string{"cases"})
	b.AddRow([]string{"Africa", "4"}, []float64{31598})
	b.AddRow([]string{"America", "4"}, []float64{1104862})
	b.AddRow([]string{"Africa", "5"}, []float64{92626})
	b.AddRow([]string{"America", "5"}, []float64{1404912})
	b.AddRow([]string{"Asia", "4"}, []float64{333821})
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	r := buildTestRelation(t)
	if r.Name() != "covid" {
		t.Errorf("Name() = %q, want covid", r.Name())
	}
	if r.NumRows() != 5 {
		t.Errorf("NumRows() = %d, want 5", r.NumRows())
	}
	if r.NumCatAttrs() != 2 || r.NumMeasures() != 1 {
		t.Errorf("schema = (%d cats, %d meas), want (2, 1)", r.NumCatAttrs(), r.NumMeasures())
	}
	if got := r.DomSize(0); got != 3 {
		t.Errorf("DomSize(continent) = %d, want 3", got)
	}
	if got := r.DomSize(1); got != 2 {
		t.Errorf("DomSize(month) = %d, want 2", got)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	r := buildTestRelation(t)
	for a := 0; a < r.NumCatAttrs(); a++ {
		for _, v := range r.Dict(a) {
			c, ok := r.CodeOf(a, v)
			if !ok {
				t.Fatalf("CodeOf(%d, %q) not found", a, v)
			}
			if got := r.Value(a, c); got != v {
				t.Errorf("Value(%d, CodeOf(%q)) = %q", a, v, got)
			}
		}
	}
	if _, ok := r.CodeOf(0, "Atlantis"); ok {
		t.Error("CodeOf returned ok for a value outside the active domain")
	}
}

func TestIndexLookups(t *testing.T) {
	r := buildTestRelation(t)
	if got := r.CatIndexOf("month"); got != 1 {
		t.Errorf("CatIndexOf(month) = %d, want 1", got)
	}
	if got := r.CatIndexOf("nope"); got != -1 {
		t.Errorf("CatIndexOf(nope) = %d, want -1", got)
	}
	if got := r.MeasIndexOf("cases"); got != 0 {
		t.Errorf("MeasIndexOf(cases) = %d, want 0", got)
	}
	if got := r.MeasIndexOf("deaths"); got != -1 {
		t.Errorf("MeasIndexOf(deaths) = %d, want -1", got)
	}
}

func TestSelectSharesDictionaries(t *testing.T) {
	r := buildTestRelation(t)
	s := r.Select([]int{0, 2})
	if s.NumRows() != 2 {
		t.Fatalf("Select rows = %d, want 2", s.NumRows())
	}
	// Codes must be comparable across parent and sample.
	if s.CatCol(0)[0] != r.CatCol(0)[0] || s.CatCol(0)[1] != r.CatCol(0)[2] {
		t.Error("Select did not preserve dictionary codes")
	}
	if s.DomSize(0) != r.DomSize(0) {
		t.Errorf("sample DomSize = %d, want parent's %d", s.DomSize(0), r.DomSize(0))
	}
	if got := s.MeasCol(0); got[0] != 31598 || got[1] != 92626 {
		t.Errorf("sample measure = %v", got)
	}
}

func TestSelectEmpty(t *testing.T) {
	r := buildTestRelation(t)
	s := r.Select(nil)
	if s.NumRows() != 0 {
		t.Errorf("empty Select rows = %d, want 0", s.NumRows())
	}
}

func TestSortedDomain(t *testing.T) {
	b := NewBuilder("r", []string{"x"}, nil)
	for _, v := range []string{"zebra", "apple", "mango", "apple"} {
		b.AddRow([]string{v}, nil)
	}
	r := b.Build()
	codes := r.SortedDomain(0)
	var vals []string
	for _, c := range codes {
		vals = append(vals, r.Value(0, c))
	}
	want := []string{"apple", "mango", "zebra"}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("SortedDomain values = %v, want %v", vals, want)
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity did not panic")
		}
	}()
	b := NewBuilder("r", []string{"a"}, []string{"m"})
	b.AddRow([]string{"x", "y"}, []float64{1})
}

func TestAddRowAfterBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddRow after Build did not panic")
		}
	}()
	b := NewBuilder("r", []string{"a"}, nil)
	b.AddRow([]string{"x"}, nil)
	b.Build()
	b.AddRow([]string{"y"}, nil)
}

func TestRowString(t *testing.T) {
	r := buildTestRelation(t)
	got := r.Row(0)
	want := "{continent=Africa, month=4, cases=31598}"
	if got != want {
		t.Errorf("Row(0) = %q, want %q", got, want)
	}
}

// Property: dictionary encoding never changes the multiset of values in a
// column, for arbitrary inputs.
func TestQuickDictionaryPreservesColumn(t *testing.T) {
	f := func(vals []string) bool {
		b := NewBuilder("q", []string{"a"}, nil)
		for _, v := range vals {
			b.AddRow([]string{v}, nil)
		}
		r := b.Build()
		if r.NumRows() != len(vals) {
			return false
		}
		for i, v := range vals {
			if r.Value(0, r.CatCol(0)[i]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Select of a random permutation preserves every row.
func TestQuickSelectPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(meas []float64) bool {
		if len(meas) == 0 {
			return true
		}
		b := NewBuilder("q", nil, []string{"m"})
		for _, v := range meas {
			b.AddRow(nil, []float64{v})
		}
		r := b.Build()
		perm := rng.Perm(len(meas))
		s := r.Select(perm)
		got := append([]float64(nil), s.MeasCol(0)...)
		want := append([]float64(nil), meas...)
		sort.Float64s(got)
		sort.Float64s(want)
		for i := range got {
			// NaN-safe comparison: NaN sorts freely, compare bit-level count.
			if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
