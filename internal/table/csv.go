package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Sentinel errors returned (wrapped, with row/column context) by the CSV
// loader. Match with errors.Is; the wrapping message carries the
// position, the sentinel carries the category, so callers can branch on
// the failure class without parsing strings.
var (
	// ErrRaggedRow: a data row's field count differs from the header's.
	ErrRaggedRow = errors.New("table: ragged row")
	// ErrEmptyHeader: a header cell is empty (or only whitespace), so the
	// column could never be addressed by the Force*/Drop options.
	ErrEmptyHeader = errors.New("table: empty header name")
	// ErrDuplicateHeader: two header cells carry the same name, which
	// would make Force*/Drop and the relation's name lookups ambiguous.
	ErrDuplicateHeader = errors.New("table: duplicate header name")
	// ErrInvalidUTF8: a header or data cell is not valid UTF-8. Dictionary
	// values flow verbatim into notebooks and JSON reports, which require
	// UTF-8; refusing at the border beats emitting mojibake later.
	ErrInvalidUTF8 = errors.New("table: invalid UTF-8")
	// ErrTooManyRows: the input exceeds CSVOptions.MaxRows. The loader
	// refuses rather than silently truncating — a truncated relation
	// would produce statistically wrong, plausible-looking insights.
	ErrTooManyRows = errors.New("table: too many rows")
)

// CSVOptions controls CSV import. The zero value infers everything.
type CSVOptions struct {
	// Name overrides the relation name (default: file base name, or "csv").
	Name string
	// Comma is the field delimiter (default ',').
	Comma rune
	// ForceCategorical lists column names that must be treated as
	// categorical even if every value parses as a number (e.g. a "month"
	// column coded 1..12).
	ForceCategorical []string
	// ForceNumeric lists column names that must be treated as measures.
	// Non-numeric cells in forced-numeric columns become NaN.
	ForceNumeric []string
	// Drop lists column names to ignore entirely.
	Drop []string
	// MaxCategoricalCardinality: an inferred-categorical column whose
	// distinct-value count exceeds this is dropped with a warning entry in
	// the returned report, since grouping by a key-like column is
	// meaningless (cf. the paper's FD pre-processing). 0 means no limit.
	MaxCategoricalCardinality int
	// MaxRows caps the number of data rows the loader will accept; an
	// input with more rows fails with ErrTooManyRows instead of being
	// truncated. 0 means no limit. This is the ingestion rung of the
	// resource ladder: it bounds load-time memory before any budget
	// deeper in the pipeline can act.
	MaxRows int
}

// CSVReport describes what the loader decided.
type CSVReport struct {
	Categorical []string
	Numeric     []string
	Dropped     []string
	Rows        int
}

// FromCSVFile loads a relation from a CSV file with a header row.
func FromCSVFile(path string, opts CSVOptions) (*Relation, *CSVReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = f.Close() }() // read-only file: Close cannot lose data
	if opts.Name == "" {
		base := filepath.Base(path)
		opts.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return FromCSV(f, opts)
}

// FromCSV loads a relation from CSV data with a header row, inferring for
// each column whether it is a categorical attribute or a numeric measure:
// a column where every non-empty cell parses as a float is numeric, all
// others are categorical. The paper assumes the user "only has to
// distinguish between numeric and categorical attributes"; the Force*
// options are that knob.
func FromCSV(r io.Reader, opts CSVOptions) (*Relation, *CSVReport, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1

	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	names := append([]string(nil), header...)
	ncol := len(names)
	if ncol == 0 {
		return nil, nil, fmt.Errorf("table: CSV has no columns")
	}
	seenName := make(map[string]int, ncol)
	for c, n := range names {
		if strings.TrimSpace(n) == "" {
			return nil, nil, fmt.Errorf("CSV header column %d: %w", c+1, ErrEmptyHeader)
		}
		if !utf8.ValidString(n) {
			return nil, nil, fmt.Errorf("CSV header column %d: %w", c+1, ErrInvalidUTF8)
		}
		if first, dup := seenName[n]; dup {
			return nil, nil, fmt.Errorf("CSV header columns %d and %d both named %q: %w", first+1, c+1, n, ErrDuplicateHeader)
		}
		seenName[n] = c
	}

	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("table: reading CSV row %d: %w", len(records)+2, err)
		}
		if len(rec) != ncol {
			return nil, nil, fmt.Errorf("CSV row %d has %d fields, want %d: %w", len(records)+2, len(rec), ncol, ErrRaggedRow)
		}
		for c, cell := range rec {
			if !utf8.ValidString(cell) {
				return nil, nil, fmt.Errorf("CSV row %d column %d: %w", len(records)+2, c+1, ErrInvalidUTF8)
			}
		}
		if opts.MaxRows > 0 && len(records) >= opts.MaxRows {
			return nil, nil, fmt.Errorf("CSV has more than %d data rows: %w", opts.MaxRows, ErrTooManyRows)
		}
		records = append(records, append([]string(nil), rec...))
	}

	forceCat := toSet(opts.ForceCategorical)
	forceNum := toSet(opts.ForceNumeric)
	drop := toSet(opts.Drop)

	kind := make([]Kind, ncol)
	dropped := make([]bool, ncol)
	for c := 0; c < ncol; c++ {
		switch {
		case drop[names[c]]:
			dropped[c] = true
		case forceCat[names[c]]:
			kind[c] = Categorical
		case forceNum[names[c]]:
			kind[c] = Numeric
		case columnIsNumeric(records, c):
			kind[c] = Numeric
		default:
			kind[c] = Categorical
		}
	}

	if opts.MaxCategoricalCardinality > 0 {
		for c := 0; c < ncol; c++ {
			if dropped[c] || kind[c] != Categorical || forceCat[names[c]] {
				continue
			}
			if distinctCount(records, c, opts.MaxCategoricalCardinality) > opts.MaxCategoricalCardinality {
				dropped[c] = true
			}
		}
	}

	var catNames, measNames []string
	var catIdx, measIdx []int
	report := &CSVReport{Rows: len(records)}
	for c := 0; c < ncol; c++ {
		switch {
		case dropped[c]:
			report.Dropped = append(report.Dropped, names[c])
		case kind[c] == Categorical:
			catNames = append(catNames, names[c])
			catIdx = append(catIdx, c)
		default:
			measNames = append(measNames, names[c])
			measIdx = append(measIdx, c)
		}
	}
	report.Categorical = catNames
	report.Numeric = measNames

	name := opts.Name
	if name == "" {
		name = "csv"
	}
	b := NewBuilder(name, catNames, measNames)
	cats := make([]string, len(catIdx))
	meas := make([]float64, len(measIdx))
	for _, rec := range records {
		for i, c := range catIdx {
			cats[i] = rec[c]
		}
		for i, c := range measIdx {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[c]), 64)
			if err != nil {
				v = math.NaN()
			}
			meas[i] = v
		}
		b.AddRow(cats, meas)
	}
	return b.Build(), report, nil
}

// WriteCSV writes the relation as CSV with a header row, categorical
// attributes first. It is the inverse of FromCSV for relations without NaN
// measures.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, r.catNames...), r.measNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < r.rows; i++ {
		for a := range r.catNames {
			rec[a] = r.catDicts[a][r.catCols[a][i]]
		}
		for m := range r.measNames {
			rec[len(r.catNames)+m] = strconv.FormatFloat(r.measCols[m][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func columnIsNumeric(records [][]string, c int) bool {
	seen := false
	for _, rec := range records {
		cell := strings.TrimSpace(rec[c])
		if cell == "" {
			continue
		}
		seen = true
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			return false
		}
	}
	return seen
}

func distinctCount(records [][]string, c, cap int) int {
	seen := make(map[string]struct{}, cap+1)
	for _, rec := range records {
		seen[rec[c]] = struct{}{}
		if len(seen) > cap {
			break
		}
	}
	return len(seen)
}
