// Encoded columnar storage. An EncodedRelation is a compressed, read-only
// view of a Relation: every column is re-encoded by a one-pass scan that
// picks the cheapest lossless representation, and the engine's cube kernels
// aggregate directly over the encoded blocks without materialising rows.
//
// The encoding menu (selection order, first match wins):
//
//	categorical:  const            (domain size <= 1)
//	              dict-bp<w>       (non-straddling bit-packed codes)
//	measure:      const            (all rows share one bit pattern)
//	              seq              (arithmetic progression of exact ints)
//	              int-for-bp<w>    (frame-of-reference deltas, w <= 32)
//	              raw              (float64 slice, shared with the Relation)
//
// Every encoding is lossless bit-for-bit: decoding reproduces the original
// float64 bit patterns including NaN payloads. The only value excluded from
// the integer encodings is -0.0 (its bits differ from 0.0), which forces the
// raw fallback — that is what keeps the engine's encoded kernels bit-identical
// to the float64 path.
package table

import (
	"math"
	"math/bits"

	"comparenb/internal/faultinject"
)

// Column is the common surface of every encoded column.
type Column interface {
	// Len returns the number of rows.
	Len() int
	// Encoding names the chosen representation (e.g. "dict-bp5").
	Encoding() string
	// RawBytes is the size of the uncompressed column payload.
	RawBytes() int
	// EncodedBytes is the size of the encoded payload actually retained.
	EncodedBytes() int
}

// CatColumn is an encoded categorical column: dictionary codes in [0, dom).
type CatColumn interface {
	Column
	// Code returns the dictionary code of row i.
	Code(i int) int32
	// UnpackCodes decodes rows [lo, hi) into dst[0:hi-lo].
	UnpackCodes(dst []int32, lo, hi int)
}

// MeasColumn is an encoded measure column of float64 values.
type MeasColumn interface {
	Column
	// Value returns the float64 value of row i, bit-for-bit.
	Value(i int) float64
	// UnpackValues decodes rows [lo, hi) into dst[0:hi-lo], bit-for-bit.
	UnpackValues(dst []float64, lo, hi int)
}

// IntMeas is implemented by measure encodings whose values are exact
// integers stored as deltas from a base (seq and int-for-bp<w>). The engine
// aggregates such columns in the integer domain.
type IntMeas interface {
	MeasColumn
	// Base is the frame of reference: value(i) = Base + delta(i), exactly.
	Base() int64
	// MaxDelta bounds every delta (deltas are non-negative).
	MaxDelta() uint64
	// SumExact reports whether float64 accumulation of this column is exact
	// at every partial sum (maxAbs * rows < 2^53), which lets the engine
	// accumulate in int64 and convert once at the end, bit-identically.
	SumExact() bool
	// UnpackDeltas decodes the deltas of rows [lo, hi) into dst[0:hi-lo].
	UnpackDeltas(dst []uint64, lo, hi int)
}

// ConstMeas is implemented by the constant measure encoding.
type ConstMeas interface {
	MeasColumn
	// ConstBits is the shared bit pattern of every row.
	ConstBits() uint64
}

// ColumnStats summarises one column's encoding for observability output.
type ColumnStats struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"` // "categorical" | "measure"
	Encoding     string  `json:"encoding"`
	RawBytes     int     `json:"raw_bytes"`
	EncodedBytes int     `json:"encoded_bytes"`
	Ratio        float64 `json:"ratio"` // raw / encoded (0 when encoded is 0 bytes)
}

// EncodedRelation is the compressed view of a Relation. It is immutable and
// safe for concurrent readers.
type EncodedRelation struct {
	rows int
	cats []CatColumn
	meas []MeasColumn

	rawBytes      int
	encodedBytes  int
	retainedBytes int
	stats         []ColumnStats
}

// NumRows returns the number of tuples.
func (e *EncodedRelation) NumRows() int { return e.rows }

// Cat returns encoded categorical column a.
func (e *EncodedRelation) Cat(a int) CatColumn { return e.cats[a] }

// Meas returns encoded measure column m.
func (e *EncodedRelation) Meas(m int) MeasColumn { return e.meas[m] }

// RawBytes is the total uncompressed payload size across all columns.
func (e *EncodedRelation) RawBytes() int { return e.rawBytes }

// EncodedBytes is the total encoded payload size across all columns.
func (e *EncodedRelation) EncodedBytes() int { return e.encodedBytes }

// RetainedBytes is the extra memory the encoded view actually holds on to:
// EncodedBytes minus columns whose encoding aliases the Relation's own
// storage (the raw float64 fallback). Admission accounting charges this.
func (e *EncodedRelation) RetainedBytes() int { return e.retainedBytes }

// ColumnStats returns a copy of the per-column encoding summaries, in
// schema order (categorical attributes first, then measures).
func (e *EncodedRelation) ColumnStats() []ColumnStats {
	out := make([]ColumnStats, len(e.stats))
	copy(out, e.stats)
	return out
}

// Encoded returns the encoded view of the relation, building it on first
// use and caching it. The build is guarded by sync.Once, so concurrent
// callers encode at most once; the result is a pure function of the column
// data, making the encoded/raw choice deterministic. Encoded returns nil
// only if the encoding phase was fault-injected (faultinject site
// "table.encode.column"), in which case callers fall back to raw columns.
func (r *Relation) Encoded() *EncodedRelation {
	r.encodeOnce.Do(func() {
		defer func() {
			r.encodeDone.Store(true)
			if p := recover(); p != nil {
				if _, ok := p.(EncodeAbort); !ok {
					panic(p)
				}
				r.encoded = nil
			}
		}()
		r.encoded = encodeRelation(r)
	})
	return r.encoded
}

// EncodeAbort is the panic value a faultinject hook registered at site
// faultinject.TableEncodeColumn may raise to abort the encoding pass.
// Encoded recovers exactly this type (anything else propagates), leaves the
// relation without an encoded view, and callers fall back to raw columns.
type EncodeAbort struct {
	Reason string
}

// EncodedCached returns the encoded view if Encoded has already built one,
// without triggering an encode. Admission accounting uses this to charge
// only for encodings that actually exist.
func (r *Relation) EncodedCached() *EncodedRelation {
	if !r.encodeDone.Load() {
		return nil
	}
	return r.encoded
}

func encodeRelation(r *Relation) *EncodedRelation {
	e := &EncodedRelation{rows: r.rows}
	for a := range r.catCols {
		faultinject.Fire(faultinject.TableEncodeColumn)
		col := encodeCat(r.catCols[a], len(r.catDicts[a]))
		e.cats = append(e.cats, col)
		e.stats = append(e.stats, columnStats(r.catNames[a], "categorical", col))
		e.rawBytes += col.RawBytes()
		e.encodedBytes += col.EncodedBytes()
		e.retainedBytes += col.EncodedBytes()
	}
	for m := range r.measCols {
		faultinject.Fire(faultinject.TableEncodeColumn)
		col := encodeMeas(r.measCols[m])
		e.meas = append(e.meas, col)
		e.stats = append(e.stats, columnStats(r.measNames[m], "measure", col))
		e.rawBytes += col.RawBytes()
		e.encodedBytes += col.EncodedBytes()
		if _, aliased := col.(*rawMeas); !aliased {
			e.retainedBytes += col.EncodedBytes()
		}
	}
	return e
}

func columnStats(name, kind string, c Column) ColumnStats {
	s := ColumnStats{
		Name:         name,
		Kind:         kind,
		Encoding:     c.Encoding(),
		RawBytes:     c.RawBytes(),
		EncodedBytes: c.EncodedBytes(),
	}
	if s.EncodedBytes > 0 {
		s.Ratio = float64(s.RawBytes) / float64(s.EncodedBytes)
	}
	return s
}

// ---------------------------------------------------------------------------
// Categorical encodings

func encodeCat(codes []int32, domSize int) CatColumn {
	if domSize <= 1 {
		return &constCat{n: len(codes)}
	}
	w := bits.Len32(uint32(domSize - 1))
	return &packedCat{
		n:     len(codes),
		width: w,
		words: packCodes(codes, w),
	}
}

// constCat encodes a column whose domain has at most one value: every row
// is code 0 and no payload is stored.
type constCat struct {
	n int
}

func (c *constCat) Len() int          { return c.n }
func (c *constCat) Encoding() string  { return "const" }
func (c *constCat) RawBytes() int     { return 4 * c.n }
func (c *constCat) EncodedBytes() int { return 0 }
func (c *constCat) Code(int) int32    { return 0 }

func (c *constCat) UnpackCodes(dst []int32, lo, hi int) {
	for i := range dst[:hi-lo] {
		dst[i] = 0
	}
}

// packedCat stores dictionary codes bit-packed at the domain's natural
// width. Packing is non-straddling: each 64-bit word holds floor(64/w)
// codes and a code never crosses a word boundary, so unpacking is a
// branch-free shift/mask loop.
type packedCat struct {
	n     int
	width int
	words []uint64
}

func (c *packedCat) Len() int          { return c.n }
func (c *packedCat) Encoding() string  { return "dict-bp" + itoa(c.width) }
func (c *packedCat) RawBytes() int     { return 4 * c.n }
func (c *packedCat) EncodedBytes() int { return 8 * len(c.words) }

func (c *packedCat) Code(i int) int32 {
	per := 64 / c.width
	word := c.words[i/per]
	shift := uint((i % per) * c.width)
	mask := uint64(1)<<c.width - 1
	return int32(word >> shift & mask)
}

func (c *packedCat) UnpackCodes(dst []int32, lo, hi int) {
	w := c.width
	per := 64 / w
	mask := uint64(1)<<w - 1
	wi := lo / per
	slot := lo % per
	di, n := 0, hi-lo
	for di < n {
		word := c.words[wi] >> uint(slot*w)
		for ; slot < per && di < n; slot++ {
			dst[di] = int32(word & mask)
			word >>= uint(w)
			di++
		}
		slot = 0
		wi++
	}
}

func packCodes(codes []int32, w int) []uint64 {
	per := 64 / w
	words := make([]uint64, (len(codes)+per-1)/per)
	wi, slot := 0, 0
	var cur uint64
	for _, c := range codes {
		cur |= uint64(uint32(c)) << uint(slot*w)
		slot++
		if slot == per {
			words[wi] = cur
			wi++
			slot = 0
			cur = 0
		}
	}
	if slot > 0 {
		words[wi] = cur
	}
	return words
}

// ---------------------------------------------------------------------------
// Measure encodings

// maxExactSum is the largest integer magnitude that float64 represents
// exactly: every |partial sum| <= maxExactSum stays exact under float64
// addition.
const maxExactSum = int64(1)<<53 - 1

func encodeMeas(vals []float64) MeasColumn {
	n := len(vals)
	if n == 0 {
		return &rawMeas{vals: vals}
	}

	firstBits := math.Float64bits(vals[0])
	allSame := true

	// Integer detection must be bit-for-bit: a value participates only if
	// converting through int64 reproduces its exact bit pattern. This
	// excludes NaN, ±Inf, -0.0 and anything with a fractional part or
	// |v| >= 2^63.
	allInt := true
	var minI, maxI int64

	// Arithmetic-progression detection in wrapping int64 space.
	seqOK := true
	var stride int64

	prev := int64(0)
	for i, v := range vals {
		if math.Float64bits(v) != firstBits {
			allSame = false
		}
		if allInt {
			iv, ok := exactInt(v)
			if !ok {
				allInt = false
				seqOK = false
			} else {
				if i == 0 {
					minI, maxI = iv, iv
				} else {
					if iv < minI {
						minI = iv
					}
					if iv > maxI {
						maxI = iv
					}
					if i == 1 {
						stride = iv - prev
					} else if iv-prev != stride {
						seqOK = false
					}
				}
				prev = iv
			}
		}
		if !allInt && !allSame {
			break
		}
	}

	if allSame {
		return &constMeas{n: n, bits: firstBits}
	}
	if !allInt {
		return &rawMeas{vals: vals}
	}

	maxAbs := uint64(maxI)
	if maxI < 0 {
		maxAbs = uint64(-maxI)
	}
	if a := uint64(-minI); minI < 0 && a > maxAbs {
		maxAbs = a
	}
	sumExact := maxAbs <= uint64(maxExactSum)/uint64(n)
	maxDelta := uint64(maxI) - uint64(minI) // maxI >= minI, fits in uint64

	if seqOK && n >= 2 {
		return &seqMeas{
			n: n, base: minI, first: vals[0], stride: stride,
			maxDelta: maxDelta, sumExact: sumExact,
		}
	}
	w := bits.Len64(maxDelta)
	if w == 0 {
		w = 1
	}
	if w > 32 {
		return &rawMeas{vals: vals}
	}
	deltas := make([]uint64, n)
	for i, v := range vals {
		deltas[i] = uint64(int64(v)) - uint64(minI)
	}
	return &intFORMeas{
		n: n, base: minI, width: w, words: packDeltas(deltas, w),
		maxDelta: maxDelta, sumExact: sumExact,
	}
}

// exactInt reports whether v is a bit-exact float64 integer representable
// in int64, and returns it. The round trip through int64 and back must
// reproduce v's exact bit pattern, which rejects NaN, ±Inf, fractional
// values, -0.0 and |v| >= 2^63.
func exactInt(v float64) (int64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v >= 1<<63 || v < -(1<<63) {
		return 0, false
	}
	iv := int64(v)
	if math.Float64bits(float64(iv)) != math.Float64bits(v) {
		return 0, false
	}
	return iv, true
}

// rawMeas is the fallback: the float64 slice itself, shared with the
// Relation (no copy, no compression).
type rawMeas struct {
	vals []float64
}

func (c *rawMeas) Len() int            { return len(c.vals) }
func (c *rawMeas) Encoding() string    { return "raw" }
func (c *rawMeas) RawBytes() int       { return 8 * len(c.vals) }
func (c *rawMeas) EncodedBytes() int   { return 8 * len(c.vals) }
func (c *rawMeas) Value(i int) float64 { return c.vals[i] }
func (c *rawMeas) Values() []float64   { return c.vals }

func (c *rawMeas) UnpackValues(dst []float64, lo, hi int) {
	copy(dst[:hi-lo], c.vals[lo:hi])
}

// constMeas stores the single bit pattern shared by every row. NaN payloads
// survive because the pattern is stored as raw bits, not as a float.
type constMeas struct {
	n    int
	bits uint64
}

func (c *constMeas) Len() int          { return c.n }
func (c *constMeas) Encoding() string  { return "const" }
func (c *constMeas) RawBytes() int     { return 8 * c.n }
func (c *constMeas) EncodedBytes() int { return 8 }
func (c *constMeas) ConstBits() uint64 { return c.bits }
func (c *constMeas) Value(int) float64 { return math.Float64frombits(c.bits) }

func (c *constMeas) UnpackValues(dst []float64, lo, hi int) {
	v := math.Float64frombits(c.bits)
	for i := range dst[:hi-lo] {
		dst[i] = v
	}
}

// seqMeas encodes an arithmetic progression of exact integers: value(i) =
// first + stride*i in wrapping int64 arithmetic (the scan verified every
// element). Base is the minimum, so deltas are non-negative.
type seqMeas struct {
	n        int
	base     int64
	first    float64
	stride   int64
	maxDelta uint64
	sumExact bool
}

func (c *seqMeas) Len() int          { return c.n }
func (c *seqMeas) Encoding() string  { return "seq" }
func (c *seqMeas) RawBytes() int     { return 8 * c.n }
func (c *seqMeas) EncodedBytes() int { return 24 }
func (c *seqMeas) Base() int64       { return c.base }
func (c *seqMeas) MaxDelta() uint64  { return c.maxDelta }
func (c *seqMeas) SumExact() bool    { return c.sumExact }

func (c *seqMeas) valueInt(i int) int64 {
	return int64(uint64(int64(c.first)) + uint64(c.stride)*uint64(i))
}

func (c *seqMeas) Value(i int) float64 { return float64(c.valueInt(i)) }

func (c *seqMeas) UnpackValues(dst []float64, lo, hi int) {
	v := uint64(c.valueInt(lo))
	s := uint64(c.stride)
	for i := range dst[:hi-lo] {
		dst[i] = float64(int64(v))
		v += s
	}
}

func (c *seqMeas) UnpackDeltas(dst []uint64, lo, hi int) {
	v := uint64(c.valueInt(lo))
	b := uint64(c.base)
	s := uint64(c.stride)
	for i := range dst[:hi-lo] {
		dst[i] = v - b
		v += s
	}
}

// intFORMeas is frame-of-reference encoding for exact-integer measures:
// value(i) = base + delta(i) with base = min and deltas bit-packed
// non-straddling at width <= 32.
type intFORMeas struct {
	n        int
	base     int64
	width    int
	words    []uint64
	maxDelta uint64
	sumExact bool
}

func (c *intFORMeas) Len() int          { return c.n }
func (c *intFORMeas) Encoding() string  { return "int-for-bp" + itoa(c.width) }
func (c *intFORMeas) RawBytes() int     { return 8 * c.n }
func (c *intFORMeas) EncodedBytes() int { return 8 * len(c.words) }
func (c *intFORMeas) Base() int64       { return c.base }
func (c *intFORMeas) MaxDelta() uint64  { return c.maxDelta }
func (c *intFORMeas) SumExact() bool    { return c.sumExact }

func (c *intFORMeas) delta(i int) uint64 {
	per := 64 / c.width
	word := c.words[i/per]
	shift := uint((i % per) * c.width)
	mask := uint64(1)<<c.width - 1
	return word >> shift & mask
}

func (c *intFORMeas) Value(i int) float64 {
	return float64(c.base + int64(c.delta(i)))
}

func (c *intFORMeas) UnpackValues(dst []float64, lo, hi int) {
	w := c.width
	per := 64 / w
	mask := uint64(1)<<w - 1
	wi := lo / per
	slot := lo % per
	di, n := 0, hi-lo
	for di < n {
		word := c.words[wi] >> uint(slot*w)
		for ; slot < per && di < n; slot++ {
			dst[di] = float64(c.base + int64(word&mask))
			word >>= uint(w)
			di++
		}
		slot = 0
		wi++
	}
}

func (c *intFORMeas) UnpackDeltas(dst []uint64, lo, hi int) {
	w := c.width
	per := 64 / w
	mask := uint64(1)<<w - 1
	wi := lo / per
	slot := lo % per
	di, n := 0, hi-lo
	for di < n {
		word := c.words[wi] >> uint(slot*w)
		for ; slot < per && di < n; slot++ {
			dst[di] = word & mask
			word >>= uint(w)
			di++
		}
		slot = 0
		wi++
	}
}

func packDeltas(deltas []uint64, w int) []uint64 {
	per := 64 / w
	words := make([]uint64, (len(deltas)+per-1)/per)
	wi, slot := 0, 0
	var cur uint64
	for _, d := range deltas {
		cur |= d << uint(slot*w)
		slot++
		if slot == per {
			words[wi] = cur
			wi++
			slot = 0
			cur = 0
		}
	}
	if slot > 0 {
		words[wi] = cur
	}
	return words
}

// itoa is a minimal positive-int formatter (avoids strconv in the hot
// encoding names, and keeps the import list short).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
