package table

import (
	"math"
	"math/rand"
	"testing"

	"comparenb/internal/faultinject"
)

// requireMeasLossless checks the full MeasColumn contract against the
// original values: bit-for-bit equality (so NaN payloads, -0.0 and every
// rounding artefact survive) through both the random-access Value and the
// block Unpack path at several window alignments.
func requireMeasLossless(t *testing.T, label string, vals []float64, col MeasColumn) {
	t.Helper()
	if col.Len() != len(vals) {
		t.Fatalf("%s: Len = %d, want %d", label, col.Len(), len(vals))
	}
	for i, want := range vals {
		if got := col.Value(i); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: Value(%d) = %v (bits %x), want %v (bits %x)",
				label, i, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	for _, win := range [][2]int{{0, len(vals)}, {1, len(vals)}, {0, len(vals) - 1}, {3, 17}, {7, 8}} {
		lo, hi := win[0], win[1]
		if lo > hi || hi > len(vals) {
			continue
		}
		dst := make([]float64, hi-lo)
		col.UnpackValues(dst, lo, hi)
		for i, got := range dst {
			want := vals[lo+i]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: UnpackValues[%d,%d)[%d] = %v, want %v", label, lo, hi, i, got, want)
			}
		}
	}
}

func requireCatLossless(t *testing.T, label string, codes []int32, col CatColumn) {
	t.Helper()
	if col.Len() != len(codes) {
		t.Fatalf("%s: Len = %d, want %d", label, col.Len(), len(codes))
	}
	for i, want := range codes {
		if got := col.Code(i); got != want {
			t.Fatalf("%s: Code(%d) = %d, want %d", label, i, got, want)
		}
	}
	for _, win := range [][2]int{{0, len(codes)}, {2, len(codes)}, {5, 23}, {63, 65}} {
		lo, hi := win[0], win[1]
		if lo > hi || hi > len(codes) {
			continue
		}
		dst := make([]int32, hi-lo)
		col.UnpackCodes(dst, lo, hi)
		for i, got := range dst {
			if want := codes[lo+i]; got != want {
				t.Fatalf("%s: UnpackCodes[%d,%d)[%d] = %d, want %d", label, lo, hi, i, got, want)
			}
		}
	}
}

// TestEncodeMeasRoundTrip covers every measure encoding with shapes chosen
// to land in each regime, plus the deliberate fallbacks.
func TestEncodeMeasRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	negZero := math.Copysign(0, -1)
	mk := func(n int, f func(i int) float64) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = f(i)
		}
		return vals
	}
	cases := []struct {
		label    string
		vals     []float64
		encoding string
	}{
		{"raw floats", mk(200, func(int) float64 { return rng.Float64() * 100 }), "raw"},
		{"const", mk(150, func(int) float64 { return 3.25 }), "const"},
		{"const NaN", mk(90, func(int) float64 { return math.NaN() }), "const"},
		{"sequence", mk(130, func(i int) float64 { return float64(10 + 3*i) }), "seq"},
		{"descending sequence", mk(130, func(i int) float64 { return float64(500 - 7*i) }), "seq"},
		{"small ints", mk(300, func(int) float64 { return float64(rng.Intn(40) - 20) }), "int-for-bp6"},
		{"single bit", mk(170, func(i int) float64 { return float64(i%2) * 5 }), "int-for-bp3"},
		{"wide ints fall back", mk(64, func(int) float64 { return float64(rng.Int63()>>8) * 2 }), "raw"},
		{"minus zero falls back", append(mk(100, func(i int) float64 { return float64(i % 4) }), negZero), "raw"},
		{"NaN among ints falls back", append(mk(100, func(i int) float64 { return float64(i % 4) }), math.NaN()), "raw"},
		{"inf falls back", append(mk(80, func(i int) float64 { return float64(i) }), math.Inf(1)), "raw"},
		{"fractional falls back", append(mk(80, func(i int) float64 { return float64(i) }), 0.5), "raw"},
	}
	for _, tc := range cases {
		col := encodeMeas(tc.vals)
		if got := col.Encoding(); got != tc.encoding {
			t.Errorf("%s: encoding %q, want %q", tc.label, got, tc.encoding)
		}
		requireMeasLossless(t, tc.label, tc.vals, col)
	}
}

// TestEncodeMeasRandomProperty hammers encodeMeas with random shapes drawn
// from generators that hit every regime boundary, asserting only the one
// property that matters: the round trip is bit-for-bit lossless.
func TestEncodeMeasRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	specials := []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		1e300, -1e300, 0.1, float64(1 << 62), -float64(1 << 62),
		float64(maxExactSum), float64(maxExactSum + 1),
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		vals := make([]float64, n)
		switch trial % 5 {
		case 0: // random floats with special values sprinkled in
			for i := range vals {
				if rng.Intn(8) == 0 {
					vals[i] = specials[rng.Intn(len(specials))]
				} else {
					vals[i] = rng.NormFloat64() * 1e6
				}
			}
		case 1: // narrow integers
			for i := range vals {
				vals[i] = float64(rng.Intn(1000) - 500)
			}
		case 2: // near-sequences (occasionally broken)
			base, stride := rng.Intn(5000), rng.Intn(20)-10
			for i := range vals {
				vals[i] = float64(base + stride*i)
			}
			if rng.Intn(2) == 0 {
				vals[rng.Intn(n)] += 1
			}
		case 3: // wide integers around the FOR width cliff
			lo := rng.Int63n(1 << 40)
			span := int64(1) << uint(20+rng.Intn(20))
			for i := range vals {
				vals[i] = float64(lo + rng.Int63n(span))
			}
		case 4: // constants with a chance of one outlier
			c := specials[rng.Intn(len(specials))]
			for i := range vals {
				vals[i] = c
			}
			if rng.Intn(2) == 0 {
				vals[rng.Intn(n)] = rng.Float64()
			}
		}
		requireMeasLossless(t, "random", vals, encodeMeas(vals))
	}
}

func TestEncodeCatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dom := range []int{1, 2, 3, 5, 17, 255, 1000, 70000} {
		n := 1 + rng.Intn(500)
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(rng.Intn(dom))
		}
		col := encodeCat(codes, dom)
		if dom == 1 {
			if col.Encoding() != "const" {
				t.Fatalf("dom=1: encoding %q, want const", col.Encoding())
			}
		}
		requireCatLossless(t, col.Encoding(), codes, col)
		if eb, rb := col.EncodedBytes(), col.RawBytes(); dom <= 255 && eb >= rb {
			t.Errorf("dom=%d: encoded %d B >= raw %d B — narrow dictionary should compress", dom, eb, rb)
		}
	}
}

// TestEncodedRelationAccounting checks the relation-level aggregates: byte
// totals are the column sums, retained bytes exclude aliased raw measures,
// and the per-column stats cover every column in schema order.
func TestEncodedRelationAccounting(t *testing.T) {
	b := NewBuilder("acct", []string{"region", "kind"}, []string{"count", "score"})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		b.AddRow([]string{
			string(rune('a' + i%7)), string(rune('A' + i%3)),
		}, []float64{float64(i % 50), rng.Float64()})
	}
	rel := b.Build()
	enc := rel.Encoded()
	if enc == nil {
		t.Fatal("Encoded returned nil for a healthy relation")
	}
	stats := enc.ColumnStats()
	if len(stats) != 4 {
		t.Fatalf("ColumnStats has %d entries, want 4", len(stats))
	}
	wantNames := []string{"region", "kind", "count", "score"}
	var raw, encoded int
	for i, s := range stats {
		if s.Name != wantNames[i] {
			t.Errorf("stats[%d].Name = %q, want %q", i, s.Name, wantNames[i])
		}
		raw += s.RawBytes
		encoded += s.EncodedBytes
	}
	if raw != enc.RawBytes() || encoded != enc.EncodedBytes() {
		t.Errorf("totals %d/%d disagree with column sums %d/%d",
			enc.RawBytes(), enc.EncodedBytes(), raw, encoded)
	}
	// score is a raw fallback aliasing the relation's slice: it must not be
	// charged as retained payload, so retained < encoded here.
	if enc.RetainedBytes() >= enc.EncodedBytes() {
		t.Errorf("retained %d >= encoded %d despite an aliased raw measure",
			enc.RetainedBytes(), enc.EncodedBytes())
	}
	if enc.EncodedBytes() >= enc.RawBytes() {
		t.Errorf("encoded %d B >= raw %d B on a compressible relation", enc.EncodedBytes(), enc.RawBytes())
	}
}

func TestEncodedLazyOnceAndCached(t *testing.T) {
	b := NewBuilder("lazy", []string{"a"}, []string{"m"})
	for i := 0; i < 100; i++ {
		b.AddRow([]string{string(rune('a' + i%4))}, []float64{float64(i)})
	}
	rel := b.Build()
	if got := rel.EncodedCached(); got != nil {
		t.Fatalf("EncodedCached = %p before any encode", got)
	}
	first := rel.Encoded()
	if first == nil {
		t.Fatal("Encoded returned nil")
	}
	if again := rel.Encoded(); again != first {
		t.Error("Encoded rebuilt instead of reusing the cached view")
	}
	if cached := rel.EncodedCached(); cached != first {
		t.Error("EncodedCached disagrees with Encoded")
	}
}

// TestEncodeAbortFallsBackToNil pins the fault-injection contract: a hook
// at TableEncodeColumn that panics EncodeAbort leaves the relation
// permanently without an encoded view (callers use raw columns), while any
// other panic value propagates to the caller.
func TestEncodeAbortFallsBackToNil(t *testing.T) {
	b := NewBuilder("abort", []string{"a"}, []string{"m"})
	for i := 0; i < 64; i++ {
		b.AddRow([]string{string(rune('a' + i%4))}, []float64{float64(i)})
	}
	rel := b.Build()

	restore := faultinject.Set(faultinject.TableEncodeColumn,
		faultinject.Always(func() { panic(EncodeAbort{Reason: "injected"}) }))
	enc := rel.Encoded()
	restore()
	if enc != nil {
		t.Fatalf("Encoded = %p under an EncodeAbort hook, want nil", enc)
	}
	// The abort is sticky: the sync.Once already ran, so later calls — with
	// no hook armed — still report no encoded view rather than a partial one.
	if rel.Encoded() != nil || rel.EncodedCached() != nil {
		t.Error("aborted encode was retried or left a partial view")
	}

	other := NewBuilder("boom", []string{"a"}, []string{"m"})
	other.AddRow([]string{"x"}, []float64{1})
	rel2 := other.Build()
	restore = faultinject.Set(faultinject.TableEncodeColumn,
		faultinject.Always(func() { panic("not an EncodeAbort") }))
	defer restore()
	defer func() {
		if recover() == nil {
			t.Error("a non-EncodeAbort panic was swallowed by Encoded")
		}
	}()
	rel2.Encoded()
}
