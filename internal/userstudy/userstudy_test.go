package userstudy

import (
	"testing"

	"comparenb/internal/datagen"
	"comparenb/internal/pipeline"
)

func generateResult(t *testing.T) *pipeline.Result {
	t.Helper()
	ds, err := datagen.Tiny(3, 1500)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.NewConfig()
	cfg.Perms = 200
	cfg.Seed = 2
	cfg.EpsT = 6
	cfg.EpsD = 2
	cfg.Threads = 2
	res, err := pipeline.Generate(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Order) == 0 {
		t.Fatal("empty notebook; cannot study")
	}
	return res
}

func TestExtractFeaturesRanges(t *testing.T) {
	res := generateResult(t)
	f := ExtractFeatures(res)
	if f.NumQueries != len(res.Solution.Order) {
		t.Errorf("NumQueries = %d, want %d", f.NumQueries, len(res.Solution.Order))
	}
	checks := map[string]float64{
		"MeanSig":         f.MeanSig,
		"MeanCredRatio":   f.MeanCredRatio,
		"Diversity":       f.Diversity,
		"MeanConciseness": f.MeanConciseness,
		"Coverage":        f.Coverage,
	}
	for name, v := range checks {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", name, v)
		}
	}
	if f.MeanSig < 0.9 {
		t.Errorf("MeanSig = %v; selected insights should be highly significant", f.MeanSig)
	}
	if f.Coverage == 0 {
		t.Error("Coverage = 0 with a non-empty notebook")
	}
}

func TestExtractFeaturesEmpty(t *testing.T) {
	res := generateResult(t)
	res.Solution.Order = nil
	f := ExtractFeatures(res)
	if f.NumQueries != 0 || f.MeanSig != 0 || f.Diversity != 0 {
		t.Errorf("empty notebook features = %+v", f)
	}
}

func TestPanelDeterministicAndBounded(t *testing.T) {
	f := Features{MeanSig: 0.97, MeanCredRatio: 0.5, Diversity: 0.3, MeanConciseness: 0.6, Coverage: 0.8, NumQueries: 10}
	a := NewPanel(9, 42).Rate(f)
	b := NewPanel(9, 42).Rate(f)
	for _, c := range AllCriteria {
		if len(a[c]) != 9 {
			t.Fatalf("%v: %d ratings, want 9", c, len(a[c]))
		}
		for r := range a[c] {
			if a[c][r] != b[c][r] {
				t.Errorf("%v rater %d: %v vs %v (not deterministic)", c, r, a[c][r], b[c][r])
			}
			if a[c][r] < 1 || a[c][r] > 7 {
				t.Errorf("%v rating %v outside 1..7", c, a[c][r])
			}
		}
	}
}

func TestLatentMonotoneInSignificance(t *testing.T) {
	low := Features{MeanSig: 0.2, Coverage: 0.5, MeanCredRatio: 0.5, MeanConciseness: 0.5, Diversity: 0.5}
	high := low
	high.MeanSig = 0.99
	for _, c := range []Criterion{Informativity, Expertise, Comprehensibility} {
		if latent(c, high) <= latent(c, low) {
			t.Errorf("%v not monotone in significance", c)
		}
	}
}

func TestLatentHumanEquivalencePeaksAtModerateDiversity(t *testing.T) {
	mk := func(d float64) Features {
		return Features{Diversity: d, Coverage: 0.5}
	}
	mid := latent(HumanEquivalence, mk(0.5))
	if latent(HumanEquivalence, mk(0.0)) >= mid || latent(HumanEquivalence, mk(1.0)) >= mid {
		t.Error("human equivalence should peak at moderate diversity")
	}
}

func TestCompareDetectsClearGap(t *testing.T) {
	panel := NewPanel(9, 7)
	good := VariantScores{Name: "good", Scores: panel.Rate(Features{
		MeanSig: 0.99, MeanCredRatio: 0.8, Diversity: 0.5, MeanConciseness: 0.9, Coverage: 1})}
	bad := VariantScores{Name: "bad", Scores: panel.Rate(Features{
		MeanSig: 0.1, MeanCredRatio: 0.1, Diversity: 0.0, MeanConciseness: 0.1, Coverage: 0.2})}
	res := Compare(good, bad, Informativity)
	if res.P > 0.01 {
		t.Errorf("clear quality gap not significant: p=%v", res.P)
	}
	if good.Mean(Informativity) <= bad.Mean(Informativity) {
		t.Error("good variant should outscore bad")
	}
}

func TestCompareSameFeaturesUsuallyInsignificant(t *testing.T) {
	panel := NewPanel(9, 11)
	f := Features{MeanSig: 0.9, MeanCredRatio: 0.5, Diversity: 0.4, MeanConciseness: 0.6, Coverage: 0.7}
	a := VariantScores{Name: "a", Scores: panel.Rate(f)}
	b := VariantScores{Name: "b", Scores: panel.Rate(f)}
	res := Compare(a, b, Expertise)
	if res.P < 0.01 {
		t.Errorf("identical variants significantly different: p=%v", res.P)
	}
}

func TestCriterionNames(t *testing.T) {
	want := []string{"informativity", "comprehensibility", "expertise", "human equivalence"}
	for i, c := range AllCriteria {
		if c.String() != want[i] {
			t.Errorf("criterion %d = %q, want %q", i, c, want[i])
		}
	}
}

func TestCronbachAlpha(t *testing.T) {
	// Perfect agreement across 3 raters and 4 subjects → α = 1.
	perfect := [][]float64{{1, 1, 1}, {3, 3, 3}, {5, 5, 5}, {7, 7, 7}}
	if got := CronbachAlpha(perfect); got < 0.999 {
		t.Errorf("perfect agreement α = %v, want 1", got)
	}
	// Raters with consistent ordering but offsets still agree highly.
	shifted := [][]float64{{1, 2, 3}, {3, 4, 5}, {5, 6, 7}}
	if got := CronbachAlpha(shifted); got < 0.999 {
		t.Errorf("shifted agreement α = %v, want ≈ 1", got)
	}
	// Opposed raters → low (possibly negative) α.
	opposed := [][]float64{{1, 7}, {7, 1}, {2, 6}, {6, 2}}
	if got := CronbachAlpha(opposed); got > 0 {
		t.Errorf("opposed raters α = %v, want ≤ 0", got)
	}
	// Degenerate inputs.
	if !isNaN(CronbachAlpha([][]float64{{1, 2}})) {
		t.Error("single subject should give NaN")
	}
	if !isNaN(CronbachAlpha([][]float64{{1}, {2}})) {
		t.Error("single rater should give NaN")
	}
}

func isNaN(v float64) bool { return v != v }

func TestAlphaByCriterion(t *testing.T) {
	panel := NewPanel(9, 19)
	variants := []VariantScores{
		{Name: "good", Scores: panel.Rate(Features{MeanSig: 0.99, Coverage: 1, MeanConciseness: 0.9, Diversity: 0.5, MeanCredRatio: 0.5})},
		{Name: "ok", Scores: panel.Rate(Features{MeanSig: 0.6, Coverage: 0.5, MeanConciseness: 0.5, Diversity: 0.4, MeanCredRatio: 0.4})},
		{Name: "bad", Scores: panel.Rate(Features{MeanSig: 0.1, Coverage: 0.2, MeanConciseness: 0.1, Diversity: 0.0, MeanCredRatio: 0.1})},
	}
	alphas := AlphaByCriterion(variants)
	for _, c := range AllCriteria {
		a := alphas[c]
		if isNaN(a) {
			t.Errorf("%v: α is NaN", c)
			continue
		}
		// With clearly separated latent quality, raters must agree well.
		if a < 0.6 {
			t.Errorf("%v: α = %v, want strong agreement on separated variants", c, a)
		}
	}
}
