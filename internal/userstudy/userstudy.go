// Package userstudy simulates the human evaluation of §6.5 (Figure 10).
// The paper recruited 9 volunteers to rate 6 generated notebooks on four
// criteria from Bar El et al. [11]. A live panel is impossible here, so a
// stochastic rater model stands in: each criterion's latent score is a
// fixed function of *measurable notebook features* the paper argues raters
// respond to (informativeness ← significance and coverage; comprehensibility
// ← conciseness and coherence; human equivalence ← diversity, which the
// paper blames for its own low scores), plus per-rater bias and noise.
// The model is documented here and in DESIGN.md as a substitution; the
// resulting ranking is reported as-is and compared with the paper's
// qualitative findings in EXPERIMENTS.md.
package userstudy

import (
	"math"
	"math/rand"

	"comparenb/internal/metric"
	"comparenb/internal/pipeline"
	"comparenb/internal/stats"
)

// Criterion is one of the four rating criteria of [11] used in §6.5.
type Criterion int

const (
	// Informativity: how well does the notebook capture dataset highlights?
	Informativity Criterion = iota
	// Comprehensibility: how easy is the notebook to follow?
	Comprehensibility
	// Expertise: how expert does the notebook composer appear?
	Expertise
	// HumanEquivalence: how closely does it resemble a human session?
	HumanEquivalence
)

// AllCriteria lists the criteria in presentation order.
var AllCriteria = []Criterion{Informativity, Comprehensibility, Expertise, HumanEquivalence}

func (c Criterion) String() string {
	switch c {
	case Informativity:
		return "informativity"
	case Comprehensibility:
		return "comprehensibility"
	case Expertise:
		return "expertise"
	case HumanEquivalence:
		return "human equivalence"
	default:
		return "criterion(?)"
	}
}

// Features are the measurable notebook properties the rater model sees.
type Features struct {
	// MeanSig is the average significance of the insights evidenced by the
	// notebook's queries.
	MeanSig float64
	// MeanCredRatio is the average credibility/|Qⁱ| of those insights.
	MeanCredRatio float64
	// Diversity is the mean pairwise weighted-Hamming distance between the
	// notebook's queries (0 = clones, 1 = maximally spread).
	Diversity float64
	// MeanConciseness is the average conciseness score of the queries.
	MeanConciseness float64
	// Coverage is the fraction of the dataset's categorical attributes
	// that appear in the notebook (as grouping or selection attribute).
	Coverage float64
	// NumQueries is the notebook length.
	NumQueries int
}

// ExtractFeatures measures a generation result.
func ExtractFeatures(res *pipeline.Result) Features {
	seq := res.Sequence()
	var f Features
	f.NumQueries = len(seq)
	if len(seq) == 0 {
		return f
	}
	// Conciseness is measured with the default parameters even when the
	// generating variant did not use conciseness in its interestingness
	// (the sig-only Table-7 variants): the raters see the same notebooks
	// regardless of how they were scored internally.
	concParams := res.Config.Interest.Conciseness
	if concParams == (metric.ConcisenessParams{}) {
		concParams = metric.DefaultConciseness
	}
	attrs := map[int]bool{}
	var sig, cred, conc float64
	insights := 0
	for _, sq := range seq {
		attrs[sq.Query.GroupBy] = true
		attrs[sq.Query.Attr] = true
		conc += metric.Conciseness(sq.Theta, sq.Gamma, concParams)
		for _, ins := range sq.Supported {
			sig += ins.Sig
			if ins.NumHypo > 0 {
				cred += float64(ins.Credibility) / float64(ins.NumHypo)
			}
			insights++
		}
	}
	if insights > 0 {
		f.MeanSig = sig / float64(insights)
		f.MeanCredRatio = cred / float64(insights)
	}
	f.MeanConciseness = conc / float64(len(seq))
	f.Coverage = float64(len(attrs)) / float64(res.Relation.NumCatAttrs())
	if len(seq) > 1 {
		total, pairs := 0.0, 0
		for i := range seq {
			for j := i + 1; j < len(seq); j++ {
				total += metric.Distance(seq[i].Query, seq[j].Query, res.Config.Weights)
				pairs++
			}
		}
		f.Diversity = total / float64(pairs)
	}
	return f
}

// latent computes the criterion's latent 1..7 score before rater noise.
func latent(c Criterion, f Features) float64 {
	// Each component is in [0, 1]; the weighted blend is mapped to 1..7.
	blend := 0.0
	switch c {
	case Informativity:
		blend = 0.45*f.MeanSig + 0.30*f.Coverage + 0.25*f.MeanCredRatio
	case Comprehensibility:
		blend = 0.40*f.MeanConciseness + 0.35*(1-f.Diversity) + 0.25*f.MeanSig
	case Expertise:
		blend = 0.40*f.MeanSig + 0.30*f.MeanConciseness + 0.30*f.MeanCredRatio
	case HumanEquivalence:
		// Humans mix focus with variety: peak at moderate diversity. The
		// paper attributes its own low Human-equivalence scores to ε_d
		// forcing very low diversity.
		blend = 0.6*(1-math.Abs(f.Diversity-0.5)*2) + 0.4*f.Coverage
	}
	if blend < 0 {
		blend = 0
	}
	return 1 + 6*blend
}

// Panel is a set of simulated raters.
type Panel struct {
	biases []float64
	noise  float64
	rng    *rand.Rand
}

// NewPanel creates n raters with small individual biases (N(0, 0.4)) and
// per-rating noise sd 0.7, deterministic given the seed.
func NewPanel(n int, seed int64) *Panel {
	rng := rand.New(rand.NewSource(seed))
	p := &Panel{noise: 0.7, rng: rng}
	for i := 0; i < n; i++ {
		p.biases = append(p.biases, rng.NormFloat64()*0.4)
	}
	return p
}

// NumRaters returns the panel size.
func (p *Panel) NumRaters() int { return len(p.biases) }

// Rate scores a notebook: one 1..7 rating per rater per criterion.
func (p *Panel) Rate(f Features) map[Criterion][]float64 {
	out := make(map[Criterion][]float64, len(AllCriteria))
	for _, c := range AllCriteria {
		scores := make([]float64, len(p.biases))
		for r, bias := range p.biases {
			v := latent(c, f) + bias + p.rng.NormFloat64()*p.noise
			v = math.Round(v)
			if v < 1 {
				v = 1
			}
			if v > 7 {
				v = 7
			}
			scores[r] = v
		}
		out[c] = scores
	}
	return out
}

// VariantScores holds the ratings of one generator variant.
type VariantScores struct {
	Name   string
	Scores map[Criterion][]float64
}

// Mean returns the variant's mean score on the criterion.
func (v VariantScores) Mean(c Criterion) float64 { return stats.Mean(v.Scores[c]) }

// Compare runs the paper's t-test between two variants on a criterion,
// answering "is the difference in evaluations significant?".
func Compare(a, b VariantScores, c Criterion) stats.WelchResult {
	return stats.WelchT(a.Scores[c], b.Scores[c])
}

// CronbachAlpha measures inter-rater reliability: ratings[subject][rater]
// holds each rater's score for each subject (here: each notebook variant).
// α = k/(k−1) · (1 − Σᵢ var(rater i) / var(subject totals)). Values near 1
// mean the raters order the subjects consistently; NaN when fewer than two
// raters or subjects, or when the totals do not vary.
func CronbachAlpha(ratings [][]float64) float64 {
	n := len(ratings)
	if n < 2 {
		return math.NaN()
	}
	k := len(ratings[0])
	if k < 2 {
		return math.NaN()
	}
	raterVarSum := 0.0
	for r := 0; r < k; r++ {
		col := make([]float64, n)
		for s := 0; s < n; s++ {
			col[s] = ratings[s][r]
		}
		raterVarSum += stats.Variance(col)
	}
	totals := make([]float64, n)
	for s := 0; s < n; s++ {
		totals[s] = stats.Sum(ratings[s])
	}
	tv := stats.Variance(totals)
	if stats.NearZero(tv) || math.IsNaN(tv) {
		return math.NaN()
	}
	return float64(k) / float64(k-1) * (1 - raterVarSum/tv)
}

// AlphaByCriterion computes Cronbach's α per criterion across a set of
// rated variants.
func AlphaByCriterion(variants []VariantScores) map[Criterion]float64 {
	out := make(map[Criterion]float64, len(AllCriteria))
	for _, c := range AllCriteria {
		var ratings [][]float64
		for _, v := range variants {
			ratings = append(ratings, v.Scores[c])
		}
		out[c] = CronbachAlpha(ratings)
	}
	return out
}
