package experiments

import (
	"fmt"
	"strings"

	"comparenb/internal/datagen"
	"comparenb/internal/pipeline"
)

// FDRRow is one measurement of the false-discovery experiment.
type FDRRow struct {
	Scope       string
	Tested      int
	Significant int
	// Rate is Significant/Tested — on a null dataset every discovery is
	// false, so this is an empirical false-discovery measure.
	Rate float64
}

// NullFDR quantifies the §3.3 discussion empirically, in the spirit of
// Zgraggen et al.'s spurious-insight study: on a *null* dataset (no
// planted effects whatsoever) every significant insight is a false
// discovery. The experiment runs the statistical phase under each BH
// correction scope and reports the observed false-discovery counts —
// showing what the per-pair default (the §5.1.1 reading) trades away
// against the stricter families.
func NullFDR(rows, perms int, seed int64) ([]FDRRow, error) {
	ds, err := datagen.Generate(datagen.Spec{
		Name:       "null",
		Rows:       rows,
		CatDomains: []int{4, 6, 10, 16},
		Measures:   2,
		// No effects at all: the global null.
		EffectFrac: 0, VarEffectFrac: 0,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	var out []FDRRow
	for _, scope := range []pipeline.BHScope{pipeline.BHPerPair, pipeline.BHPerAttribute, pipeline.BHGlobal} {
		cfg := pipeline.NewConfig()
		cfg.Perms = perms
		cfg.Seed = seed
		cfg.BHScope = scope
		res, err := pipeline.Generate(ds.Rel, cfg)
		if err != nil {
			return nil, err
		}
		row := FDRRow{
			Scope:       scope.String(),
			Tested:      res.Counts.InsightsEnumerated,
			Significant: res.Counts.SignificantInsights,
		}
		if row.Tested > 0 {
			row.Rate = float64(row.Significant) / float64(row.Tested)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFDR prints the false-discovery table.
func RenderFDR(rows []FDRRow, alpha float64) string {
	var sb strings.Builder
	sb.WriteString("False discoveries on a null dataset (every significant insight is spurious)\n")
	fmt.Fprintf(&sb, "%-15s %8s %14s %12s\n", "BH scope", "tested", "significant", "rate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %8d %14d %11.2f%%\n", r.Scope, r.Tested, r.Significant, 100*r.Rate)
	}
	fmt.Fprintf(&sb, "(α = %.2f; per-pair controls FDR within each 4-test family only —\n"+
		" the permissiveness that lets Figure 9's spurious insights through)\n", alpha)
	return sb.String()
}
