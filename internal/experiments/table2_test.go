package experiments

import (
	"strings"
	"testing"

	"comparenb/internal/datagen"
	"comparenb/internal/engine"
	"comparenb/internal/insight"
)

func TestTable2Row(t *testing.T) {
	ds, err := datagen.Tiny(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	row := Table2(ds.Rel)
	if row.Name != "tiny" || row.Tuples != 500 || row.CatAttrs != 4 || row.Measures != 1 {
		t.Errorf("row = %+v", row)
	}
	if row.AdomMin < 1 || row.AdomMax > 6 || row.AdomMin > row.AdomMax {
		t.Errorf("adom range = %d-%d", row.AdomMin, row.AdomMax)
	}
	if row.CompQueries != insight.CountComparisonQueries(ds.Rel, len(engine.AllAggs)) {
		t.Error("comparison-query count mismatch with Lemma 3.2")
	}
	if row.Insights != insight.CountInsights(ds.Rel, 2) {
		t.Error("insight count mismatch with Lemma 3.5")
	}
}

func TestRenderTable2(t *testing.T) {
	ds, err := datagen.Tiny(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable2([]Table2Row{Table2(ds.Rel)})
	for _, want := range []string{"Table 2", "tiny", "#Comp.queries", "Lemma 3.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
