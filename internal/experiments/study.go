package experiments

import (
	"fmt"
	"strings"
	"time"

	"comparenb/internal/pipeline"
	"comparenb/internal/table"
	"comparenb/internal/userstudy"
)

// Fig10Variant is one notebook generator of Table 7 with its ratings.
type Fig10Variant struct {
	Name     string
	Features userstudy.Features
	Scores   userstudy.VariantScores
}

// Fig10Result is the simulated human evaluation of §6.5.
type Fig10Result struct {
	Variants []Fig10Variant
	Raters   int
}

// Fig10 generates one notebook per Table-7 variant and has a simulated
// 9-rater panel score it on the four criteria of [11]. The paper's exact
// generator line-up: Naive-exact, WSC-approx, WSC-approx-sig,
// WSC-approx-sig-cred, WSC-unb-approx (10%), WSC-rand-approx (10%).
func Fig10(rel *table.Relation, base pipeline.Config, exactTimeout time.Duration) (*Fig10Result, error) {
	variants := []pipeline.Config{
		pipeline.NaiveExact(base.EpsT, base.EpsD),
		pipeline.WSCApprox(base.EpsT, base.EpsD),
		pipeline.WSCApproxSig(base.EpsT, base.EpsD),
		pipeline.WSCApproxSigCred(base.EpsT, base.EpsD),
		pipeline.WSCUnbApprox(base.EpsT, base.EpsD, 0.10),
		pipeline.WSCRandApprox(base.EpsT, base.EpsD, 0.10),
	}
	panel := userstudy.NewPanel(9, base.Seed+1000)
	out := &Fig10Result{Raters: panel.NumRaters()}
	for _, cfg := range variants {
		cfg.Perms = base.Perms
		cfg.Alpha = base.Alpha
		cfg.Threads = base.Threads
		cfg.Seed = base.Seed
		cfg.MaxPairsPerAttr = base.MaxPairsPerAttr
		cfg.ExactTimeout = exactTimeout
		res, err := pipeline.Generate(rel, cfg)
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", cfg.Name, err)
		}
		f := userstudy.ExtractFeatures(res)
		out.Variants = append(out.Variants, Fig10Variant{
			Name:     cfg.Name,
			Features: f,
			Scores:   userstudy.VariantScores{Name: cfg.Name, Scores: panel.Rate(f)},
		})
	}
	return out, nil
}

// String renders mean scores per criterion (Figure 10) and the pairwise
// t-tests the paper discusses.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10: Simulated human evaluation (%d raters, scale 1–7)\n", r.Raters)
	fmt.Fprintf(&sb, "%-20s", "variant")
	for _, c := range userstudy.AllCriteria {
		fmt.Fprintf(&sb, " %17s", c)
	}
	sb.WriteString("\n")
	for _, v := range r.Variants {
		fmt.Fprintf(&sb, "%-20s", v.Name)
		for _, c := range userstudy.AllCriteria {
			fmt.Fprintf(&sb, " %17.2f", v.Scores.Mean(c))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\nNotebook features driving the rater model:\n")
	fmt.Fprintf(&sb, "%-20s %8s %8s %10s %12s %9s %5s\n",
		"variant", "sig", "cred", "diversity", "conciseness", "coverage", "|nb|")
	for _, v := range r.Variants {
		f := v.Features
		fmt.Fprintf(&sb, "%-20s %8.3f %8.3f %10.3f %12.3f %9.3f %5d\n",
			v.Name, f.MeanSig, f.MeanCredRatio, f.Diversity, f.MeanConciseness, f.Coverage, f.NumQueries)
	}
	var scored []userstudy.VariantScores
	for _, v := range r.Variants {
		scored = append(scored, v.Scores)
	}
	alphas := userstudy.AlphaByCriterion(scored)
	sb.WriteString("\nInter-rater reliability (Cronbach's α across variants):\n")
	for _, c := range userstudy.AllCriteria {
		fmt.Fprintf(&sb, "  %-20s %6.3f\n", c.String(), alphas[c])
	}
	sb.WriteString("\nPairwise Welch t-tests (p-values), informativity:\n")
	sb.WriteString(r.pairwise(userstudy.Informativity))
	sb.WriteString("\nPairwise Welch t-tests (p-values), comprehensibility:\n")
	sb.WriteString(r.pairwise(userstudy.Comprehensibility))
	return sb.String()
}

func (r *Fig10Result) pairwise(c userstudy.Criterion) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s", "")
	for _, v := range r.Variants {
		fmt.Fprintf(&sb, " %9s", shorten(v.Name))
	}
	sb.WriteString("\n")
	for _, a := range r.Variants {
		fmt.Fprintf(&sb, "%-20s", a.Name)
		for _, b := range r.Variants {
			if a.Name == b.Name {
				fmt.Fprintf(&sb, " %9s", "-")
				continue
			}
			res := userstudy.Compare(a.Scores, b.Scores, c)
			fmt.Fprintf(&sb, " %9.3f", res.P)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func shorten(name string) string {
	name = strings.TrimPrefix(name, "WSC-")
	name = strings.TrimPrefix(name, "Naive-")
	if len(name) > 9 {
		name = name[:9]
	}
	return name
}
