package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"comparenb/internal/metric"
	"comparenb/internal/pipeline"
	"comparenb/internal/stats"
	"comparenb/internal/table"
	"comparenb/internal/tap"
	"comparenb/internal/userstudy"
)

// AblationResult bundles the three ablation studies of the design choices
// DESIGN.md calls out: TAP heuristics, distance weights, and the
// credibility reading.
type AblationResult struct {
	Solvers     []SolverQualityRow
	Distance    []DistanceAblationRow
	Credibility CredibilityAblation
}

// SolverQualityRow compares the heuristics against the exact optimum on
// artificial instances at one ε_d.
type SolverQualityRow struct {
	EpsD           float64
	Solved         int
	DevGreedyPct   float64
	DevGreedy2Pct  float64 // GreedyPlus (Algorithm 3 + 2-opt)
	DevTopKPct     float64
	InfeasibleTopK int // instances where the baseline violates ε_d
}

// SolverQuality runs the heuristic-quality ablation: Greedy vs GreedyPlus
// vs the TopK baseline against certified optima.
func SolverQuality(n, instances, epsT int, epsDs []float64, timeout time.Duration, seed int64) []SolverQualityRow {
	rng := rand.New(rand.NewSource(seed))
	var rows []SolverQualityRow
	for _, epsD := range epsDs {
		row := SolverQualityRow{EpsD: epsD}
		var dg, dg2, dt []float64
		for k := 0; k < instances; k++ {
			inst := tap.RandomUniformInstance(n, rng)
			exact, st := tap.SolveExact(inst, float64(epsT), epsD, tap.ExactOptions{Timeout: timeout})
			if !st.Certified {
				continue
			}
			row.Solved++
			g := tap.Greedy(inst, float64(epsT), epsD)
			gp := tap.GreedyPlus(inst, float64(epsT), epsD)
			tk := tap.TopK(inst, float64(epsT))
			dg = append(dg, 100*tap.Deviation(exact, g))
			dg2 = append(dg2, 100*tap.Deviation(exact, gp))
			dt = append(dt, 100*tap.Deviation(exact, tk))
			if inst.Feasible(tk, float64(epsT), epsD) != nil {
				row.InfeasibleTopK++
			}
		}
		row.DevGreedyPct = stats.Mean(dg)
		row.DevGreedy2Pct = stats.Mean(dg2)
		row.DevTopKPct = stats.Mean(dt)
		rows = append(rows, row)
	}
	return rows
}

// DistanceAblationRow measures how the distance weighting changes the
// generated notebook.
type DistanceAblationRow struct {
	Weights   string
	Diversity float64
	Interest  float64
	Queries   int
}

// DistanceAblation generates notebooks under the §4.2 part weights and
// under uniform weights and reports the notebook diversity each yields.
func DistanceAblation(rel *table.Relation, base pipeline.Config) ([]DistanceAblationRow, error) {
	var rows []DistanceAblationRow
	for _, w := range []struct {
		name string
		w    metric.Weights
	}{
		{"paper (val>B>A>agg)", metric.DefaultWeights},
		{"uniform", metric.UniformWeights},
	} {
		cfg := base
		cfg.Weights = w.w
		res, err := pipeline.Generate(rel, cfg)
		if err != nil {
			return nil, err
		}
		f := userstudy.ExtractFeatures(res)
		rows = append(rows, DistanceAblationRow{
			Weights:   w.name,
			Diversity: f.Diversity,
			Interest:  res.Solution.TotalInterest,
			Queries:   len(res.Solution.Order),
		})
	}
	return rows, nil
}

// CredibilityAblation contrasts the two readings of Def. 3.11 /
// Algorithm 1 (see Config.CredibilityAggExists).
type CredibilityAblation struct {
	// Saturated counts insights with credibility = |Qⁱ| (zero surprise)
	// under each reading; ZeroInterest counts queries whose interest
	// collapses to 0 as a result.
	CanonicalSaturated int
	CanonicalInsights  int
	ExistsSaturated    int
	ExistsInsights     int
}

// CredibilityReadings measures saturation under both credibility readings.
func CredibilityReadings(rel *table.Relation, base pipeline.Config) (CredibilityAblation, error) {
	var out CredibilityAblation
	for _, exists := range []bool{false, true} {
		cfg := base
		cfg.CredibilityAggExists = exists
		res, err := pipeline.Generate(rel, cfg)
		if err != nil {
			return out, err
		}
		sat := 0
		for _, ins := range res.Insights {
			if ins.NumHypo > 0 && ins.Credibility == ins.NumHypo {
				sat++
			}
		}
		if exists {
			out.ExistsSaturated, out.ExistsInsights = sat, len(res.Insights)
		} else {
			out.CanonicalSaturated, out.CanonicalInsights = sat, len(res.Insights)
		}
	}
	return out, nil
}

// String renders all three ablations.
func (a AblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation 1: TAP heuristic quality (deviation from certified optimum, %)\n")
	fmt.Fprintf(&sb, "%8s %8s %12s %14s %10s %16s\n", "ε_d", "#solved", "Algorithm 3", "Algo 3 + 2-opt", "TopK", "TopK infeasible")
	for _, r := range a.Solvers {
		fmt.Fprintf(&sb, "%8.2f %8d %11.2f%% %13.2f%% %9.2f%% %16d\n",
			r.EpsD, r.Solved, r.DevGreedyPct, r.DevGreedy2Pct, r.DevTopKPct, r.InfeasibleTopK)
	}
	sb.WriteString("\nAblation 2: distance part weights → notebook diversity\n")
	fmt.Fprintf(&sb, "%-22s %10s %10s %8s\n", "weights", "diversity", "interest", "|nb|")
	for _, r := range a.Distance {
		fmt.Fprintf(&sb, "%-22s %10.3f %10.3f %8d\n", r.Weights, r.Diversity, r.Interest, r.Queries)
	}
	c := a.Credibility
	sb.WriteString("\nAblation 3: credibility reading → surprise saturation\n")
	fmt.Fprintf(&sb, "canonical (avg per attribute): %d/%d insights at full credibility (zero surprise)\n",
		c.CanonicalSaturated, c.CanonicalInsights)
	fmt.Fprintf(&sb, "∃agg (Algorithm 1 literal):    %d/%d insights at full credibility\n",
		c.ExistsSaturated, c.ExistsInsights)
	return sb.String()
}
