package experiments

import (
	"fmt"
	"strings"

	"comparenb/internal/engine"
	"comparenb/internal/insight"
	"comparenb/internal/table"
)

// Table2Row describes one dataset in the paper's Table 2 layout.
type Table2Row struct {
	Name        string
	Tuples      int
	CatAttrs    int
	AdomMin     int
	AdomMax     int
	Measures    int
	CompQueries int // Lemma 3.2 with f = |AllAggs|
	Insights    int // Lemma 3.5 with T = 2
}

// Table2 computes the description row of a relation.
func Table2(rel *table.Relation) Table2Row {
	row := Table2Row{
		Name:     rel.Name(),
		Tuples:   rel.NumRows(),
		CatAttrs: rel.NumCatAttrs(),
		Measures: rel.NumMeasures(),
	}
	for a := 0; a < rel.NumCatAttrs(); a++ {
		d := rel.DomSize(a)
		if a == 0 || d < row.AdomMin {
			row.AdomMin = d
		}
		if d > row.AdomMax {
			row.AdomMax = d
		}
	}
	row.CompQueries = insight.CountComparisonQueries(rel, len(engine.AllAggs))
	row.Insights = insight.CountInsights(rel, len(insight.AllTypes))
	return row
}

// RenderTable2 prints dataset descriptions in the paper's Table 2 shape.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Description of the datasets\n")
	fmt.Fprintf(&sb, "%-10s %10s %8s %12s %7s %14s %12s\n",
		"Name", "Size", "#Categ.", "Adom size", "#Meas.", "#Comp.queries", "#Insights")
	fmt.Fprintf(&sb, "%-10s %10s %8s %12s %7s %14s %12s\n",
		"", "(tuples)", "attr.", "(min-max)", "", "(Lemma 3.2)", "(Lemma 3.5)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10d %8d %5d-%-6d %7d %14d %12d\n",
			r.Name, r.Tuples, r.CatAttrs, r.AdomMin, r.AdomMax, r.Measures, r.CompQueries, r.Insights)
	}
	return sb.String()
}
