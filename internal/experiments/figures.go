package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"comparenb/internal/engine"
	"comparenb/internal/pipeline"
	"comparenb/internal/sampling"
	"comparenb/internal/table"
)

// Fig5Result is the run-time distribution of comparison queries
// (Figure 5), supporting §4.2's uniform-cost argument.
type Fig5Result struct {
	Times   []time.Duration
	Buckets []Fig5Bucket
}

// Fig5Bucket is one histogram bar.
type Fig5Bucket struct {
	Lo, Hi time.Duration
	Count  int
}

// Fig5 executes a random sample of comparison queries with the literal
// two-scan join plan and reports the run-time distribution.
func Fig5(rel *table.Relation, queries int, seed int64) Fig5Result {
	rng := rand.New(rand.NewSource(seed))
	n := rel.NumCatAttrs()
	var times []time.Duration
	for k := 0; k < queries; k++ {
		attrA := rng.Intn(n)
		attrB := rng.Intn(n - 1)
		if attrB >= attrA {
			attrB++
		}
		dB := rel.DomSize(attrB)
		if dB < 2 {
			continue
		}
		val := int32(rng.Intn(dB))
		val2 := int32(rng.Intn(dB - 1))
		if val2 >= val {
			val2++
		}
		meas := rng.Intn(rel.NumMeasures())
		agg := engine.AllAggs[rng.Intn(len(engine.AllAggs))]
		start := time.Now()
		engine.CompareDirect(rel, attrA, attrB, val, val2, meas, agg)
		times = append(times, time.Since(start))
	}
	res := Fig5Result{Times: times}
	if len(times) == 0 {
		return res
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lo, hi := sorted[0], sorted[len(sorted)-1]
	const nb = 10
	width := (hi - lo) / nb
	if width == 0 {
		width = 1
	}
	res.Buckets = make([]Fig5Bucket, nb)
	for b := range res.Buckets {
		res.Buckets[b].Lo = lo + time.Duration(b)*width
		res.Buckets[b].Hi = lo + time.Duration(b+1)*width
	}
	for _, t := range times {
		b := int((t - lo) / width)
		if b >= nb {
			b = nb - 1
		}
		res.Buckets[b].Count++
	}
	return res
}

// String renders the histogram plus the spread statistics that matter for
// the uniform-cost argument.
func (r Fig5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: Distribution of comparison query run times\n")
	maxCount := 0
	for _, b := range r.Buckets {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	for _, b := range r.Buckets {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", b.Count*50/maxCount)
		}
		fmt.Fprintf(&sb, "[%9s, %9s) %5d %s\n", fmtDur(b.Lo), fmtDur(b.Hi), b.Count, bar)
	}
	if len(r.Times) > 0 {
		sorted := append([]time.Duration(nil), r.Times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		med := sorted[len(sorted)/2]
		p90 := sorted[len(sorted)*9/10]
		fmt.Fprintf(&sb, "n=%d median=%s p90=%s max=%s (tight spread ⇒ uniform cost model, §4.2)\n",
			len(r.Times), fmtDur(med), fmtDur(p90), fmtDur(sorted[len(sorted)-1]))
	}
	return sb.String()
}

// SampleSizePoint is one point of Figures 6 and 9: runtime and fraction of
// insights detected at a sampling rate, with the phase breakdown Figure 9
// discusses.
type SampleSizePoint struct {
	Frac        float64
	Runtime     time.Duration
	StatTests   time.Duration
	HypoEval    time.Duration
	TAP         time.Duration
	Significant int
	PctInsights float64 // vs the no-sampling reference; can exceed 100 (spurious)
}

// SampleSizeResult is one strategy's curve.
type SampleSizeResult struct {
	Strategy    string
	RefInsights int // significant insights with no sampling
	RefRuntime  time.Duration
	Points      []SampleSizePoint
}

// SampleSizeSweep runs a generator config across sampling fractions for
// both strategies (Figure 6 on ENEDIS, Figure 9 on Flights). The reference
// run (no sampling) is executed once and shared.
func SampleSizeSweep(rel *table.Relation, base pipeline.Config, fracs []float64) ([]SampleSizeResult, error) {
	ref := base
	ref.Sampling = sampling.None
	ref.SampleFrac = 1
	refRes, err := pipeline.Generate(rel, ref)
	if err != nil {
		return nil, err
	}
	out := make([]SampleSizeResult, 0, 2)
	for _, strat := range []sampling.Strategy{sampling.Unbalanced, sampling.Random} {
		r := SampleSizeResult{
			Strategy:    strat.String(),
			RefInsights: refRes.Counts.SignificantInsights,
			RefRuntime:  refRes.Timings.Total,
		}
		for _, f := range fracs {
			cfg := base
			cfg.Sampling = strat
			cfg.SampleFrac = f
			res, err := pipeline.Generate(rel, cfg)
			if err != nil {
				return nil, err
			}
			pct := 0.0
			if refRes.Counts.SignificantInsights > 0 {
				pct = 100 * float64(res.Counts.SignificantInsights) / float64(refRes.Counts.SignificantInsights)
			}
			r.Points = append(r.Points, SampleSizePoint{
				Frac:        f,
				Runtime:     res.Timings.Total,
				StatTests:   res.Timings.StatTests,
				HypoEval:    res.Timings.HypoEval,
				TAP:         res.Timings.TAP,
				Significant: res.Counts.SignificantInsights,
				PctInsights: pct,
			})
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderSampleSweep prints the curves in the layout of Figures 6/9.
func RenderSampleSweep(title string, results []SampleSizeResult) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "strategy=%s (reference: %d insights, %s with no sampling)\n",
			r.Strategy, r.RefInsights, fmtDur(r.RefRuntime))
		fmt.Fprintf(&sb, "%8s %12s %12s %12s %12s %10s %12s\n",
			"sample%", "runtime", "stat tests", "hypo eval", "TAP", "#insights", "%insights")
		for _, p := range r.Points {
			fmt.Fprintf(&sb, "%8.0f %12s %12s %12s %12s %10d %11.1f%%\n",
				p.Frac*100, fmtDur(p.Runtime), fmtDur(p.StatTests), fmtDur(p.HypoEval),
				fmtDur(p.TAP), p.Significant, p.PctInsights)
		}
	}
	return sb.String()
}

// Fig7Cell is one implementation × budget measurement of Figure 7.
type Fig7Cell struct {
	Impl        string
	EpsT        int
	Timings     pipeline.Timings
	Queries     int
	TAPTimedOut bool
}

// Fig7 runs the five Table-3 implementations across notebook budgets ε_t.
// exactTimeout bounds Naive-exact's TAP phase: like in the paper, when it
// times out the TAP time is reported separately (the run is not counted in
// the runtime-by-budget comparison).
func Fig7(rel *table.Relation, base pipeline.Config, budgets []int, unbFrac, randFrac float64, exactTimeout time.Duration) ([]Fig7Cell, error) {
	var cells []Fig7Cell
	for _, epsT := range budgets {
		impls := []pipeline.Config{
			pipeline.NaiveExact(epsT, base.EpsD),
			pipeline.NaiveApprox(epsT, base.EpsD),
			pipeline.WSCApprox(epsT, base.EpsD),
			pipeline.WSCUnbApprox(epsT, base.EpsD, unbFrac),
			pipeline.WSCRandApprox(epsT, base.EpsD, randFrac),
		}
		for _, cfg := range impls {
			cfg.Perms = base.Perms
			cfg.Alpha = base.Alpha
			cfg.Threads = base.Threads
			cfg.Seed = base.Seed
			cfg.MaxPairsPerAttr = base.MaxPairsPerAttr
			cfg.ExactTimeout = exactTimeout
			res, err := pipeline.Generate(rel, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Fig7Cell{
				Impl:        cfg.Name,
				EpsT:        epsT,
				Timings:     res.Timings,
				Queries:     res.Counts.QueriesGenerated,
				TAPTimedOut: res.ExactStats != nil && res.ExactStats.TimedOut,
			})
		}
	}
	return cells, nil
}

// RenderFig7 prints runtime by budget and the average phase breakdown.
func RenderFig7(cells []Fig7Cell) string {
	var sb strings.Builder
	sb.WriteString("Figure 7 (top): Runtime by budget ε_t\n")
	fmt.Fprintf(&sb, "%-18s %8s %12s %12s %12s %12s %8s\n",
		"implementation", "ε_t", "total", "stat tests", "hypo eval", "TAP", "|Q|")
	for _, c := range cells {
		total := c.Timings.Total
		note := ""
		if c.TAPTimedOut {
			// Like the paper, the timed-out exact TAP is not counted in
			// the generation runtime.
			total -= c.Timings.TAP
			note = " (TAP timeout, excluded)"
		}
		fmt.Fprintf(&sb, "%-18s %8d %12s %12s %12s %12s %8d%s\n",
			c.Impl, c.EpsT, fmtDur(total), fmtDur(c.Timings.StatTests),
			fmtDur(c.Timings.HypoEval), fmtDur(c.Timings.TAP), c.Queries, note)
	}
	sb.WriteString("\nFigure 7 (bottom): average breakdown per implementation\n")
	type agg struct {
		stat, hypo, tapd, fd time.Duration
		n                    int
	}
	byImpl := map[string]*agg{}
	var order []string
	for _, c := range cells {
		a := byImpl[c.Impl]
		if a == nil {
			a = &agg{}
			byImpl[c.Impl] = a
			order = append(order, c.Impl)
		}
		a.stat += c.Timings.StatTests
		a.hypo += c.Timings.HypoEval
		if !c.TAPTimedOut {
			a.tapd += c.Timings.TAP
		}
		a.fd += c.Timings.FD
		a.n++
	}
	fmt.Fprintf(&sb, "%-18s %12s %12s %12s %12s\n", "implementation", "FD prep", "stat tests", "hypo eval", "TAP")
	for _, name := range order {
		a := byImpl[name]
		d := time.Duration(a.n)
		fmt.Fprintf(&sb, "%-18s %12s %12s %12s %12s\n",
			name, fmtDur(a.fd/d), fmtDur(a.stat/d), fmtDur(a.hypo/d), fmtDur(a.tapd/d))
	}
	return sb.String()
}

// Fig8Point is one thread-count measurement of Figure 8.
type Fig8Point struct {
	Threads   int
	StatTests time.Duration
	HypoEval  time.Duration
}

// Fig8 measures the two parallel phases of the generation of Q
// (permutation testing, in-memory aggregate checking) across thread
// counts, on the WSC-approx implementation.
func Fig8(rel *table.Relation, base pipeline.Config, threads []int) ([]Fig8Point, error) {
	var out []Fig8Point
	for _, th := range threads {
		cfg := pipeline.WSCApprox(base.EpsT, base.EpsD)
		cfg.Perms = base.Perms
		cfg.Alpha = base.Alpha
		cfg.Seed = base.Seed
		cfg.MaxPairsPerAttr = base.MaxPairsPerAttr
		cfg.Threads = th
		res, err := pipeline.Generate(rel, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Point{Threads: th, StatTests: res.Timings.StatTests, HypoEval: res.Timings.HypoEval})
	}
	return out, nil
}

// RenderFig8 prints the scaling curve with speedups vs single-threaded.
func RenderFig8(points []Fig8Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: Impact of multi-threading on the generation of Q (WSC-approx)\n")
	fmt.Fprintf(&sb, "%8s %14s %10s %14s %10s\n", "threads", "stat tests", "speedup", "hypo eval", "speedup")
	var s1, h1 time.Duration
	for i, p := range points {
		if i == 0 {
			s1, h1 = p.StatTests, p.HypoEval
		}
		su, hu := 0.0, 0.0
		if p.StatTests > 0 {
			su = float64(s1) / float64(p.StatTests)
		}
		if p.HypoEval > 0 {
			hu = float64(h1) / float64(p.HypoEval)
		}
		fmt.Fprintf(&sb, "%8d %14s %9.2fx %14s %9.2fx\n",
			p.Threads, fmtDur(p.StatTests), su, fmtDur(p.HypoEval), hu)
	}
	return sb.String()
}
