// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment returns a structured result with a
// String renderer that prints the same rows/series the paper reports;
// cmd/experiments is a thin CLI over this package and bench_test.go wraps
// each experiment in a testing.B benchmark. EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"comparenb/internal/stats"
	"comparenb/internal/tap"
)

// ArtificialConfig drives the §6.2/§6.4 experiments on artificial query
// sets (Tables 4, 5, 6).
type ArtificialConfig struct {
	// Sizes are the |Q| values (the paper uses 100..700).
	Sizes []int
	// Instances per size (the paper uses 30).
	Instances int
	// EpsT is the solution size (the paper uses 25; we default to 10 —
	// the exact feasibility oracle is Held–Karp, exponential in ε_t, see
	// DESIGN.md substitutions).
	EpsT int
	// EpsD is the distance bound on the unit square.
	EpsD float64
	// Timeout per exact solve (the paper uses one hour).
	Timeout time.Duration
	Seed    int64
}

// DefaultArtificial mirrors the paper's protocol at laptop scale. Two
// axes are scaled (see DESIGN.md): ε_t = 10 instead of 25 (the exact
// feasibility oracle is Held–Karp, exponential in ε_t), and the |Q| axis
// runs to 300 instead of 700 — our branch-and-bound stands in for CPLEX
// and hits its timeout wall at smaller instances; the *shape* (fast at
// small |Q|, super-linear growth, a timeout wall at the top sizes) is the
// reproduced result. ε_d = 0.6 keeps the distance constraint binding, the
// regime the paper's protocol studies.
func DefaultArtificial() ArtificialConfig {
	return ArtificialConfig{
		Sizes:     []int{25, 50, 100, 150, 200, 300},
		Instances: 30,
		EpsT:      10,
		EpsD:      0.6,
		Timeout:   time.Hour,
		Seed:      1,
	}
}

// Table4Row is one row of Table 4: time to solve the TAP to optimality.
type Table4Row struct {
	N           int
	Avg         time.Duration
	Min, Max    time.Duration
	Stdev       time.Duration
	PctTimeouts float64
}

// Table5Row is one row of Table 5: heuristic deviation from the optimal
// objective, in percent (mean ± stdev over the non-timed-out instances).
type Table5Row struct {
	N          int
	AvgDevPct  float64
	StdDevPct  float64
	Comparable int // instances where the exact optimum is certified
}

// Table6Row is one row of Table 6: recall of Algorithm 3 and of the
// top-ε_t baseline against the optimal solution.
type Table6Row struct {
	N             int
	RecallAlgo3   float64
	RecallAlgo3SD float64
	RecallTopK    float64
	RecallTopKSD  float64
	Comparable    int
}

// ArtificialResult bundles Tables 4, 5 and 6 (they share instances and
// exact solves, as in the paper's protocol).
type ArtificialResult struct {
	Config ArtificialConfig
	Table4 []Table4Row
	Table5 []Table5Row
	Table6 []Table6Row
}

// Artificial runs the shared protocol: for each size, `Instances`
// artificial instances with uniform interestingness, unit costs and
// unit-square Euclidean distances; exact branch-and-bound with timeout;
// Algorithm 3 and the baseline on the same instances.
func Artificial(cfg ArtificialConfig) ArtificialResult {
	res := ArtificialResult{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range cfg.Sizes {
		var times []float64 // seconds, only non-timeouts
		timeouts := 0
		var devs, recalls, baseRecalls []float64
		for k := 0; k < cfg.Instances; k++ {
			inst := tap.RandomUniformInstance(n, rng)
			exact, st := tap.SolveExact(inst, float64(cfg.EpsT), cfg.EpsD, tap.ExactOptions{Timeout: cfg.Timeout})
			if st.TimedOut {
				timeouts++
			} else {
				times = append(times, st.Elapsed.Seconds())
			}
			if !st.Certified {
				continue
			}
			greedy := tap.Greedy(inst, float64(cfg.EpsT), cfg.EpsD)
			base := tap.TopK(inst, float64(cfg.EpsT))
			devs = append(devs, 100*tap.Deviation(exact, greedy))
			recalls = append(recalls, tap.Recall(exact, greedy))
			baseRecalls = append(baseRecalls, tap.Recall(exact, base))
		}
		res.Table4 = append(res.Table4, Table4Row{
			N:           n,
			Avg:         secs(stats.Mean(times)),
			Min:         secs(minOf(times)),
			Max:         secs(maxOf(times)),
			Stdev:       secs(stats.StdDev(times)),
			PctTimeouts: 100 * float64(timeouts) / float64(cfg.Instances),
		})
		res.Table5 = append(res.Table5, Table5Row{
			N: n, AvgDevPct: stats.Mean(devs), StdDevPct: stats.StdDev(devs), Comparable: len(devs),
		})
		res.Table6 = append(res.Table6, Table6Row{
			N:             n,
			RecallAlgo3:   stats.Mean(recalls),
			RecallAlgo3SD: stats.StdDev(recalls),
			RecallTopK:    stats.Mean(baseRecalls),
			RecallTopKSD:  stats.StdDev(baseRecalls),
			Comparable:    len(recalls),
		})
	}
	return res
}

func secs(s float64) time.Duration {
	if math.IsNaN(s) {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

func minOf(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders the three tables in the paper's layout.
func (r ArtificialResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 4: Time to solve the TAP to optimality (ε_t=%d, ε_d=%.2f, timeout=%v, %d instances/size)\n",
		r.Config.EpsT, r.Config.EpsD, r.Config.Timeout, r.Config.Instances)
	fmt.Fprintf(&sb, "%8s %12s %12s %12s %12s %10s\n", "#Queries", "avg", "min", "max", "stdev", "%Timeouts")
	for _, row := range r.Table4 {
		//nolint:floateq // 100 arises only as count/count*100, which is exact in float64
		if row.PctTimeouts == 100 {
			fmt.Fprintf(&sb, "%8d %12s %12s %12s %12s %10.1f\n", row.N, "-", "> timeout", "> timeout", "-", row.PctTimeouts)
			continue
		}
		fmt.Fprintf(&sb, "%8d %12s %12s %12s %12s %10.1f\n",
			row.N, fmtDur(row.Avg), fmtDur(row.Min), fmtDur(row.Max), fmtDur(row.Stdev), row.PctTimeouts)
	}
	sb.WriteString("\nTable 5: Average deviation to optimal solution objective\n")
	fmt.Fprintf(&sb, "%8s %22s %12s\n", "#Queries", "Deviation", "#instances")
	for _, row := range r.Table5 {
		if row.Comparable == 0 {
			fmt.Fprintf(&sb, "%8d %22s %12d\n", row.N, "-", 0)
			continue
		}
		fmt.Fprintf(&sb, "%8d %12.2f ±%6.2f %% %12d\n", row.N, row.AvgDevPct, row.StdDevPct, row.Comparable)
	}
	sb.WriteString("\nTable 6: Recall vs optimal solution\n")
	fmt.Fprintf(&sb, "%8s %22s %22s\n", "#Queries", "Recall (Algorithm 3)", "Recall (Baseline)")
	for _, row := range r.Table6 {
		if row.Comparable == 0 {
			fmt.Fprintf(&sb, "%8d %22s %22s\n", row.N, "-", "-")
			continue
		}
		fmt.Fprintf(&sb, "%8d %12.3f ±%6.3f %12.3f ±%6.3f\n",
			row.N, row.RecallAlgo3, row.RecallAlgo3SD, row.RecallTopK, row.RecallTopKSD)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0s"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
