package experiments

import (
	"strings"
	"testing"
	"time"

	"comparenb/internal/datagen"
	"comparenb/internal/pipeline"
)

func smallArtificial() ArtificialConfig {
	return ArtificialConfig{
		Sizes:     []int{30, 60},
		Instances: 4,
		EpsT:      6,
		EpsD:      1.0,
		Timeout:   5 * time.Second,
		Seed:      3,
	}
}

func TestArtificialTables(t *testing.T) {
	res := Artificial(smallArtificial())
	if len(res.Table4) != 2 || len(res.Table5) != 2 || len(res.Table6) != 2 {
		t.Fatalf("row counts: %d %d %d", len(res.Table4), len(res.Table5), len(res.Table6))
	}
	for i, row := range res.Table4 {
		if row.PctTimeouts < 0 || row.PctTimeouts > 100 {
			t.Errorf("row %d: %%timeouts = %v", i, row.PctTimeouts)
		}
		if row.PctTimeouts < 100 && row.Avg <= 0 {
			t.Errorf("row %d: avg time = %v", i, row.Avg)
		}
		if row.Min > row.Max {
			t.Errorf("row %d: min %v > max %v", i, row.Min, row.Max)
		}
	}
	for i, row := range res.Table5 {
		if row.Comparable > 0 && (row.AvgDevPct < 0 || row.AvgDevPct > 100) {
			t.Errorf("row %d: deviation %v%% out of range", i, row.AvgDevPct)
		}
	}
	for i, row := range res.Table6 {
		if row.Comparable == 0 {
			continue
		}
		if row.RecallAlgo3 < 0 || row.RecallAlgo3 > 1 || row.RecallTopK < 0 || row.RecallTopK > 1 {
			t.Errorf("row %d: recalls %v / %v", i, row.RecallAlgo3, row.RecallTopK)
		}
	}
	out := res.String()
	for _, want := range []string{"Table 4", "Table 5", "Table 6", "%Timeouts", "Recall"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func testRelation(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Tiny(9, 1500)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig() pipeline.Config {
	cfg := pipeline.NewConfig()
	cfg.Perms = 150
	cfg.Seed = 2
	cfg.Threads = 2
	cfg.EpsT = 5
	cfg.EpsD = 2
	return cfg
}

func TestFig5(t *testing.T) {
	ds := testRelation(t)
	res := Fig5(ds.Rel, 50, 1)
	if len(res.Times) != 50 {
		t.Fatalf("times = %d, want 50", len(res.Times))
	}
	total := 0
	for _, b := range res.Buckets {
		total += b.Count
	}
	if total != 50 {
		t.Errorf("histogram holds %d, want 50", total)
	}
	if !strings.Contains(res.String(), "median=") {
		t.Error("render missing stats line")
	}
}

func TestSampleSizeSweep(t *testing.T) {
	ds := testRelation(t)
	res, err := SampleSizeSweep(ds.Rel, baseConfig(), []float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("strategies = %d, want 2 (unbalanced, random)", len(res))
	}
	for _, r := range res {
		if r.RefInsights == 0 {
			t.Fatalf("%s: reference found no insights", r.Strategy)
		}
		if len(r.Points) != 2 {
			t.Fatalf("%s: %d points", r.Strategy, len(r.Points))
		}
		for _, p := range r.Points {
			if p.Runtime <= 0 {
				t.Errorf("%s@%v: runtime %v", r.Strategy, p.Frac, p.Runtime)
			}
			if p.PctInsights < 0 {
				t.Errorf("%s@%v: %%insights %v", r.Strategy, p.Frac, p.PctInsights)
			}
		}
	}
	out := RenderSampleSweep("Figure 6", res)
	if !strings.Contains(out, "strategy=unbalanced") || !strings.Contains(out, "%insights") {
		t.Error("render malformed")
	}
}

func TestFig7(t *testing.T) {
	ds := testRelation(t)
	cells, err := Fig7(ds.Rel, baseConfig(), []int{3, 5}, 0.5, 0.7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 { // 5 implementations × 2 budgets
		t.Fatalf("cells = %d, want 10", len(cells))
	}
	names := map[string]bool{}
	for _, c := range cells {
		names[c.Impl] = true
		if c.Timings.Total <= 0 {
			t.Errorf("%s: zero total", c.Impl)
		}
	}
	if len(names) != 5 {
		t.Errorf("implementations = %v", names)
	}
	out := RenderFig7(cells)
	if !strings.Contains(out, "Naive-exact") || !strings.Contains(out, "breakdown") {
		t.Error("render malformed")
	}
}

func TestFig8(t *testing.T) {
	ds := testRelation(t)
	points, err := Fig8(ds.Rel, baseConfig(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	out := RenderFig8(points)
	if !strings.Contains(out, "speedup") {
		t.Error("render malformed")
	}
}

func TestFig10(t *testing.T) {
	ds := testRelation(t)
	res, err := Fig10(ds.Rel, baseConfig(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 6 {
		t.Fatalf("variants = %d, want 6 (Table 7)", len(res.Variants))
	}
	for _, v := range res.Variants {
		for _, c := range []string{"informativity"} {
			_ = c
		}
		if v.Features.NumQueries == 0 {
			t.Errorf("%s produced an empty notebook", v.Name)
		}
	}
	out := res.String()
	for _, want := range []string{"Figure 10", "WSC-approx-sig", "t-tests", "informativity"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestNullFDR(t *testing.T) {
	rows, err := NullFDR(3000, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byScope := map[string]FDRRow{}
	for _, r := range rows {
		byScope[r.Scope] = r
		if r.Tested == 0 {
			t.Fatalf("%s: nothing tested", r.Scope)
		}
	}
	// Stricter families can only reduce discoveries on the null.
	if byScope["global"].Significant > byScope["per-attribute"].Significant ||
		byScope["per-attribute"].Significant > byScope["per-pair"].Significant {
		t.Errorf("monotonicity violated: %+v", rows)
	}
	// Per-pair on a null dataset must stay in the vicinity of α per
	// family; a rate far above 2×α would mean broken tests.
	if pp := byScope["per-pair"]; pp.Rate > 0.10 {
		t.Errorf("per-pair null FDR = %.3f, implausibly high", pp.Rate)
	}
	out := RenderFDR(rows, 0.05)
	if !strings.Contains(out, "BH scope") || !strings.Contains(out, "per-pair") {
		t.Error("render malformed")
	}
}
