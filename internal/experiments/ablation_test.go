package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestSolverQuality(t *testing.T) {
	rows := SolverQuality(40, 4, 6, []float64{0.5, 1.0}, 5*time.Second, 9)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Solved == 0 {
			t.Skipf("no instances certified at ε_d=%v within test timeout", r.EpsD)
		}
		if r.DevGreedy2Pct > r.DevGreedyPct+1e-9 {
			t.Errorf("ε_d=%v: GreedyPlus deviation %v worse than Greedy %v",
				r.EpsD, r.DevGreedy2Pct, r.DevGreedyPct)
		}
		if r.DevGreedyPct < 0 {
			t.Errorf("negative Greedy deviation: %+v", r)
		}
		// TopK may show a negative deviation: it ignores ε_d, so it can
		// "beat" the optimum only by being infeasible.
		if r.DevTopKPct < 0 && r.InfeasibleTopK == 0 {
			t.Errorf("TopK beat the optimum while feasible: %+v", r)
		}
	}
}

func TestDistanceAndCredibilityAblations(t *testing.T) {
	ds := testRelation(t)
	cfg := baseConfig()
	dist, err := DistanceAblation(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 2 {
		t.Fatalf("distance rows = %d", len(dist))
	}
	for _, r := range dist {
		if r.Queries == 0 {
			t.Errorf("%s produced an empty notebook", r.Weights)
		}
	}
	cred, err := CredibilityReadings(ds.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cred.CanonicalInsights == 0 || cred.ExistsInsights == 0 {
		t.Fatal("ablation found no insights")
	}
	// The ∃agg reading can only increase per-insight credibility, so its
	// saturation rate must be at least the canonical one.
	canRate := float64(cred.CanonicalSaturated) / float64(cred.CanonicalInsights)
	extRate := float64(cred.ExistsSaturated) / float64(cred.ExistsInsights)
	if extRate < canRate-1e-9 {
		t.Errorf("∃agg saturation %.3f below canonical %.3f", extRate, canRate)
	}

	out := AblationResult{
		Solvers:     SolverQuality(30, 2, 5, []float64{0.8}, 2*time.Second, 3),
		Distance:    dist,
		Credibility: cred,
	}.String()
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "2-opt", "∃agg"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
