package sqlgen

import (
	"strings"
	"testing"

	"comparenb/internal/engine"
	"comparenb/internal/table"
)

func covidRelation(t *testing.T) *table.Relation {
	t.Helper()
	b := table.NewBuilder("covid", []string{"continent", "month"}, []string{"cases"})
	b.AddRow([]string{"Africa", "4"}, []float64{31598})
	b.AddRow([]string{"Africa", "5"}, []float64{92626})
	return b.Build()
}

func paperParams(t *testing.T, rel *table.Relation) Params {
	t.Helper()
	v4, _ := rel.CodeOf(1, "4")
	v5, _ := rel.CodeOf(1, "5")
	return Params{GroupBy: 0, SelAttr: 1, Val: v4, Val2: v5, Meas: 0, Agg: engine.Sum}
}

func TestComparisonMatchesFigure2Shape(t *testing.T) {
	rel := covidRelation(t)
	sql := Comparison(rel, paperParams(t, rel))
	for _, want := range []string{
		"select t1.continent, v_4, v_5",
		"sum(cases) as v_4",
		"from covid where month = '4' group by month, continent) t1,",
		"from covid where month = '5' group by month, continent) t2",
		"where t1.continent = t2.continent",
		"order by t1.continent;",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("comparison SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestHypothesisMatchesFigure3Shape(t *testing.T) {
	rel := covidRelation(t)
	sql := Hypothesis(rel, paperParams(t, rel), MeanGreater)
	for _, want := range []string{
		"with comparison as",
		"select 'mean greater' as hypothesis from comparison",
		"having avg(v_4) > avg(v_5);",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("hypothesis SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestHypothesisVariance(t *testing.T) {
	rel := covidRelation(t)
	sql := Hypothesis(rel, paperParams(t, rel), VarianceGreater)
	if !strings.Contains(sql, "having var_samp(v_4) > var_samp(v_5);") {
		t.Errorf("variance hypothesis SQL wrong:\n%s", sql)
	}
	if !strings.Contains(sql, "'variance greater' as hypothesis") {
		t.Errorf("variance label missing:\n%s", sql)
	}
}

func TestCountAggregateUsesStar(t *testing.T) {
	rel := covidRelation(t)
	p := paperParams(t, rel)
	p.Agg = engine.Count
	sql := Comparison(rel, p)
	if !strings.Contains(sql, "count(*) as v_4") {
		t.Errorf("count SQL wrong:\n%s", sql)
	}
}

func TestQuotingValuesWithQuotes(t *testing.T) {
	b := table.NewBuilder("t", []string{"who"}, []string{"m"})
	b.AddRow([]string{"O'Brien"}, []float64{1})
	b.AddRow([]string{"Smith"}, []float64{2})
	rel := b.Build()
	v1, _ := rel.CodeOf(0, "O'Brien")
	v2, _ := rel.CodeOf(0, "Smith")
	sql := Comparison(rel, Params{GroupBy: 0, SelAttr: 0, Val: v1, Val2: v2, Meas: 0, Agg: engine.Avg})
	if !strings.Contains(sql, "'O''Brien'") {
		t.Errorf("single quote not escaped:\n%s", sql)
	}
}

func TestQuoteIdent(t *testing.T) {
	cases := map[string]string{
		"continent":  "continent",
		"cat_attr":   "cat_attr",
		"Mixed":      `"Mixed"`,
		"with space": `"with space"`,
		"has\"quote": `"has""quote"`,
		"2cols":      `"2cols"`,
		"":           `""`,
	}
	for in, want := range cases {
		if got := quoteIdent(in); got != want {
			t.Errorf("quoteIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"April":    "April",
		"4":        "v_4",
		"North-Am": "North_Am",
		"a b":      "a_b",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHypothesisLabel(t *testing.T) {
	if MeanGreater.Label() != "mean greater" || VarianceGreater.Label() != "variance greater" {
		t.Error("labels wrong")
	}
}
