// Package sqlgen renders comparison queries (Figure 2) and hypothesis
// queries (Figure 3) as portable SQL text. The generated strings are what
// the notebooks ship to the user: the in-process engine executes the same
// logical plans, and the SQL is the user-facing artifact.
package sqlgen

import (
	"fmt"
	"strings"

	"comparenb/internal/engine"
	"comparenb/internal/table"
)

// Params identifies one comparison query (A, B, val, val', M, agg) against
// a relation, by attribute/measure index and dictionary codes.
type Params struct {
	GroupBy int   // A: grouping attribute index
	SelAttr int   // B: selection attribute index
	Val     int32 // code of val in dom(B)
	Val2    int32 // code of val'
	Meas    int   // M: measure index
	Agg     engine.Agg
}

// Comparison renders the join-form comparison query of Definition 3.1, in
// the exact shape of the paper's Figure 2.
func Comparison(rel *table.Relation, p Params) string {
	var sb strings.Builder
	writeComparisonBody(&sb, rel, p, "")
	sb.WriteString(";")
	return sb.String()
}

// HypothesisKind names the insight type a hypothesis query postulates.
type HypothesisKind int

const (
	// MeanGreater postulates avg(val) > avg(val').
	MeanGreater HypothesisKind = iota
	// VarianceGreater postulates variance(val) > variance(val').
	VarianceGreater
	// MedianGreater postulates median(val) > median(val') — the extension
	// insight type (§7 future work).
	MedianGreater
)

// Label returns the human-readable hypothesis label used in the SQL
// projection ('mean greater' as hypothesis).
func (k HypothesisKind) Label() string {
	switch k {
	case MeanGreater:
		return "mean greater"
	case VarianceGreater:
		return "variance greater"
	default:
		return "median greater"
	}
}

// predicate renders the HAVING comparison for the two series columns.
func (k HypothesisKind) predicate(c1, c2 string) string {
	switch k {
	case MeanGreater:
		return fmt.Sprintf("avg(%s) > avg(%s)", c1, c2)
	case VarianceGreater:
		return fmt.Sprintf("var_samp(%s) > var_samp(%s)", c1, c2)
	default:
		return fmt.Sprintf(
			"percentile_cont(0.5) within group (order by %s) > percentile_cont(0.5) within group (order by %s)",
			c1, c2)
	}
}

// Hypothesis renders the hypothesis query π_{τ→hypothesis}(σ_p(q)) of
// Definition 3.7, in the shape of the paper's Figure 3: the comparison
// query as a CTE, then a HAVING clause testing the insight predicate.
func Hypothesis(rel *table.Relation, p Params, kind HypothesisKind) string {
	var sb strings.Builder
	sb.WriteString("with comparison as\n(")
	writeComparisonBody(&sb, rel, p, "  ")
	sb.WriteString(")\n")
	c1 := columnAlias(rel, p.SelAttr, p.Val, "l")
	c2 := columnAlias(rel, p.SelAttr, p.Val2, "r")
	fmt.Fprintf(&sb, "select '%s' as hypothesis from comparison\nhaving %s;",
		kind.Label(), kind.predicate(c1, c2))
	return sb.String()
}

func writeComparisonBody(sb *strings.Builder, rel *table.Relation, p Params, indent string) {
	a := quoteIdent(rel.CatName(p.GroupBy))
	b := quoteIdent(rel.CatName(p.SelAttr))
	m := quoteIdent(rel.MeasName(p.Meas))
	relName := quoteIdent(rel.Name())
	c1 := columnAlias(rel, p.SelAttr, p.Val, "l")
	c2 := columnAlias(rel, p.SelAttr, p.Val2, "r")
	v1 := quoteValue(rel.Value(p.SelAttr, p.Val))
	v2 := quoteValue(rel.Value(p.SelAttr, p.Val2))
	aggExpr := func(alias string) string {
		if p.Agg == engine.Count {
			return "count(*) as " + alias
		}
		return fmt.Sprintf("%s(%s) as %s", p.Agg, m, alias)
	}
	fmt.Fprintf(sb, "%sselect t1.%s, %s, %s\n", indent, a, c1, c2)
	fmt.Fprintf(sb, "%sfrom\n", indent)
	fmt.Fprintf(sb, "%s  (select %s, %s, %s\n", indent, b, a, aggExpr(c1))
	fmt.Fprintf(sb, "%s   from %s where %s = %s group by %s, %s) t1,\n", indent, relName, b, v1, b, a)
	fmt.Fprintf(sb, "%s  (select %s, %s, %s\n", indent, b, a, aggExpr(c2))
	fmt.Fprintf(sb, "%s   from %s where %s = %s group by %s, %s) t2\n", indent, relName, b, v2, b, a)
	fmt.Fprintf(sb, "%swhere t1.%s = t2.%s\n", indent, a, a)
	fmt.Fprintf(sb, "%sorder by t1.%s", indent, a)
}

// columnAlias derives a SQL column alias from a selection value, e.g.
// month '4' → "v_4", continent 'America' → "America". side disambiguates
// when val = val'.
func columnAlias(rel *table.Relation, attr int, code int32, side string) string {
	v := rel.Value(attr, code)
	id := sanitizeIdent(v)
	if id == "" {
		id = "v_" + side
	}
	return id
}

func sanitizeIdent(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if sb.Len() == 0 {
				sb.WriteString("v_")
			}
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	return sb.String()
}

// quoteIdent double-quotes an identifier when it is not a plain lowercase
// SQL name.
func quoteIdent(s string) string {
	plain := s != ""
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			plain = false
			break
		}
	}
	if plain {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// quoteValue single-quotes a SQL string literal.
func quoteValue(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
