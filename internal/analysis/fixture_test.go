package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortises stdlib type-checking across the fixture tests and
// the selfcheck: the source importer re-checks each stdlib package from
// source, which is the one expensive step, so every test in the package
// shares one memoised loader.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

// TestFixtures runs each analyzer over its testdata/src/<name> package and
// checks the diagnostics against `// want "substring"` comments: every
// want line must produce a matching diagnostic, and every diagnostic must
// land on a want line. Suppressed lines (//nolint) double as tests of the
// suppression machinery — they carry no want comment and must stay silent.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			l := sharedLoader(t)
			pkg, err := l.LoadDir(filepath.Join("testdata", "src", a.Name))
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			wants := collectWants(pkg)
			diags := Run(pkg, []*Analyzer{a})

			matched := map[string]bool{}
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				want, ok := wants[key]
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				if !strings.Contains(d.Message, want) {
					t.Errorf("diagnostic %q does not contain want %q", d, want)
				}
				matched[key] = true
			}
			for key, want := range wants {
				if !matched[key] {
					t.Errorf("missing diagnostic at %s (want %q)", key, want)
				}
			}
		})
	}
}

// collectWants extracts `// want "…"` expectations, keyed file:line.
func collectWants(pkg *Package) map[string]string {
	wants := map[string]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				end := strings.LastIndex(rest, `"`)
				if end < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = rest[:end]
			}
		}
	}
	return wants
}

// TestNolintParsing pins the suppression-comment grammar.
func TestNolintParsing(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//nolint:errcheck", []string{"errcheck"}},
		{"//nolint:errcheck,maporder", []string{"errcheck", "maporder"}},
		{"//nolint:floateq // exact tie-break", []string{"floateq"}},
		{"//nolint: floateq , nopanic ", []string{"floateq", "nopanic"}},
		{"//nolint", nil},    // bare nolint is not honoured
		{"// nolint:x", nil}, // must be a directive, no space
		{"// regular comment", nil},
	}
	for _, c := range cases {
		got := nolintNames(c.text)
		if len(got) != len(c.want) {
			t.Errorf("nolintNames(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("nolintNames(%q) = %v, want %v", c.text, got, c.want)
			}
		}
	}
}

// TestByName pins the registry lookup used by the CLI's -checks flag.
func TestByName(t *testing.T) {
	if got := ByName([]string{"maporder", "floateq"}); len(got) != 2 {
		t.Fatalf("ByName known names: got %d analyzers, want 2", len(got))
	}
	if got := ByName([]string{"maporder", "nosuch"}); got != nil {
		t.Fatalf("ByName with unknown name should be nil, got %v", got)
	}
}

// TestDiagnosticString pins the file:line:col rendering format.
func TestDiagnosticString(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "floateq"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{FloatEq})
	if len(diags) == 0 {
		t.Fatal("expected diagnostics in floateq fixture")
	}
	s := diags[0].String()
	if !strings.Contains(s, "floateq.go:") || !strings.Contains(s, ": floateq: ") {
		t.Errorf("unexpected diagnostic format: %q", s)
	}
}

// TestLoaderSkipsTests confirms _test.go files are never analysed: the
// rules target production code only.
func TestLoaderSkipsTests(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader picked up test file %s", name)
		}
	}
	if _, ok := pkg.Types.Scope().Lookup("TestFixtures").(interface{}); ok {
		t.Error("test declarations leaked into the type-checked package")
	}
}

// TestWantCommentsPresent guards the fixtures themselves: a fixture
// without any want comment would make its analyzer test vacuous.
func TestWantCommentsPresent(t *testing.T) {
	l := sharedLoader(t)
	for _, a := range All() {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", a.Name))
		if err != nil {
			t.Fatalf("%s fixture: %v", a.Name, err)
		}
		if len(collectWants(pkg)) == 0 {
			t.Errorf("%s fixture has no want comments", a.Name)
		}
		// Each fixture must also exercise suppression.
		hasNolint := false
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if len(nolintNames(c.Text)) > 0 {
						hasNolint = true
					}
				}
			}
		}
		if !hasNolint {
			t.Errorf("%s fixture has no //nolint case", a.Name)
		}
	}
}
