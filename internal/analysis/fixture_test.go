package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortises stdlib type-checking across the fixture tests and
// the selfcheck: the source importer re-checks each stdlib package from
// source, which is the one expensive step, so every test in the package
// shares one memoised loader.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

// loadFixture loads the analyzer's fixture package plus its helper
// subpackage when one exists (helpers model out-of-scope code whose facts
// must flow into the fixture transitively).
func loadFixture(t *testing.T, l *Loader, name string) []*Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	var pkgs []*Package
	if helper := filepath.Join(dir, "helper"); hasGoFiles(helper) {
		p, err := l.LoadDir(helper)
		if err != nil {
			t.Fatalf("loading %s helper: %v", name, err)
		}
		pkgs = append(pkgs, p)
	}
	p, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return append(pkgs, p)
}

// TestFixtures runs the whole suite over each analyzer's
// testdata/src/<name> package and checks that analyzer's diagnostics
// against `// want "substring"` comments: every want line must produce a
// matching diagnostic, and every diagnostic must land on a want line.
// The full suite runs (rather than the one analyzer) so suppression and
// nolintlint staleness behave exactly as in a real comparenb-vet run;
// other analyzers' findings in the fixture are ignored. Suppressed lines
// (//nolint) double as tests of the suppression machinery — they carry no
// want comment and must stay silent.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			l := sharedLoader(t)
			pkgs := loadFixture(t, l, a.Name)
			var wants map[string]string
			for _, pkg := range pkgs {
				for k, v := range collectWants(pkg) {
					if wants == nil {
						wants = map[string]string{}
					}
					wants[k] = v
				}
			}
			var diags []Diagnostic
			for _, d := range RunModule(pkgs, All()) {
				if d.Analyzer == a.Name {
					diags = append(diags, d)
				}
			}

			matched := map[string]bool{}
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				want, ok := wants[key]
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				if !strings.Contains(d.Message, want) {
					t.Errorf("diagnostic %q does not contain want %q", d, want)
				}
				matched[key] = true
			}
			for key, want := range wants {
				if !matched[key] {
					t.Errorf("missing diagnostic at %s (want %q)", key, want)
				}
			}
		})
	}
}

// collectWants extracts `// want "…"` expectations, keyed file:line. The
// marker may be a whole comment or trail a //nolint directive as its
// reason (`//nolint:x // want "stale"`), which is how the nolintlint
// fixture annotates findings that sit on the directive itself.
func collectWants(pkg *Package) map[string]string {
	wants := map[string]string{}
	for _, f := range pkg.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const marker = `// want "`
				var i int
				if strings.HasPrefix(c.Text, marker) {
					i = 0
				} else if strings.HasPrefix(c.Text, "//nolint:") {
					// Prose mentions of the marker (fixture doc comments)
					// must not count; only directives carry embedded wants.
					if i = strings.Index(c.Text, marker); i < 0 {
						continue
					}
				} else {
					continue
				}
				rest := c.Text[i+len(marker):]
				end := strings.LastIndex(rest, `"`)
				if end < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = rest[:end]
			}
		}
	}
	return wants
}

// TestNolintParsing pins the suppression-comment grammar.
func TestNolintParsing(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//nolint:errcheck", []string{"errcheck"}},
		{"//nolint:errcheck,maporder", []string{"errcheck", "maporder"}},
		{"//nolint:floateq // exact tie-break", []string{"floateq"}},
		{"//nolint: floateq , nopanic ", []string{"floateq", "nopanic"}},
		{"//nolint", nil},    // bare nolint is not honoured
		{"// nolint:x", nil}, // must be a directive, no space
		{"// regular comment", nil},
	}
	for _, c := range cases {
		got := nolintNames(c.text)
		if len(got) != len(c.want) {
			t.Errorf("nolintNames(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("nolintNames(%q) = %v, want %v", c.text, got, c.want)
			}
		}
	}
}

// TestByName pins the registry lookup used by the CLI's -checks flag:
// known names resolve, unknown names produce an error that names every
// offender and lists the valid set.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"maporder", "floateq"})
	if err != nil || len(got) != 2 {
		t.Fatalf("ByName known names: got %d analyzers, err %v; want 2, nil", len(got), err)
	}
	got, err = ByName([]string{"maporder", "nosuch", "alsonot"})
	if got != nil || err == nil {
		t.Fatalf("ByName with unknown names: got %v, err %v; want nil, error", got, err)
	}
	for _, frag := range []string{`"nosuch"`, `"alsonot"`, "maporder", "detsource"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("ByName error %q does not mention %s", err, frag)
		}
	}
}

// TestDiagnosticString pins the file:line:col rendering format.
func TestDiagnosticString(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "floateq"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{FloatEq})
	if len(diags) == 0 {
		t.Fatal("expected diagnostics in floateq fixture")
	}
	s := diags[0].String()
	if !strings.Contains(s, "floateq.go:") || !strings.Contains(s, ": floateq: ") {
		t.Errorf("unexpected diagnostic format: %q", s)
	}
}

// TestWantCommentsPresent guards the fixtures themselves: a fixture
// without any want comment would make its analyzer test vacuous.
func TestWantCommentsPresent(t *testing.T) {
	l := sharedLoader(t)
	for _, a := range All() {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", a.Name))
		if err != nil {
			t.Fatalf("%s fixture: %v", a.Name, err)
		}
		if len(collectWants(pkg)) == 0 {
			t.Errorf("%s fixture has no want comments", a.Name)
		}
		// Each fixture must also exercise suppression.
		hasNolint := false
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if len(nolintNames(c.Text)) > 0 {
						hasNolint = true
					}
				}
			}
		}
		if !hasNolint {
			t.Errorf("%s fixture has no //nolint case", a.Name)
		}
	}
}

// TestLoaderIncludesTests confirms the default loader folds in-package
// _test.go files into the package's type information, while a loader
// with IncludeTests unset reproduces the old production-only view.
func TestLoaderIncludesTests(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "generics"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TestFiles) == 0 {
		t.Fatal("generics fixture: no test files folded in")
	}
	if pkg.Types.Scope().Lookup("testOnlyHelper") == nil {
		t.Error("test-file declaration missing from the combined type info")
	}
	for _, f := range pkg.TestFiles {
		if !pkg.IsTestFile(f.Pos()) {
			t.Errorf("IsTestFile false for test file %s", pkg.Fset.Position(f.Pos()).Filename)
		}
	}

	noTests, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	noTests.IncludeTests = false
	pkg2, err := noTests.LoadDir(filepath.Join("testdata", "src", "generics"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg2.TestFiles) != 0 {
		t.Error("IncludeTests=false still loaded test files")
	}
	if pkg2.Types.Scope().Lookup("testOnlyHelper") != nil {
		t.Error("IncludeTests=false leaked test declarations into type info")
	}
}
