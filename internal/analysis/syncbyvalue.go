package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncByValue flags copies of sync primitives (sync.Mutex, RWMutex,
// WaitGroup, Once, Cond, Pool, Map — or any struct/array containing one):
// value parameters and receivers, value results, plain assignments from an
// existing value, and range loops that copy such elements. A copied mutex
// guards nothing, and a copied WaitGroup deadlocks — exactly the bugs that
// surface only under load, so the rule lands before the parallelism work
// does.
//
// Initialising a fresh value (`var mu sync.Mutex`, `x := sync.Mutex{}`) is
// fine; it is copying a value that may already be in use that is flagged.
var SyncByValue = &Analyzer{
	Name: "syncbyvalue",
	Doc:  "flags sync.Mutex/WaitGroup (etc.) copied by value",
	Run:  runSyncByValue,
}

func runSyncByValue(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(p, n.Recv, "receiver")
				if n.Type.Params != nil {
					checkFieldList(p, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(p, n.Type.Results, "result")
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkFieldList(p, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(p, n.Type.Results, "result")
				}
			case *ast.AssignStmt:
				checkAssign(p, n)
			case *ast.RangeStmt:
				checkRangeCopy(p, n)
			}
			return true
		})
	}
}

// checkFieldList flags by-value fields whose type contains a sync
// primitive.
func checkFieldList(p *Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if lock := containsSync(t, nil); lock != "" {
			p.Reportf(field.Type.Pos(), "%s copies %s by value; use a pointer", kind, lock)
		}
	}
}

// checkAssign flags x := y / x = y where y is an existing value (not a
// fresh composite literal or address) containing a sync primitive.
func checkAssign(p *Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		// `_ = x` is a use, not a copy.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if freshValue(rhs) {
			continue
		}
		t := p.TypeOf(rhs)
		if t == nil {
			continue
		}
		if lock := containsSync(t, nil); lock != "" {
			p.Reportf(as.Rhs[i].Pos(), "assignment copies %s by value; use a pointer", lock)
		}
	}
}

// checkRangeCopy flags `for _, v := range xs` where the element value
// copies a sync primitive.
func checkRangeCopy(p *Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := p.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lock := containsSync(t, nil); lock != "" {
		p.Reportf(rng.Value.Pos(), "range value copies %s per iteration; range over indexes or pointers", lock)
	}
}

// freshValue reports whether the expression creates a brand-new value
// (composite literal, address-of, call, conversion) rather than copying an
// existing one. Calls are excused here because the callee's signature is
// checked at its own declaration site.
func freshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND
	}
	return false
}

// containsSync returns the name of the first sync primitive found inside
// t ("sync.Mutex", …), or "".
func containsSync(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := containsSync(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return containsSync(u.Elem(), seen)
	}
	return ""
}
