package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for … range m` over a map whose body produces
// order-sensitive output: appending to a slice declared outside the loop,
// writing to an io.Writer / strings.Builder / fmt stream, building a string
// with +=, or sending on a channel. Go randomises map iteration order on
// purpose, so any of these makes the result differ from run to run — fatal
// for a pipeline whose contract is byte-identical notebooks per seed.
//
// The one blessed idiom is exempt: collecting the keys (or values) into a
// slice that a later statement in the same block passes to sort.* — that
// is exactly how nondeterminism is supposed to be laundered:
//
//	var keys []string
//	for k := range m {
//	    keys = append(keys, k) // ok: sorted below
//	}
//	sort.Strings(keys)
//
// Commutative uses (summing counts, writing into another map, finding a
// max) are not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range over a map that emits order-sensitive output without sorting",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Examine every statement list so a range statement can be
			// checked against its following siblings (the sort exemption).
			switch n := n.(type) {
			case *ast.BlockStmt:
				mapOrderStmts(p, n.List)
			case *ast.CaseClause:
				mapOrderStmts(p, n.Body)
			case *ast.CommClause:
				mapOrderStmts(p, n.Body)
			}
			return true
		})
	}
}

// mapOrderStmts checks each range-over-map statement in one statement
// list, with access to the statements after it for the sort exemption.
func mapOrderStmts(p *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		rng, ok := s.(*ast.RangeStmt)
		if !ok || !isMapType(p.TypeOf(rng.X)) {
			continue
		}
		sinks := mapOrderSinks(p, rng)
		for _, sink := range sinks {
			if sink.target != nil && sortedLater(p, sink.target, stmts[i+1:]) {
				continue
			}
			p.Reportf(sink.pos, "%s inside range over map %s makes iteration order observable; sort the keys first", sink.what, exprString(rng.X))
		}
	}
}

// mapSink is one order-sensitive operation found in a range body.
type mapSink struct {
	pos  token.Pos
	what string
	// target is the appended-to variable, when the sink is an append —
	// used for the sorted-later exemption.
	target types.Object
}

// mapOrderSinks walks a range-over-map body and collects order-sensitive
// operations.
func mapOrderSinks(p *Pass, rng *ast.RangeStmt) []mapSink {
	var sinks []mapSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested ranges are checked by their own enclosing block walk.
			if n != rng && isMapType(p.TypeOf(n.X)) {
				return false
			}
		case *ast.SendStmt:
			sinks = append(sinks, mapSink{pos: n.Pos(), what: "channel send"})
		case *ast.AssignStmt:
			sinks = append(sinks, assignSinks(p, rng, n)...)
		case *ast.CallExpr:
			if what, ok := writerCall(p, n); ok {
				sinks = append(sinks, mapSink{pos: n.Pos(), what: what})
			}
		}
		return true
	})
	return sinks
}

// assignSinks reports order-sensitive assignments: append to a slice
// declared outside the loop, and += string building on an outer variable.
func assignSinks(p *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) []mapSink {
	var sinks []mapSink
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if obj := outerObject(p, rng, as.Lhs[0]); obj != nil && isStringType(p.TypeOf(as.Lhs[0])) {
			sinks = append(sinks, mapSink{pos: as.Pos(), what: "string concatenation"})
		}
		return sinks
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) || i >= len(as.Lhs) {
			continue
		}
		obj := outerObject(p, rng, as.Lhs[i])
		if obj == nil {
			continue
		}
		sinks = append(sinks, mapSink{pos: as.Pos(), what: "append to slice " + obj.Name(), target: obj})
	}
	return sinks
}

// writerCall reports whether the call writes to an output stream: fmt
// printing, io.WriteString, or a Write*/Encode method.
func writerCall(p *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkgName(p, fun.X) == "fmt" {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + name + " call", true
			}
			return "", false
		}
		if pkgName(p, fun.X) == "io" && name == "WriteString" {
			return "io.WriteString call", true
		}
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return name + " call", true
		}
	}
	return "", false
}

// sortedLater reports whether a statement after the range passes the
// append target to a sort.* call (sort.Strings(keys), sort.Slice(keys, …),
// sort.Sort(byX(keys)), …).
func sortedLater(p *Pass, target types.Object, rest []ast.Stmt) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || pkgName(p, sel.X) != "sort" {
				return true
			}
			for _, arg := range call.Args {
				if usesObject(p, arg, target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// usesObject reports whether the expression references obj.
func usesObject(p *Pass, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// outerObject resolves an assignable expression to its root object when
// that object is declared outside the range statement; nil otherwise.
func outerObject(p *Pass, rng *ast.RangeStmt, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return nil
	}
	return obj
}

// rootIdent unwraps selectors/indexes to the base identifier (x in
// x.f[i]).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// pkgName returns the package name when e is a package qualifier ident.
func pkgName(p *Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// exprString renders a short description of the ranged expression.
func exprString(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "expression"
}
