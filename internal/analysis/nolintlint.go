package analysis

import (
	"fmt"
	"strings"
)

// NolintLint keeps the suppression mechanism honest: a //nolint:<name>
// directive that names an unknown analyzer, or that no longer suppresses
// any finding, is itself a finding. Suppressions rot silently — the code
// they excused gets refactored away, the analyzer gets smarter, and the
// stale comment keeps licensing whatever lands on that line next. This
// check runs inside RunModule (it needs to see which directives fired
// across the whole run), so its Run hook is empty.
//
// A directive naming an analyzer that is not part of the current run is
// left alone: running `-checks maporder` must not declare every floateq
// suppression stale.
var NolintLint = &Analyzer{
	Name: "nolintlint",
	Doc:  "flags //nolint directives that suppress nothing or name unknown analyzers",
	Run:  func(*Pass) {},
}

// lintNolint turns unused or malformed directives into diagnostics.
// runNames is the set of analyzers that actually ran.
func lintNolint(directives []*nolintDirective, runNames map[string]bool) []Diagnostic {
	known := map[string]*Analyzer{}
	for _, a := range All() {
		known[a.Name] = a
	}
	var out []Diagnostic
	for _, d := range directives {
		inTestFile := strings.HasSuffix(d.pos.Filename, "_test.go")
		for _, n := range d.names {
			a := known[n]
			switch {
			case a == nil:
				out = append(out, Diagnostic{
					Analyzer: NolintLint.Name,
					Pos:      d.pos,
					Message:  fmt.Sprintf("//nolint names unknown analyzer %q (try comparenb-vet -list)", n),
				})
			case inTestFile && a.NoTestFiles:
				out = append(out, Diagnostic{
					Analyzer: NolintLint.Name,
					Pos:      d.pos,
					Message:  fmt.Sprintf("//nolint:%s in a test file, but %s does not check test files; remove it", n, n),
				})
			case runNames[n] && !d.used[n]:
				out = append(out, Diagnostic{
					Analyzer: NolintLint.Name,
					Pos:      d.pos,
					Message:  fmt.Sprintf("stale //nolint:%s: it suppresses no finding; remove it", n),
				})
			}
		}
	}
	return out
}
