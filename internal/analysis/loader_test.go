package analysis

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestLoaderGenerics confirms type-parameterised code survives the full
// load path: production instantiations, in-package test instantiations
// with fresh type arguments, and an external test package importing the
// fixture back.
func TestLoaderGenerics(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadDirAll(filepath.Join("testdata", "src", "generics"))
	if err != nil {
		t.Fatalf("loading generics fixture: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want primary + external test", len(pkgs))
	}
	base, xtest := pkgs[0], pkgs[1]

	for _, name := range []string{"Pair", "Map", "Sum", "Doubled", "testOnlyHelper"} {
		if base.Types.Scope().Lookup(name) == nil {
			t.Errorf("generic declaration %s missing from combined scope", name)
		}
	}
	if !xtest.XTest {
		t.Error("external test package not marked XTest")
	}
	if !strings.HasSuffix(xtest.Path, " [test]") {
		t.Errorf("external test package path %q lacks [test] suffix", xtest.Path)
	}
	if xtest.Types.Scope().Lookup("xtestOnlySum") == nil {
		t.Error("external test declaration missing from xtest scope")
	}
	if len(xtest.Files) != 0 || len(xtest.TestFiles) == 0 {
		t.Errorf("xtest package files misfiled: %d non-test, %d test", len(xtest.Files), len(xtest.TestFiles))
	}

	// Loading the same directory again must hit the memo, not re-check.
	again, err := l.LoadDirAll(filepath.Join("testdata", "src", "generics"))
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != base || again[1] != xtest {
		t.Error("LoadDirAll did not memoise the loaded packages")
	}
}

// TestLoaderBuildTags confirms files ruled out by //go:build lines or
// GOOS filename suffixes never reach the type checker. The excluded
// files redeclare Here with other types, so a filtering bug is a loud
// type-check failure here, not a silent pass.
func TestLoaderBuildTags(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("fixture's GOOS-suffixed file is windows-only")
	}
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "buildtags"))
	if err != nil {
		t.Fatalf("loading buildtags fixture: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("got %d files, want 1 (constraints should exclude the rest)", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("Here") == nil {
		t.Error("always-built declaration Here missing")
	}
	for _, name := range []string{"TaggedOut", "WindowsOnly"} {
		if pkg.Types.Scope().Lookup(name) != nil {
			t.Errorf("constraint-excluded declaration %s leaked into the package", name)
		}
	}
}

// TestLoaderDepOrder confirms dependencies finish type-checking before
// their dependents, which the facts layer relies on.
func TestLoaderDepOrder(t *testing.T) {
	l := sharedLoader(t)
	if _, err := l.LoadDir(filepath.Join("testdata", "src", "detsource")); err != nil {
		t.Fatal(err)
	}
	order := l.DepOrder()
	idx := map[string]int{}
	for i, path := range order {
		idx[path] = i
	}
	helper := "comparenb/internal/analysis/testdata/src/detsource/helper"
	main := "comparenb/internal/analysis/testdata/src/detsource"
	hi, ok1 := idx[helper]
	mi, ok2 := idx[main]
	if !ok1 || !ok2 {
		t.Fatalf("dep order %v missing fixture packages", order)
	}
	if hi > mi {
		t.Errorf("helper (%d) ordered after its importer (%d)", hi, mi)
	}
}
