package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between float-typed operands. Exact float
// equality is almost always a latent bug in statistical code: two
// mathematically equal quantities computed along different paths differ in
// the last ulp, and NaN breaks == entirely. Use the helpers in
// internal/stats (ApproxEqual / NearZero) or justify the exact comparison
// with //nolint:floateq — a deterministic tie-break on identical inputs is
// the classic legitimate case.
//
// Comparisons where both operands are constants are allowed (the compiler
// evaluates those exactly).
//
// Test files are exempt (NoTestFiles): this module's tests assert
// bit-identical outputs across thread counts and seeds, so exact float
// comparison in a _test.go file is the contract under test, not a bug.
var FloatEq = &Analyzer{
	Name:        "floateq",
	Doc:         "flags == / != between float-typed expressions (production code only)",
	Run:         runFloatEq,
	NoTestFiles: true,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Info.Types[be.X], p.Info.Types[be.Y]
			if !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant folding is exact
			}
			p.Reportf(be.OpPos, "float %s comparison; use an epsilon helper (stats.ApproxEqual / stats.NearZero) or justify with //nolint:floateq", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
