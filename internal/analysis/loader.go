package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test files, in filename order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's packages using only the
// standard library. Package imports inside the module are resolved against
// the module root; everything else (the stdlib) goes through go/importer's
// source importer, so no compiled export data or external tooling is
// needed. Results are memoised, so loading the whole module type-checks
// each package once.
type Loader struct {
	Fset *token.FileSet
	// ModPath is the module path from go.mod (e.g. "comparenb").
	ModPath string
	// ModDir is the absolute module root.
	ModDir string

	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader creates a loader rooted at the module containing dir: it walks
// up to the nearest go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   map[string]*Package{},
	}, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", path)
}

// LoadModule loads every package under the module root, skipping testdata,
// hidden directories and directories without non-test Go files. Packages
// come back sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the package in one directory, type-checking it (and,
// transitively, its intra-module imports).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path, abs)
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// loadPath parses and type-checks the package at dir under import path
// `path`, memoised.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: module-internal
// import paths are type-checked from the module tree, everything else is
// delegated to the stdlib source importer.
type loaderImporter Loader

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadPath(path, filepath.Join(l.ModDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModDir, 0)
}
