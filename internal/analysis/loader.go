package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
//
// For an ordinary package, Files are the non-test files and TestFiles the
// in-package _test.go files; Types/Info cover BOTH (the "test variant"),
// so analyzers see test code with full type information. An external test
// package (package foo_test) is returned as its own Package with XTest
// set, Files nil and the _test.go files in TestFiles.
type Package struct {
	// Path is the import path (module path + relative directory). External
	// test packages carry a " [test]" suffix so they never collide with a
	// real directory.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test files, in filename order.
	Files []*ast.File
	// TestFiles are the parsed _test.go files belonging to this package
	// (in-package tests, or all files of an XTest package).
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	// XTest marks an external test package (package foo_test).
	XTest bool
}

// AllFiles returns the package's files, test files included, in load
// order (non-test first).
func (p *Package) AllFiles() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// IsTestFile reports whether the file at pos sits in a _test.go file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Loader parses and type-checks the module's packages using only the
// standard library. Package imports inside the module are resolved against
// the module root; everything else (the stdlib) goes through go/importer's
// source importer, so no compiled export data or external tooling is
// needed. Results are memoised, so loading the whole module type-checks
// each package once.
//
// Type-checking happens in dependency order: the importer recurses into
// module-internal imports before the importing package is checked, and the
// loader records that completion order (DepOrder) for the facts layer,
// which exports per-function facts bottom-up.
//
// Test files are handled in a second stage per package so that the import
// cache only ever holds the plain, non-test variant: in-package _test.go
// files are type-checked together with the non-test files into a separate
// combined Package (what LoadDir returns), and external test packages
// become their own XTest Packages. Because the cache never holds a test
// variant, test-only import edges (pipeline's tests importing testutil,
// which imports pipeline) cannot form a cycle during loading, and every
// cross-package type reference binds to the single plain variant
// regardless of load order.
type Loader struct {
	Fset *token.FileSet
	// ModPath is the module path from go.mod (e.g. "comparenb").
	ModPath string
	// ModDir is the absolute module root.
	ModDir string
	// IncludeTests controls whether _test.go files are parsed and
	// type-checked. NewLoader enables it; analyzers opt out individually
	// via Analyzer.NoTestFiles.
	IncludeTests bool

	std   types.ImporterFrom
	cache map[string]*Package
	// tests memoises the combined (non-test + in-package test) variant per
	// path; xtests memoises external test packages by the path of the
	// package they test. Both live outside cache so the importer can never
	// serve a test variant.
	tests  map[string]*Package
	xtests map[string]*Package
	// order is the dependency (type-check completion) order of cache
	// entries.
	order []string
	// ctx evaluates build constraints so tagged-out files never reach the
	// type checker.
	ctx build.Context
}

// NewLoader creates a loader rooted at the module containing dir: it walks
// up to the nearest go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		ModPath:      modPath,
		ModDir:       root,
		IncludeTests: true,
		std:          importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:        map[string]*Package{},
		tests:        map[string]*Package{},
		xtests:       map[string]*Package{},
		ctx:          build.Default,
	}, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", path)
}

// LoadModule loads every package under the module root, skipping testdata,
// hidden directories and directories without non-test Go files. Packages
// come back sorted by import path; external test packages follow the
// package they test.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		sub, err := l.LoadDirAll(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, sub...)
	}
	return pkgs, nil
}

// LoadDir loads the package in one directory, type-checking it (and,
// transitively, its intra-module imports). When the directory also holds
// an external test package, only the primary package is returned; use
// LoadDirAll to get both.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	pkgs, err := l.LoadDirAll(dir)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// LoadDirAll loads every package in one directory: the primary package
// (test files folded in when IncludeTests is set) followed by the external
// test package, if any.
func (l *Loader) LoadDirAll(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	base, err := l.loadPath(path, abs)
	if err != nil {
		return nil, err
	}
	if !l.IncludeTests {
		return []*Package{base}, nil
	}
	return l.loadTestVariants(base)
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// matchFile evaluates the file's build constraints (//go:build lines and
// GOOS/GOARCH filename suffixes) against the default build context.
func (l *Loader) matchFile(dir, name string) bool {
	ok, err := l.ctx.MatchFile(dir, name)
	return err == nil && ok
}

// loadPath parses and type-checks the non-test half of the package at dir
// under import path `path`, memoised. This is the variant the import
// cache serves, so importing packages never see test declarations.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if !l.matchFile(dir, e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := newTypeInfo()
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	l.order = append(l.order, path)
	return pkg, nil
}

// loadTestVariants derives the test view of base: in-package _test.go
// files are type-checked together with the non-test files into a NEW
// combined Package (same Path, Files shared, TestFiles set), and external
// test files become a standalone XTest Package. base itself — the Package
// the import cache serves — is never modified: every cross-package
// reference in the module must bind to the one plain variant, or
// identical types from different load orders would stop being identical.
// Both variants are memoised, so each type-check happens once.
func (l *Loader) loadTestVariants(base *Package) ([]*Package, error) {
	primary, done := l.tests[base.Path]
	if !done {
		entries, err := os.ReadDir(base.Dir)
		if err != nil {
			return nil, err
		}
		var inPkg, xTest []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			if !l.matchFile(base.Dir, e.Name()) {
				continue
			}
			f, err := parser.ParseFile(l.Fset, filepath.Join(base.Dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", e.Name(), err)
			}
			if f.Name.Name == base.Types.Name()+"_test" {
				xTest = append(xTest, f)
			} else {
				inPkg = append(inPkg, f)
			}
		}
		primary = base
		if len(inPkg) > 0 {
			info := newTypeInfo()
			conf := types.Config{Importer: (*loaderImporter)(l)}
			all := append(append([]*ast.File{}, base.Files...), inPkg...)
			tpkg, err := conf.Check(base.Path, l.Fset, all, info)
			if err != nil {
				return nil, fmt.Errorf("analysis: type-checking %s tests: %w", base.Path, err)
			}
			primary = &Package{
				Path:      base.Path,
				Dir:       base.Dir,
				Fset:      l.Fset,
				Files:     base.Files,
				TestFiles: inPkg,
				Types:     tpkg,
				Info:      info,
			}
		}
		l.tests[base.Path] = primary
		l.xtests[base.Path] = nil
		if len(xTest) > 0 {
			info := newTypeInfo()
			conf := types.Config{Importer: (*loaderImporter)(l)}
			tpkg, err := conf.Check(base.Path+"_test", l.Fset, xTest, info)
			if err != nil {
				return nil, fmt.Errorf("analysis: type-checking %s external tests: %w", base.Path, err)
			}
			l.xtests[base.Path] = &Package{
				Path:      base.Path + " [test]",
				Dir:       base.Dir,
				Fset:      l.Fset,
				TestFiles: xTest,
				Types:     tpkg,
				Info:      info,
				XTest:     true,
			}
		}
	}
	if x := l.xtests[base.Path]; x != nil {
		return []*Package{primary, x}, nil
	}
	return []*Package{primary}, nil
}

// DepOrder returns the import paths of the plain (non-test) packages in
// the order their type-checking completed — i.e. dependencies before
// dependents. The facts layer walks packages in this order so a
// function's facts are always computed after its callees'.
func (l *Loader) DepOrder() []string {
	return append([]string(nil), l.order...)
}

// newTypeInfo allocates the types.Info maps the analyzers rely on.
func newTypeInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// loaderImporter adapts the Loader to types.Importer: module-internal
// import paths are type-checked from the module tree, everything else is
// delegated to the stdlib source importer.
type loaderImporter Loader

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadPath(path, filepath.Join(l.ModDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModDir, 0)
}
