package analysis

// All returns every analyzer in the suite, in stable order. Both the
// comparenb-vet CLI and the selfcheck test run exactly this list, so the
// command line and the test suite can never disagree about the rules.
func All() []*Analyzer {
	return []*Analyzer{
		ErrCheck,
		FloatEq,
		MapOrder,
		NoPanic,
		SyncByValue,
	}
}

// ByName returns the named analyzers, or an error listing for unknown
// names (nil slice means "unknown name present").
func ByName(names []string) []*Analyzer {
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

// CheckModule loads every package of the module containing dir and runs
// the analyzers over each, returning all surviving diagnostics sorted by
// position. It is the single entry point shared by cmd/comparenb-vet and
// selfcheck_test.go.
func CheckModule(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, Run(pkg, analyzers)...)
	}
	return diags, nil
}
