package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// All returns every analyzer in the suite, in stable (alphabetical)
// order. Both the comparenb-vet CLI and the selfcheck test run exactly
// this list, so the command line and the test suite can never disagree
// about the rules.
func All() []*Analyzer {
	return []*Analyzer{
		CtxLoop,
		DetSource,
		EncodedEq,
		ErrCheck,
		FloatEq,
		GoroutineJoin,
		MapOrder,
		NolintLint,
		NoPanic,
		SpanEnd,
		SyncByValue,
	}
}

// ByName returns the named analyzers. Unknown names are an error listing
// every offender, so the CLI can tell the user exactly what it did not
// recognise.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	var unknown []string
	for _, n := range names {
		if a, ok := byName[n]; ok {
			out = append(out, a)
		} else {
			unknown = append(unknown, fmt.Sprintf("%q", n))
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown analyzer(s) %s; known: %s",
			strings.Join(unknown, ", "), strings.Join(Names(), ", "))
	}
	return out, nil
}

// Names lists every registered analyzer name, in All() order.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// CheckModule loads every package of the module containing dir and runs
// the analyzers over each, returning all surviving diagnostics sorted by
// position. It is the single entry point shared by cmd/comparenb-vet and
// selfcheck_test.go.
func CheckModule(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	return RunModule(pkgs, analyzers), nil
}
