package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BaselineFile is the conventional baseline filename at the module root.
// cmd/comparenb-vet and the selfcheck test pick it up automatically when
// it exists.
const BaselineFile = ".comparenb-vet-baseline.json"

// Baseline is the checked-in list of accepted findings. It exists so
// that a pre-existing, *justified* finding — the pipeline's phase-timing
// reads, say — is suppressed in exactly one reviewable place instead of
// scattering //nolint comments through code that is doing the right
// thing. Entries match on analyzer + file + message, never on line
// numbers, so unrelated edits cannot silently widen a suppression; and
// an entry that stops matching anything is itself an error, so the
// baseline can only shrink or be consciously re-justified.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry accepts one finding. File is module-root-relative with
// forward slashes. Justification is mandatory: a baseline entry without
// a reason is a //nolint without a name.
type BaselineEntry struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	Message       string `json:"message"`
	Justification string `json:"justification"`
}

// key is the match identity (line numbers deliberately excluded).
func (e BaselineEntry) key() string { return e.Analyzer + "\x00" + e.File + "\x00" + e.Message }

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want 1)", path, b.Version)
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for i, e := range b.Findings {
		if e.Justification == "" {
			return nil, fmt.Errorf("baseline %s: entry %d (%s in %s) has no justification", path, i, e.Analyzer, e.File)
		}
		if !known[e.Analyzer] {
			return nil, fmt.Errorf("baseline %s: entry %d names unknown analyzer %q", path, i, e.Analyzer)
		}
	}
	return &b, nil
}

// ApplyBaseline filters diags through the baseline: matched diagnostics
// are dropped, and entries that matched nothing come back as stale (the
// caller turns those into failures so the baseline never rots). modDir
// anchors the relative paths.
func ApplyBaseline(modDir string, b *Baseline, diags []Diagnostic) (kept []Diagnostic, stale []BaselineEntry) {
	if b == nil {
		return diags, nil
	}
	used := map[string]bool{}
	entries := map[string]bool{}
	for _, e := range b.Findings {
		entries[e.key()] = true
	}
	for _, d := range diags {
		k := BaselineEntry{Analyzer: d.Analyzer, File: relPath(modDir, d.Pos.Filename), Message: d.Message}.key()
		if entries[k] {
			used[k] = true
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.Findings {
		if !used[e.key()] {
			stale = append(stale, e)
		}
	}
	return kept, stale
}

// relPath renders path relative to modDir with forward slashes, falling
// back to the input when it is not under modDir.
func relPath(modDir, path string) string {
	rel, err := filepath.Rel(modDir, path)
	if err != nil || rel == ".." || len(rel) > 1 && rel[0] == '.' && rel[1] == '.' {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

// FindModuleRoot exposes the loader's module-root discovery for the CLI
// (baseline auto-detection and path relativisation).
func FindModuleRoot(dir string) (string, error) { return findModuleRoot(dir) }
