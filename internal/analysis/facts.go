// Facts layer: the interprocedural half of the suite.
//
// The PR 1 analyzers were intraprocedural — each looked at one function
// body at a time. The determinism and robustness rules they encode are
// really *transitive* properties, though: a notebook producer is
// nondeterministic if anything it calls, at any depth, reads the clock or
// the global RNG; a loop checkpoint counts even when the ctx poll happens
// two calls down. This file provides the machinery for that reasoning,
// following the shape of golang.org/x/tools/go/analysis facts without the
// dependency: analyzers export per-function facts while packages are
// visited in dependency order, a module-wide call graph links the
// functions, and a deterministic fixpoint propagates facts from callees
// to callers (handling recursion, which a single bottom-up pass cannot).
//
// Functions are keyed by their stable full name
// ("comparenb/internal/pipeline.parallelForCtx",
// "(comparenb/internal/engine.CubeCache).GetOrBuildCtx") rather than by
// types.Object identity, because a package is type-checked twice — once
// plain for the import cache, once with its test files folded in — and
// the two variants produce distinct objects for the same function.
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// Facts is the module-wide fact store plus the static call graph it
// propagates over. One Facts value is shared by every analyzer in a
// RunModule invocation.
type Facts struct {
	// calls maps a function's ID to its statically resolved callees,
	// sorted and deduplicated. Calls through interfaces and function
	// values are not resolved (the graph is a may-call underapproximation
	// on those edges).
	calls map[string][]string
	// callers is the reverse graph, built on demand for propagation.
	callers map[string][]string
	store   map[factKey]any
}

type factKey struct {
	fn   string // FuncID
	name string // fact name, by convention "<analyzer>.<fact>"
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{calls: map[string][]string{}, store: map[factKey]any{}}
}

// FuncID returns the stable identifier facts are keyed by.
func FuncID(fn *types.Func) string { return fn.FullName() }

// Export records a fact about fn. Later exports overwrite earlier ones,
// so FactsFn hooks must be idempotent per function.
func (f *Facts) Export(id, name string, val any) {
	f.store[factKey{fn: id, name: name}] = val
}

// Import retrieves a fact about fn, reporting whether one was exported.
func (f *Facts) Import(id, name string) (any, bool) {
	v, ok := f.store[factKey{fn: id, name: name}]
	return v, ok
}

// FactPass hands one package to an analyzer's FactsFn hook. Packages are
// visited in dependency order, so by the time a package's hook runs, the
// local facts of everything it imports have been exported (propagation
// afterwards closes recursive and test-edge cycles).
type FactPass struct {
	Pkg   *Package
	Facts *Facts
}

// BuildFacts constructs the call graph over pkgs and runs every
// analyzer's FactsFn in dependency order, then the FactsFinalize hooks
// (which typically call Propagate). pkgs may be any subset of the module
// — fixture tests pass a single package.
func BuildFacts(pkgs []*Package, analyzers []*Analyzer) *Facts {
	facts := NewFacts()
	ordered := depOrder(pkgs)
	for _, pkg := range ordered {
		facts.addCallEdges(pkg)
	}
	for _, pkg := range ordered {
		for _, a := range analyzers {
			if a.FactsFn != nil {
				a.FactsFn(&FactPass{Pkg: pkg, Facts: facts})
			}
		}
	}
	for _, a := range analyzers {
		if a.FactsFinalize != nil {
			a.FactsFinalize(facts)
		}
	}
	return facts
}

// depOrder topologically sorts packages so imports come before importers.
// Test-only import edges may form cycles (a package's tests importing a
// helper that imports the package); those are broken deterministically —
// propagation's fixpoint makes the residual order immaterial.
func depOrder(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, p := range pkgs {
		indeg[p.Path] += 0
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok && dep != p {
				dependents[dep.Path] = append(dependents[dep.Path], p.Path)
				indeg[p.Path]++
			}
		}
	}
	var ready []string
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var out []*Package
	seen := map[string]bool{}
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		seen[path] = true
		next := append([]string(nil), dependents[path]...)
		sort.Strings(next)
		for _, dep := range next {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(out) < len(pkgs) {
		// Cycle remainder (test-edge loops): append in path order.
		var rest []string
		for path := range byPath {
			if !seen[path] {
				rest = append(rest, path)
			}
		}
		sort.Strings(rest)
		for _, path := range rest {
			out = append(out, byPath[path])
		}
	}
	return out
}

// addCallEdges records the static call edges of every top-level function
// declared in pkg (closures are attributed to their enclosing
// declaration).
func (f *Facts) addCallEdges(pkg *Package) {
	for _, file := range pkg.AllFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			id := FuncID(fn)
			seen := map[string]bool{}
			for _, callee := range f.calls[id] {
				seen[callee] = true
			}
			callees := f.calls[id]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeFunc(pkg.Info, call); callee != nil {
					cid := FuncID(callee)
					if !seen[cid] {
						seen[cid] = true
						callees = append(callees, cid)
					}
				}
				return true
			})
			sort.Strings(callees)
			f.calls[id] = callees
		}
	}
}

// CalleeFunc resolves a call expression to its statically known callee:
// a plain function, a package-qualified function, or a method whose
// receiver type is concrete. Calls through interfaces resolve to the
// interface method (which never carries facts); calls through function
// values resolve to nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Callees returns the recorded static callees of id.
func (f *Facts) Callees(id string) []string { return f.calls[id] }

// Propagate closes fact `name` over the call graph: whenever a callee
// holds the fact, merge derives the caller's value from its current value
// (nil if absent) and the callee's. merge returns the new value and
// whether it changed; propagation iterates to a fixpoint, so recursive
// call cycles converge as long as merge is monotone (it must eventually
// stop reporting change). Iteration order is deterministic — callers are
// visited in sorted order each round — so the resulting facts, and every
// diagnostic derived from them, are stable across runs.
func (f *Facts) Propagate(name string, merge func(cur, callee any, calleeID string) (any, bool)) {
	ids := make([]string, 0, len(f.calls))
	for id := range f.calls {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			cur, _ := f.Import(id, name)
			for _, callee := range f.calls[id] {
				cv, ok := f.Import(callee, name)
				if !ok {
					continue
				}
				next, ch := merge(cur, cv, callee)
				if ch {
					cur = next
					f.Export(id, name, cur)
					changed = true
				}
			}
		}
	}
}
