package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags call statements that silently drop an error result,
// including `defer f.Close()` and `go f()`. A dropped error in the
// pipeline means a truncated notebook or a half-written report that looks
// like success. Either propagate the error, handle it, or discard it
// explicitly (`_ = f.Close()`); use //nolint:errcheck with a reason when
// ignoring really is correct.
//
// Calls that cannot meaningfully fail are exempt: fmt printing to
// stdout/stderr (a CLI has nowhere to report that failure anyway) and any
// write into a strings.Builder or bytes.Buffer, whose Write methods are
// documented to always return a nil error.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flags dropped error return values",
	Run:  runErrCheck,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil || !returnsError(p, call) || errExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s drops its error result; handle it or discard explicitly with _ =", callName(call))
			return true
		})
	}
}

// returnsError reports whether the call's last result is of type error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errExempt reports whether the dropped error is conventionally ignorable.
func errExempt(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	// fmt.Print* always writes to stdout; fmt.Fprint* is exempt only for
	// stderr/stdout and infallible in-memory writers.
	if pkgName(p, sel.X) == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && infallibleWriter(p, call.Args[0])
		}
		return false
	}
	// Methods on strings.Builder / bytes.Buffer never return a non-nil
	// error.
	if recv := p.TypeOf(sel.X); recv != nil && isInfallibleBufferType(recv) {
		return true
	}
	return false
}

// infallibleWriter reports whether the writer expression is os.Stdout,
// os.Stderr, a *strings.Builder or a *bytes.Buffer.
func infallibleWriter(p *Pass, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok && pkgName(p, sel.X) == "os" {
		if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
			return true
		}
	}
	if t := p.TypeOf(e); t != nil && isInfallibleBufferType(t) {
		return true
	}
	return false
}

// isInfallibleBufferType reports whether t is (a pointer to)
// strings.Builder or bytes.Buffer.
func isInfallibleBufferType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// callName renders the called function for the diagnostic message.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id := rootIdent(fun.X); id != nil {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
