package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EncodedEq flags == and != where an operand is a float64 decoded from
// the compressed columnar layer — a call into internal/table that
// returns float64 (MeasColumn.Value and friends). The codec's contract
// is bit-for-bit losslessness, and plain float equality cannot check
// that contract: NaN == NaN is false even when the bits round-tripped
// exactly, and -0.0 == 0.0 is true even when they did not. Compare
// math.Float64bits of both sides instead, or justify the value-level
// comparison with //nolint:encodedeq.
//
// Unlike floateq this analyzer deliberately covers _test.go files —
// differential tests asserting the encoded and raw kernels agree are
// exactly where a value-level == silently waves NaN regressions
// through.
var EncodedEq = &Analyzer{
	Name: "encodedeq",
	Doc:  "flags == / != against encoded-measure decode results; bit-identity needs math.Float64bits",
	Run:  runEncodedEq,
}

// encDecodePkg reports whether pkgPath is the compressed-storage
// package. The fixture's helper subpackage stands in for it so the
// analyzer can be tested without importing the real module.
func encDecodePkg(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/table") ||
		strings.HasSuffix(pkgPath, "testdata/src/encodedeq/helper")
}

func runEncodedEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			fn := encDecodeCall(p.Info, be.X)
			if fn == nil {
				fn = encDecodeCall(p.Info, be.Y)
			}
			if fn == nil {
				return true
			}
			p.Reportf(be.OpPos, "%s %s against a decoded measure value; the codec's contract is bit-for-bit, so compare math.Float64bits of both sides (NaN and -0.0 break value equality) or justify with //nolint:encodedeq", be.Op, fn.Name())
			return true
		})
	}
}

// encDecodeCall reports whether expr is a call into the compressed
// columnar package returning a plain float64, resolving interface
// method calls (MeasColumn.Value) to the interface's declaring package.
func encDecodeCall(info *types.Info, expr ast.Expr) *types.Func {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !encDecodePkg(fn.Pkg().Path()) {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() != 1 {
		return nil
	}
	b, ok := res.At(0).Type().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return nil
	}
	return fn
}
