package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the PR 3 checkpoint discipline statically: in the hot
// packages, an unbounded loop — `for { … }` with no condition, or a range
// over a channel — must poll a context.Context somewhere in its body, so
// cancellation always lands at a phase-safe checkpoint instead of hanging
// a worker. Bounded loops (three-clause counts, ranges over slices, maps
// and strings) are exempt: their stride-level polling is a performance
// choice, not a liveness requirement.
//
// The poll may be indirect: a loop body that calls a helper which itself
// polls (ctx.Err(), ctx.Done(), or a select over Done) satisfies the
// rule — helpers export a "ctxloop.polls" fact, closed over the module
// call graph, so the checkpoint can live several calls down.
var CtxLoop = &Analyzer{
	Name:          "ctxloop",
	Doc:           "flags unbounded loops in hot packages that never poll a context",
	Run:           runCtxLoop,
	FactsFn:       ctxLoopFacts,
	FactsFinalize: ctxLoopFinalize,
	NoTestFiles:   true,
}

// ctxPollsFact marks functions that poll a context (directly or
// transitively).
const ctxPollsFact = "ctxloop.polls"

// ctxLoopScope reports whether the checkpoint discipline applies to the
// package: detsource's hot set plus the server package, whose accept /
// dispatch / streaming loops are exactly the unbounded loops that must
// poll their context to make shutdown and disconnect effective.
func ctxLoopScope(pkgPath string) bool {
	return concScope(pkgPath)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// directCtxPoll reports whether n is a direct context poll: a call to
// Err or Done on a context-typed expression (the select-over-Done idiom
// reduces to a Done call inside the select).
func directCtxPoll(info *types.Info, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}

// ctxLoopFacts exports the polls fact for every function containing a
// direct poll.
func ctxLoopFacts(fp *FactPass) {
	pkg := fp.Pkg
	for _, file := range pkg.AllFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			polls := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if directCtxPoll(pkg.Info, n) {
					polls = true
				}
				return !polls
			})
			if polls {
				fp.Facts.Export(FuncID(fn), ctxPollsFact, true)
			}
		}
	}
}

// ctxLoopFinalize closes the polls fact: calling a polling function is
// itself a poll (the helper checkpoint pattern).
func ctxLoopFinalize(f *Facts) {
	f.Propagate(ctxPollsFact, func(cur, _ any, _ string) (any, bool) {
		if cur != nil {
			return cur, false
		}
		return true, true
	})
}

// runCtxLoop flags unbounded loops without a checkpoint.
func runCtxLoop(p *Pass) {
	if !ctxLoopScope(p.Path) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var what string
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Cond != nil {
					return true
				}
				body, what = n.Body, "unbounded for loop"
			case *ast.RangeStmt:
				t := p.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Chan); !ok {
					return true
				}
				body, what = n.Body, "range over channel"
			default:
				return true
			}
			if !ctxLoopBodyPolls(p, body) {
				p.Reportf(n.Pos(), "%s without a context checkpoint; poll ctx.Err() (directly or via a polling helper) so cancellation stays phase-safe", what)
			}
			return true
		})
	}
}

// ctxLoopBodyPolls reports whether the loop body contains a checkpoint:
// a direct poll, or a call to a function carrying the polls fact.
func ctxLoopBodyPolls(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if directCtxPoll(p.Info, n) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := CalleeFunc(p.Info, call); callee != nil {
				if _, ok := p.Facts.Import(FuncID(callee), ctxPollsFact); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
