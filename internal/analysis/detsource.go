package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// DetSource is the interprocedural determinism-taint analyzer. The
// pipeline's contract is that a seed determines the notebook byte for
// byte; the analyzer tracks the ways a function can observe something the
// seed does not determine — the wall clock, the global (unseeded) RNG,
// the process environment, CPU count, pointer addresses, unsorted map
// iteration — and flags any function in the output-producing packages
// (internal/notebook, internal/pipeline, internal/engine, internal/stats,
// internal/obs) that reaches one, directly or through any chain of calls
// anywhere in the module.
//
// Every function's local sources are exported as a "detsource.reaches"
// fact (packages visited in dependency order) and closed over the module
// call graph, so a helper three packages away that quietly starts calling
// time.Now turns into a finding at the hot package's call site.
//
// Sanctioned nondeterminism is carved out:
//   - time.Now / time.Since inside internal/obs, internal/governor,
//     internal/profile and internal/metric are the timing-histogram and
//     soft-budget subsystems — the one place wall-clock reads are the
//     point (timings are segregated from deterministic counters by
//     design; docs/OBSERVABILITY.md).
//   - seeded randomness (rand.New(rand.NewSource(seed)) and *rand.Rand
//     methods) is not a source; only the package-level math/rand
//     functions, which share the global source, are.
//   - runtime.GOMAXPROCS is not a source: thread count is a free
//     variable under the determinism-across-threads gate. runtime.NumCPU
//     is flagged.
//   - map iteration counts as a source only when it is order-observable
//     in maporder's sense (an unsorted range feeding a slice, stream or
//     channel); the blessed collect-then-sort idiom stays clean, and a
//     range suppressed with a justified //nolint:maporder does not taint
//     callers either.
//
// Remaining true-but-justified findings (the pipeline's phase timing
// reads, the soft-deadline plumbing) are suppressed in the checked-in
// baseline file, never silently.
var DetSource = &Analyzer{
	Name:          "detsource",
	Doc:           "flags notebook/report-producing functions that transitively reach a nondeterminism source",
	Run:           runDetSource,
	FactsFn:       detSourceFacts,
	FactsFinalize: detSourceFinalize,
	NoTestFiles:   true,
}

// detReachesFact is the "detsource.reaches" fact name.
const detReachesFact = "detsource.reaches"

// detHotPkgs are the output-producing packages whose functions must stay
// deterministic. Fixture packages under testdata/src are always in
// scope so the analyzer can be tested.
var detHotPkgs = map[string]bool{
	"comparenb/internal/notebook": true,
	"comparenb/internal/pipeline": true,
	"comparenb/internal/engine":   true,
	"comparenb/internal/stats":    true,
	"comparenb/internal/obs":      true,
}

// detTimeExemptPkgs may read the wall clock without becoming sources:
// the timing/telemetry and soft-budget subsystems.
var detTimeExemptPkgs = map[string]bool{
	"comparenb/internal/obs":      true,
	"comparenb/internal/governor": true,
	"comparenb/internal/profile":  true,
	"comparenb/internal/metric":   true,
}

// detScope reports whether the analyzer reports findings for pkgPath.
// Fixture subpackages named "helper" stay out of scope: they stand in for
// the cold, non-hot code whose taint must be imported transitively.
func detScope(pkgPath string) bool {
	if detHotPkgs[pkgPath] {
		return true
	}
	return strings.Contains(pkgPath, "testdata/src/") && !strings.HasSuffix(pkgPath, "/helper")
}

// concHotPkgs extends the concurrency-discipline analyzers (ctxloop,
// goroutinejoin) beyond the determinism hot set: the server's goroutines
// are long-lived by design, so an unjoined goroutine or a loop that never
// polls its context is a daemon-lifetime leak there, not a phase-lifetime
// one. detsource deliberately does NOT use this set — the serving layer
// may read the wall clock (latencies, queue waits); determinism of the
// notebook bytes is enforced where they are produced, in the pipeline.
var concHotPkgs = map[string]bool{
	"comparenb/internal/server": true,
}

// concScope reports whether the concurrency-discipline analyzers report
// findings for pkgPath: the determinism hot set plus the server.
func concScope(pkgPath string) bool {
	return detScope(pkgPath) || concHotPkgs[pkgPath]
}

// detSourceKind classifies a statically resolved callee as a
// nondeterminism source; empty string means clean.
func detSourceKind(fn *types.Func, inTimeExempt bool) string {
	full := fn.FullName()
	switch full {
	case "time.Now", "time.Since":
		if inTimeExempt {
			return ""
		}
		return full
	case "runtime.NumCPU":
		return full
	case "os.Getenv", "os.LookupEnv", "os.Environ":
		return full
	}
	// crypto/rand is the trace-id generator's sanctioned entropy source,
	// confined to internal/server; a determinism-gated package reaching
	// it (directly or through helpers) would leak per-run identifiers
	// into notebook bytes.
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "crypto/rand" {
		return full
	}
	// Package-level math/rand functions share the process-global, lazily
	// seeded source. Constructors taking an explicit seed and methods on
	// a *rand.Rand instance are deterministic given the seed.
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
		if fn.Type().(*types.Signature).Recv() != nil {
			return ""
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return ""
		}
		return full
	}
	return ""
}

// detPointerFormat reports whether the call formats pointer addresses
// (%p), which differ between runs, returning a kind string.
func detPointerFormat(info *types.Info, call *ast.CallExpr) string {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return ""
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok || lit.Kind.String() != "STRING" {
			continue
		}
		if strings.Contains(lit.Value, "%p") || strings.Contains(lit.Value, "%#p") {
			return "fmt %p pointer formatting"
		}
	}
	return ""
}

// detLocal holds a function's directly observed sources: kind → position
// of the first witness call (used for same-package reporting).
type detLocal map[string]ast.Node

// detSourceFacts exports each function's local sources.
func detSourceFacts(fp *FactPass) {
	pkg := fp.Pkg
	timeExempt := detTimeExemptPkgs[pkg.Path]
	mapTainted := detMapTaintedFuncs(pkg)
	for _, file := range pkg.AllFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			kinds := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeFunc(pkg.Info, call); callee != nil {
					if k := detSourceKind(callee, timeExempt); k != "" {
						kinds[k] = true
					}
				}
				if k := detPointerFormat(pkg.Info, call); k != "" {
					kinds[k] = true
				}
				return true
			})
			if mapTainted[fd] {
				kinds["map iteration order"] = true
			}
			if len(kinds) == 0 {
				continue
			}
			val := map[string]string{}
			for k := range kinds {
				val[k] = "" // direct
			}
			fp.Facts.Export(FuncID(fn), detReachesFact, val)
		}
	}
}

// detMapTaintedFuncs finds functions containing an order-observable map
// range — maporder's own detection, minus findings its //nolint
// suppressions already justify.
func detMapTaintedFuncs(pkg *Package) map[*ast.FuncDecl]bool {
	var tmp []Diagnostic
	p := &Pass{
		Analyzer: MapOrder,
		Fset:     pkg.Fset,
		Files:    pkg.AllFiles(),
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		diags:    &tmp,
	}
	MapOrder.Run(p)
	tmp = suppress(collectNolint(pkg), tmp)
	out := map[*ast.FuncDecl]bool{}
	if len(tmp) == 0 {
		return out
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			for _, d := range tmp {
				if d.Pos.Filename == start.Filename && d.Pos.Line >= start.Line && d.Pos.Line <= end.Line {
					out[fd] = true
				}
			}
		}
	}
	return out
}

// detSourceFinalize closes the reaches fact over the call graph: a caller
// reaches every kind any callee reaches, recording the first hop for the
// diagnostic. The merge keeps the lexicographically smallest via so the
// result is independent of propagation order.
func detSourceFinalize(f *Facts) {
	f.Propagate(detReachesFact, func(cur, callee any, calleeID string) (any, bool) {
		cv := callee.(map[string]string)
		var cm map[string]string
		if cur != nil {
			cm = cur.(map[string]string)
		}
		changed := false
		for _, k := range sortedKeys(cv) {
			via, ok := cm[k]
			if ok && (via == "" || via <= calleeID) {
				continue
			}
			if cm == nil {
				cm = map[string]string{}
			}
			cm[k] = calleeID
			changed = true
		}
		return cm, changed
	})
}

// runDetSource reports, for each function in a hot package, the sources
// it reaches: direct source calls at their call site, and calls into
// tainted functions outside the hot set at the call site that imports the
// taint (taint already reported inside another hot package is not
// re-reported — the finding lives where the source is).
func runDetSource(p *Pass) {
	if !detScope(p.Path) {
		return
	}
	timeExempt := detTimeExemptPkgs[p.Path]
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			reported := map[string]bool{} // kind → already flagged in fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if k := detPointerFormat(p.Info, call); k != "" && !reported[k] {
					reported[k] = true
					p.Reportf(call.Pos(), "%s in %s: pointer addresses differ between runs; format values, not pointers", k, fn.Name())
				}
				callee := CalleeFunc(p.Info, call)
				if callee == nil {
					return true
				}
				if k := detSourceKind(callee, timeExempt); k != "" {
					if !reported[k] {
						reported[k] = true
						p.Reportf(call.Pos(), "nondeterminism source %s called in %s, which feeds notebook/report output; derive the value from the seed or config, or record it via obs timings", k, fn.Name())
					}
					return true
				}
				cid := FuncID(callee)
				if calleePkg := callee.Pkg(); calleePkg != nil && detScope(calleePkg.Path()) {
					// The callee is itself in a hot package: its taint is
					// reported at its own source, not at every caller.
					return true
				}
				if v, ok := p.Facts.Import(cid, detReachesFact); ok {
					for _, k := range sortedKeys(v.(map[string]string)) {
						key := cid + "|" + k
						if reported[key] {
							continue
						}
						reported[key] = true
						p.Reportf(call.Pos(), "call to %s reaches nondeterminism source %s in %s; the result must not influence notebook/report output", shortFuncID(cid), k, fn.Name())
					}
				}
				return true
			})
		}
	}
}

// sortedKeys returns m's keys in sorted order, for deterministic
// iteration.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// shortFuncID trims the module prefix off a FuncID for readable
// diagnostics: "comparenb/internal/tap.SolveAnytime" → "tap.SolveAnytime".
func shortFuncID(id string) string {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if strings.HasPrefix(id, "(") {
		if i := strings.Index(id, ")"); i > 0 {
			recv := strings.TrimPrefix(id[:i], "(")
			star := ""
			if strings.HasPrefix(recv, "*") {
				star, recv = "*", recv[1:]
			}
			return "(" + star + trim(recv) + id[i:]
		}
	}
	return trim(id)
}
