// Package analysis is a self-contained static-analysis framework for this
// module, built only on the standard library's go/parser, go/ast, go/types
// and go/token. It exists because the pipeline's contract — the same seeded
// dataset must yield the same notebook, byte for byte — is exactly the kind
// of property the Go runtime conspires against (randomised map iteration)
// and ordinary tests rarely catch. The analyzers here encode the project's
// determinism, numeric-hygiene and error-discipline rules; they run both as
// the cmd/comparenb-vet CLI and inside go test ./... via selfcheck_test.go,
// so every future PR is checked automatically.
//
// The design follows the shape of golang.org/x/tools/go/analysis (an
// Analyzer with a Run function over a Pass) without importing it: go.mod
// stays dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer name, a resolved source position
// and a human-readable message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects the package in the Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //nolint comments.
	Name string
	// Doc is a one-line description (shown by comparenb-vet -list).
	Doc string
	// Run performs the check.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files, comments included.
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info
	// Path is the package import path ("comparenb/internal/engine", …).
	Path string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Run applies each analyzer to the package and returns the surviving
// diagnostics: findings on lines carrying a matching //nolint:<name>
// comment (on the same line or alone on the line above) are suppressed.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = suppress(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppress drops diagnostics covered by //nolint comments.
//
// Syntax: `//nolint:name1,name2` or `//nolint:name // reason`. The comment
// suppresses matching analyzers on the line it sits on; a comment that is
// the whole line suppresses the line below it, so call sites can keep the
// justification above the code. A bare `//nolint` (no names) is
// deliberately NOT honoured: suppressions must name what they silence.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	// (file, line, analyzer) → suppressed.
	sup := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := nolintNames(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := []int{pos.Line}
				if pos.Column == 1 || onOwnLine(pkg.Fset, f, c) {
					lines = append(lines, pos.Line+1)
				}
				m := sup[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					sup[pos.Filename] = m
				}
				for _, ln := range lines {
					if m[ln] == nil {
						m[ln] = map[string]bool{}
					}
					for _, n := range names {
						m[ln][n] = true
					}
				}
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if sup[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// nolintNames parses a comment's //nolint:a,b directive into analyzer
// names, ignoring any trailing "// reason" explanation.
func nolintNames(text string) []string {
	const prefix = "//nolint:"
	if !strings.HasPrefix(text, prefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// onOwnLine reports whether the comment is the first token on its line,
// i.e. nothing but whitespace precedes it (so it documents the next line).
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// If any declaration or statement token of the file shares the line and
	// starts before the comment, the comment trails code.
	trailing := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trailing {
			return false
		}
		np := fset.Position(n.Pos())
		if np.Line == pos.Line && np.Column < pos.Column {
			trailing = true
		}
		return !trailing
	})
	return !trailing
}
