// Package analysis is a self-contained static-analysis framework for this
// module, built only on the standard library's go/parser, go/ast, go/types
// and go/token. It exists because the pipeline's contract — the same seeded
// dataset must yield the same notebook, byte for byte — is exactly the kind
// of property the Go runtime conspires against (randomised map iteration)
// and ordinary tests rarely catch. The analyzers here encode the project's
// determinism, numeric-hygiene and error-discipline rules; they run both as
// the cmd/comparenb-vet CLI and inside go test ./... via selfcheck_test.go,
// so every future PR is checked automatically.
//
// The design follows the shape of golang.org/x/tools/go/analysis (an
// Analyzer with a Run function over a Pass) without importing it: go.mod
// stays dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer name, a resolved source position
// and a human-readable message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects the package in the Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //nolint comments.
	Name string
	// Doc is a one-line description (shown by comparenb-vet -list).
	Doc string
	// Run performs the check.
	Run func(*Pass)
	// FactsFn, when set, exports per-function facts for this analyzer.
	// It is called once per package, packages in dependency order, before
	// any Run.
	FactsFn func(*FactPass)
	// FactsFinalize runs once after every package's FactsFn — the place
	// to close facts over the call graph with Facts.Propagate.
	FactsFinalize func(*Facts)
	// NoTestFiles excludes _test.go files from this analyzer's Pass:
	// the rule targets production code only.
	NoTestFiles bool
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included. Test
	// files are included unless the analyzer sets NoTestFiles.
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info
	// Path is the package import path ("comparenb/internal/engine", …).
	Path string
	// Facts is the module-wide fact store, populated before Run.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Run applies each analyzer to one package and returns the surviving
// diagnostics. It is RunModule over a single package — fixture tests use
// it; the CLI and the selfcheck use RunModule so interprocedural facts
// span the whole module.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunModule([]*Package{pkg}, analyzers)
}

// RunModule builds the module-wide facts (call graph + per-function
// facts, packages in dependency order), applies each analyzer to each
// package, and returns the surviving diagnostics: findings on lines
// carrying a matching //nolint:<name> comment (on the same line or alone
// on the line above) are suppressed. When the nolintlint analyzer is in
// the set, directives that suppressed nothing become findings themselves.
func RunModule(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := BuildFacts(pkgs, analyzers)
	var diags []Diagnostic
	var directives []*nolintDirective
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			files := pkg.AllFiles()
			if a.NoTestFiles {
				files = pkg.Files
			}
			if len(files) == 0 || a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Facts:    facts,
				diags:    &diags,
			}
			a.Run(pass)
		}
		directives = append(directives, collectNolint(pkg)...)
	}
	diags = suppress(directives, diags)
	for _, a := range analyzers {
		if a.Name == NolintLint.Name {
			runNames := map[string]bool{}
			for _, ra := range analyzers {
				runNames[ra.Name] = true
			}
			// The lint over directives is itself suppressible
			// (//nolint:nolintlint), one level deep.
			diags = append(diags, suppress(directives, lintNolint(directives, runNames))...)
		}
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by position, then analyzer — the
// stable order both the CLI contract and the baseline rely on.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// nolintDirective is one parsed //nolint comment, tracking which of its
// names actually suppressed a finding (nolintlint's raw material).
type nolintDirective struct {
	pos   token.Position
	lines [2]int // covered lines: its own, and the next when standalone
	names []string
	used  map[string]bool // name → suppressed at least one diagnostic
}

// collectNolint parses every //nolint directive in the package, test
// files included.
//
// Syntax: `//nolint:name1,name2` or `//nolint:name // reason`. The
// comment suppresses matching analyzers on the line it sits on; a comment
// that is the whole line suppresses the line below it, so call sites can
// keep the justification above the code. A bare `//nolint` (no names) is
// deliberately NOT honoured: suppressions must name what they silence.
func collectNolint(pkg *Package) []*nolintDirective {
	var out []*nolintDirective
	for _, f := range pkg.AllFiles() {
		if pkg.Fset.File(f.Pos()) == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := nolintNames(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &nolintDirective{
					pos:   pos,
					lines: [2]int{pos.Line, pos.Line},
					names: names,
					used:  map[string]bool{},
				}
				if pos.Column == 1 || onOwnLine(pkg.Fset, f, c) {
					d.lines[1] = pos.Line + 1
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppress drops diagnostics covered by //nolint directives, marking the
// directives that did the suppressing.
func suppress(directives []*nolintDirective, diags []Diagnostic) []Diagnostic {
	// (file, line, analyzer) → directives covering it.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	cover := map[key][]*nolintDirective{}
	for _, d := range directives {
		for ln := d.lines[0]; ln <= d.lines[1]; ln++ {
			for _, n := range d.names {
				k := key{file: d.pos.Filename, line: ln, analyzer: n}
				cover[k] = append(cover[k], d)
			}
		}
	}
	var out []Diagnostic
	for _, diag := range diags {
		k := key{file: diag.Pos.Filename, line: diag.Pos.Line, analyzer: diag.Analyzer}
		if ds := cover[k]; len(ds) > 0 {
			for _, d := range ds {
				d.used[diag.Analyzer] = true
			}
			continue
		}
		out = append(out, diag)
	}
	return out
}

// nolintNames parses a comment's //nolint:a,b directive into analyzer
// names, ignoring any trailing "// reason" explanation.
func nolintNames(text string) []string {
	const prefix = "//nolint:"
	if !strings.HasPrefix(text, prefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// onOwnLine reports whether the comment is the first token on its line,
// i.e. nothing but whitespace precedes it (so it documents the next line).
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// If any declaration or statement token of the file shares the line and
	// starts before the comment, the comment trails code.
	trailing := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trailing {
			return false
		}
		np := fset.Position(n.Pos())
		if np.Line == pos.Line && np.Column < pos.Column {
			trailing = true
		}
		return !trailing
	})
	return !trailing
}
