package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "detsource",
			Pos:      token.Position{Filename: "/mod/internal/pipeline/generate.go", Line: 141, Column: 11},
			Message:  "nondeterminism source time.Now called in GenerateContext",
		},
		{
			Analyzer: "spanend",
			Pos:      token.Position{Filename: "/mod/internal/engine/cube.go", Line: 7, Column: 2},
			Message:  "span sp is never ended",
		},
	}
}

// TestWriteJSON pins the -json shape: module-relative slash paths, a
// findings array that is never null, and a count.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/mod", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Findings []map[string]any `json:"findings"`
		Count    int              `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.Count != 2 || len(got.Findings) != 2 {
		t.Fatalf("count = %d, findings = %d; want 2, 2", got.Count, len(got.Findings))
	}
	if f := got.Findings[0]; f["file"] != "internal/pipeline/generate.go" || f["analyzer"] != "detsource" || f["line"] != float64(141) {
		t.Errorf("first finding mis-rendered: %v", f)
	}

	buf.Reset()
	if err := WriteJSON(&buf, "/mod", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty run must render findings as [], got: %s", buf.String())
	}
}

// sarifStructuralChecks is the schema subset the emitter must satisfy: the
// required properties of SARIF 2.1.0 for logs, runs, tools, results and
// locations, plus the cross-reference that every result's ruleId resolves
// in the driver's rules table. It is a structural validation (no network,
// no external schema file), covering every field the emitter writes.
func sarifStructuralChecks(t *testing.T, data []byte) {
	t.Helper()
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-schema-2.1.0") {
		t.Errorf("$schema %q does not reference the 2.1.0 schema", s)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs must be a one-element array, got %T len %d", log["runs"], len(runs))
	}
	run, _ := runs[0].(map[string]any)
	tool, _ := run["tool"].(map[string]any)
	driver, _ := tool["driver"].(map[string]any)
	if driver == nil {
		t.Fatal("runs[0].tool.driver missing")
	}
	if name, _ := driver["name"].(string); name != "comparenb-vet" {
		t.Errorf("driver.name = %q", name)
	}
	ruleIDs := map[string]bool{}
	rules, _ := driver["rules"].([]any)
	for _, r := range rules {
		rm, _ := r.(map[string]any)
		id, _ := rm["id"].(string)
		if id == "" {
			t.Error("rule without id")
			continue
		}
		desc, _ := rm["shortDescription"].(map[string]any)
		if txt, _ := desc["text"].(string); txt == "" {
			t.Errorf("rule %s lacks shortDescription.text", id)
		}
		ruleIDs[id] = true
	}
	results, ok := run["results"].([]any)
	if !ok {
		t.Fatal("runs[0].results must be an array (possibly empty), not absent")
	}
	for i, r := range results {
		rm, _ := r.(map[string]any)
		rid, _ := rm["ruleId"].(string)
		if !ruleIDs[rid] {
			t.Errorf("results[%d].ruleId %q not in driver.rules", i, rid)
		}
		msg, _ := rm["message"].(map[string]any)
		if txt, _ := msg["text"].(string); txt == "" {
			t.Errorf("results[%d] lacks message.text", i)
		}
		locs, _ := rm["locations"].([]any)
		if len(locs) != 1 {
			t.Errorf("results[%d] has %d locations, want 1", i, len(locs))
			continue
		}
		loc, _ := locs[0].(map[string]any)
		phys, _ := loc["physicalLocation"].(map[string]any)
		art, _ := phys["artifactLocation"].(map[string]any)
		uri, _ := art["uri"].(string)
		if uri == "" || strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("results[%d] artifact uri %q must be relative with forward slashes", i, uri)
		}
		region, _ := phys["region"].(map[string]any)
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("results[%d] region.startLine = %v, want >= 1", i, line)
		}
	}
}

// TestWriteSARIF validates the emitter against the structural schema
// check, with findings and empty.
func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", All(), sampleDiags()); err != nil {
		t.Fatal(err)
	}
	sarifStructuralChecks(t, buf.Bytes())
	if !strings.Contains(buf.String(), "internal/pipeline/generate.go") {
		t.Error("expected module-relative path in SARIF output")
	}

	buf.Reset()
	if err := WriteSARIF(&buf, "/mod", All(), nil); err != nil {
		t.Fatal(err)
	}
	sarifStructuralChecks(t, buf.Bytes())
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Error("empty run must render results as [], not null")
	}
}
