// Package nopanic is the fixture for the nopanic analyzer (its package
// path ends in testdata/src/nopanic, which the analyzer treats as a
// library package).
package nopanic

import "fmt"

// badPanic panics in a library function.
func badPanic(agg int) string {
	switch agg {
	case 0:
		return "sum"
	default:
		panic("bad agg") // want "panic in library package"
	}
}

// badPanicf panics with a formatted message.
func badPanicf(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n)) // want "panic in library package"
	}
}

// mustPositive is a guarded invariant helper: the must prefix announces
// the contract, so panicking here is allowed.
func mustPositive(n int) int {
	if n <= 0 {
		panic("mustPositive: non-positive input")
	}
	return n
}

// MustParse is the exported spelling of the same convention.
func MustParse(s string) int {
	if s == "" {
		panic("MustParse: empty input")
	}
	return len(s)
}

// goodError returns an error instead.
func goodError(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative: %d", n)
	}
	return n, nil
}

// suppressed justifies an enum-exhaustiveness trap.
func suppressed(kind int) string {
	switch kind {
	case 0:
		return "a"
	default:
		//nolint:nopanic // exhaustive switch over internal enum; new values are a programming error
		panic("unknown kind")
	}
}
