// Package errcheck is the fixture for the errcheck analyzer.
package errcheck

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fallible() error            { return nil }
func falliblePair() (int, error) { return 0, nil }
func infallible() int            { return 0 }

// badDrop drops a plain error.
func badDrop() {
	fallible() // want "fallible drops its error"
}

// badDropPair drops the error of a multi-result call.
func badDropPair() {
	falliblePair() // want "falliblePair drops its error"
}

// badDefer drops an error inside defer.
func badDefer(f *os.File) {
	defer f.Close() // want "f.Close drops its error"
}

// badGo drops an error on a goroutine.
func badGo() {
	go fallible() // want "fallible drops its error"
}

// goodExplicit discards explicitly.
func goodExplicit() {
	_ = fallible()
}

// goodHandled handles it.
func goodHandled() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

// goodNoError calls something that cannot fail.
func goodNoError() {
	infallible()
}

// goodPrint: fmt printing to stdout/stderr is conventional in a CLI.
func goodPrint() {
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "oops\n")
	fmt.Fprintln(os.Stdout, "ok")
}

// goodBuilders: strings.Builder and bytes.Buffer writes never fail.
func goodBuilders() string {
	var sb strings.Builder
	var buf bytes.Buffer
	fmt.Fprintf(&sb, "x=%d\n", 1)
	sb.WriteString("y")
	buf.WriteString("z")
	return sb.String() + buf.String()
}

// badFprintFile: writing to a real file can fail.
func badFprintFile(f *os.File) {
	fmt.Fprintf(f, "data\n") // want "fmt.Fprintf drops its error"
}

// suppressed documents why ignoring is fine.
func suppressed(f *os.File) {
	//nolint:errcheck // best-effort cleanup on the error path
	f.Close()
}
