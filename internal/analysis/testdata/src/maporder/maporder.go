// Package maporder is the fixture for the maporder analyzer. Lines marked
// `// want "…"` must produce a diagnostic containing the quoted substring;
// all other lines must stay clean.
package maporder

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// badAppend collects map keys without sorting them afterwards.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to slice keys"
	}
	return keys
}

// goodCollectThenSort is the blessed idiom: append, then sort in the same
// block.
func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice also counts: sort.Slice over the collected values.
func goodSortSlice(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// badPrint writes output while iterating.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf call"
	}
}

// badFprint writes to a stream while iterating.
func badFprint(m map[string]int) {
	for k := range m {
		fmt.Fprintln(os.Stdout, k) // want "fmt.Fprintln call"
	}
}

// badBuilder builds a string via a Builder while iterating.
func badBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "WriteString call"
	}
	return sb.String()
}

// badConcat builds a string with += while iterating.
func badConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "string concatenation"
	}
	return out
}

// badSend leaks iteration order through a channel.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send"
	}
}

// goodCommutative sums values: order-independent, not flagged.
func goodCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodMapToMap writes into another map: still unordered, not flagged.
func goodMapToMap(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// goodLocalAppend appends to a slice declared inside the loop body.
func goodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// suppressedSameLine demonstrates same-line suppression.
func suppressedSameLine(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //nolint:maporder // order re-established by caller
	}
	return keys
}

// suppressedLineAbove demonstrates suppression from the line above.
func suppressedLineAbove(m map[string]int) {
	for k := range m {
		//nolint:maporder // debug helper, order genuinely irrelevant
		fmt.Println(k)
	}
}
