// Excluded everywhere but GOOS=windows by the filename suffix; redeclares
// Here so accidental inclusion on other platforms fails loudly.
package buildtags

// Here conflicts with the real declaration on purpose.
func Here() float64 { return 2.0 }

// WindowsOnly must not appear in the loaded package's scope on other
// platforms.
func WindowsOnly() {}
