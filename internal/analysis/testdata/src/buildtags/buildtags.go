// Package buildtags exercises the loader's build-constraint handling:
// files excluded by //go:build lines or GOOS filename suffixes must never
// reach the type checker (the excluded files here redeclare Here, so
// loading them would be a type error).
package buildtags

// Here is declared in the always-built file.
func Here() int { return 1 }
