//go:build comparenb_never_enabled

// Excluded by a tag no build sets: redeclares Here so that accidental
// inclusion is a loud type-check failure, not a silent pass.
package buildtags

// Here conflicts with the real declaration on purpose.
func Here() string { return "tagged out" }

// TaggedOut must not appear in the loaded package's scope.
func TaggedOut() {}
