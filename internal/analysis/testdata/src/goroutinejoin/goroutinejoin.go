// Package goroutinejoin is the fixture for the goroutine-join analyzer:
// every go statement needs a matching join, or a signature that visibly
// hands the join to the caller.
package goroutinejoin

import "sync"

// badLeak fires and forgets.
func badLeak(work func()) {
	go work() // want "no matching join"
}

// badDoubleLeak leaks twice; each go statement is its own finding.
func badDoubleLeak(work func()) {
	go work() // want "no matching join"
	go work() // want "no matching join"
}

// goodWaitGroup joins via WaitGroup.Wait.
func goodWaitGroup(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// goodChannelReceive joins by receiving the done signal.
func goodChannelReceive(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// goodRangeJoin drains the results channel, which joins the producer.
func goodRangeJoin(xs []int) int {
	ch := make(chan int)
	go func() {
		for _, v := range xs {
			ch <- v
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// delegates hands the join to the caller by returning the channel; exempt
// here, but it exports the "goroutinejoin.unjoined" fact.
func delegates(xs []int) <-chan int {
	ch := make(chan int, len(xs))
	go func() {
		for _, v := range xs {
			ch <- v
		}
		close(ch)
	}()
	return ch
}

// delegatesViaWaitGroup registers on the caller's WaitGroup.
func delegatesViaWaitGroup(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// badCaller starts delegates' goroutine and drops the channel: the join
// obligation followed the fact here.
func badCaller(xs []int) {
	delegates(xs) // want "starts a goroutine this function never joins"
}

// goodCaller receives the delegated channel.
func goodCaller(xs []int) int {
	total := 0
	for v := range delegates(xs) {
		total += v
	}
	return total
}

// suppressedLeak is a justified fire-and-forget (process-lifetime pump).
func suppressedLeak(work func()) {
	go work() //nolint:goroutinejoin // fixture: process-lifetime pump
}
