// Package syncbyvalue is the fixture for the syncbyvalue analyzer.
package syncbyvalue

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type nested struct {
	inner guarded
}

// badParam takes a mutex-bearing struct by value.
func badParam(g guarded) int { // want "parameter copies sync.Mutex"
	return g.n
}

// badMutexParam takes a bare mutex by value.
func badMutexParam(mu sync.Mutex) { // want "parameter copies sync.Mutex"
	_ = mu
}

// badReceiver has a value receiver on a lock-bearing type.
func (g guarded) badReceiver() int { // want "receiver copies sync.Mutex"
	return g.n
}

// badResult returns a WaitGroup by value.
func badResult() sync.WaitGroup { // want "result copies sync.WaitGroup"
	var wg sync.WaitGroup
	return wg
}

// badAssign copies an existing value.
func badAssign(g *guarded) {
	cp := *g // want "assignment copies sync.Mutex"
	_ = cp
}

// badNested finds locks buried in struct fields.
func badNested(n nested) { // want "parameter copies sync.Mutex"
	_ = n
}

// badRange copies elements per iteration.
func badRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies sync.Mutex"
		total += g.n
	}
	return total
}

// goodPointer passes by pointer everywhere.
func goodPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// goodPointerReceiver is the correct receiver form.
func (g *guarded) goodPointerReceiver() int {
	return g.n
}

// goodFresh initialises new values; nothing pre-existing is copied.
func goodFresh() {
	var mu sync.Mutex
	mu2 := sync.Mutex{}
	_ = mu
	_ = mu2
}

// goodRangeIndex iterates by index.
func goodRangeIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// suppressed documents a deliberate copy of a never-used zero value.
func suppressed(g guarded) { //nolint:syncbyvalue // fixture: copy of a documented-cold value
	_ = g
}
