// Package spanend is the fixture for the span-lifecycle analyzer: every
// span obs.StartSpan returns must be ended on all paths out of the
// function.
package spanend

import (
	"context"

	"comparenb/internal/obs"
)

// badNeverEnded starts a span and forgets it (`_ = sp` silences the
// compiler, not the analyzer).
func badNeverEnded(ctx context.Context, work func()) {
	sp := obs.StartSpan(ctx, "bad/never") // want "span sp is never ended"
	work()
	_ = sp
}

// badDiscarded drops the span on the floor.
func badDiscarded(ctx context.Context) {
	obs.StartSpan(ctx, "bad/discard") // want "result of obs.StartSpan discarded"
}

// badBlankAssign discards via the blank identifier.
func badBlankAssign(ctx context.Context) {
	_ = obs.StartSpan(ctx, "bad/blank") // want "result of obs.StartSpan discarded"
}

// badEarlyReturn ends the span on the fallthrough path but not when the
// guard returns early.
func badEarlyReturn(ctx context.Context, fail bool) error {
	sp := obs.StartSpan(ctx, "bad/early")
	if fail {
		return errFixture // want "may not be ended on this path"
	}
	sp.End()
	return nil
}

// goodDefer covers every path with one defer.
func goodDefer(ctx context.Context, work func()) {
	sp := obs.StartSpan(ctx, "good/defer")
	defer sp.End()
	work()
}

// goodStraightLine ends the span in the same statement list.
func goodStraightLine(ctx context.Context, work func()) {
	sp := obs.StartSpan(ctx, "good/line")
	work()
	sp.End()
}

// goodBothBranches ends the span inside the early branch and again on the
// fallthrough path.
func goodBothBranches(ctx context.Context, fail bool) error {
	sp := obs.StartSpan(ctx, "good/branches")
	if fail {
		sp.End()
		return errFixture
	}
	sp.End()
	return nil
}

// goodPerIteration opens and closes one span per loop turn; the End in the
// loop body's own list covers the exits beyond the loop.
func goodPerIteration(ctx context.Context, n int, work func()) {
	for i := 0; i < n; i++ {
		sp := obs.StartSpan(ctx, "good/iter")
		work()
		sp.End()
	}
}

// goodClosure: a span started inside a closure is checked against the
// closure's own exits.
func goodClosure(ctx context.Context, run func(func())) {
	run(func() {
		sp := obs.StartSpan(ctx, "good/closure")
		defer sp.End()
	})
}

// badClosure: the closure leaks its span even though the enclosing
// function is clean.
func badClosure(ctx context.Context, run func(func())) {
	run(func() {
		sp := obs.StartSpan(ctx, "bad/closure") // want "span sp is never ended"
		_ = sp
	})
}

// escaped spans are beyond lexical tracking and deliberately skipped.
func escaped(ctx context.Context) {
	sp := obs.StartSpan(ctx, "escape")
	stash(sp)
}

// suppressedLeak is a justified leak (process-lifetime span).
func suppressedLeak(ctx context.Context, work func()) {
	sp := obs.StartSpan(ctx, "good/suppressed") //nolint:spanend // fixture: process-lifetime span
	work()
	_ = sp
}

var errFixture = context.Canceled

func stash(obs.Span) {}
