// Package nolintlint is the fixture for the suppression-hygiene check:
// a //nolint directive must name a real analyzer and actually suppress
// something.
package nolintlint

// goodUsed: the directive suppresses a live floateq finding, so it is
// neither stale nor unknown.
func goodUsed(a, b float64) bool {
	return a == b //nolint:floateq // fixture: exact equality intended
}

// stale: the ints below trigger nothing, so the directive suppresses
// nothing.
func stale(a, b int) bool {
	return a == b //nolint:floateq // want "stale //nolint:floateq"
}

// unknown: no analyzer has this name.
func unknown(x int) int {
	return x + 1 //nolint:nosuchcheck // want "unknown analyzer"
}

// selfSuppressed: naming nolintlint alongside silences the staleness
// finding — the one-level escape hatch for directives kept deliberately.
func selfSuppressed(x int) int {
	return x * 2 //nolint:nopanic,nolintlint // fixture: kept deliberately
}
