// Package ctxloop is the fixture for the context-checkpoint analyzer:
// unbounded loops in hot packages must poll a context, directly or via a
// helper that does.
package ctxloop

import "context"

// badForever spins with no way to observe cancellation.
func badForever(work func()) {
	for { // want "unbounded for loop without a context checkpoint"
		work()
	}
}

// badDrain ranges a channel with no checkpoint.
func badDrain(ch chan int) int {
	total := 0
	for v := range ch { // want "range over channel without a context checkpoint"
		total += v
	}
	return total
}

// goodErrPoll checks ctx.Err each turn.
func goodErrPoll(ctx context.Context, work func()) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		work()
	}
}

// goodSelectDone uses the select-over-Done idiom.
func goodSelectDone(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// checkpoint is the polling helper other loops lean on.
func checkpoint(ctx context.Context) error {
	return ctx.Err()
}

// checkpointIndirect polls two calls down.
func checkpointIndirect(ctx context.Context) error {
	return checkpoint(ctx)
}

// goodHelperPoll polls through the helper: the "ctxloop.polls" fact makes
// the call count as a checkpoint.
func goodHelperPoll(ctx context.Context, work func()) error {
	for {
		if err := checkpoint(ctx); err != nil {
			return err
		}
		work()
	}
}

// goodTransitiveHelper polls through two levels of helper.
func goodTransitiveHelper(ctx context.Context, work func()) error {
	for {
		if err := checkpointIndirect(ctx); err != nil {
			return err
		}
		work()
	}
}

// goodBounded loops are exempt: a three-clause loop terminates on its own.
func goodBounded(n int, work func()) {
	for i := 0; i < n; i++ {
		work()
	}
}

// goodSliceRange is bounded by the slice.
func goodSliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// suppressedForever is a justified spin (e.g. a dedicated signal pump).
func suppressedForever(work func()) {
	for { //nolint:ctxloop // fixture: dedicated pump, lifetime == process
		work()
	}
}
