// Package detsource is the fixture for the determinism-taint analyzer.
// This package stands in for a hot (output-producing) package; the helper
// subpackage stands in for cold module code whose taint must arrive here
// transitively through the facts layer.
package detsource

import (
	cryptorand "crypto/rand"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"comparenb/internal/analysis/testdata/src/detsource/helper"
)

// directClock reads the wall clock in a hot function.
func directClock() int64 {
	return time.Now().UnixNano() // want "nondeterminism source time.Now"
}

// directGlobalRand uses the package-level, globally seeded RNG.
func directGlobalRand(n int) int {
	return rand.Intn(n) // want "nondeterminism source math/rand.Intn"
}

// directEnv reads the process environment.
func directEnv() string {
	return os.Getenv("HOME") // want "nondeterminism source os.Getenv"
}

// directCryptoRand draws real entropy — sanctioned only in the serving
// layer's trace-id generator, never in an output-producing package.
func directCryptoRand() []byte {
	b := make([]byte, 16)
	_, _ = cryptorand.Read(b) // want "nondeterminism source crypto/rand.Read"
	return b
}

// directNumCPU observes the machine's core count.
func directNumCPU() int {
	return runtime.NumCPU() // want "nondeterminism source runtime.NumCPU"
}

// pointerFormat renders an address, which differs between runs.
func pointerFormat(v *int) string {
	return fmt.Sprintf("%p", v) // want "pointer addresses differ between runs"
}

// transitiveClock imports helper.Stamp's taint at the call site.
func transitiveClock() int64 {
	return helper.Stamp() // want "reaches nondeterminism source time.Now"
}

// transitiveTwoHops: the source is two calls down (helper.Indirect →
// helper.Stamp).
func transitiveTwoHops() int64 {
	return helper.Indirect() // want "reaches nondeterminism source time.Now"
}

// transitiveShuffle imports the global-RNG taint.
func transitiveShuffle(xs []int) {
	helper.Shuffle(xs) // want "reaches nondeterminism source math/rand.Shuffle"
}

// transitiveMapOrder: the helper leaks map iteration order into a slice.
func transitiveMapOrder(m map[string]int) []string {
	return helper.KeysUnsorted(m) // want "reaches nondeterminism source map iteration order"
}

// goodSeeded is deterministic: an explicit seed pins the sequence.
func goodSeeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// goodSeededHelper: seeded randomness in the helper is not a source either.
func goodSeededHelper(seed int64) int {
	return helper.SeededPick(seed, 10)
}

// goodCleanHelper calls a deterministic helper.
func goodCleanHelper(a, b int) int {
	return helper.Clean(a, b)
}

// goodGomaxprocs: thread count is a free variable under the
// determinism-across-threads gate, so GOMAXPROCS is deliberately clean.
func goodGomaxprocs() int {
	return runtime.GOMAXPROCS(0)
}

// goodValueFormat formats values, not pointers.
func goodValueFormat(v int) string {
	return fmt.Sprintf("%d", v)
}

// hotCaller calls a tainted function in the same hot package: the finding
// lives at directClock's own source line, not here.
func hotCaller() int64 {
	return directClock()
}

// suppressedClock carries a justified suppression and must stay silent.
func suppressedClock() int64 {
	return time.Now().UnixNano() //nolint:detsource // fixture: sanctioned timing read
}
