// Package helper stands in for cold, non-hot module code: detsource never
// reports findings here, but the facts layer still records the sources
// these functions reach, so the fixture package can test transitive
// taint imported at its call sites.
package helper

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock; callers in hot packages import the taint.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Shuffle uses the package-level (globally seeded) RNG.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Indirect reaches the clock two hops down.
func Indirect() int64 {
	return Stamp() + 1
}

// Clean is deterministic; calling it taints nobody.
func Clean(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SeededPick is deterministic given the seed: rand.New + methods are not
// sources.
func SeededPick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// KeysUnsorted leaks map iteration order into its result; hot callers
// import the taint as a "map iteration order" source.
func KeysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
