// Package helper stands in for internal/table's compressed columnar
// layer: encodedeq treats its float64-returning functions as decode
// calls whose results must be compared bit-for-bit.
package helper

// Meas mirrors table.MeasColumn: an encoded measure column decoding to
// float64 on demand.
type Meas interface {
	Value(i int) float64
	Len() int
}

// Raw is a concrete column, so method calls resolve to the concrete
// *types.Func rather than the interface method.
type Raw struct {
	Vals []float64
}

// Value decodes row i.
func (r *Raw) Value(i int) float64 { return r.Vals[i] }

// Len is the row count.
func (r *Raw) Len() int { return len(r.Vals) }

// First decodes row 0 via a package-level function.
func First(m Meas) float64 { return m.Value(0) }

// Count returns an int: not a decode result, never flagged.
func Count(m Meas) int { return m.Len() }
