// Package encodedeq is the fixture for the encodedeq analyzer. The
// helper subpackage stands in for internal/table; calls into it that
// return float64 are decode results whose equality must go through
// math.Float64bits.
package encodedeq

import (
	"math"

	"comparenb/internal/analysis/testdata/src/encodedeq/helper"
)

// badInterfaceEq compares a decode through the interface method.
func badInterfaceEq(m helper.Meas, want float64) bool {
	return m.Value(3) == want // want "== Value against a decoded measure value"
}

// badConcreteNeq flags the concrete method and the != operator too.
func badConcreteNeq(r *helper.Raw, want float64) bool {
	return want != r.Value(0) // want "!= Value against a decoded measure value"
}

// badFuncEq flags package-level decode helpers, parens notwithstanding.
func badFuncEq(m helper.Meas) bool {
	return (helper.First(m)) == 0 // want "== First against a decoded measure value"
}

// badBothSides compares two decode results directly.
func badBothSides(a, b helper.Meas) bool {
	return a.Value(1) == b.Value(1) // want "== Value against a decoded measure value"
}

// goodBits is the blessed idiom: bit-level equality sees NaN payloads
// and the sign of zero.
func goodBits(m helper.Meas, want float64) bool {
	return math.Float64bits(m.Value(3)) == math.Float64bits(want)
}

// goodInt compares a non-float result from the decode package.
func goodInt(m helper.Meas) bool {
	return helper.Count(m) == 0
}

// goodOrdered relational operators are untouched; ordering on decoded
// values is well-defined wherever the raw kernel orders too.
func goodOrdered(m helper.Meas, lim float64) bool {
	return m.Value(0) < lim
}

// goodLocal compares floats produced outside the decode package: that is
// floateq's beat, not this analyzer's.
func goodLocal(a, b float64) bool {
	//nolint:floateq // fixture: exact tie-break stands in for justified use
	return a == b
}

// suppressed documents a value-level comparison on purpose.
func suppressed(m helper.Meas, want float64) bool {
	//nolint:encodedeq // NaN-free by construction in this fixture
	return m.Value(2) == want
}
