// Fixture _test.go: unlike floateq, encodedeq covers test files — a
// differential test comparing decoded values with == silently passes
// NaN regressions, which is exactly what such tests exist to catch.
package encodedeq

import "comparenb/internal/analysis/testdata/src/encodedeq/helper"

// assertRoundTrip is the anti-pattern: a test helper checking decode
// output with value equality.
func assertRoundTrip(m helper.Meas, want float64) bool {
	return m.Value(7) == want // want "== Value against a decoded measure value"
}
