// Package floateq is the fixture for the floateq analyzer.
package floateq

// badEq compares computed floats exactly.
func badEq(a, b float64) bool {
	return a == b // want "float == comparison"
}

// badNeq flags != too.
func badNeq(a, b float32) bool {
	return a != b // want "float != comparison"
}

// badZero flags comparison against a constant (one side computed).
func badZero(v float64) bool {
	return v == 0 // want "float == comparison"
}

// goodConst compares two constants: evaluated exactly by the compiler.
func goodConst() bool {
	const a = 0.1
	const b = 0.2
	return a+b == 0.3
}

// goodInts is not a float comparison.
func goodInts(a, b int) bool {
	return a == b
}

// goodOrdered relational operators are fine.
func goodOrdered(a, b float64) bool {
	return a < b || a > b
}

// suppressed is an exact tie-break, justified.
func suppressed(a, b float64) bool {
	//nolint:floateq // deterministic tie-break on identical inputs
	return a == b
}
