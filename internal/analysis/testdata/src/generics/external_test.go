// External test package: the loader must type-check it as its own
// Package (XTest) importing the fixture under test.
package generics_test

import "comparenb/internal/analysis/testdata/src/generics"

// xtestOnlySum exercises the import edge from an external test package
// back to the package it tests.
func xtestOnlySum(xs []int) int {
	return generics.Sum(xs) + len(generics.Doubled(xs))
}
