// Package generics exercises the loader on type-parameterised code: the
// type checker must resolve instantiations in production and test files
// alike.
package generics

// Number constrains to the numeric types the fixture instantiates with.
type Number interface {
	~int | ~float64
}

// Pair is a generic container.
type Pair[T any] struct {
	A, B T
}

// Map applies f elementwise.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Sum folds a numeric slice.
func Sum[T Number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

// Doubled pins concrete instantiations in production code.
func Doubled(xs []int) []int {
	return Map(xs, func(x int) int { return x * 2 })
}
