package generics

// testOnlyHelper exists only in the test half of the package; the loader
// tests assert it appears in the combined type info (and disappears when
// IncludeTests is off). It instantiates the generics with types the
// production code never uses.
func testOnlyHelper(xs []float64) Pair[float64] {
	halves := Map(xs, func(x float64) float64 { return x / 2 })
	return Pair[float64]{A: Sum(halves), B: Sum(xs)}
}
