package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic flags panic calls in the library packages that back the serving
// path (internal/engine, internal/tap, internal/pipeline): a panic there
// takes down a whole generation run — or, once the system serves many
// users, a whole process — where an error return would fail one query.
//
// Two escape hatches, both deliberate:
//   - functions whose name starts with "must" or "Must" are guarded
//     invariant helpers (the caller has already validated the input, and
//     the name announces the contract);
//   - //nolint:nopanic with a reason, for enum-exhaustiveness defaults and
//     similar programmer-error traps.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "flags panic in library packages (engine, tap, pipeline)",
	Run:  runNoPanic,
}

// noPanicPaths are the package import-path suffixes the rule applies to.
// "nopanic" matches the self-test fixture package.
var noPanicPaths = []string{
	"internal/engine",
	"internal/tap",
	"internal/pipeline",
	"testdata/src/nopanic",
}

func runNoPanic(p *Pass) {
	applies := false
	for _, suffix := range noPanicPaths {
		if p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin); !isBuiltin {
					return true
				}
				p.Reportf(call.Pos(), "panic in library package %s; return an error, move it into a must* helper, or justify with //nolint:nopanic", p.Path)
				return true
			})
		}
	}
}
