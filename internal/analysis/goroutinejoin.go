package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineJoin requires every `go` statement to have a matching join in
// the function that starts it: a WaitGroup.Wait call, a channel receive
// (`<-ch`, `range ch`, or a select receive), which is how every worker
// pool in this module joins (parallelForCtx, forEachShardCtx, the stats
// block pools). A goroutine with no join outlives its phase — exactly
// the leak the runtime gate in internal/testutil hunts for dynamically,
// caught here at compile time instead.
//
// Two escape hatches keep the rule honest rather than noisy:
//   - a function whose signature hands the join to its caller — it
//     returns a channel, or takes a *sync.WaitGroup the goroutine is
//     registered on — is exempt, but exports a
//     "goroutinejoin.unjoined" fact;
//   - hot-package callers of a function carrying that fact are flagged
//     at the call site unless they themselves join, so the obligation
//     follows the goroutine across package boundaries instead of
//     evaporating.
var GoroutineJoin = &Analyzer{
	Name:    "goroutinejoin",
	Doc:     "flags go statements with no matching join (WaitGroup.Wait or channel receive)",
	Run:     runGoroutineJoin,
	FactsFn: goroutineJoinFacts,
}

// goUnjoinedFact marks functions that start a goroutine they do not
// join, relying on their caller (or nobody) to do it.
const goUnjoinedFact = "goroutinejoin.unjoined"

// goroutineJoinFacts exports the unjoined fact for functions that start
// goroutines without local join evidence.
func goroutineJoinFacts(fp *FactPass) {
	pkg := fp.Pkg
	for _, file := range pkg.AllFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if len(goStmts(fd)) > 0 && !joinsLocally(pkg.Info, fd) {
				fp.Facts.Export(FuncID(fn), goUnjoinedFact, true)
			}
		}
	}
}

// goStmts collects the go statements lexically inside fd.
func goStmts(fd *ast.FuncDecl) []*ast.GoStmt {
	var out []*ast.GoStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out = append(out, g)
		}
		return true
	})
	return out
}

// joinsLocally reports whether fd contains join evidence: a
// WaitGroup.Wait call, a channel receive expression, or a range over a
// channel.
func joinsLocally(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isWaitGroupType(info.TypeOf(sel.X)) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupType reports whether t is (a pointer to) sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// delegatesJoin reports whether fd's signature hands the join to the
// caller: it returns a channel, or takes a *sync.WaitGroup parameter.
func delegatesJoin(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Results != nil {
		for _, res := range fd.Type.Results.List {
			if t := info.TypeOf(res.Type); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					return true
				}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, par := range fd.Type.Params.List {
			if isWaitGroupType(info.TypeOf(par.Type)) {
				return true
			}
		}
	}
	return false
}

func runGoroutineJoin(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			gos := goStmts(fd)
			if len(gos) == 0 || joinsLocally(p.Info, fd) || delegatesJoin(p.Info, fd) {
				continue
			}
			for _, g := range gos {
				p.Reportf(g.Pos(), "goroutine started in %s has no matching join (WaitGroup.Wait or channel receive); it outlives the phase that spawned it", fd.Name.Name)
			}
		}
	}
	runGoroutineJoinCalls(p)
}

// runGoroutineJoinCalls flags hot-package calls to functions carrying
// the unjoined fact when the caller does not join either. Scope is the
// determinism hot set plus the server package (concScope): a leaked
// goroutine in the serving path outlives not just a phase but the daemon.
func runGoroutineJoinCalls(p *Pass) {
	if !concScope(p.Path) {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if joinsLocally(p.Info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeFunc(p.Info, call)
				if callee == nil {
					return true
				}
				if _, ok := p.Facts.Import(FuncID(callee), goUnjoinedFact); ok {
					p.Reportf(call.Pos(), "call to %s starts a goroutine this function never joins; receive its channel or wait its WaitGroup before returning", shortFuncID(FuncID(callee)))
				}
				return true
			})
		}
	}
}
