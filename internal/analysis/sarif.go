package analysis

import (
	"encoding/json"
	"io"
)

// This file renders diagnostics for machine consumers: a small stable
// JSON shape for scripting, and SARIF 2.1.0 for code-scanning UIs. Both
// use module-root-relative forward-slash paths so output is identical
// across checkouts — the same property the notebooks themselves are held
// to.

// jsonFinding is one diagnostic in the -json output.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
}

// WriteJSON emits diags as indented JSON. Paths are made relative to
// modDir. Findings is always a (possibly empty) array, never null.
func WriteJSON(w io.Writer, modDir string, diags []Diagnostic) error {
	rep := jsonReport{Findings: []jsonFinding{}, Count: len(diags)}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(modDir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// --- SARIF 2.1.0 (minimal subset) ----------------------------------------

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF emits diags as a SARIF 2.1.0 log with one run. Every
// analyzer in analyzers appears in the rules table (so code-scanning UIs
// can show docs for rules with zero findings this run); results
// reference rules by id.
func WriteSARIF(w io.Writer, modDir string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(modDir, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "comparenb-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
