package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd pairs every obs.StartSpan with its End. An unended span is
// silent data corruption in the trace: the Chrome-trace exporter nests
// spans by LIFO order per track, so one missing End mis-parents every
// later span on the track — and the bug only shows up as a garbled
// timeline long after the code merged.
//
// The rule: a span returned by obs.StartSpan must be ended on every path
// out of the function. Accepted shapes, in the order the analyzer checks
// them:
//
//   - `defer sp.End()` — covers all paths;
//   - an `sp.End()` call that dominates the exit lexically: it sits in
//     the same statement list as the StartSpan (every later exit passes
//     it), or in a statement list enclosing the exit, before the branch
//     the exit is in.
//
// A span that is discarded (`obs.StartSpan(…)` as a bare statement or
// assigned to _), or whose variable escapes the function (passed on,
// stored, returned), cannot be tracked; the first two are reported, the
// escape is skipped. The analysis is lexical, not a full CFG: a `break`
// or `continue` that jumps over an End is missed, and an End inside a
// conditional is (correctly) not trusted to cover exits outside it.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "flags obs spans not ended on every path out of the function",
	Run:  runSpanEnd,
}

// isStartSpanCall reports whether call resolves to obs.StartSpan.
func isStartSpanCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.FullName() == "comparenb/internal/obs.StartSpan"
}

func runSpanEnd(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			spanEndFunc(p, fd)
		}
	}
}

// spanEndFunc checks one function. Closures are analyzed as part of
// their enclosing declaration: a span started in a closure must be ended
// within that closure's lexical extent, which the same-list and
// enclosing-list rules give us for free because the exits considered for
// a span are only those inside the innermost function literal containing
// its StartSpan.
func spanEndFunc(p *Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isStartSpanCall(p.Info, call) {
				p.Reportf(call.Pos(), "result of obs.StartSpan discarded; the span can never be ended")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isStartSpanCall(p.Info, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					p.Reportf(call.Pos(), "result of obs.StartSpan discarded; the span can never be ended")
					continue
				}
				obj := p.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				spanEndVar(p, fd, parents, n, obj)
			}
		}
		return true
	})
}

// spanEndVar checks the span held in obj, started at assign.
func spanEndVar(p *Pass, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, assign *ast.AssignStmt, obj types.Object) {
	owner := enclosingFuncNode(parents, assign, fd)
	var deferred, ends []ast.Stmt
	escapes := false
	ast.Inspect(owner, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isEndCall(p, n.Call, obj) {
				deferred = append(deferred, n)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isEndCall(p, call, obj) {
				ends = append(ends, n)
			}
		case *ast.Ident:
			if p.Info.Uses[n] != obj {
				return true
			}
			// A use that is not the receiver of .End() and not the
			// definition itself: the span escapes our tracking. `_ = sp`
			// (the silence-the-compiler idiom) hands the span to nobody,
			// so it does not count as an escape.
			if !isEndReceiver(parents, n) && n.Pos() != assignLhsPos(assign, obj) && !isBlankAssignUse(parents, n) {
				escapes = true
			}
		}
		return true
	})
	if escapes {
		return
	}
	if len(deferred)+len(ends) == 0 {
		p.Reportf(assign.Pos(), "span %s is never ended; add defer %s.End() or end it on every path", obj.Name(), obj.Name())
		return
	}
	if len(deferred) > 0 {
		// Any defer is accepted: conditional defers are rare enough that
		// trusting them costs less than flagging them.
		return
	}
	spanList := stmtList(parents, assign)
	for _, exit := range spanExits(parents, owner, assign) {
		if spanExitCovered(parents, spanList, assign, ends, exit) {
			continue
		}
		p.Reportf(exit.pos, "span %s started at line %d may not be ended on this path; call %s.End() before returning or use defer",
			obj.Name(), p.Fset.Position(assign.Pos()).Line, obj.Name())
	}
}

// spanExit is one way control leaves the function after the span starts.
type spanExit struct {
	pos  token.Pos
	node ast.Node // the return statement, or the body for fall-off-end
}

// spanExits collects the exits that matter for a span started at assign:
// return statements after it inside the same function literal or
// declaration, plus the implicit fall-off-the-end exit.
func spanExits(parents map[ast.Node]ast.Node, owner ast.Node, assign *ast.AssignStmt) []spanExit {
	var body *ast.BlockStmt
	switch o := owner.(type) {
	case *ast.FuncDecl:
		body = o.Body
	case *ast.FuncLit:
		body = o.Body
	}
	var exits []spanExit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != owner {
			return false // nested closures have their own spans and exits
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > assign.End() {
			exits = append(exits, spanExit{pos: ret.Pos(), node: ret})
		}
		return true
	})
	if len(body.List) == 0 || !terminating(body.List[len(body.List)-1]) {
		exits = append(exits, spanExit{pos: body.Rbrace, node: body})
	}
	return exits
}

// terminating reports whether the statement always transfers control
// (the shapes that matter here; anything else counts as falling off).
func terminating(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		// for {} with no break is endless; treating every for{} as
		// terminating is close enough for span accounting.
		return s.Cond == nil
	}
	return false
}

// spanExitCovered reports whether one of the End statements dominates the
// exit lexically: it shares the span's own statement list and precedes
// the exit positionally, or its statement list (transitively) contains
// the exit at a later index.
func spanExitCovered(parents map[ast.Node]ast.Node, spanList []ast.Stmt, assign *ast.AssignStmt, ends []ast.Stmt, exit spanExit) bool {
	for _, end := range ends {
		if end.Pos() <= assign.Pos() || end.Pos() > exit.pos {
			// An End before the span starts, or after the exit, cannot
			// run on the path to it. (The implicit fall-off exit sits at
			// the closing brace, after every End.)
			continue
		}
		endList := stmtListOf(parents, end)
		if sameList(endList, spanList) {
			// Same straight line as the StartSpan: every later exit
			// passes this End — including exits beyond the enclosing
			// construct when the span lives in a loop body. (Exits
			// between the start and this End are checked on their own.)
			return true
		}
		// Enclosing-list rule: the End's list transitively contains the
		// exit at a later index, so the exit's branch runs after it.
		idxEnd := indexIn(endList, end)
		if idxEnd < 0 {
			continue
		}
		for i := idxEnd + 1; i < len(endList); i++ {
			if containsPos(endList[i], exit.pos) {
				return true
			}
		}
		// Fall-off-the-end exit: covered when the End sits in the
		// function body's own top-level list.
		if bl, ok := exit.node.(*ast.BlockStmt); ok && len(bl.List) > 0 && sameList(endList, bl.List) {
			return true
		}
	}
	return false
}

// --- small structural helpers -------------------------------------------

// buildParents records each node's parent within the declaration.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFuncNode walks up to the innermost FuncLit containing n, or
// returns fd.
func enclosingFuncNode(parents map[ast.Node]ast.Node, n ast.Node, fd *ast.FuncDecl) ast.Node {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		if fl, ok := cur.(*ast.FuncLit); ok {
			return fl
		}
	}
	return fd
}

// stmtList returns the statement list directly containing n (walking up
// to the nearest BlockStmt or clause body).
func stmtList(parents map[ast.Node]ast.Node, n ast.Node) []ast.Stmt {
	for cur := n; cur != nil; cur = parents[cur] {
		switch parent := parents[cur].(type) {
		case *ast.BlockStmt:
			return parent.List
		case *ast.CaseClause:
			return parent.Body
		case *ast.CommClause:
			return parent.Body
		}
	}
	return nil
}

// stmtListOf is stmtList for a statement known to sit in a list.
func stmtListOf(parents map[ast.Node]ast.Node, s ast.Stmt) []ast.Stmt {
	return stmtList(parents, s)
}

// sameList reports whether two statement lists are the same slice.
func sameList(a, b []ast.Stmt) bool {
	return len(a) > 0 && len(b) > 0 && len(a) == len(b) && a[0] == b[0]
}

// indexIn finds s in list, or -1.
func indexIn(list []ast.Stmt, s ast.Stmt) int {
	for i, x := range list {
		if x == s {
			return i
		}
	}
	return -1
}

// containsPos reports whether pos falls inside n's extent.
func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos <= n.End()
}

// isBlankAssignUse reports whether id is the sole right-hand side of a
// `_ = id` assignment.
func isBlankAssignUse(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	as, ok := parents[id].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(id) {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	return ok && lhs.Name == "_"
}

// isEndReceiver reports whether id is the x in x.End().
func isEndReceiver(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	sel, ok := parents[id].(*ast.SelectorExpr)
	if !ok || sel.X != id || sel.Sel.Name != "End" {
		return false
	}
	call, ok := parents[sel].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// isEndCall reports whether call is obj.End().
func isEndCall(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}

// assignLhsPos returns the position of obj's defining ident in assign.
func assignLhsPos(assign *ast.AssignStmt, obj types.Object) token.Pos {
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == obj.Name() {
			return id.Pos()
		}
	}
	return token.NoPos
}
