package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadBaselineValidation pins the invariants of the checked-in file:
// versioned, justified, and naming only real analyzers.
func TestLoadBaselineValidation(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"bad version", `{"version": 2, "findings": []}`, "unsupported version"},
		{"no justification", `{"version": 1, "findings": [{"analyzer": "detsource", "file": "a.go", "message": "m"}]}`, "no justification"},
		{"unknown analyzer", `{"version": 1, "findings": [{"analyzer": "nosuch", "file": "a.go", "message": "m", "justification": "j"}]}`, "unknown analyzer"},
		{"not json", `{`, "unexpected end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadBaseline(writeBaseline(t, c.content))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}

	ok := `{"version": 1, "findings": [{"analyzer": "detsource", "file": "a/b.go", "message": "m", "justification": "j"}]}`
	b, err := LoadBaseline(writeBaseline(t, ok))
	if err != nil || len(b.Findings) != 1 {
		t.Fatalf("valid baseline rejected: %v", err)
	}
}

// TestApplyBaseline pins the matching semantics: analyzer+file+message,
// line-independent, with unmatched entries reported stale.
func TestApplyBaseline(t *testing.T) {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "detsource", File: "internal/pipeline/generate.go", Message: "msg one", Justification: "j"},
		{Analyzer: "spanend", File: "internal/engine/cube.go", Message: "gone", Justification: "j"},
	}}
	diags := []Diagnostic{
		// Matches entry 0 twice, at different lines: both suppressed.
		{Analyzer: "detsource", Pos: token.Position{Filename: "/mod/internal/pipeline/generate.go", Line: 10}, Message: "msg one"},
		{Analyzer: "detsource", Pos: token.Position{Filename: "/mod/internal/pipeline/generate.go", Line: 99}, Message: "msg one"},
		// Same message, different file: kept.
		{Analyzer: "detsource", Pos: token.Position{Filename: "/mod/internal/engine/cube.go", Line: 3}, Message: "msg one"},
		// Same file, different analyzer: kept.
		{Analyzer: "ctxloop", Pos: token.Position{Filename: "/mod/internal/pipeline/generate.go", Line: 10}, Message: "msg one"},
	}
	kept, stale := ApplyBaseline("/mod", b, diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	if len(stale) != 1 || stale[0].Message != "gone" {
		t.Fatalf("stale = %v, want the unmatched spanend entry", stale)
	}

	// Nil baseline is the identity.
	kept, stale = ApplyBaseline("/mod", nil, diags)
	if len(kept) != len(diags) || stale != nil {
		t.Error("nil baseline must keep everything")
	}
}

// TestCheckedInBaseline validates the real module baseline file: it must
// load, and every entry must point at a file that still exists (a cheap
// early warning independent of the full selfcheck).
func TestCheckedInBaseline(t *testing.T) {
	l := sharedLoader(t)
	path := filepath.Join(l.ModDir, BaselineFile)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		t.Skip("no checked-in baseline")
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range b.Findings {
		if _, err := os.Stat(filepath.Join(l.ModDir, filepath.FromSlash(e.File))); err != nil {
			t.Errorf("baseline entry references missing file %s", e.File)
		}
	}
}
