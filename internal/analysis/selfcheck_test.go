package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfCheck runs every analyzer over the whole repository, exactly as
// cmd/comparenb-vet does — interprocedural facts spanning the module,
// test files included, the checked-in baseline applied — and fails on any
// unsuppressed finding or stale baseline entry. Because this runs inside
// go test ./..., the tier-1 gate enforces the project's determinism,
// numeric-hygiene and error-discipline rules on every future change: a
// new unsorted map iteration on an output path, a helper that quietly
// starts calling time.Now under the notebook renderer, an unended span or
// a leaked goroutine breaks the build.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("selfcheck type-checks the whole module; skipped in -short mode")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("suspiciously few packages loaded (%d); loader walk is broken", len(pkgs))
	}
	// The analysis package itself and its fixtures must be in scope too —
	// except fixtures, which are intentionally full of violations and are
	// skipped by the testdata rule.
	foundSelf := false
	foundFaultInject := false
	for _, pkg := range pkgs {
		if pkg.Path == "comparenb/internal/analysis" {
			foundSelf = true
		}
		if pkg.Path == "comparenb/internal/faultinject" {
			foundFaultInject = true
		}
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("fixture package %s leaked into the module walk", pkg.Path)
		}
	}
	if !foundSelf {
		t.Error("internal/analysis not among loaded packages; the vet suite is not checking itself")
	}
	if !foundFaultInject {
		t.Error("internal/faultinject not among loaded packages; the robustness hooks are unchecked")
	}

	diags := RunModule(pkgs, All())

	var baseline *Baseline
	blPath := filepath.Join(l.ModDir, BaselineFile)
	if _, err := os.Stat(blPath); err == nil {
		baseline, err = LoadBaseline(blPath)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
	}
	kept, stale := ApplyBaseline(l.ModDir, baseline, diags)

	var failures []string
	for _, d := range kept {
		failures = append(failures, d.String())
	}
	if len(failures) > 0 {
		t.Errorf("comparenb-vet found %d unsuppressed finding(s):\n%s",
			len(failures), strings.Join(failures, "\n"))
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry: %s in %s (%q) no longer matches any finding; remove it",
			e.Analyzer, e.File, e.Message)
	}
}
