package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestPropagateFixpoint pins the propagation semantics on a hand-built
// graph with a cycle: facts flow from callee to caller and converge even
// when the call graph is recursive.
func TestPropagateFixpoint(t *testing.T) {
	f := NewFacts()
	// leaf ← mid ← top, plus a mutual recursion pair {a, b} where only b
	// reaches the leaf.
	f.calls["mid"] = []string{"leaf"}
	f.calls["top"] = []string{"mid"}
	f.calls["a"] = []string{"b"}
	f.calls["b"] = []string{"a", "leaf"}
	f.Export("leaf", "t.flag", true)

	f.Propagate("t.flag", func(cur, _ any, _ string) (any, bool) {
		if cur != nil {
			return cur, false
		}
		return true, true
	})

	for _, id := range []string{"leaf", "mid", "top", "a", "b"} {
		if _, ok := f.Import(id, "t.flag"); !ok {
			t.Errorf("fact did not reach %s", id)
		}
	}
	if _, ok := f.Import("unrelated", "t.flag"); ok {
		t.Error("fact leaked to a function with no path to the source")
	}
}

// TestCallGraphEdges confirms BuildFacts records resolvable static calls
// — plain intra-package calls included — under FullName keys.
func TestCallGraphEdges(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "ctxloop"))
	if err != nil {
		t.Fatal(err)
	}
	facts := BuildFacts([]*Package{pkg}, All())
	const caller = "comparenb/internal/analysis/testdata/src/ctxloop.checkpointIndirect"
	const callee = "comparenb/internal/analysis/testdata/src/ctxloop.checkpoint"
	found := false
	for _, c := range facts.Callees(caller) {
		if c == callee {
			found = true
		}
	}
	if !found {
		t.Errorf("call edge %s -> %s missing; callees: %v", caller, callee, facts.Callees(caller))
	}
	// The polls fact must have closed transitively over that edge.
	if _, ok := facts.Import(caller, "ctxloop.polls"); !ok {
		t.Error("ctxloop.polls did not propagate to the indirect checkpoint helper")
	}
}

// TestShortFuncID pins the diagnostic-rendering helper.
func TestShortFuncID(t *testing.T) {
	cases := map[string]string{
		"comparenb/internal/tap.SolveAnytime":              "tap.SolveAnytime",
		"(comparenb/internal/engine.CubeCache).GetOrBuild": "(engine.CubeCache).GetOrBuild",
		"time.Now": "time.Now",
	}
	for in, want := range cases {
		if got := shortFuncID(in); got != want {
			t.Errorf("shortFuncID(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasPrefix(shortFuncID("(*comparenb/internal/obs.Registry).Timing"), "(*") {
		t.Error("pointer-receiver IDs must keep their receiver shape")
	}
}
