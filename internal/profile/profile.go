// Package profile computes the data profile a user would otherwise gather
// with "many queries for data profiling" (§1): per-attribute cardinalities
// and entropies, per-measure summary statistics, detected functional
// dependencies, and the enumeration counts of Lemmas 3.2/3.5 — everything
// one wants to know about an unknown CSV before exploring it.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"comparenb/internal/engine"
	"comparenb/internal/insight"
	"comparenb/internal/stats"
	"comparenb/internal/table"
)

// AttrProfile summarises one categorical attribute.
type AttrProfile struct {
	Name        string
	Cardinality int
	// Entropy is the Shannon entropy of the value distribution, in bits;
	// Balance is entropy / log2(cardinality) ∈ [0, 1] (1 = uniform).
	Entropy float64
	Balance float64
	// TopValue and TopShare describe the modal value.
	TopValue string
	TopShare float64
}

// MeasProfile summarises one measure.
type MeasProfile struct {
	Name     string
	Mean     float64
	StdDev   float64
	Min, Max float64
	Median   float64
	NaNCount int
}

// Profile is the full dataset profile.
type Profile struct {
	Name     string
	Rows     int
	Attrs    []AttrProfile
	Measures []MeasProfile
	// FDs are the detected functional dependencies (attribute names).
	FDs [][2]string
	// CandidateQueries and CandidateInsights are the Lemma 3.2/3.5 counts.
	CandidateQueries  int
	CandidateInsights int
}

// New profiles a relation.
func New(rel *table.Relation) *Profile {
	p := &Profile{Name: rel.Name(), Rows: rel.NumRows()}
	for a := 0; a < rel.NumCatAttrs(); a++ {
		p.Attrs = append(p.Attrs, profileAttr(rel, a))
	}
	for m := 0; m < rel.NumMeasures(); m++ {
		p.Measures = append(p.Measures, profileMeas(rel, m))
	}
	for _, fd := range engine.DetectFDs(rel) {
		p.FDs = append(p.FDs, [2]string{rel.CatName(fd.Det), rel.CatName(fd.Dep)})
	}
	p.CandidateQueries = insight.CountComparisonQueries(rel, len(engine.AllAggs))
	p.CandidateInsights = insight.CountInsights(rel, len(insight.AllTypes))
	return p
}

func profileAttr(rel *table.Relation, a int) AttrProfile {
	ap := AttrProfile{Name: rel.CatName(a), Cardinality: rel.DomSize(a)}
	counts := make([]int, rel.DomSize(a))
	for _, c := range rel.CatCol(a) {
		counts[c]++
	}
	n := float64(rel.NumRows())
	top, topIdx := 0, -1
	for v, c := range counts {
		if c == 0 {
			continue
		}
		pr := float64(c) / n
		ap.Entropy -= pr * math.Log2(pr)
		if c > top {
			top, topIdx = c, v
		}
	}
	if topIdx >= 0 {
		ap.TopValue = rel.Value(a, int32(topIdx))
		ap.TopShare = float64(top) / n
	}
	if ap.Cardinality > 1 {
		ap.Balance = ap.Entropy / math.Log2(float64(ap.Cardinality))
	}
	return ap
}

func profileMeas(rel *table.Relation, m int) MeasProfile {
	mp := MeasProfile{Name: rel.MeasName(m), Min: math.NaN(), Max: math.NaN()}
	var clean []float64
	for _, v := range rel.MeasCol(m) {
		if math.IsNaN(v) {
			mp.NaNCount++
			continue
		}
		clean = append(clean, v)
		if math.IsNaN(mp.Min) || v < mp.Min {
			mp.Min = v
		}
		if math.IsNaN(mp.Max) || v > mp.Max {
			mp.Max = v
		}
	}
	mp.Mean = stats.Mean(clean)
	mp.StdDev = stats.StdDev(clean)
	mp.Median = stats.Median(clean)
	return mp
}

// String renders the profile as an aligned text report.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Profile of %s: %d rows, %d categorical attributes, %d measures\n",
		p.Name, p.Rows, len(p.Attrs), len(p.Measures))
	fmt.Fprintf(&sb, "candidate comparison queries: %d (Lemma 3.2), candidate insights: %d (Lemma 3.5)\n\n",
		p.CandidateQueries, p.CandidateInsights)
	fmt.Fprintf(&sb, "%-16s %6s %8s %8s %-16s %7s\n", "attribute", "card.", "entropy", "balance", "top value", "share")
	for _, a := range p.Attrs {
		fmt.Fprintf(&sb, "%-16s %6d %8.2f %8.2f %-16s %6.1f%%\n",
			a.Name, a.Cardinality, a.Entropy, a.Balance, clip(a.TopValue, 16), a.TopShare*100)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s %10s %6s\n", "measure", "mean", "stddev", "min", "median", "max", "NaN")
	for _, m := range p.Measures {
		fmt.Fprintf(&sb, "%-16s %10.3g %10.3g %10.3g %10.3g %10.3g %6d\n",
			m.Name, m.Mean, m.StdDev, m.Min, m.Median, m.Max, m.NaNCount)
	}
	if len(p.FDs) > 0 {
		sb.WriteString("\nfunctional dependencies:\n")
		fds := append([][2]string(nil), p.FDs...)
		sort.Slice(fds, func(i, j int) bool {
			if fds[i][0] != fds[j][0] {
				return fds[i][0] < fds[j][0]
			}
			return fds[i][1] < fds[j][1]
		})
		for _, fd := range fds {
			fmt.Fprintf(&sb, "  %s → %s\n", fd[0], fd[1])
		}
	}
	return sb.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
