package profile

import (
	"math"
	"strings"
	"testing"

	"comparenb/internal/table"
)

func sampleRelation() *table.Relation {
	b := table.NewBuilder("demo", []string{"city", "month"}, []string{"temp"})
	rows := []struct {
		city, month string
		temp        float64
	}{
		{"Tours", "jan", 4}, {"Tours", "jul", 24},
		{"Blois", "jan", 3}, {"Blois", "jul", 23},
		{"Tours", "jan", 5}, {"Tours", "jul", 25},
		{"Tours", "jan", math.NaN()},
	}
	for _, r := range rows {
		b.AddRow([]string{r.city, r.month}, []float64{r.temp})
	}
	return b.Build()
}

func TestProfileBasics(t *testing.T) {
	p := New(sampleRelation())
	if p.Rows != 7 || len(p.Attrs) != 2 || len(p.Measures) != 1 {
		t.Fatalf("profile shape: %+v", p)
	}
	city := p.Attrs[0]
	if city.Cardinality != 2 {
		t.Errorf("city cardinality = %d", city.Cardinality)
	}
	if city.TopValue != "Tours" || city.TopShare < 0.7 || city.TopShare > 0.72 {
		t.Errorf("city top = %q %.3f, want Tours 5/7", city.TopValue, city.TopShare)
	}
	if city.Balance <= 0 || city.Balance >= 1 {
		t.Errorf("city balance = %v, want in (0,1) for a skewed column", city.Balance)
	}
	temp := p.Measures[0]
	if temp.NaNCount != 1 {
		t.Errorf("NaN count = %d", temp.NaNCount)
	}
	if temp.Min != 3 || temp.Max != 25 {
		t.Errorf("range = [%v, %v]", temp.Min, temp.Max)
	}
	if temp.Median < 4 || temp.Median > 25 {
		t.Errorf("median = %v", temp.Median)
	}
	if p.CandidateQueries <= 0 || p.CandidateInsights <= 0 {
		t.Error("lemma counts missing")
	}
}

func TestProfileUniformBalanceIsOne(t *testing.T) {
	b := table.NewBuilder("u", []string{"g"}, nil)
	for i := 0; i < 40; i++ {
		b.AddRow([]string{string(rune('a' + i%4))}, nil)
	}
	p := New(b.Build())
	if got := p.Attrs[0].Balance; math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform balance = %v, want 1", got)
	}
}

func TestProfileDetectsFDs(t *testing.T) {
	b := table.NewBuilder("fd", []string{"day", "month"}, nil)
	for i := 0; i < 20; i++ {
		day := i % 10
		b.AddRow([]string{string(rune('a' + day)), string(rune('A' + day/5))}, nil)
	}
	p := New(b.Build())
	found := false
	for _, fd := range p.FDs {
		if fd[0] == "day" && fd[1] == "month" {
			found = true
		}
	}
	if !found {
		t.Errorf("day→month FD missing from profile: %v", p.FDs)
	}
}

func TestProfileString(t *testing.T) {
	out := New(sampleRelation()).String()
	for _, want := range []string{"Profile of demo", "attribute", "measure", "Lemma 3.2", "Tours"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestClip(t *testing.T) {
	if got := clip("short", 16); got != "short" {
		t.Errorf("clip(short) = %q", got)
	}
	if got := clip("averyveryverylongvalue", 8); len(got) > 10 || !strings.HasSuffix(got, "…") {
		t.Errorf("clip long = %q", got)
	}
}
