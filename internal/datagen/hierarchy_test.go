package datagen

import (
	"testing"

	"comparenb/internal/engine"
	"comparenb/internal/stats"
)

func TestHierarchyFDHolds(t *testing.T) {
	ds, err := Generate(Spec{
		Name: "h", Rows: 3000, CatDomains: []int{4, 24, 6}, Measures: 1,
		EffectFrac: 0.4, EffectSD: 1.5,
		Hierarchies: []Hierarchy{{Child: 1, Parent: 2}},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fds := engine.DetectFDs(ds.Rel)
	found := false
	for _, fd := range fds {
		if fd.Det == 1 && fd.Dep == 2 {
			found = true
		}
		if fd.Det == 0 || fd.Dep == 0 {
			t.Errorf("spurious FD involving independent attribute: %+v", fd)
		}
	}
	if !found {
		t.Error("declared hierarchy child→parent FD not detected")
	}
}

func TestHierarchyChain(t *testing.T) {
	// commune(48) → department(12) → region(3).
	ds, err := Generate(Spec{
		Name: "chain", Rows: 2000, CatDomains: []int{3, 12, 48, 5}, Measures: 1,
		EffectFrac:  0.4,
		EffectSD:    1.5,
		Hierarchies: []Hierarchy{{Child: 2, Parent: 1}, {Child: 1, Parent: 0}},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := engine.NewFDSet(engine.DetectFDs(ds.Rel))
	if !s.MeaninglessPair(2, 1) || !s.MeaninglessPair(1, 0) || !s.MeaninglessPair(2, 0) {
		t.Error("hierarchy chain FDs missing (transitivity should make commune→region hold too)")
	}
	if s.MeaninglessPair(3, 0) {
		t.Error("independent attribute entangled in hierarchy")
	}
}

func TestHierarchyValidation(t *testing.T) {
	bad := []Spec{
		{Name: "x", Rows: 10, CatDomains: []int{3, 4}, Measures: 1,
			Hierarchies: []Hierarchy{{Child: 0, Parent: 5}}},
		{Name: "x", Rows: 10, CatDomains: []int{3, 4}, Measures: 1,
			Hierarchies: []Hierarchy{{Child: 1, Parent: 1}}},
		{Name: "x", Rows: 10, CatDomains: []int{3, 4}, Measures: 1,
			Hierarchies: []Hierarchy{{Child: 0, Parent: 1}}}, // parent domain larger
		{Name: "x", Rows: 10, CatDomains: []int{4, 4}, Measures: 1,
			Hierarchies: []Hierarchy{{Child: 0, Parent: 1}, {Child: 1, Parent: 0}}},
	}
	for i, spec := range bad {
		spec.Seed = int64(i)
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %d: want validation error", i)
		}
	}
}

// TestHierarchyEffectiveOffsets: the parent's recorded mean offsets must
// predict the actual per-value means of the generated rows.
func TestHierarchyEffectiveOffsets(t *testing.T) {
	ds, err := Generate(Spec{
		Name: "eff", Rows: 60000, CatDomains: []int{5, 40}, Measures: 1,
		EffectFrac: 0.8, EffectSD: 2, BaseSD: 10,
		Hierarchies: []Hierarchy{{Child: 1, Parent: 0}},
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel
	for v := 0; v < 5; v++ {
		code, ok := rel.CodeOf(0, valueName(0, v))
		if !ok {
			continue
		}
		var vals []float64
		col := rel.CatCol(0)
		mcol := rel.MeasCol(0)
		for i, c := range col {
			if c == code {
				vals = append(vals, mcol[i])
			}
		}
		if len(vals) < 500 {
			continue
		}
		predicted := 100 + ds.MeanOffset[0][v][0] // BaseMean default 100
		got := stats.Mean(vals)
		// Allow generous tolerance: sampling error + skewless weighting.
		if diff := got - predicted; diff < -6 || diff > 6 {
			t.Errorf("parent value %d: mean %.2f, predicted %.2f", v, got, predicted)
		}
	}
	// The planted list must use the effective offsets: every planted
	// parent-pair must show the right ordering in the data.
	checked := 0
	for _, pl := range ds.Planted {
		if pl.Attr != 0 || pl.Type != 0 {
			continue
		}
		c1, ok1 := rel.CodeOf(0, pl.Val)
		c2, ok2 := rel.CodeOf(0, pl.Val2)
		if !ok1 || !ok2 {
			continue
		}
		var x, y []float64
		col := rel.CatCol(0)
		mcol := rel.MeasCol(0)
		for i, c := range col {
			switch c {
			case c1:
				x = append(x, mcol[i])
			case c2:
				y = append(y, mcol[i])
			}
		}
		if len(x) < 500 || len(y) < 500 {
			continue
		}
		checked++
		if stats.Mean(x) <= stats.Mean(y) {
			t.Errorf("planted parent insight %s > %s not visible: %.2f vs %.2f",
				pl.Val, pl.Val2, stats.Mean(x), stats.Mean(y))
		}
	}
	if checked == 0 {
		t.Skip("no checkable parent plants with this seed")
	}
}
