package datagen

import (
	"math"
	"testing"

	"comparenb/internal/insight"
	"comparenb/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(Spec{
		Name: "s", Rows: 500, CatDomains: []int{3, 7}, Measures: 2,
		EffectFrac: 0.3, EffectSD: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel
	if rel.NumRows() != 500 || rel.NumCatAttrs() != 2 || rel.NumMeasures() != 2 {
		t.Errorf("shape = (%d rows, %d cats, %d meas)", rel.NumRows(), rel.NumCatAttrs(), rel.NumMeasures())
	}
	if rel.DomSize(0) > 3 || rel.DomSize(1) > 7 {
		t.Errorf("domains = %d, %d exceed spec", rel.DomSize(0), rel.DomSize(1))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", Rows: 300, CatDomains: []int{4, 4}, Measures: 1, EffectFrac: 0.5, EffectSD: 1, Seed: 42}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Rel.NumRows(); i++ {
		if a.Rel.Row(i) != b.Rel.Row(i) {
			t.Fatalf("row %d differs between identical-seed runs", i)
		}
	}
	if len(a.Planted) != len(b.Planted) {
		t.Error("planted ground truth differs between identical-seed runs")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Rows: 10, CatDomains: []int{3}, Measures: 1}); err == nil {
		t.Error("single attribute: want error")
	}
	if _, err := Generate(Spec{Rows: 10, CatDomains: []int{3, 1}, Measures: 1}); err == nil {
		t.Error("domain of 1: want error")
	}
	if _, err := Generate(Spec{Rows: 0, CatDomains: []int{3, 3}, Measures: 1}); err == nil {
		t.Error("zero rows: want error")
	}
}

// TestPlantedEffectsAreReal verifies the contract the whole evaluation
// relies on: a planted mean-greater insight corresponds to an actual mean
// gap in the emitted rows.
func TestPlantedEffectsAreReal(t *testing.T) {
	ds, err := Generate(Spec{
		Name: "p", Rows: 20000, CatDomains: []int{4, 5}, Measures: 1,
		EffectFrac: 0.6, EffectSD: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel
	checked := 0
	for _, pl := range ds.Planted {
		if pl.Type != insight.MeanGreater {
			continue
		}
		c1, ok1 := rel.CodeOf(pl.Attr, pl.Val)
		c2, ok2 := rel.CodeOf(pl.Attr, pl.Val2)
		if !ok1 || !ok2 {
			continue // value never drawn; fine for rare values
		}
		var x, y []float64
		col := rel.CatCol(pl.Attr)
		mcol := rel.MeasCol(pl.Meas)
		for i, c := range col {
			switch c {
			case c1:
				x = append(x, mcol[i])
			case c2:
				y = append(y, mcol[i])
			}
		}
		if len(x) < 100 || len(y) < 100 {
			continue
		}
		checked++
		if stats.Mean(x) <= stats.Mean(y) {
			t.Errorf("planted %v=%s > %s on meas%d but sample means are %.2f vs %.2f",
				rel.CatName(pl.Attr), pl.Val, pl.Val2, pl.Meas, stats.Mean(x), stats.Mean(y))
		}
	}
	if checked == 0 {
		t.Fatal("no planted mean insights were checkable; generator too sparse")
	}
}

func TestPlantedVarianceEffects(t *testing.T) {
	ds, err := Generate(Spec{
		Name: "v", Rows: 30000, CatDomains: []int{3, 3}, Measures: 1,
		VarEffectFrac: 0.5, VarScale: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel
	checked := 0
	for _, pl := range ds.Planted {
		if pl.Type != insight.VarianceGreater {
			continue
		}
		c1, _ := rel.CodeOf(pl.Attr, pl.Val)
		c2, _ := rel.CodeOf(pl.Attr, pl.Val2)
		var x, y []float64
		col := rel.CatCol(pl.Attr)
		mcol := rel.MeasCol(pl.Meas)
		for i, c := range col {
			switch c {
			case c1:
				x = append(x, mcol[i])
			case c2:
				y = append(y, mcol[i])
			}
		}
		if len(x) < 500 || len(y) < 500 {
			continue
		}
		checked++
		if stats.Variance(x) <= stats.Variance(y) {
			t.Errorf("planted variance effect not visible: %.1f vs %.1f", stats.Variance(x), stats.Variance(y))
		}
	}
	if checked == 0 {
		t.Skip("no checkable variance plants with this seed")
	}
}

func TestSkewShiftsMass(t *testing.T) {
	ds, err := Generate(Spec{
		Name: "z", Rows: 10000, CatDomains: []int{10, 2}, Measures: 1, Skew: 1.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel
	counts := make(map[int32]int)
	for _, c := range rel.CatCol(0) {
		counts[c]++
	}
	c0, ok := rel.CodeOf(0, valueName(0, 0))
	if !ok {
		t.Fatal("first value missing despite skew")
	}
	if float64(counts[c0]) < float64(rel.NumRows())/10 {
		t.Errorf("skewed first value has only %d of %d rows", counts[c0], rel.NumRows())
	}
}

func TestPresets(t *testing.T) {
	v, err := VaccineLike(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rel.NumRows() != 5045 || v.Rel.NumCatAttrs() != 6 || v.Rel.NumMeasures() != 1 {
		t.Errorf("VaccineLike shape wrong: %d rows %d cats %d meas",
			v.Rel.NumRows(), v.Rel.NumCatAttrs(), v.Rel.NumMeasures())
	}
	e, err := ENEDISLike(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rel.NumRows() != 2000 || e.Rel.NumCatAttrs() != 7 || e.Rel.NumMeasures() != 2 {
		t.Errorf("ENEDISLike shape wrong")
	}
	f, err := FlightsLike(1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rel.NumRows() != 3000 || f.Rel.NumCatAttrs() != 5 || f.Rel.NumMeasures() != 3 {
		t.Errorf("FlightsLike shape wrong")
	}
	ti, err := Tiny(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Rel.NumRows() != 1200 {
		t.Errorf("Tiny default rows = %d", ti.Rel.NumRows())
	}
	if len(ti.Planted) == 0 {
		t.Error("Tiny has no planted insights")
	}
}

func TestPickBinarySearch(t *testing.T) {
	cum := cumulative([]float64{0.25, 0.25, 0.5})
	cases := map[float64]int{0.0: 0, 0.2: 0, 0.26: 1, 0.5: 1, 0.51: 2, 1.0: 2}
	for u, want := range cases {
		if got := pick(cum, u); got != want {
			t.Errorf("pick(%v) = %d, want %d", u, got, want)
		}
	}
}

func TestCumulativeEndsAtOne(t *testing.T) {
	cum := cumulative([]float64{0.1, 0.1, 0.1}) // deliberately not normalised
	if math.Abs(cum[len(cum)-1]-1) > 0 {
		t.Errorf("last cumulative = %v, want exactly 1", cum[len(cum)-1])
	}
}
