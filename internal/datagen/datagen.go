// Package datagen generates the synthetic datasets the experiments run
// on. The paper evaluates on three real CSVs (Table 2: Vaccine, ENEDIS,
// Flights); those files are not redistributable here, so the generators
// reproduce their *shape* — row counts, number of categorical attributes,
// active-domain sizes, number of measures, value skew — and additionally
// plant ground-truth effects, which the real data cannot offer: every
// generated dataset knows exactly which mean/variance comparison insights
// are real. See DESIGN.md ("Substitutions").
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"comparenb/internal/insight"
	"comparenb/internal/table"
)

// Spec describes a synthetic dataset.
type Spec struct {
	Name string
	Rows int
	// CatDomains lists the active-domain size of each categorical
	// attribute (its length is n).
	CatDomains []int
	// Measures is m, the number of numeric measures.
	Measures int
	// Skew ≥ 0 skews the categorical value frequencies (0 = uniform;
	// larger = more mass on the first values, Zipf-like s = Skew).
	Skew float64
	// EffectFrac is the fraction of attribute values carrying a mean
	// offset on each measure; EffectSD is the offset scale in units of the
	// base noise σ.
	EffectFrac float64
	EffectSD   float64
	// VarEffectFrac is the fraction of attribute values whose noise is
	// scaled (variance effects); VarScale > 1 is the scale applied.
	VarEffectFrac float64
	VarScale      float64
	// BaseMean and BaseSD describe the measure noise.
	BaseMean, BaseSD float64
	Seed             int64
	// Hierarchies declares functional dependencies Child → Parent between
	// categorical attributes (e.g. commune → department in ENEDIS, day →
	// month in Flights): the parent's value is derived from the child's
	// (child code modulo parent domain), so the FD holds exactly and the
	// pipeline's pre-processing (footnote 2) has real work to do. The
	// parent attribute must have the smaller domain.
	Hierarchies []Hierarchy
}

// Hierarchy is one Child → Parent functional dependency.
type Hierarchy struct {
	Child, Parent int
}

// Planted is a ground-truth effect: value Val of attribute Attr has a
// strictly larger mean (or variance) than Val2 on measure Meas.
type Planted struct {
	Meas int
	Attr int
	Val  string
	Val2 string
	Type insight.Type
}

// Dataset bundles the generated relation with its ground truth.
type Dataset struct {
	Rel     *table.Relation
	Planted []Planted
	// MeanOffset[attr][value][meas] and VarScale[attr][value] expose the
	// exact generative parameters for tests.
	MeanOffset [][][]float64
	NoiseScale [][]float64
}

// Generate builds the dataset described by the spec. Generation is fully
// deterministic given the seed.
func Generate(spec Spec) (*Dataset, error) {
	n := len(spec.CatDomains)
	if n < 2 {
		return nil, fmt.Errorf("datagen: need ≥ 2 categorical attributes, got %d", n)
	}
	if spec.Measures < 1 || spec.Rows < 1 {
		return nil, fmt.Errorf("datagen: need ≥ 1 measure and ≥ 1 row")
	}
	// 0 is each knob's explicit "unset" sentinel, not a computed value.
	if spec.BaseSD == 0 { //nolint:floateq // unset-sentinel check
		spec.BaseSD = 20
	}
	if spec.BaseMean == 0 { //nolint:floateq // unset-sentinel check
		spec.BaseMean = 100
	}
	if spec.VarScale == 0 { //nolint:floateq // unset-sentinel check
		spec.VarScale = 4
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	parentOf := make([]int, n)
	for a := range parentOf {
		parentOf[a] = -1
	}
	for _, h := range spec.Hierarchies {
		if h.Child < 0 || h.Child >= n || h.Parent < 0 || h.Parent >= n || h.Child == h.Parent {
			return nil, fmt.Errorf("datagen: bad hierarchy %+v", h)
		}
		if spec.CatDomains[h.Parent] > spec.CatDomains[h.Child] {
			return nil, fmt.Errorf("datagen: hierarchy parent %d has larger domain than child %d", h.Parent, h.Child)
		}
		if parentOf[h.Parent] == h.Child {
			return nil, fmt.Errorf("datagen: cyclic hierarchy between %d and %d", h.Child, h.Parent)
		}
		parentOf[h.Parent] = h.Child
	}

	catNames := make([]string, n)
	for a := range catNames {
		catNames[a] = fmt.Sprintf("cat%d", a)
	}
	measNames := make([]string, spec.Measures)
	for m := range measNames {
		measNames[m] = fmt.Sprintf("meas%d", m)
	}

	// Per-attribute value frequencies (Zipf-like when Skew > 0).
	freqs := make([][]float64, n)
	for a, d := range spec.CatDomains {
		if d < 2 {
			return nil, fmt.Errorf("datagen: attribute %d needs domain ≥ 2, got %d", a, d)
		}
		w := make([]float64, d)
		total := 0.0
		for v := range w {
			w[v] = 1 / math.Pow(float64(v+1), spec.Skew)
			total += w[v]
		}
		for v := range w {
			w[v] /= total
		}
		freqs[a] = cumulative(w)
	}

	// Plant effects. Derived (hierarchy parent) attributes receive no
	// injected effects of their own: their effective offsets arise from
	// the children and are computed below, after generation.
	ds := &Dataset{
		MeanOffset: make([][][]float64, n),
		NoiseScale: make([][]float64, n),
	}
	for a, d := range spec.CatDomains {
		ds.MeanOffset[a] = make([][]float64, d)
		ds.NoiseScale[a] = make([]float64, d)
		for v := 0; v < d; v++ {
			ds.MeanOffset[a][v] = make([]float64, spec.Measures)
			ds.NoiseScale[a][v] = 1
			if parentOf[a] >= 0 {
				continue
			}
			for m := 0; m < spec.Measures; m++ {
				if rng.Float64() < spec.EffectFrac {
					ds.MeanOffset[a][v][m] = (rng.Float64()*0.75 + 0.25) * spec.EffectSD * spec.BaseSD
					if rng.Intn(2) == 0 {
						ds.MeanOffset[a][v][m] = -ds.MeanOffset[a][v][m]
					}
				}
			}
			if rng.Float64() < spec.VarEffectFrac {
				ds.NoiseScale[a][v] = spec.VarScale
			}
		}
	}

	// Resolve the attribute assignment order: independent attributes
	// first, then parents whose child is already assigned (chains like
	// commune → department → region resolve over several waves).
	assignOrder := make([]int, 0, n)
	assigned := make([]bool, n)
	for len(assignOrder) < n {
		progress := false
		for a := 0; a < n; a++ {
			if assigned[a] {
				continue
			}
			if c := parentOf[a]; c < 0 || assigned[c] {
				assignOrder = append(assignOrder, a)
				assigned[a] = true
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("datagen: hierarchy cycle among attributes")
		}
	}

	// Emit rows.
	b := table.NewBuilder(spec.Name, catNames, measNames)
	cats := make([]string, n)
	codes := make([]int, n)
	meas := make([]float64, spec.Measures)
	for r := 0; r < spec.Rows; r++ {
		// Row noise scale: the largest per-value scale among the row's
		// attribute values. Taking the max (not the product) keeps
		// variance effects from compounding across attributes and
		// drowning the planted mean effects.
		scale := 1.0
		for _, a := range assignOrder {
			var v int
			if c := parentOf[a]; c >= 0 {
				// Derived attribute: the child's value determines the
				// parent's (child → parent FD holds exactly).
				v = codes[c] % spec.CatDomains[a]
			} else {
				v = pick(freqs[a], rng.Float64())
			}
			codes[a] = v
			cats[a] = valueName(a, v)
			if s := ds.NoiseScale[a][v]; s > scale {
				scale = s
			}
		}
		for m := range meas {
			off := 0.0
			for a := range codes {
				off += ds.MeanOffset[a][codes[a]][m]
			}
			meas[m] = spec.BaseMean + off + rng.NormFloat64()*spec.BaseSD*scale
		}
		b.AddRow(cats, meas)
	}
	ds.Rel = b.Build()

	// Effective offsets for derived attributes: a parent value inherits
	// the frequency-weighted mean offset of the child values mapping to
	// it (these feed the planted ground truth below; they were not added
	// to the rows — the children's offsets already realise them).
	for _, a := range assignOrder {
		c := parentOf[a]
		if c < 0 {
			continue
		}
		weights := densities(freqs[c])
		totalW := make([]float64, spec.CatDomains[a])
		for cv, w := range weights {
			pv := cv % spec.CatDomains[a]
			totalW[pv] += w
			for m := 0; m < spec.Measures; m++ {
				ds.MeanOffset[a][pv][m] += w * ds.MeanOffset[c][cv][m]
			}
		}
		for pv := range totalW {
			//nolint:floateq // densities are non-negative, so the sum is exactly 0 iff no child value maps here
			if totalW[pv] == 0 {
				continue
			}
			for m := 0; m < spec.Measures; m++ {
				ds.MeanOffset[a][pv][m] /= totalW[pv]
			}
		}
	}

	// Enumerate the planted ground truth: value pairs whose generative
	// parameters differ enough to be real effects.
	meanMargin := 0.2 * spec.BaseSD
	for a, d := range spec.CatDomains {
		for v := 0; v < d; v++ {
			for v2 := 0; v2 < d; v2++ {
				if v == v2 {
					continue
				}
				for m := 0; m < spec.Measures; m++ {
					if ds.MeanOffset[a][v][m]-ds.MeanOffset[a][v2][m] > meanMargin {
						ds.Planted = append(ds.Planted, Planted{
							Meas: m, Attr: a,
							Val: valueName(a, v), Val2: valueName(a, v2),
							Type: insight.MeanGreater,
						})
					}
				}
				if ds.NoiseScale[a][v] > ds.NoiseScale[a][v2]*1.5 {
					for m := 0; m < spec.Measures; m++ {
						ds.Planted = append(ds.Planted, Planted{
							Meas: m, Attr: a,
							Val: valueName(a, v), Val2: valueName(a, v2),
							Type: insight.VarianceGreater,
						})
					}
				}
			}
		}
	}
	return ds, nil
}

func valueName(attr, v int) string { return fmt.Sprintf("a%d_v%03d", attr, v) }

// densities recovers the per-value probabilities from a cumulative
// distribution.
func densities(cum []float64) []float64 {
	out := make([]float64, len(cum))
	prev := 0.0
	for i, c := range cum {
		out[i] = c - prev
		prev = c
	}
	return out
}

func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for i, v := range w {
		sum += v
		out[i] = sum
	}
	out[len(out)-1] = 1
	return out
}

func pick(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// VaccineLike matches Table 2's Vaccine row: 5045 tuples, 6 categorical
// attributes with active domains from 2 to 107, 1 measure.
func VaccineLike(seed int64) (*Dataset, error) {
	return Generate(Spec{
		Name:       "vaccine",
		Rows:       5045,
		CatDomains: []int{107, 6, 4, 10, 7, 2},
		Measures:   1,
		Skew:       0.5,
		EffectFrac: 0.25, EffectSD: 1.0,
		VarEffectFrac: 0.1,
		Seed:          seed,
	})
}

// ENEDISLike matches Table 2's ENEDIS row shape: 7 categorical attributes
// (domains 3..1295 in the paper, capped here so permutation testing stays
// laptop-scale), 2 measures. rows ≤ 0 defaults to 20,000 (the paper's
// 114,527 scaled down; pass the full count to reproduce at scale).
func ENEDISLike(seed int64, rows int) (*Dataset, error) {
	if rows <= 0 {
		rows = 20000
	}
	return Generate(Spec{
		Name:       "enedis",
		Rows:       rows,
		CatDomains: []int{3, 5, 8, 12, 24, 48, 96},
		Measures:   2,
		Skew:       0.8,
		EffectFrac: 0.2, EffectSD: 0.8,
		VarEffectFrac: 0.08,
		// Geographic hierarchy like the real ENEDIS data (commune →
		// department): attribute 6 determines attribute 4, so the FD
		// pre-processing of footnote 2 prunes that pair's queries.
		Hierarchies: []Hierarchy{{Child: 6, Parent: 4}},
		Seed:        seed,
	})
}

// FlightsLike matches Table 2's Flights row shape: 5 categorical
// attributes (domains 7..377), 3 measures. rows ≤ 0 defaults to 100,000
// (the paper's 5.8M scaled; pass the full count to reproduce at scale).
func FlightsLike(seed int64, rows int) (*Dataset, error) {
	if rows <= 0 {
		rows = 100000
	}
	return Generate(Spec{
		Name:       "flights",
		Rows:       rows,
		CatDomains: []int{7, 12, 31, 52, 120},
		Measures:   3,
		Skew:       0.6,
		EffectFrac: 0.15, EffectSD: 0.7,
		VarEffectFrac: 0.05,
		// Date hierarchy like the real Flights data: the fine-grained
		// attribute 4 ("day") determines attribute 1 ("month").
		Hierarchies: []Hierarchy{{Child: 4, Parent: 1}},
		Seed:        seed,
	})
}

// Tiny is a small deterministic dataset for unit tests and the
// quickstart example: 4 attributes, 1 measure, strong planted effects.
func Tiny(seed int64, rows int) (*Dataset, error) {
	if rows <= 0 {
		rows = 1200
	}
	return Generate(Spec{
		Name:       "tiny",
		Rows:       rows,
		CatDomains: []int{3, 4, 5, 6},
		Measures:   1,
		EffectFrac: 0.5, EffectSD: 3.0,
		VarEffectFrac: 0.15, VarScale: 2.5,
		Seed: seed,
	})
}
