package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"comparenb/internal/durable"
)

// startDurableServer is startTestServer with a state dir.
func startDurableServer(t *testing.T, stateDir string, opts Options) (*Server, string, func()) {
	t.Helper()
	opts.StateDir = stateDir
	return startTestServer(t, opts)
}

// waitReady polls /readyz to 200.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, _ := httpGet(t, base+"/readyz")
		if status == http.StatusOK {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// TestRecoveryRestoresSessionsAndArtifacts is the clean-restart half of
// the durability contract: run jobs against a durable server, shut it
// down gracefully, reopen the same state dir, and every completed job
// must come back — same artifacts byte for byte, same sessions, and new
// job ids continuing after the old ones.
func TestRecoveryRestoresSessionsAndArtifacts(t *testing.T) {
	stateDir := t.TempDir()
	csv := writeTinyCSV(t, 7, 60)
	req := jobRequest{Relation: "tiny", Queries: 4, Perms: 40, Seed: 7}

	_, base, shutdown := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csv)
	id := submitJob(t, base, req)
	if v := waitJob(t, base, id); v.State != stateDone {
		t.Fatalf("job finished %s (%s), want done", v.State, v.Error)
	}
	want := make(map[string][]byte)
	for _, format := range []string{"ipynb", "markdown", "html", "report", "trace", "metrics"} {
		want[format] = mustGet(t, base+"/v1/jobs/"+id+"/result?format="+format)
	}
	shutdown()

	// Second life: same state dir, nothing preloaded.
	s2, base2, shutdown2 := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
	defer shutdown2()
	waitReady(t, base2)

	var sessions []sessionView
	if err := json.Unmarshal(mustGet(t, base2+"/v1/relations"), &sessions); err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].Name != "tiny" || sessions[0].Rows != 60 {
		t.Fatalf("recovered sessions = %+v, want tiny with 60 rows", sessions)
	}

	if v := waitJob(t, base2, id); v.State != stateDone {
		t.Fatalf("recovered job %s is %s (%s), want done", id, v.State, v.Error)
	}
	for format, wantBytes := range map[string][]byte{"ipynb": want["ipynb"], "report": want["report"], "html": want["html"]} {
		got := mustGet(t, base2+"/v1/jobs/"+id+"/result?format="+format)
		if !bytes.Equal(got, wantBytes) {
			t.Errorf("recovered %s artifact differs from the original (%d vs %d bytes)", format, len(got), len(wantBytes))
		}
	}
	if got := s2.cRecoveredDone.Value(); got != 1 {
		t.Errorf("server_recovered_done = %d, want 1", got)
	}

	// A fresh job on the recovered server must not collide with the
	// journaled id and must still run against the recovered relation.
	id2 := submitJob(t, base2, req)
	if id2 == id {
		t.Fatalf("job id %s reused after recovery", id2)
	}
	if v := waitJob(t, base2, id2); v.State != stateDone {
		t.Fatalf("post-recovery job finished %s (%s), want done", v.State, v.Error)
	}
	got2 := mustGet(t, base2+"/v1/jobs/"+id2+"/result?format=ipynb")
	if !bytes.Equal(got2, want["ipynb"]) {
		t.Error("post-recovery job's notebook differs from the pre-restart run")
	}
}

// TestRecoveryVerifiesArtifactHashes: corrupting a stored artifact must
// not let near-right bytes reach a client — the job is re-run (the
// relation is still recoverable), and the served artifact is correct
// again.
func TestRecoveryVerifiesArtifactHashes(t *testing.T) {
	stateDir := t.TempDir()
	csv := writeTinyCSV(t, 11, 50)
	req := jobRequest{Relation: "tiny", Queries: 3, Perms: 40, Seed: 11}

	_, base, shutdown := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csv)
	id := submitJob(t, base, req)
	if v := waitJob(t, base, id); v.State != stateDone {
		t.Fatalf("job finished %s, want done", v.State)
	}
	want := mustGet(t, base+"/v1/jobs/"+id+"/result?format=ipynb")
	shutdown()

	// Flip bytes in the stored notebook behind the journal's back.
	artPath := filepath.Join(stateDir, durable.ArtifactsDir, id, "ipynb")
	if err := os.WriteFile(artPath, []byte(`{"cells":"tampered"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, base2, shutdown2 := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
	defer shutdown2()
	waitReady(t, base2)
	if got := s2.cVerifyFail.Value(); got != 1 {
		t.Errorf("server_artifact_verify_failures = %d, want 1", got)
	}
	if v := waitJob(t, base2, id); v.State != stateDone {
		t.Fatalf("re-run after tampering finished %s (%s), want done", v.State, v.Error)
	}
	got := mustGet(t, base2+"/v1/jobs/"+id+"/result?format=ipynb")
	if !bytes.Equal(got, want) {
		t.Error("re-run notebook differs from the original bytes")
	}
}

// TestRecoveryQuarantinesExhaustedJobs: a journal whose job was
// interrupted MaxAttempts times must come back failed_permanent with the
// recorded reason — and stay quarantined across yet another restart,
// even with a bigger retry budget (the terminal record wins).
func TestRecoveryQuarantinesExhaustedJobs(t *testing.T) {
	stateDir := t.TempDir()
	csv := writeTinyCSV(t, 3, 40)

	// Hand-author the crashed state: a loaded relation and a job that
	// started twice without ever finishing.
	journalPath, err := durable.StateDirLayout(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := durable.OpenStore(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	csvBytes, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.WriteFile("relations/tiny.csv", csvBytes); err != nil {
		t.Fatal(err)
	}
	jr, err := durable.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	reqJSON, err := json.Marshal(jobRequest{Relation: "tiny", Queries: 3, Perms: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []durable.Record{
		{Type: durable.RecSessionLoad, Name: "tiny", File: "relations/tiny.csv"},
		{Type: durable.RecJobAdmit, ID: "j000001", Tenant: "default", Request: reqJSON},
		{Type: durable.RecJobStart, ID: "j000001", Attempt: 1},
		{Type: durable.RecJobStart, ID: "j000001", Attempt: 2},
	} {
		if err := jr.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	s, base, shutdown := startDurableServer(t, stateDir, Options{MaxConcurrent: 1, MaxAttempts: 2})
	waitReady(t, base)
	v := waitJob(t, base, "j000001")
	if v.State != stateFailedPermanent {
		t.Fatalf("exhausted job recovered as %s (%s), want failed_permanent", v.State, v.Error)
	}
	if v.Error == "" {
		t.Error("quarantined job has no recorded reason")
	}
	status, body := httpGet(t, base+"/v1/jobs/j000001/result")
	if status != http.StatusInternalServerError || !bytes.Contains(body, []byte("quarantined")) {
		t.Errorf("quarantined result = %d %s, want 500 naming the quarantine", status, body)
	}
	if got := s.cQuarantined.Value(); got != 1 {
		t.Errorf("server_jobs_quarantined = %d, want 1", got)
	}
	shutdown()

	// Restart with a generous retry budget: the journaled permanent
	// failure must hold.
	_, base3, shutdown3 := startDurableServer(t, stateDir, Options{MaxConcurrent: 1, MaxAttempts: 10})
	defer shutdown3()
	waitReady(t, base3)
	if v := waitJob(t, base3, "j000001"); v.State != stateFailedPermanent {
		t.Fatalf("quarantine did not survive restart: %s", v.State)
	}
}

// TestRecoveryBackoffHoldsJob: an interrupted job re-enqueued with a
// large retry base stays queued until its notBefore passes — dequeue
// must not run it early.
func TestRecoveryBackoffHoldsJob(t *testing.T) {
	stateDir := t.TempDir()
	csv := writeTinyCSV(t, 5, 40)

	journalPath, err := durable.StateDirLayout(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := durable.OpenStore(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	csvBytes, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.WriteFile("relations/tiny.csv", csvBytes); err != nil {
		t.Fatal(err)
	}
	jr, err := durable.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	reqJSON, err := json.Marshal(jobRequest{Relation: "tiny", Queries: 3, Perms: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []durable.Record{
		{Type: durable.RecSessionLoad, Name: "tiny", File: "relations/tiny.csv"},
		{Type: durable.RecJobAdmit, ID: "j000001", Tenant: "default", Request: reqJSON},
		{Type: durable.RecJobStart, ID: "j000001", Attempt: 1},
	} {
		if err := jr.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// Backoff for attempt 1 is >= RetryBase: with a 30s base the job
	// must still be queued well after recovery.
	s, base, shutdown := startDurableServer(t, stateDir,
		Options{MaxConcurrent: 1, MaxAttempts: 5, RetryBase: 30 * time.Second})
	defer shutdown()
	waitReady(t, base)
	if got := s.cRecoveredRequeued.Value(); got != 1 {
		t.Fatalf("server_recovered_requeued = %d, want 1", got)
	}
	time.Sleep(50 * time.Millisecond)
	var v jobStatusView
	if err := json.Unmarshal(mustGet(t, base+"/v1/jobs/j000001"), &v); err != nil {
		t.Fatal(err)
	}
	if v.State != stateQueued {
		t.Fatalf("job under 30s backoff is %s, want still queued", v.State)
	}
	if v.Attempts != 1 {
		t.Errorf("recovered job attempts = %d, want 1", v.Attempts)
	}
}

// TestReadyzGatesDuringReplay: while Run replays the journal, /readyz is
// 503 and admission is refused, while /livez stays 200; both settle once
// replay finishes.
func TestReadyzGatesDuringReplay(t *testing.T) {
	stateDir := t.TempDir()
	csv := writeTinyCSV(t, 9, 40)

	// First life just to populate the journal with one session.
	_, base, shutdown := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csv)
	shutdown()

	// Second life: observe the not-ready window directly by serving the
	// handler before calling Run — exactly the state a real daemon is in
	// between binding its listener and finishing the replay.
	s, err := New(Options{MaxConcurrent: 1, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("durable server reports ready before Run replayed the journal")
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	hs := ts.URL
	if status, _ := httpGet(t, hs+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("/readyz before replay = %d, want 503", status)
	}
	if status, _ := httpGet(t, hs+"/livez"); status != http.StatusOK {
		t.Errorf("/livez before replay = %d, want 200", status)
	}
	if status, body := postJSON(t, hs+"/v1/notebooks", jobRequest{Relation: "tiny"}); status != http.StatusServiceUnavailable {
		t.Errorf("admission before replay = %d %s, want 503", status, body)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	waitReady(t, hs)
	if !s.Ready() {
		t.Error("Ready() false after /readyz turned 200")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if status, _ := httpGet(t, hs+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain = %d, want 503 (draining)", status)
	}
	if status, _ := httpGet(t, hs+"/livez"); status != http.StatusOK {
		t.Errorf("/livez after drain = %d, want 200", status)
	}
}

// TestJournalAdmitFault: a fault at the admission journal append must
// refuse the job (500) without registering it — write-ahead means no
// acknowledged job can be missing from the journal.
func TestJournalAdmitFault(t *testing.T) {
	stateDir := t.TempDir()
	csv := writeTinyCSV(t, 13, 40)
	s, base, shutdown := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
	defer shutdown()
	loadRelation(t, base, "tiny", csv)
	waitReady(t, base)

	// Close the journal under the server to make the next append fail.
	if err := s.journal.Close(); err != nil {
		t.Fatal(err)
	}
	status, body := postJSON(t, base+"/v1/notebooks", jobRequest{Relation: "tiny"})
	if status != http.StatusInternalServerError {
		t.Fatalf("admission with a dead journal = %d %s, want 500", status, body)
	}
	var jobs []jobStatusView
	if err := json.Unmarshal(mustGet(t, base+"/v1/jobs"), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("refused admission still registered %d job(s)", len(jobs))
	}
	if got := s.cJournalErr.Value(); got == 0 {
		t.Error("journal error not counted")
	}
}

// TestSSELogBounded: past maxJobEvents the log drops its oldest entries,
// eventsSince reports the gap, and memory stays bounded.
func TestSSELogBounded(t *testing.T) {
	j := &job{id: "j1", state: stateRunning}
	const total = maxJobEvents + 500
	for i := 0; i < total; i++ {
		j.publish("log", logEvent{Line: fmt.Sprintf("line %d", i)})
	}
	j.mu.Lock()
	n, first := len(j.events), j.firstIdx
	j.mu.Unlock()
	if n != maxJobEvents {
		t.Fatalf("event log holds %d entries, want capped at %d", n, maxJobEvents)
	}
	if first != total-maxJobEvents {
		t.Fatalf("firstIdx = %d, want %d", first, total-maxJobEvents)
	}
	evs, start, _ := j.eventsSince(0)
	if start != first {
		t.Errorf("eventsSince(0) start = %d, want the gap to %d reported", start, first)
	}
	if len(evs) != maxJobEvents {
		t.Errorf("eventsSince(0) returned %d events, want %d", len(evs), maxJobEvents)
	}
	// A reader that kept up sees no gap.
	if _, start, _ := j.eventsSince(total); start != total {
		t.Errorf("caught-up reader start = %d, want %d", start, total)
	}
}

// TestSlowSubscriberDoesNotBlockPublish: a subscriber that never drains
// its notify channel must not stall publish or the job's terminal
// transition.
func TestSlowSubscriberDoesNotBlockPublish(t *testing.T) {
	j := &job{id: "j1", state: stateRunning}
	_, unsub := j.subscribe() // never read from the channel
	defer unsub()

	doneCh := make(chan struct{})
	go func() {
		for i := 0; i < 3000; i++ {
			j.publish("log", logEvent{Line: "spam"})
		}
		j.complete(map[string]artifact{}, jobSummary{})
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("publishing with a never-reading subscriber blocked")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateDone {
		t.Fatalf("job state = %s, want done", j.state)
	}
}

// TestSlowSSEClientDoesNotBlockJob drives the HTTP path: an /events
// stream that is opened but never read must not stop the job from
// finishing, and the handler goroutine must exit once the client goes
// away (shutdown() joins all goroutines and -race would flag leaks).
func TestSlowSSEClientDoesNotBlockJob(t *testing.T) {
	csv := writeTinyCSV(t, 17, 50)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()
	loadRelation(t, base, "tiny", csv)

	id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 3, Perms: 40, Seed: 17})
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// Never read resp.Body while the job runs.
	if v := waitJob(t, base, id); v.State != stateDone {
		t.Fatalf("job with an unread SSE stream finished %s, want done", v.State)
	}
	_ = resp.Body.Close() // now drop the client; the handler exits
}
