package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path"
	"strconv"
	"time"

	"comparenb/internal/durable"
	"comparenb/internal/governor"
	"comparenb/internal/pipeline"
	"comparenb/internal/table"
)

// This file wires internal/durable into the scheduler: opening the state
// dir, journaling lifecycle transitions, and the startup replay that
// turns a journal back into sessions and jobs. Everything here is a
// no-op for in-memory servers (s.journal == nil).

// openState (called from New when StateDir is set) builds the state-dir
// layout, folds the existing journal, and opens it for appending. The
// folded state waits in s.recovered until Run applies it — preloads done
// between New and Run land in the same journal and simply shadow their
// replayed counterparts.
func (s *Server) openState() error {
	journalPath, err := durable.StateDirLayout(s.opts.StateDir)
	if err != nil {
		return err
	}
	recs, err := durable.ReadJournal(journalPath)
	if err != nil {
		return fmt.Errorf("state dir %s: %w", s.opts.StateDir, err)
	}
	st, err := durable.Replay(recs)
	if err != nil {
		return fmt.Errorf("state dir %s: %w", s.opts.StateDir, err)
	}
	s.store, err = durable.OpenStore(s.opts.StateDir)
	if err != nil {
		return err
	}
	s.journal, err = durable.OpenJournal(journalPath)
	if err != nil {
		return err
	}
	s.recovered = st
	s.retry = durable.RetryPolicy{
		MaxAttempts: s.opts.MaxAttempts,
		Base:        s.opts.RetryBase,
	}.WithDefaults()
	// Job ids must keep climbing across restarts, or a new admission
	// would collide with a journaled job.
	for _, j := range st.Jobs {
		if n, ok := parseJobID(j.ID); ok && n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// parseJobID inverts the "j%06d" id format.
func parseJobID(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// journalAppend appends best-effort: a failed append is counted, not
// fatal. Callers on acknowledgement paths (admission, completion) use
// journalAppendStrict instead.
func (s *Server) journalAppend(rec durable.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.cJournalErr.Inc()
	}
}

// journalAppendStrict appends and reports failure, for transitions that
// must be durable before they are acknowledged.
func (s *Server) journalAppendStrict(rec durable.Record) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Append(rec); err != nil {
		s.cJournalErr.Inc()
		return err
	}
	return nil
}

// artifactPath is where one artifact of one job lives in the store.
func artifactPath(jobID, format string) string {
	return path.Join(durable.ArtifactsDir, jobID, format)
}

// persistJobArtifacts writes every rendered artifact through the atomic
// store and returns the fingerprints the job-done record carries. The
// slice order is pipeline.ArtifactKeys order — deterministic, so the
// n-th DiskRename of a job always lands on the same format.
func (s *Server) persistJobArtifacts(jobID string, arts []pipeline.Artifact) (map[string]durable.ArtifactMeta, error) {
	if s.store == nil {
		return nil, nil
	}
	metas := make(map[string]durable.ArtifactMeta, len(arts))
	for _, a := range arts {
		meta, err := s.store.WriteFile(artifactPath(jobID, a.Key), a.Data)
		if err != nil {
			return nil, fmt.Errorf("persisting %s/%s: %w", jobID, a.Key, err)
		}
		metas[a.Key] = meta
	}
	return metas, nil
}

// recoverDurable applies the state folded at New time: restore sessions,
// re-serve completed jobs from verified artifacts, re-enqueue or
// quarantine interrupted ones. Runs before the first worker starts;
// /readyz turns 200 when it returns.
func (s *Server) recoverDurable() error {
	if s.journal == nil {
		s.setReady()
		return nil
	}
	st := s.recovered
	s.recovered = nil
	if st != nil {
		for _, sess := range st.Sessions {
			s.recoverSession(sess)
		}
		for _, js := range st.Jobs {
			s.recoverJob(js)
		}
	}
	s.setReady()
	s.pokeAll()
	return nil
}

// recoverSession reloads one journaled relation from its stored CSV.
// Failures are counted, not fatal: jobs referencing a lost relation are
// quarantined with that reason rather than blocking startup.
func (s *Server) recoverSession(ss *durable.SessionState) {
	s.mu.Lock()
	_, dup := s.sessions[ss.Name]
	s.mu.Unlock()
	if dup {
		// Preloaded again this boot (cmd/comparenbd -load runs between
		// New and Run); the live load already journaled itself.
		return
	}
	data, err := s.store.ReadFile(ss.File)
	if err != nil {
		s.cJournalErr.Inc()
		return
	}
	var lr loadRequest
	if len(ss.Load) > 0 {
		if err := json.Unmarshal(ss.Load, &lr); err != nil {
			s.cJournalErr.Inc()
			return
		}
	}
	rel, rep, err := table.FromCSV(bytes.NewReader(data), table.CSVOptions{
		Name:                      ss.Name,
		ForceCategorical:          lr.ForceCategorical,
		ForceNumeric:              lr.ForceNumeric,
		Drop:                      lr.Drop,
		MaxCategoricalCardinality: lr.MaxCategoricalCardinality,
		MaxRows:                   s.opts.MaxRows,
	})
	if err != nil {
		s.cJournalErr.Inc()
		return
	}
	sess := &session{name: ss.Name, rel: rel, report: rep, source: "recovered:" + ss.File, loaded: time.Now()}
	s.mu.Lock()
	if _, dup := s.sessions[ss.Name]; !dup {
		s.sessions[ss.Name] = sess
		s.gSessions.Set(int64(len(s.sessions)))
	}
	s.mu.Unlock()
}

// recoverJob folds one journaled job back into the scheduler.
func (s *Server) recoverJob(js *durable.JobState) {
	var req jobRequest
	reqErr := json.Unmarshal(js.Request, &req)

	if js.Terminal == durable.RecJobDone {
		if s.restoreDoneJob(js, req) {
			s.cRecoveredDone.Inc()
			return
		}
		// The journal says done but the stored artifacts fail hash
		// verification (or are gone): never serve near-right bytes.
		// Treat the job as interrupted and fall through to re-run it.
		s.cVerifyFail.Inc()
	}

	switch js.Terminal {
	case durable.RecJobFailed:
		state := stateFailed
		if js.Permanent {
			state = stateFailedPermanent
		}
		j := recoveredJob(js, req, state)
		j.failCode = js.Code
		j.errMsg = js.Error
		s.registerRecovered(j)
		j.publish("error", errorEvent{Error: js.Error, Code: js.Code})
		return
	case durable.RecJobCancelled:
		j := recoveredJob(js, req, stateCancelled)
		j.errMsg = "cancelled (recovered from journal)"
		s.registerRecovered(j)
		j.publish("state", stateEvent{State: stateCancelled})
		return
	}

	// Interrupted: admitted or running when the process died (or done
	// with unverifiable artifacts). Re-run under the retry policy, or
	// quarantine — never drop silently.
	if reqErr != nil {
		s.quarantineJob(js, req, fmt.Sprintf("recovery: corrupt request record: %v", reqErr))
		return
	}
	s.mu.Lock()
	sess := s.sessions[req.Relation]
	s.mu.Unlock()
	if sess == nil {
		s.quarantineJob(js, req, fmt.Sprintf("recovery: relation %q not recoverable", req.Relation))
		return
	}
	cfg, err := buildConfig(req, s.opts)
	if err != nil {
		s.quarantineJob(js, req, "recovery: invalid request: "+err.Error())
		return
	}
	if s.retry.Exhausted(js.Attempts) {
		s.quarantineJob(js, req, fmt.Sprintf(
			"quarantined: interrupted during attempt %d/%d", js.Attempts, s.retry.MaxAttempts))
		return
	}

	j := newJob(js.ID, js.Tenant, req, sess.rel, cfg, governor.Degrade, js.Trace)
	j.attempt = js.Attempts
	delay := s.retry.Backoff(js.ID, js.Attempts)
	j.notBefore = time.Now().Add(delay)
	s.mu.Lock()
	s.jobs[js.ID] = j
	s.queue = append(s.queue, j)
	s.tenantLocked(js.Tenant).queued++
	s.gQueued.Set(int64(len(s.queue)))
	s.mu.Unlock()
	if delay > 0 {
		// Wake a worker once the backoff elapses; dequeue skips the job
		// until then.
		time.AfterFunc(delay, s.poke)
	}
	s.cRecoveredRequeued.Inc()
}

// restoreDoneJob rebuilds a completed job from its stored artifacts,
// verifying every file against the journaled fingerprint. Returns false
// when any artifact fails verification.
func (s *Server) restoreDoneJob(js *durable.JobState, req jobRequest) bool {
	arts := make(map[string]artifact, len(js.Artifacts))
	for _, key := range pipeline.ArtifactKeys() {
		meta, ok := js.Artifacts[key]
		if !ok {
			return false
		}
		data, err := s.store.ReadVerified(artifactPath(js.ID, key), meta)
		if err != nil {
			return false
		}
		ct, ok := pipeline.ArtifactContentType(key)
		if !ok {
			return false
		}
		arts[key] = artifact{contentType: ct, data: data}
	}
	if len(js.Artifacts) != len(arts) {
		// Unknown formats in the journal: a newer server wrote this
		// state dir; refuse rather than serve a subset.
		return false
	}
	var sum jobSummary
	if len(js.Summary) > 0 {
		if err := json.Unmarshal(js.Summary, &sum); err != nil {
			return false
		}
	}
	j := recoveredJob(js, req, stateDone)
	j.artifacts = arts
	j.summary = &sum
	s.registerRecovered(j)
	j.publish("done", sum)
	return true
}

// recoveredJob builds a job in a recovered terminal state. The caller
// finishes populating it and then publishes it with registerRecovered —
// jobs must be complete before they are visible to HTTP handlers.
func recoveredJob(js *durable.JobState, req jobRequest, state string) *job {
	now := time.Now()
	return &job{
		id:       js.ID,
		tenant:   js.Tenant,
		relation: req.Relation,
		admit:    governor.Degrade,
		created:  now,
		trace:    js.Trace,
		state:    state,
		attempt:  js.Attempts,
		finished: now,
	}
}

// registerRecovered makes a fully-built recovered job visible.
func (s *Server) registerRecovered(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.tenantLocked(j.tenant)
	s.mu.Unlock()
}

// quarantineJob parks an unrecoverable job as failed_permanent: the
// terminal record is journaled (so the next boot does not retry), any
// partial artifacts are removed, and the reason is served from the
// result endpoint. Quarantine is loud, never a silent drop.
func (s *Server) quarantineJob(js *durable.JobState, req jobRequest, reason string) {
	s.journalAppend(durable.Record{
		Type:      durable.RecJobFailed,
		ID:        js.ID,
		Trace:     js.Trace,
		Code:      http.StatusInternalServerError,
		Error:     reason,
		Permanent: true,
	})
	if s.store != nil {
		_ = s.store.Remove(path.Join(durable.ArtifactsDir, js.ID)) // best-effort cleanup
	}
	j := recoveredJob(js, req, stateFailedPermanent)
	j.failCode = http.StatusInternalServerError
	j.errMsg = reason
	s.registerRecovered(j)
	j.publish("error", errorEvent{Error: reason, Code: http.StatusInternalServerError})
	s.cQuarantined.Inc()
}
