// Package server is the long-lived notebook-generation daemon behind
// cmd/comparenbd: an HTTP/JSON service that loads relations once, keeps
// them in a session registry, and admits concurrent notebook-generation
// jobs through a bounded queue with per-tenant quotas.
//
// The serving path reuses the batch pipeline unchanged — every job runs
// pipeline.GenerateContext with the daemon's shared engine.CubeCache
// (Config.Cache), so repeated requests over the same relation skip the
// base-relation scans while notebook bytes stay identical to a one-shot
// run (the e2e suite in this package asserts that byte-for-byte).
//
// Admission reuses the governor's Level vocabulary: Full means a worker
// slot is free and the job starts immediately, Degrade means it waits in
// the bounded queue, Shed means the queue (global or per-tenant) is full
// and the request is refused with 429 + Retry-After. Draining (context
// cancellation of Run) flips admission to 503, fails queued jobs, lets
// running jobs finish, and then returns — the graceful half of shutdown;
// HardStop cancels running jobs too.
//
// See docs/SERVER.md for the API reference and quota model.
package server

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"comparenb/internal/durable"
	"comparenb/internal/engine"
	"comparenb/internal/obs"
)

// Options configures a Server. The zero value is usable: New fills in
// every default.
type Options struct {
	// MaxConcurrent is the number of job workers — the global cap on
	// notebook generations running at once (default 2).
	MaxConcurrent int
	// QueueDepth bounds the global admission queue; a request arriving
	// with the queue full is shed with 429 (default 64).
	QueueDepth int
	// TenantConcurrent caps jobs of one tenant running at once; queued
	// jobs over the cap stay queued while other tenants' jobs pass them
	// (default: MaxConcurrent).
	TenantConcurrent int
	// TenantQueueDepth bounds one tenant's share of the queue; beyond it
	// that tenant is shed even while the global queue has room
	// (default: QueueDepth).
	TenantQueueDepth int
	// JobTimeBudget caps the per-job soft TimeBudget: a request asking
	// for more (or for none) gets exactly this budget, so one tenant
	// cannot monopolise a worker (0 = no cap; requests choose freely).
	JobTimeBudget time.Duration
	// JobThreads caps per-job worker-pool width (0 = no cap).
	JobThreads int
	// CacheBudget is the shared cube cache's soft budget in bytes,
	// enforced by phase-boundary Trims only (default 256 MiB).
	CacheBudget int64
	// CacheMemBudget arms the shared cache's hard admission budget
	// (0 = off). This is the byte-accounting backstop for multi-tenant
	// operation: the cache never holds more than this many bytes.
	CacheMemBudget int64
	// NoCompress disables the compressed columnar layer for the shared
	// cache and every job. It is daemon-wide, not per-request, because
	// the cache stores encoded relations: mixing modes per job would
	// make cache contents depend on request order.
	NoCompress bool
	// MaxUploadBytes bounds a CSV upload body (default 32 MiB).
	MaxUploadBytes int64
	// MaxRelations bounds the session registry (default 64).
	MaxRelations int
	// MaxRows bounds rows per loaded relation (default 1<<20).
	MaxRows int
	// DrainTimeout bounds how long Run waits for running jobs after its
	// context is cancelled before hard-cancelling them (0 = wait
	// indefinitely).
	DrainTimeout time.Duration
	// StateDir roots the durability layer: a write-ahead job journal plus
	// an atomic artifact store (see internal/durable). Empty means
	// in-memory operation — nothing survives a restart. With a state dir,
	// every session load and job lifecycle transition is journaled before
	// it is acknowledged, finished artifacts are persisted atomically, and
	// Run replays the journal on startup: completed jobs come back with
	// hash-verified artifacts, interrupted jobs are re-enqueued under the
	// retry policy or quarantined.
	StateDir string
	// MaxAttempts bounds execution attempts per job before a
	// crash-interrupted job is quarantined as failed_permanent
	// (default 3). Only meaningful with StateDir.
	MaxAttempts int
	// RetryBase is the first re-enqueue backoff for a crash-interrupted
	// job; later attempts double it, with deterministic per-job jitter
	// (default 250ms). Only meaningful with StateDir.
	RetryBase time.Duration
	// FlightRecent is how many most-recent completed jobs the flight
	// recorder retains (default 64).
	FlightRecent int
	// FlightSlowest is how many slowest-by-e2e completed jobs the flight
	// recorder retains alongside the recency ring (default 16).
	FlightSlowest int
	// Logger receives structured access and job-lifecycle records (both
	// keyed by trace_id). Nil discards them.
	Logger *slog.Logger
}

// withDefaults returns opts with every unset field defaulted.
func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.TenantConcurrent <= 0 {
		o.TenantConcurrent = o.MaxConcurrent
	}
	if o.TenantQueueDepth <= 0 {
		o.TenantQueueDepth = o.QueueDepth
	}
	if o.CacheBudget <= 0 {
		o.CacheBudget = 256 << 20
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	if o.MaxRelations <= 0 {
		o.MaxRelations = 64
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 1 << 20
	}
	if o.FlightRecent <= 0 {
		o.FlightRecent = 64
	}
	if o.FlightSlowest <= 0 {
		o.FlightSlowest = 16
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// tenantState is one tenant's live quota usage plus its per-tenant
// counters and SLO histograms on the server registry.
type tenantState struct {
	running int
	queued  int

	jobs *obs.Counter // admissions (queued or started), monotone
	shed *obs.Counter // 429s issued to this tenant

	// Per-tenant latency histograms (labeled instances of the global
	// families): queue wait, run wall, admit-to-done e2e, SSE first event.
	tQueue *obs.Timing
	tWall  *obs.Timing
	tE2E   *obs.Timing
	tSSE   *obs.Timing
}

// Server is the daemon: session registry, job scheduler, shared cube
// cache and HTTP API. Create with New, serve s.Handler(), and run the
// workers with Run.
type Server struct {
	opts  Options
	reg   *obs.Registry // server-lifetime registry backing /metrics
	cache *engine.CubeCache
	mux   *http.ServeMux
	start time.Time

	// Durability layer; all nil/zero when StateDir is unset. recovered is
	// the journal folded at New time and consumed by Run's replay.
	journal   *durable.Journal
	store     *durable.Store
	retry     durable.RetryPolicy
	recovered *durable.State

	mu         sync.Mutex
	sessions   map[string]*session
	jobs       map[string]*job
	queue      []*job // FIFO; per-tenant caps make dequeue skip, not block
	tenants    map[string]*tenantState
	runningN   int
	draining   bool
	ready      bool // false while Run replays the journal
	hardCancel func()
	seq        int

	// wake is poked (non-blocking, capacity MaxConcurrent) whenever the
	// queue grows or a slot frees, so idle workers re-scan the queue.
	wake chan struct{}

	cAdmitFull, cAdmitQueue, cAdmitShed              *obs.Counter
	cDone, cFailed, cCancelled                       *obs.Counter
	cSessLoad, cSessDrop                             *obs.Counter
	cRecoveredDone, cRecoveredRequeued, cQuarantined *obs.Counter
	cRetries, cJournalErr, cVerifyFail               *obs.Counter
	cSpans, cSpansDropped                            *obs.Counter
	gRunning, gQueued, gSessions                     *obs.Gauge
	tWall, tQueueWait, tE2E, tSSEFirst               *obs.Timing

	// flight retains recently completed (and slowest) job span trees for
	// /debug/flight and /v1/jobs/{id}/trace; log receives structured
	// access and job records keyed by trace_id.
	flight *obs.FlightRecorder
	log    *slog.Logger
}

// New builds a Server with its shared cache and HTTP routes. Workers do
// not start until Run. With Options.StateDir set, New reads and folds
// the existing journal (corruption is an error — refuse to serve from a
// state dir that cannot be trusted) and opens it for appending; the
// folded state is applied by Run before the first job runs.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		reg:      obs.New(),
		start:    time.Now(),
		sessions: make(map[string]*session),
		jobs:     make(map[string]*job),
		tenants:  make(map[string]*tenantState),
		wake:     make(chan struct{}, opts.MaxConcurrent),
	}
	s.cache = engine.NewCubeCache(opts.CacheBudget)
	s.cache.Instrument(s.reg)
	s.cache.SetNoEncode(opts.NoCompress)
	if opts.CacheMemBudget > 0 {
		s.cache.SetMemBudget(opts.CacheMemBudget)
	}
	s.cAdmitFull = s.reg.Counter("server_admit_full")
	s.cAdmitQueue = s.reg.Counter("server_admit_degrade")
	s.cAdmitShed = s.reg.Counter("server_admit_shed")
	s.cDone = s.reg.Counter("server_jobs_done")
	s.cFailed = s.reg.Counter("server_jobs_failed")
	s.cCancelled = s.reg.Counter("server_jobs_cancelled")
	s.cSessLoad = s.reg.Counter("server_sessions_loaded")
	s.cSessDrop = s.reg.Counter("server_sessions_dropped")
	s.cRecoveredDone = s.reg.Counter("server_recovered_done")
	s.cRecoveredRequeued = s.reg.Counter("server_recovered_requeued")
	s.cQuarantined = s.reg.Counter("server_jobs_quarantined")
	s.cRetries = s.reg.Counter("server_job_retries")
	s.cJournalErr = s.reg.Counter("server_journal_errors")
	s.cVerifyFail = s.reg.Counter("server_artifact_verify_failures")
	s.cSpans = s.reg.Counter("obs_spans")
	s.cSpansDropped = s.reg.Counter("obs_spans_dropped")
	s.gRunning = s.reg.Gauge("server_jobs_running")
	s.gQueued = s.reg.Gauge("server_jobs_queued")
	s.gSessions = s.reg.Gauge("server_sessions")
	s.tWall = s.reg.Timing("server_job_wall")
	s.tQueueWait = s.reg.Timing("server_job_queue_wait")
	s.tE2E = s.reg.Timing("server_job_e2e")
	s.tSSEFirst = s.reg.Timing("server_sse_first_event")
	s.flight = obs.NewFlightRecorder(opts.FlightRecent, opts.FlightSlowest)
	s.log = opts.Logger

	if opts.StateDir != "" {
		if err := s.openState(); err != nil {
			return nil, err
		}
	} else {
		// In-memory mode has nothing to replay; the server is ready the
		// moment Run starts (and for preloads even before).
		s.ready = true
	}

	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the daemon's HTTP API, wrapped in the tracing
// middleware: every request resolves a W3C trace identity (accepted or
// generated), echoes it in the response traceparent header, and logs one
// structured access record.
func (s *Server) Handler() http.Handler { return s.withTracing(s.mux) }

// Cache exposes the shared cube cache (tests assert its counters stay
// monotone across concurrent jobs).
func (s *Server) Cache() *engine.CubeCache { return s.cache }

// Registry exposes the server-lifetime metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/relations", s.handleLoadRelation)
	s.mux.HandleFunc("GET /v1/relations", s.handleListRelations)
	s.mux.HandleFunc("DELETE /v1/relations/{name}", s.handleDropRelation)
	s.mux.HandleFunc("POST /v1/notebooks", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

// Run starts the worker pool and blocks until ctx is cancelled and the
// server has drained: admission flips to 503, queued jobs fail with 503,
// running jobs finish (bounded by Options.DrainTimeout, after which they
// are hard-cancelled). Every worker goroutine is joined before Run
// returns, so a returned Run means no server goroutines survive.
//
// With a state dir, Run first replays the folded journal — restoring
// sessions, re-serving verified artifacts of completed jobs, and
// re-enqueueing or quarantining interrupted ones — before any worker
// starts; /readyz reports 503 until the replay finishes. The journal is
// closed after the drain, so a returned Run has released the state dir.
func (s *Server) Run(ctx context.Context) error {
	if err := s.recoverDurable(); err != nil {
		return err
	}
	jobsCtx, hardCancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.hardCancel = hardCancel
	s.mu.Unlock()
	defer hardCancel()

	var wg sync.WaitGroup
	for i := 0; i < s.opts.MaxConcurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(ctx, jobsCtx)
		}()
	}

	<-ctx.Done()
	s.beginDrain()

	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	if s.opts.DrainTimeout > 0 {
		t := time.NewTimer(s.opts.DrainTimeout)
		defer t.Stop()
		select {
		case <-drained:
		case <-t.C:
			hardCancel()
			<-drained
		}
	} else {
		<-drained
	}
	if s.journal != nil {
		_ = s.journal.Close() // drained; a close error changes nothing
	}
	return nil
}

// HardStop cancels every running job immediately. Queued jobs are failed
// by the drain that Run's context cancellation already triggered; this
// is the second-signal escalation for jobs that refuse to finish.
func (s *Server) HardStop() {
	s.mu.Lock()
	cancel := s.hardCancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// beginDrain stops admission and fails every queued job with 503.
// Running jobs are left to finish. Deliberately nothing is journaled
// here: a drain-failed queued job keeps its open-ended journal entry, so
// a durable server re-enqueues it on the next boot instead of losing it.
func (s *Server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	queued := s.queue
	s.queue = nil
	for _, j := range queued {
		s.tenantLocked(j.tenant).queued--
	}
	s.gQueued.Set(0)
	s.mu.Unlock()
	for _, j := range queued {
		j.fail(http.StatusServiceUnavailable, "server shutting down before job started")
		s.cFailed.Inc()
	}
	s.pokeAll()
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether startup replay has finished and the server is
// accepting work. In-memory servers are ready from construction.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready
}

func (s *Server) setReady() {
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
}

// worker is one job-execution loop: drain the queue, then sleep on the
// wake channel until there is more work or the server shuts down.
func (s *Server) worker(ctx, jobsCtx context.Context) {
	for {
		if j := s.dequeue(); j != nil {
			s.runJob(jobsCtx, j)
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-s.wake:
		}
	}
}

// dequeue pops the first queued job whose tenant is under its running
// cap and whose retry backoff (if any) has elapsed, claiming a slot for
// it. Returns nil when nothing is eligible or the server is draining.
func (s *Server) dequeue() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	now := time.Now()
	for i, j := range s.queue {
		// notBefore is set only before the job is published to the queue
		// (under s.mu), so reading it here needs no further locking.
		if j.notBefore.After(now) {
			continue
		}
		t := s.tenantLocked(j.tenant)
		if t.running >= s.opts.TenantConcurrent {
			continue
		}
		s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
		t.queued--
		t.running++
		s.runningN++
		s.gQueued.Set(int64(len(s.queue)))
		s.gRunning.Set(int64(s.runningN))
		return j
	}
	return nil
}

// release returns j's worker slot and pokes one idle worker (the freed
// slot may make a queued job of the same tenant eligible).
func (s *Server) release(j *job) {
	s.mu.Lock()
	s.tenantLocked(j.tenant).running--
	s.runningN--
	s.gRunning.Set(int64(s.runningN))
	s.mu.Unlock()
	s.poke()
}

// tenantLocked returns the tenant's state, creating it (and its
// per-tenant counters) on first sight. Callers hold s.mu.
func (s *Server) tenantLocked(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		m := sanitizeMetric(name)
		t = &tenantState{
			jobs:   s.reg.Counter("server_tenant_" + m + "_jobs"),
			shed:   s.reg.Counter("server_tenant_" + m + "_shed"),
			tQueue: s.reg.Timing(`server_job_queue_wait{tenant="` + m + `"}`),
			tWall:  s.reg.Timing(`server_job_wall{tenant="` + m + `"}`),
			tE2E:   s.reg.Timing(`server_job_e2e{tenant="` + m + `"}`),
			tSSE:   s.reg.Timing(`server_sse_first_event{tenant="` + m + `"}`),
		}
		s.tenants[name] = t
	}
	return t
}

// poke wakes one idle worker; pokeAll wakes them all. Both are
// non-blocking: a full wake channel means every worker is already due a
// re-scan.
func (s *Server) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Server) pokeAll() {
	for i := 0; i < s.opts.MaxConcurrent; i++ {
		s.poke()
	}
}

// job returns the job by id, or nil.
func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// queuePosition returns j's 1-based position in the queue, or 0 when it
// is not queued.
func (s *Server) queuePosition(j *job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == j {
			return i + 1
		}
	}
	return 0
}

// sanitizeMetric maps an arbitrary tenant name onto the exposition
// grammar ([a-z0-9_], bounded length) so per-tenant counters always pass
// obs.ValidateMetrics.
func sanitizeMetric(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 32 {
			break
		}
	}
	if b.Len() == 0 {
		return "default"
	}
	return b.String()
}

// handleFlight is GET /debug/flight: the flight recorder's retained job
// span trees (most recent + slowest) as JSON, obs.ValidateFlight-clean.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.Snapshot())
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's span tree as
// Chrome trace-event JSON on the admission timeline (queue-wait / run /
// e2e annotation spans included), straight from the flight recorder.
// Jobs recovered done from a previous process have no in-memory flight
// entry; their persisted trace artifact — the same span tree without the
// admission annotations — serves as the fallback.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if e, ok := s.flight.Get(id); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = e.WriteTrace(w) // client disconnect; nowhere to report
		return
	}
	j := s.job(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	art, ok := j.artifacts["trace"]
	state := j.state
	j.mu.Unlock()
	if state == stateDone && ok {
		w.Header().Set("Content-Type", art.contentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(art.data) // client disconnect; nowhere to report
		return
	}
	httpError(w, http.StatusNotFound, "no trace retained for job "+id)
}

// handleMetrics serves the server registry in Prometheus text format:
// scheduler counters/gauges, per-tenant counters, queue-wait and wall
// histograms, plus the shared cache's engine_cache_* counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteMetrics(w) // client disconnect; nowhere to report
}

// handleHealthz reports the full health picture in one body; the
// orchestration-facing split lives in /livez and /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthLocked())
}

// handleLivez is pure liveness: the process is up and serving HTTP. It
// stays 200 during replay and during drain — restarting a server because
// it is busy recovering would only lose more work.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "alive"})
}

// handleReadyz is readiness: 200 only when startup replay has finished
// and the server is not draining — the signal a load balancer should
// gate traffic on.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.healthLocked()
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (s *Server) healthLocked() healthStatus {
	s.mu.Lock()
	st := healthStatus{
		Status:      "ok",
		Ready:       s.ready && !s.draining,
		UptimeMS:    time.Since(s.start).Milliseconds(),
		Sessions:    len(s.sessions),
		JobsRunning: s.runningN,
		JobsQueued:  len(s.queue),
	}
	switch {
	case s.draining:
		st.Status = "draining"
	case !s.ready:
		st.Status = "recovering"
	}
	s.mu.Unlock()
	return st
}

type healthStatus struct {
	Status      string `json:"status"`
	Ready       bool   `json:"ready"`
	UptimeMS    int64  `json:"uptime_ms"`
	Sessions    int    `json:"sessions"`
	JobsRunning int    `json:"jobs_running"`
	JobsQueued  int    `json:"jobs_queued"`
}

// handleListJobs lists every job, id-sorted.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]jobStatusView, 0, len(ids))
	for _, id := range ids {
		if j := s.job(id); j != nil {
			out = append(out, s.statusView(j))
		}
	}
	writeJSON(w, http.StatusOK, out)
}
