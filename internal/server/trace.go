package server

// Request tracing: every HTTP request gets a W3C trace-context identity
// (accepted from the client's traceparent header or generated here), and
// that identity is the correlation key across the 202 response, the job
// journal, SSE events, structured logs, and the flight recorder. Trace
// ids never reach determinism-gated artifact bytes: the pipeline sees
// them only through the obs registry, whose trace/metrics exports are
// the two artifacts excluded from the byte-identity gate.
//
// This file is also the sanctioned home of the repo's one randomness
// source: crypto/rand feeds trace and span ids and nothing else. The
// detsource analyzer flags crypto/rand anywhere a determinism-gated
// package could reach it.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// traceIDKey keys the request's trace id in its context.
type traceIDKey struct{}

// withTraceID returns ctx carrying the trace id.
func withTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// traceIDFrom returns the trace id carried by ctx, or "".
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// isHex reports whether s is entirely lowercase hex. The W3C spec
// requires lowercase; uppercase headers are invalid and get a fresh id.
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// allZero reports whether s is all '0' — the invalid sentinel for both
// trace and parent ids.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// parseTraceparent extracts the trace id from a W3C traceparent header:
// version "-" 32-hex trace-id "-" 16-hex parent-id "-" 2-hex flags.
// Returns ok=false for anything malformed (including the all-zero ids
// and the forbidden version ff), in which case the server generates a
// fresh identity rather than propagating garbage.
func parseTraceparent(h string) (traceID string, ok bool) {
	if len(h) < 55 {
		return "", false
	}
	ver, tid, parent, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	if !isHex(ver) || ver == "ff" {
		return "", false
	}
	// Future versions may append fields after the flags; version 00 must
	// be exactly 55 bytes.
	if ver == "00" && len(h) != 55 {
		return "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", false
	}
	if !isHex(tid) || allZero(tid) || !isHex(parent) || allZero(parent) || !isHex(flags) {
		return "", false
	}
	return tid, true
}

// randHex returns n random bytes as 2n lowercase hex digits. crypto/rand
// read failures fall back to a wall-clock-derived id — worse uniqueness,
// but correlation ids must never abort a request.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return fmt.Sprintf("%0*x", 2*n, uint64(time.Now().UnixNano())|1)
	}
	return hex.EncodeToString(b)
}

// newTraceID returns a fresh 32-hex-digit W3C trace id.
func newTraceID() string { return randHex(16) }

// responseTraceparent renders the header echoed on every response: the
// request's trace id under a server-chosen span id, sampled flag set.
func responseTraceparent(traceID string) string {
	return "00-" + traceID + "-" + randHex(8) + "-01"
}

// statusWriter captures the response status for the access log while
// passing Flush through, so SSE streaming works unchanged behind the
// tracing middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withTracing is the outermost handler: resolve the request's trace
// identity, echo it in the response traceparent header, stash it in the
// context for admission, and emit one structured access line per
// request (level debug — job lifecycle lines are the info-level signal;
// status polling would drown them).
func (s *Server) withTracing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tid, ok := parseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tid = newTraceID()
		}
		w.Header().Set("traceparent", responseTraceparent(tid))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		next.ServeHTTP(sw, r.WithContext(withTraceID(r.Context(), tid)))
		s.log.LogAttrs(r.Context(), slog.LevelDebug, "access",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Float64("dur_ms", float64(time.Since(begin))/float64(time.Millisecond)),
			slog.String("trace_id", tid),
		)
	})
}
