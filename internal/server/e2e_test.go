package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"comparenb/internal/datagen"
	"comparenb/internal/pipeline"
	"comparenb/internal/table"
)

// startTestServer boots a Server (workers + httptest front end) and
// returns a shutdown func that drains the workers and joins every
// goroutine before returning.
func startTestServer(t *testing.T, opts Options) (*Server, string, func()) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	hs := httptest.NewServer(s.Handler())
	shutdown := func() {
		hs.Close()
		cancel()
		if err := <-done; err != nil {
			t.Errorf("server Run returned %v", err)
		}
	}
	return s, hs.URL, shutdown
}

// writeTinyCSV materialises a deterministic datagen dataset as a CSV
// file and returns its path.
func writeTinyCSV(t *testing.T, seed int64, rows int) string {
	t.Helper()
	ds, err := datagen.Tiny(seed, rows)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Rel.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadRelation loads path into the server over HTTP (the JSON/path
// shape) under the given name.
func loadRelation(t *testing.T, base, name, path string) {
	t.Helper()
	status, body := postJSON(t, base+"/v1/relations", map[string]any{"name": name, "path": path})
	if status != http.StatusCreated {
		t.Fatalf("loading relation: status %d: %s", status, body)
	}
}

func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	status, body := httpGet(t, url)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, status, body)
	}
	return body
}

// submitJob posts a notebook job and returns its id.
func submitJob(t *testing.T, base string, req jobRequest) string {
	t.Helper()
	status, body := postJSON(t, base+"/v1/notebooks", req)
	if status != http.StatusAccepted {
		t.Fatalf("submitting job: status %d: %s", status, body)
	}
	var resp admitResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.JobID
}

// waitJob polls a job to a terminal state and returns its final status.
func waitJob(t *testing.T, base, id string) jobStatusView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v jobStatusView
		if err := json.Unmarshal(mustGet(t, base+"/v1/jobs/"+id), &v); err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case stateDone, stateFailed, stateFailedPermanent, stateCancelled:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobStatusView{}
}

// runServerJob submits, waits for done, and fetches the three notebook
// artifacts plus the report.
func runServerJob(t *testing.T, base string, req jobRequest) (ipynb, md, report []byte) {
	t.Helper()
	id := submitJob(t, base, req)
	if v := waitJob(t, base, id); v.State != stateDone {
		t.Fatalf("job %s finished %s (%s), want done", id, v.State, v.Error)
	}
	ipynb = mustGet(t, base+"/v1/jobs/"+id+"/result?format=ipynb")
	md = mustGet(t, base+"/v1/jobs/"+id+"/result?format=markdown")
	report = mustGet(t, base+"/v1/jobs/"+id+"/result?format=report")
	return ipynb, md, report
}

// oneShot runs the batch pipeline with the exact Config the server would
// build for req — the reference the daemon's bytes must reproduce.
func oneShot(t *testing.T, csvPath string, req jobRequest, opts Options) (ipynb, md, report []byte) {
	t.Helper()
	rel, _, err := table.FromCSVFile(csvPath, table.CSVOptions{Name: req.Relation})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildConfig(req, opts.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Generate(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := pipeline.BuildNotebook(res)
	var nbBuf, mdBuf, repBuf bytes.Buffer
	if err := nb.WriteIPYNB(&nbBuf); err != nil {
		t.Fatal(err)
	}
	if err := nb.WriteMarkdown(&mdBuf); err != nil {
		t.Fatal(err)
	}
	if err := res.Report().WriteJSON(&repBuf); err != nil {
		t.Fatal(err)
	}
	return nbBuf.Bytes(), mdBuf.Bytes(), repBuf.Bytes()
}

// normalizeReport strips the report fields that legitimately vary
// between a server job and a one-shot run: wall-clock timings, the
// thread count, and (when stripCache is set) the cache counters, which
// on a warm shared cache are deltas over prior jobs' entries.
func normalizeReport(t *testing.T, data []byte, stripCache bool) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	delete(m, "timings")
	if c, ok := m["config"].(map[string]any); ok {
		delete(c, "threads")
	}
	if stripCache {
		if c, ok := m["counts"].(map[string]any); ok {
			for _, k := range []string{"CubesBuilt", "CacheHits", "CacheRollups", "CacheMisses", "CacheEvictions"} {
				delete(c, k)
			}
		}
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerMatchesOneShot is the core e2e contract: a notebook
// generated through the daemon — admission, queueing, the shared cube
// cache, per-job observability — is byte-identical to one produced by a
// direct pipeline.Generate with the same Config, at every Threads
// setting, cold or warm cache.
func TestServerMatchesOneShot(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 600)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 2})
	defer shutdown()
	loadRelation(t, base, "tiny", csvPath)

	for i, threads := range []int{1, 3} {
		req := jobRequest{Relation: "tiny", Queries: 5, Perms: 120, Seed: 7, Threads: threads}
		gotNB, gotMD, gotRep := runServerJob(t, base, req)
		wantNB, wantMD, wantRep := oneShot(t, csvPath, req, Options{})

		if !bytes.Equal(gotNB, wantNB) {
			t.Errorf("threads=%d: server ipynb differs from one-shot (%d vs %d bytes)", threads, len(gotNB), len(wantNB))
		}
		if !bytes.Equal(gotMD, wantMD) {
			t.Errorf("threads=%d: server markdown differs from one-shot", threads)
		}
		// The first job runs against a cold shared cache, so even its
		// per-run cache counters must match the one-shot run exactly;
		// warm jobs see hits where the one-shot run saw misses.
		stripCache := i > 0
		if got, want := normalizeReport(t, gotRep, stripCache), normalizeReport(t, wantRep, stripCache); !bytes.Equal(got, want) {
			t.Errorf("threads=%d: server report differs from one-shot\n got: %s\nwant: %s", threads, got, want)
		}
	}
}

// TestServerNoCompressMatchesOneShot runs a daemon with the compressed
// columnar layer disabled: bytes must match both a -no-compress one-shot
// run and (for the notebook itself) the compressed daemon's output.
func TestServerNoCompressMatchesOneShot(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 600)
	req := jobRequest{Relation: "tiny", Queries: 5, Perms: 120, Seed: 7, Threads: 2}

	_, plainBase, plainShutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer plainShutdown()
	loadRelation(t, plainBase, "tiny", csvPath)
	plainNB, _, _ := runServerJob(t, plainBase, req)

	_, ncBase, ncShutdown := startTestServer(t, Options{MaxConcurrent: 1, NoCompress: true})
	defer ncShutdown()
	loadRelation(t, ncBase, "tiny", csvPath)
	ncNB, ncMD, ncRep := runServerJob(t, ncBase, req)

	wantNB, wantMD, wantRep := oneShot(t, csvPath, req, Options{NoCompress: true})
	if !bytes.Equal(ncNB, wantNB) {
		t.Errorf("no-compress server ipynb differs from no-compress one-shot")
	}
	if !bytes.Equal(ncMD, wantMD) {
		t.Errorf("no-compress server markdown differs from no-compress one-shot")
	}
	if got, want := normalizeReport(t, ncRep, false), normalizeReport(t, wantRep, false); !bytes.Equal(got, want) {
		t.Errorf("no-compress server report differs from one-shot\n got: %s\nwant: %s", got, want)
	}
	if !bytes.Equal(ncNB, plainNB) {
		t.Errorf("notebook bytes differ between compressed and no-compress daemons")
	}
}

// TestServerDegradedRunMatchesOneShot drives the degradation ladder
// through the daemon: a 1ns TimeBudget makes every governor admission
// see an expired deadline, so the run sheds deterministically — and the
// degraded notebook must still be byte-identical to a one-shot run with
// the same budget, with the report recording the concessions.
func TestServerDegradedRunMatchesOneShot(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 600)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()
	loadRelation(t, base, "tiny", csvPath)

	req := jobRequest{Relation: "tiny", Queries: 5, Perms: 120, Seed: 7, Threads: 2, TimeBudgetNS: 1}
	id := submitJob(t, base, req)
	v := waitJob(t, base, id)
	if v.State != stateDone {
		t.Fatalf("degraded job finished %s (%s), want done", v.State, v.Error)
	}
	if v.Summary == nil || len(v.Summary.Degraded) == 0 {
		t.Errorf("degraded run's status reports no degraded phases: %+v", v.Summary)
	}
	gotNB := mustGet(t, base+"/v1/jobs/"+id+"/result?format=ipynb")
	gotRep := mustGet(t, base+"/v1/jobs/"+id+"/result?format=report")
	if !strings.Contains(string(gotRep), "phase_degraded") {
		t.Errorf("degraded run's report carries no phase_degraded record")
	}

	wantNB, _, wantRep := oneShot(t, csvPath, req, Options{})
	if !bytes.Equal(gotNB, wantNB) {
		t.Errorf("degraded server ipynb differs from degraded one-shot")
	}
	if got, want := normalizeReport(t, gotRep, false), normalizeReport(t, wantRep, false); !bytes.Equal(got, want) {
		t.Errorf("degraded server report differs from one-shot\n got: %s\nwant: %s", got, want)
	}
}

// TestServerSessionLifecycle exercises the relation registry over HTTP:
// upload, duplicate refusal, listing, job against the upload, drop with
// cache eviction, and 404 afterwards.
func TestServerSessionLifecycle(t *testing.T) {
	ds, err := datagen.Tiny(3, 400)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := ds.Rel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}

	s, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()

	upload := func() (int, []byte) {
		resp, err := http.Post(base+"/v1/relations?name=up", "text/csv", bytes.NewReader(csv.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}
	if status, body := upload(); status != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", status, body)
	}
	if status, _ := upload(); status != http.StatusConflict {
		t.Errorf("duplicate upload: status %d, want 409", status)
	}

	var list []sessionView
	if err := json.Unmarshal(mustGet(t, base+"/v1/relations"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "up" || list[0].Rows != 400 {
		t.Fatalf("relation list = %+v, want one 400-row relation named up", list)
	}

	id := submitJob(t, base, jobRequest{Relation: "up", Queries: 4, Perms: 100, Seed: 2})
	if v := waitJob(t, base, id); v.State != stateDone {
		t.Fatalf("job on uploaded relation finished %s (%s)", v.State, v.Error)
	}

	delReq, err := http.NewRequest(http.MethodDelete, base+"/v1/relations/up", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var drop dropResponse
	err = json.NewDecoder(resp.Body).Decode(&drop)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drop: status %d, err %v", resp.StatusCode, err)
	}
	if drop.CacheEntriesDropped == 0 {
		t.Errorf("dropping a relation that just ran a job evicted no cache entries")
	}
	if s.Cache().Stats().Entries != 0 {
		t.Errorf("cache still holds %d entries after the only relation was dropped", s.Cache().Stats().Entries)
	}
	if status, _ := postJSON(t, base+"/v1/notebooks", jobRequest{Relation: "up", Queries: 4, Perms: 100}); status != http.StatusNotFound {
		t.Errorf("job on dropped relation: status %d, want 404", status)
	}
}

// TestServerRequestValidation covers the admission-side 4xx surface.
func TestServerRequestValidation(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 200)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()
	loadRelation(t, base, "tiny", csvPath)

	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown relation", map[string]any{"relation": "nope"}, http.StatusNotFound},
		{"bad solver", map[string]any{"relation": "tiny", "solver": "oracle"}, http.StatusBadRequest},
		{"bad sampling", map[string]any{"relation": "tiny", "sampling": "psychic"}, http.StatusBadRequest},
		{"negative budget", map[string]any{"relation": "tiny", "time_budget_ns": -1}, http.StatusBadRequest},
		{"unknown field", map[string]any{"relation": "tiny", "permz": 3}, http.StatusBadRequest},
		{"invalid config", map[string]any{"relation": "tiny", "perms": 2, "alpha": 0.05}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if status, body := postJSON(t, base+"/v1/notebooks", tc.body); status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, body, tc.want)
		}
	}
	if status, _ := httpGet(t, base+"/v1/jobs/j999999"); status != http.StatusNotFound {
		t.Errorf("unknown job: want 404, got %d", status)
	}

	id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 1})
	waitJob(t, base, id)
	if status, _ := httpGet(t, fmt.Sprintf("%s/v1/jobs/%s/result?format=sculpture", base, id)); status != http.StatusBadRequest {
		t.Errorf("unknown artifact format: want 400, got %d", status)
	}
}

// TestServerEventsStream checks the SSE endpoint replays the full event
// log of a finished job: state transitions, phase spans from the per-job
// registry, log lines, and the terminal done event with its summary.
func TestServerEventsStream(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 400)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()
	loadRelation(t, base, "tiny", csvPath)

	id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 5})
	waitJob(t, base, id)
	stream := string(mustGet(t, base+"/v1/jobs/"+id+"/events"))

	for _, want := range []string{
		"event: state", `data: {"state":"queued"}`, `data: {"state":"running"}`,
		"event: phase", `"name":"phase/stats"`, `"name":"run"`,
		"event: log",
		"event: done", `"queries":4`,
	} {
		if !strings.Contains(stream, want) {
			t.Errorf("SSE stream missing %q\nstream:\n%s", want, stream)
		}
	}
}
