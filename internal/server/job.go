package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"comparenb/internal/durable"
	"comparenb/internal/faultinject"
	"comparenb/internal/governor"
	"comparenb/internal/obs"
	"comparenb/internal/pipeline"
	"comparenb/internal/sampling"
	"comparenb/internal/table"
)

// Job states. A job is terminal in done, failed, failed_permanent or
// cancelled; artifacts are served only from done — no other state ever
// exposes partial results. failed_permanent is the quarantine state: a
// crash-interrupted job that exhausted its retry budget (or whose
// journaled request can no longer be executed) parks here with a
// recorded reason instead of being dropped or retried forever.
const (
	stateQueued          = "queued"
	stateRunning         = "running"
	stateDone            = "done"
	stateFailed          = "failed"
	stateFailedPermanent = "failed_permanent"
	stateCancelled       = "cancelled"
)

// terminalState reports whether a job in state st will never run again.
func terminalState(st string) bool {
	switch st {
	case stateDone, stateFailed, stateFailedPermanent, stateCancelled:
		return true
	}
	return false
}

// jobRequest is the POST /v1/notebooks body. Zero fields take the
// pipeline defaults (pipeline.NewConfig); the mapping lives in
// buildConfig so the e2e suite can build the exact same Config for its
// one-shot reference runs.
type jobRequest struct {
	Relation string `json:"relation"`
	// Tenant scopes quota accounting; empty falls back to the X-Tenant
	// header, then to "default".
	Tenant string `json:"tenant,omitempty"`

	Queries           int      `json:"queries,omitempty"`
	EpsD              *float64 `json:"eps_d,omitempty"`
	Perms             int      `json:"perms,omitempty"`
	Alpha             float64  `json:"alpha,omitempty"`
	Seed              int64    `json:"seed,omitempty"`
	Threads           int      `json:"threads,omitempty"`
	Solver            string   `json:"solver,omitempty"`
	Sampling          string   `json:"sampling,omitempty"`
	SampleFrac        float64  `json:"sample_frac,omitempty"`
	WSC               *bool    `json:"wsc,omitempty"`
	IncludeHypotheses bool     `json:"include_hypotheses,omitempty"`
	// TimeBudgetNS is the soft per-run budget in nanoseconds (the
	// degradation ladder, not hard cancellation), capped by the daemon's
	// JobTimeBudget.
	TimeBudgetNS int64 `json:"time_budget_ns,omitempty"`
}

// buildConfig maps a request onto a pipeline.Config, starting from
// NewConfig defaults and applying the daemon's caps. The server later
// overwrites Cache, Obs and Logf — everything the response bytes depend
// on is decided here, which is what makes server output reproducible by
// a one-shot pipeline.Generate with the same Config.
func buildConfig(req jobRequest, opts Options) (pipeline.Config, error) {
	cfg := pipeline.NewConfig()
	cfg.Name = "server"
	if req.Queries > 0 {
		cfg.EpsT = req.Queries
	}
	if req.EpsD != nil {
		cfg.EpsD = *req.EpsD
	}
	if req.Perms > 0 {
		cfg.Perms = req.Perms
	}
	if req.Alpha > 0 {
		cfg.Alpha = req.Alpha
	}
	cfg.Seed = req.Seed
	if req.Threads > 0 {
		cfg.Threads = req.Threads
	}
	if opts.JobThreads > 0 && cfg.Threads > opts.JobThreads {
		cfg.Threads = opts.JobThreads
	}
	switch req.Solver {
	case "", "heuristic":
		cfg.Solver = pipeline.SolverHeuristic
	case "exact":
		cfg.Solver = pipeline.SolverExact
	case "topk":
		cfg.Solver = pipeline.SolverTopK
	case "heuristic+2opt":
		cfg.Solver = pipeline.SolverHeuristicPlus
	default:
		return cfg, fmt.Errorf("unknown solver %q (heuristic, exact, topk, heuristic+2opt)", req.Solver)
	}
	switch req.Sampling {
	case "", "none":
	case "random":
		cfg.Sampling = sampling.Random
		cfg.SampleFrac = req.SampleFrac
	case "unbalanced":
		cfg.Sampling = sampling.Unbalanced
		cfg.SampleFrac = req.SampleFrac
	default:
		return cfg, fmt.Errorf("unknown sampling %q (none, random, unbalanced)", req.Sampling)
	}
	if req.WSC != nil {
		cfg.UseWSC = *req.WSC
	}
	cfg.IncludeHypotheses = req.IncludeHypotheses
	if req.TimeBudgetNS < 0 {
		return cfg, fmt.Errorf("time_budget_ns must be non-negative, got %d", req.TimeBudgetNS)
	}
	tb := time.Duration(req.TimeBudgetNS)
	if opts.JobTimeBudget > 0 && (tb == 0 || tb > opts.JobTimeBudget) {
		tb = opts.JobTimeBudget
	}
	cfg.TimeBudget = tb
	cfg.NoCompress = opts.NoCompress
	return cfg, cfg.Validate()
}

// artifact is one rendered output of a finished job.
type artifact struct {
	contentType string
	data        []byte
}

// sseEvent is one server-sent event, pre-serialised. The event log is
// the source of truth for /events: subscribers replay it from any index,
// so a slow reader can never lose events.
type sseEvent struct {
	name string
	data string // JSON object
}

// jobSummary is what a completed run left behind, for status responses
// and the terminal SSE event.
type jobSummary struct {
	Queries      int      `json:"queries"`
	Insights     int      `json:"insights"`
	Solver       string   `json:"solver"`
	Degraded     []string `json:"degraded,omitempty"`
	WallMS       int64    `json:"wall_ms"`
	CacheHits    int      `json:"cache_hits"`
	CacheRollups int      `json:"cache_rollups"`
	CacheMisses  int      `json:"cache_misses"`
}

// job is one admitted notebook-generation request.
type job struct {
	id       string
	tenant   string
	relation string
	rel      *table.Relation
	cfg      pipeline.Config
	admit    governor.Level
	created  time.Time
	trace    string // W3C trace id; immutable after construction

	// notBefore delays dequeue for recovered jobs under retry backoff.
	// It is written only before the job is published to the queue and
	// read under s.mu, so it needs no lock of its own.
	notBefore time.Time

	mu              sync.Mutex
	state           string
	attempt         int // execution attempts, counting across restarts
	started         time.Time
	finished        time.Time
	cancelFn        func()
	cancelRequested bool
	events          []sseEvent
	firstIdx        int // logical index of events[0]; >0 once the log was bounded
	notify          []chan struct{}
	artifacts       map[string]artifact
	errMsg          string
	failCode        int // HTTP status explaining a failed job
	summary         *jobSummary
}

func newJob(id, tenant string, req jobRequest, rel *table.Relation, cfg pipeline.Config, admit governor.Level, trace string) *job {
	j := &job{
		id:       id,
		tenant:   tenant,
		relation: req.Relation,
		rel:      rel,
		cfg:      cfg,
		admit:    admit,
		created:  time.Now(),
		trace:    trace,
		state:    stateQueued,
	}
	j.publish("state", stateEvent{State: stateQueued})
	if trace != "" {
		j.publish("trace", traceEvent{TraceID: trace})
	}
	return j
}

type stateEvent struct {
	State string `json:"state"`
}

type traceEvent struct {
	TraceID string `json:"trace_id"`
}

type phaseEvent struct {
	Name  string  `json:"name"`
	AtMS  float64 `json:"at_ms"`
	DurMS float64 `json:"dur_ms"`
}

type logEvent struct {
	Line string `json:"line"`
}

type errorEvent struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// maxJobEvents bounds one job's SSE event log. A chatty pipeline (log
// lines, phase spans) must not grow a job's memory without limit just
// because a subscriber might still want the backlog; past the cap the
// oldest events are dropped and late subscribers get a truncation
// marker instead.
const maxJobEvents = 1024

// publish appends one event to the log and wakes every subscriber. Both
// halves are non-blocking: the log is bounded, and the per-subscriber
// notify send never waits — a slow or never-reading subscriber cannot
// stall job completion.
func (j *job) publish(name string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{"error":"event marshal failed"}`)
	}
	j.mu.Lock()
	j.events = append(j.events, sseEvent{name: name, data: string(data)})
	if drop := len(j.events) - maxJobEvents; drop > 0 {
		// Copy to a fresh slice so the dropped prefix is actually freed.
		j.events = append([]sseEvent(nil), j.events[drop:]...)
		j.firstIdx += drop
	}
	subs := append([]chan struct{}(nil), j.notify...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// subscribe registers an event-log wakeup channel; the returned func
// unregisters it.
func (j *job) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.notify = append(j.notify, ch)
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		for i, c := range j.notify {
			if c == ch {
				j.notify = append(j.notify[:i:i], j.notify[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
}

// eventsSince returns the log suffix from logical index idx on, the
// effective start index (greater than idx when the bounded log has
// dropped events the subscriber never saw), and whether the job has
// reached a terminal state (so a subscriber that has drained the log
// can stop).
func (j *job) eventsSince(idx int) (evs []sseEvent, start int, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	terminal = terminalState(j.state)
	if idx < j.firstIdx {
		idx = j.firstIdx
	}
	off := idx - j.firstIdx
	if off >= len(j.events) {
		return nil, idx, terminal
	}
	return j.events[off:len(j.events):len(j.events)], idx, terminal
}

// markRunning flips queued → running (no-op when already cancelled).
func (j *job) markRunning() {
	j.mu.Lock()
	if j.state == stateQueued {
		j.state = stateRunning
		j.started = time.Now()
	}
	j.mu.Unlock()
	j.publish("state", stateEvent{State: stateRunning})
}

// armCancel installs the running job's cancel func. Returns false when
// cancellation was requested while the job sat in the queue — the caller
// must not start the pipeline.
func (j *job) armCancel(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelRequested {
		return false
	}
	j.cancelFn = cancel
	return true
}

// requestCancel asks a queued or running job to stop. Returns false for
// jobs already terminal.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.cancelRequested = true
	cancel := j.cancelFn
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// complete records a successful run and its artifacts.
func (j *job) complete(artifacts map[string]artifact, sum jobSummary) {
	j.mu.Lock()
	j.state = stateDone
	j.finished = time.Now()
	j.artifacts = artifacts
	j.summary = &sum
	j.mu.Unlock()
	j.publish("done", sum)
}

// fail records a terminal failure; code is the HTTP status the result
// endpoint will explain it with.
func (j *job) fail(code int, msg string) {
	j.mu.Lock()
	j.state = stateFailed
	j.finished = time.Now()
	j.failCode = code
	j.errMsg = msg
	j.mu.Unlock()
	j.publish("error", errorEvent{Error: msg, Code: code})
}

// cancelled records a client- or shutdown-driven cancellation.
func (j *job) cancelled(msg string) {
	j.mu.Lock()
	j.state = stateCancelled
	j.finished = time.Now()
	j.errMsg = msg
	j.mu.Unlock()
	j.publish("state", stateEvent{State: stateCancelled})
}

// runJob executes one admitted job on the calling worker goroutine: a
// fresh per-job obs registry (traced, with spans streamed to SSE), the
// daemon's shared cache, and the request's Config. Artifacts render only
// on success; every terminal path releases the worker slot exactly once.
//
// Durable ordering: the attempt is journaled (job-start) before the
// pipeline runs, artifacts are persisted and the job-done record fsynced
// before the job is marked done — so a crash at any point leaves either
// an open-ended journal entry (the job re-runs on the next boot) or a
// fully durable result, never an acknowledged-but-lost notebook.
func (s *Server) runJob(jobsCtx context.Context, j *job) {
	defer s.release(j)
	queueWait := time.Since(j.created)
	s.mu.Lock()
	tn := s.tenantLocked(j.tenant)
	s.mu.Unlock()
	s.tQueueWait.Observe(queueWait)
	tn.tQueue.Observe(queueWait)
	j.markRunning()

	jctx, cancel := context.WithCancel(jobsCtx)
	defer cancel()
	if !j.armCancel(cancel) {
		s.journalAppend(durable.Record{Type: durable.RecJobCancelled, ID: j.id})
		j.cancelled("cancelled while queued")
		s.cCancelled.Inc()
		s.finishJob(j, nil, tn, stateCancelled, queueWait, 0)
		return
	}

	j.mu.Lock()
	j.attempt++
	attempt := j.attempt
	j.mu.Unlock()
	if attempt > 1 {
		s.cRetries.Inc()
	}
	s.journalAppend(durable.Record{Type: durable.RecJobStart, ID: j.id, Attempt: attempt})

	reg := obs.New()
	reg.EnableTracing(0)
	reg.SetTraceID(j.trace)
	reg.ObserveSpans(func(name string, start, dur time.Duration) {
		if name == "run" || strings.HasPrefix(name, "phase/") {
			j.publish("phase", phaseEvent{
				Name:  name,
				AtMS:  float64(start) / float64(time.Millisecond),
				DurMS: float64(dur) / float64(time.Millisecond),
			})
		}
	})

	cfg := j.cfg
	cfg.Cache = s.cache
	cfg.Obs = reg
	cfg.Logf = func(format string, args ...any) {
		j.publish("log", logEvent{Line: fmt.Sprintf(format, args...)})
	}

	begin := time.Now()
	res, err := pipeline.GenerateContext(jctx, j.rel, cfg)
	wall := time.Since(begin)
	s.tWall.Observe(wall)
	tn.tWall.Observe(wall)
	if err != nil {
		reg.MarkInterrupted()
		switch {
		case errors.Is(err, context.Canceled) && jobsCtx.Err() != nil:
			// Shutdown interruption is deliberately NOT journaled as
			// terminal: the open-ended entry makes a durable server
			// re-enqueue the job on the next boot.
			j.fail(http.StatusServiceUnavailable, "server shut down mid-job")
			s.cFailed.Inc()
			s.finishJob(j, reg, tn, stateFailed, queueWait, wall)
		case errors.Is(err, context.Canceled):
			s.journalAppend(durable.Record{Type: durable.RecJobCancelled, ID: j.id})
			j.cancelled("cancelled by client")
			s.cCancelled.Inc()
			s.finishJob(j, reg, tn, stateCancelled, queueWait, wall)
		default:
			s.journalAppend(durable.Record{
				Type: durable.RecJobFailed, ID: j.id,
				Code: http.StatusInternalServerError, Error: err.Error(),
			})
			j.fail(http.StatusInternalServerError, err.Error())
			s.cFailed.Inc()
			s.finishJob(j, reg, tn, stateFailed, queueWait, wall)
		}
		return
	}

	arts, err := pipeline.RenderArtifacts(res, reg)
	if err != nil {
		s.failJournaled(j, http.StatusInternalServerError, "rendering artifacts: "+err.Error())
		s.finishJob(j, reg, tn, stateFailed, queueWait, wall)
		return
	}
	sum := jobSummary{
		Queries:      len(res.Solution.Order),
		Insights:     len(res.Insights),
		Solver:       res.TAP.Solver,
		Degraded:     res.Degraded.Phases,
		WallMS:       wall.Milliseconds(),
		CacheHits:    res.Counts.CacheHits,
		CacheRollups: res.Counts.CacheRollups,
		CacheMisses:  res.Counts.CacheMisses,
	}

	// Durable commit point: artifacts on disk, then the job-done record.
	// Either failing fails the job — a done acknowledgement must imply a
	// recoverable result.
	metas, err := s.persistJobArtifacts(j.id, arts)
	if err != nil {
		s.failJournaled(j, http.StatusInternalServerError, "persisting artifacts: "+err.Error())
		s.finishJob(j, reg, tn, stateFailed, queueWait, wall)
		return
	}
	if s.journal != nil {
		sumJSON, err := json.Marshal(sum)
		if err != nil {
			s.failJournaled(j, http.StatusInternalServerError, "encoding summary: "+err.Error())
			s.finishJob(j, reg, tn, stateFailed, queueWait, wall)
			return
		}
		if err := s.journalAppendStrict(durable.Record{
			Type: durable.RecJobDone, ID: j.id, Trace: j.trace, Artifacts: metas, Summary: sumJSON,
		}); err != nil {
			s.failJournaled(j, http.StatusInternalServerError, "journaling completion: "+err.Error())
			s.finishJob(j, reg, tn, stateFailed, queueWait, wall)
			return
		}
	}

	artifacts := make(map[string]artifact, len(arts))
	for _, a := range arts {
		artifacts[a.Key] = artifact{contentType: a.ContentType, data: a.Data}
	}
	tn.jobs.Inc()
	s.cDone.Inc()
	j.complete(artifacts, sum)
	s.finishJob(j, reg, tn, stateDone, queueWait, wall)
}

// finishJob is the terminal accounting every runJob exit path shares:
// the end-to-end admit-to-done histogram (done jobs only, so scrape
// counts match completed-job totals), the server-lifetime span counters,
// the flight-recorder entry, and one info-level structured log record
// keyed by the job's trace id. reg is nil for jobs cancelled before the
// pipeline started; every obs call tolerates that.
func (s *Server) finishJob(j *job, reg *obs.Registry, tn *tenantState, state string, queueWait, wall time.Duration) {
	e2e := time.Since(j.created)
	if state == stateDone {
		s.tE2E.Observe(e2e)
		tn.tE2E.Observe(e2e)
	}
	s.cSpans.Add(int64(reg.SpanCount()))
	s.cSpansDropped.Add(reg.Dropped())

	spans, tracks := reg.SnapshotSpans(0)
	shift := time.Duration(0)
	if reg != nil {
		if d := reg.StartTime().Sub(j.created); d > 0 {
			shift = d
		}
	}
	s.flight.Add(obs.FlightEntry{
		ID:      j.id,
		TraceID: j.trace,
		Labels: map[string]string{
			"tenant":   j.tenant,
			"relation": j.relation,
			"state":    state,
		},
		QueueWaitUS: float64(queueWait) / 1e3,
		RunUS:       float64(wall) / 1e3,
		E2EUS:       float64(e2e) / 1e3,
		ShiftUS:     float64(shift) / 1e3,
		Tracks:      tracks,
		Spans:       spans,
		SpanTotal:   int64(reg.SpanCount()),
		SpanDropped: reg.Dropped(),
	})

	j.mu.Lock()
	attempt := j.attempt
	j.mu.Unlock()
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "job",
		slog.String("job_id", j.id),
		slog.String("tenant", j.tenant),
		slog.String("relation", j.relation),
		slog.String("state", state),
		slog.String("trace_id", j.trace),
		slog.Int("attempt", attempt),
		slog.Float64("queue_wait_ms", float64(queueWait)/float64(time.Millisecond)),
		slog.Float64("wall_ms", float64(wall)/float64(time.Millisecond)),
		slog.Float64("e2e_ms", float64(e2e)/float64(time.Millisecond)),
	)
}

// failJournaled records a terminal server-side failure in the journal
// and on the job.
func (s *Server) failJournaled(j *job, code int, msg string) {
	s.journalAppend(durable.Record{Type: durable.RecJobFailed, ID: j.id, Code: code, Error: msg})
	j.fail(code, msg)
	s.cFailed.Inc()
}

// handleCreateJob is POST /v1/notebooks: the admission decision.
// Outcomes reuse the governor ladder — Full (a worker slot is free; runs
// immediately), Degrade (queued), Shed (429, queue full).
func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	faultinject.Fire(faultinject.ServerAdmit)
	var req jobRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Tenant")
	}
	if tenant == "" {
		tenant = "default"
	}
	if len(tenant) > 64 {
		httpError(w, http.StatusBadRequest, "tenant name too long (max 64 bytes)")
		return
	}
	cfg, err := buildConfig(req, s.opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	trace := traceIDFrom(r.Context())

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.ready {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is recovering; retry when /readyz reports ready")
		return
	}
	sess := s.sessions[req.Relation]
	if sess == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, fmt.Sprintf("relation %q not loaded", req.Relation))
		return
	}
	t := s.tenantLocked(tenant)
	if len(s.queue) >= s.opts.QueueDepth || t.queued >= s.opts.TenantQueueDepth {
		shedC, tenantShedC := s.cAdmitShed, t.shed
		s.mu.Unlock()
		shedC.Inc()
		tenantShedC.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, admitResponse{
			Admit: governor.Shed.String(),
			Error: "admission queue full; retry later",
		})
		return
	}
	admit := governor.Degrade
	if s.runningN < s.opts.MaxConcurrent && t.running < s.opts.TenantConcurrent && len(s.queue) == 0 {
		admit = governor.Full
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	if s.journal != nil {
		// Write-ahead admission: the record must be durable before the
		// 202 goes out, or a crash could lose an acknowledged job. The
		// fsync happens under s.mu — admissions serialise on it, which is
		// fine at this daemon's request rates.
		reqJSON, err := json.Marshal(req)
		if err == nil {
			err = s.journalAppendStrict(durable.Record{
				Type: durable.RecJobAdmit, ID: id, Tenant: tenant, Trace: trace, Request: reqJSON,
			})
		}
		if err != nil {
			s.mu.Unlock()
			httpError(w, http.StatusInternalServerError, "journaling admission: "+err.Error())
			return
		}
	}
	j := newJob(id, tenant, req, sess.rel, cfg, admit, trace)
	s.jobs[id] = j
	s.queue = append(s.queue, j)
	t.queued++
	s.gQueued.Set(int64(len(s.queue)))
	s.mu.Unlock()

	if admit == governor.Full {
		s.cAdmitFull.Inc()
	} else {
		s.cAdmitQueue.Inc()
	}
	s.poke()
	writeJSON(w, http.StatusAccepted, admitResponse{JobID: id, State: stateQueued, Admit: admit.String(), TraceID: trace})
}

type admitResponse struct {
	JobID   string `json:"job_id,omitempty"`
	State   string `json:"state,omitempty"`
	Admit   string `json:"admit"`
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error,omitempty"`
}

// jobStatusView is the GET /v1/jobs/{id} body.
type jobStatusView struct {
	ID            string      `json:"id"`
	Tenant        string      `json:"tenant"`
	Relation      string      `json:"relation"`
	State         string      `json:"state"`
	Admit         string      `json:"admit"`
	TraceID       string      `json:"trace_id,omitempty"`
	QueuePosition int         `json:"queue_position,omitempty"`
	CreatedMS     int64       `json:"created_unix_ms"`
	StartedMS     int64       `json:"started_unix_ms,omitempty"`
	FinishedMS    int64       `json:"finished_unix_ms,omitempty"`
	Attempts      int         `json:"attempts,omitempty"`
	Error         string      `json:"error,omitempty"`
	Summary       *jobSummary `json:"summary,omitempty"`
}

func (s *Server) statusView(j *job) jobStatusView {
	j.mu.Lock()
	v := jobStatusView{
		ID:        j.id,
		Tenant:    j.tenant,
		Relation:  j.relation,
		State:     j.state,
		Admit:     j.admit.String(),
		TraceID:   j.trace,
		CreatedMS: j.created.UnixMilli(),
		Attempts:  j.attempt,
		Error:     j.errMsg,
		Summary:   j.summary,
	}
	if !j.started.IsZero() {
		v.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		v.FinishedMS = j.finished.UnixMilli()
	}
	queued := j.state == stateQueued
	j.mu.Unlock()
	if queued {
		v.QueuePosition = s.queuePosition(j)
	}
	return v
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.statusView(j))
}

// handleJobResult serves one rendered artifact of a done job
// (?format=ipynb|markdown|html|report|trace|metrics, default ipynb).
// Any non-done state is refused — a cancelled or failed job has no
// partial notebook to leak.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ipynb"
	}
	j.mu.Lock()
	state, failCode, errMsg := j.state, j.failCode, j.errMsg
	art, ok := j.artifacts[format]
	j.mu.Unlock()
	switch state {
	case stateDone:
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (ipynb, markdown, html, report, trace, metrics)", format))
			return
		}
		w.Header().Set("Content-Type", art.contentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(art.data) // client disconnect; nowhere to report
	case stateFailed:
		if failCode == 0 {
			failCode = http.StatusInternalServerError
		}
		httpError(w, failCode, "job failed: "+errMsg)
	case stateFailedPermanent:
		if failCode == 0 {
			failCode = http.StatusInternalServerError
		}
		httpError(w, failCode, "job quarantined: "+errMsg)
	case stateCancelled:
		httpError(w, http.StatusGone, "job was cancelled; no result")
	default:
		httpError(w, http.StatusConflict, "job not finished; state is "+state)
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	// A queued job must also leave the queue so no worker picks it up.
	s.mu.Lock()
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
			s.tenantLocked(j.tenant).queued--
			s.gQueued.Set(int64(len(s.queue)))
			break
		}
	}
	s.mu.Unlock()
	if !j.requestCancel() {
		httpError(w, http.StatusConflict, "job already finished")
		return
	}
	// A job cancelled before any worker claimed it is terminal now; a
	// running one becomes terminal when the pipeline notices its context.
	j.mu.Lock()
	if j.state == stateQueued {
		j.mu.Unlock()
		s.journalAppend(durable.Record{Type: durable.RecJobCancelled, ID: j.id})
		j.cancelled("cancelled by client")
		s.cCancelled.Inc()
	} else {
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusAccepted, admitResponse{JobID: j.id, State: stateCancelled, Admit: j.admit.String()})
}

// handleJobEvents is GET /v1/jobs/{id}/events: a server-sent-event
// stream replaying the job's event log and following it live until the
// job reaches a terminal state or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	notify, unsub := j.subscribe()
	defer unsub()
	s.mu.Lock()
	tn := s.tenantLocked(j.tenant)
	s.mu.Unlock()
	streamBegin := time.Now()
	firstFlushed := false
	ctx := r.Context()
	idx := 0
	for {
		evs, start, terminal := j.eventsSince(idx)
		if start > idx {
			// The bounded log dropped events this subscriber never saw;
			// say so instead of silently skipping them.
			_, _ = fmt.Fprintf(w, "event: truncated\ndata: {\"dropped\":%d}\n\n", start-idx)
			idx = start
		}
		for _, ev := range evs {
			// Write errors mean the client went away; the ctx select
			// below will see it.
			_, _ = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", idx, ev.name, ev.data)
			idx++
		}
		fl.Flush()
		if !firstFlushed && idx > 0 {
			// SSE first-event latency: subscribe → first delivered batch.
			firstFlushed = true
			d := time.Since(streamBegin)
			s.tSSEFirst.Observe(d)
			tn.tSSE.Observe(d)
		}
		if terminal {
			if more, _, _ := j.eventsSince(idx); len(more) == 0 {
				return
			}
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-notify:
		}
	}
}
