package server

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"comparenb/internal/faultinject"
)

// The crash suite kills a real server process (SIGKILL, no cleanup) at a
// chosen durability fault site mid-run, then reopens the state dir and
// asserts the recovery contract: every job the journal acknowledged is
// either served byte-identical to a one-shot run or re-run to success,
// interrupted work is never silently dropped, and no partial artifact is
// ever visible.
//
// The child is this test binary re-executed with -test.run targeting
// TestCrashServerHelper and the scenario in environment variables — the
// standard Go idiom for tests that must die for real.

// TestCrashServerHelper is the process that gets killed. It is a no-op
// unless COMPARENB_CRASH_HELPER=1. It boots a durable server on the
// state dir from the environment, loads a relation, runs one job to
// completion, then arms a SIGKILL at the requested fault site and count
// and submits a second job. With MaxConcurrent=1 and sequential
// submission the Disk* firing order is deterministic, so the kill lands
// on the same syscall every run.
func TestCrashServerHelper(t *testing.T) {
	if os.Getenv("COMPARENB_CRASH_HELPER") != "1" {
		t.Skip("crash helper: only runs re-executed by the crash suite")
	}
	stateDir := os.Getenv("CRASH_STATE_DIR")
	csv := os.Getenv("CRASH_CSV")
	site := os.Getenv("CRASH_SITE")
	n, err := strconv.ParseUint(os.Getenv("CRASH_N"), 10, 64)
	if err != nil {
		t.Fatalf("CRASH_N: %v", err)
	}

	_, base, _ := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csv)
	waitReady(t, base)

	req := crashJobRequest()
	id1 := submitJob(t, base, req)
	if v := waitJob(t, base, id1); v.State != stateDone {
		t.Fatalf("job 1 finished %s (%s), want done before the crash", v.State, v.Error)
	}

	// Armed only now, so the relation load and job 1 are fully durable
	// and the counted firings start at the second submission.
	faultinject.Set(site, faultinject.OnCall(n, func() {
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL) // the crash under test
	}))

	id2 := submitJob(t, base, req)
	waitJob(t, base, id2)
	t.Fatalf("helper survived: fault at %s #%d never fired", site, n)
}

// crashJobRequest is the workload both the helper and the parent's
// one-shot reference use — identical bytes are the acceptance bar.
func crashJobRequest() jobRequest {
	return jobRequest{Relation: "tiny", Queries: 4, Perms: 40, Seed: 21}
}

// runCrashHelper re-executes the test binary as the crash helper and
// asserts it died by SIGKILL (not by finishing, not by a test failure).
func runCrashHelper(t *testing.T, stateDir, csv, site string, n uint64) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashServerHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"COMPARENB_CRASH_HELPER=1",
		"CRASH_STATE_DIR="+stateDir,
		"CRASH_CSV="+csv,
		"CRASH_SITE="+site,
		"CRASH_N="+strconv.FormatUint(n, 10),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("crash helper exited cleanly; fault never fired:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !asExitError(err, &exitErr) {
		t.Fatalf("crash helper: %v\n%s", err, out)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("crash helper exited %v, want death by SIGKILL:\n%s", err, out)
	}
}

// asExitError is errors.As without importing errors twice in tests.
func asExitError(err error, target **exec.ExitError) bool {
	if e, ok := err.(*exec.ExitError); ok {
		*target = e
		return true
	}
	return false
}

// TestCrashRecoveryAtFaultSites is the parent: for each durability fault
// site, crash a real server mid-job and verify the restart makes every
// acknowledged job whole.
//
// Firing counts are derived from the deterministic sequence after the
// hook is armed (relation + job 1 already durable, MaxConcurrent=1):
// admission journal append, start append, then per artifact
// write/fsync/rename/dir-fsync ×6, then the done append. So:
//
//	DiskWrite:  #1 admit, #2 start, #3–8 artifact writes, #9 done
//	DiskFsync:  #1 admit, #2 start, #3–14 artifact file+dir syncs, #15 done
//	DiskRename: #1–6 artifact renames
//	ServerAdmit fires once per admission attempt — #1 is job 2's.
func TestCrashRecoveryAtFaultSites(t *testing.T) {
	cases := []struct {
		name string
		site string
		n    uint64
		// job2Admitted: false when the kill lands before job 2's admit
		// record became durable — the job must then not exist at all.
		job2Admitted bool
	}{
		{"admit", faultinject.ServerAdmit, 1, false},
		{"journal-write", faultinject.DiskWrite, 5, true}, // mid artifact persist
		{"fsync", faultinject.DiskFsync, 8, true},         // mid artifact persist
		{"rename", faultinject.DiskRename, 3, true},       // between rename 2 and 3
		{"done-record", faultinject.DiskWrite, 9, true},   // artifacts on disk, done record torn
		{"start-record", faultinject.DiskWrite, 2, true},  // admitted, never started
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stateDir := t.TempDir()
			csv := writeTinyCSV(t, 21, 60)
			runCrashHelper(t, stateDir, csv, tc.site, tc.n)

			wantIpynb, _, _ := oneShot(t, csv, crashJobRequest(), Options{MaxConcurrent: 1})

			s, base, shutdown := startDurableServer(t, stateDir, Options{MaxConcurrent: 1})
			defer shutdown()
			waitReady(t, base)

			// Nothing half-renamed may survive the restart sweep.
			assertNoTempFiles(t, stateDir)

			var jobs []jobStatusView
			if err := json.Unmarshal(mustGet(t, base+"/v1/jobs"), &jobs); err != nil {
				t.Fatal(err)
			}
			wantJobs := 2
			if !tc.job2Admitted {
				wantJobs = 1
			}
			if len(jobs) != wantJobs {
				t.Fatalf("recovered %d jobs %+v, want %d", len(jobs), jobs, wantJobs)
			}

			// Job 1 completed before the crash: it must be served from
			// disk (not re-run) and byte-identical to the one-shot bytes.
			if v := waitJob(t, base, "j000001"); v.State != stateDone || v.Attempts != 1 {
				t.Fatalf("job 1 recovered as %s with %d attempts, want done from disk", v.State, v.Attempts)
			}
			got1 := mustGet(t, base+"/v1/jobs/j000001/result?format=ipynb")
			if !bytes.Equal(got1, wantIpynb) {
				t.Error("job 1's recovered notebook differs from the one-shot bytes")
			}
			if s.cRecoveredDone.Value() != 1 {
				t.Errorf("server_recovered_done = %d, want 1", s.cRecoveredDone.Value())
			}

			if !tc.job2Admitted {
				return
			}
			// Job 2 was interrupted: the restart re-runs it to the same
			// bytes (attempt 2 when the crash hit mid-run, attempt 1 when
			// it died still queued).
			v2 := waitJob(t, base, "j000002")
			if v2.State != stateDone {
				t.Fatalf("interrupted job 2 finished %s (%s), want re-run to done", v2.State, v2.Error)
			}
			got2 := mustGet(t, base+"/v1/jobs/j000002/result?format=ipynb")
			if !bytes.Equal(got2, wantIpynb) {
				t.Error("job 2's re-run notebook differs from the one-shot bytes")
			}
			if s.cRecoveredRequeued.Value() != 1 {
				t.Errorf("server_recovered_requeued = %d, want 1", s.cRecoveredRequeued.Value())
			}
		})
	}
}

// TestCrashThenQuarantine: the same crash state reopened with an
// exhausted retry budget must quarantine the interrupted job — visibly,
// with a recorded reason — and the quarantine must stick across a
// further restart with a bigger budget.
func TestCrashThenQuarantine(t *testing.T) {
	stateDir := t.TempDir()
	csv := writeTinyCSV(t, 21, 60)
	// Kill between artifact renames: job 2 crashed during attempt 1.
	runCrashHelper(t, stateDir, csv, faultinject.DiskRename, 3)

	s, base, shutdown := startDurableServer(t, stateDir, Options{MaxConcurrent: 1, MaxAttempts: 1})
	waitReady(t, base)
	v := waitJob(t, base, "j000002")
	if v.State != stateFailedPermanent {
		t.Fatalf("job 2 with MaxAttempts=1 recovered as %s, want failed_permanent", v.State)
	}
	if !strings.Contains(v.Error, "attempt 1/1") {
		t.Errorf("quarantine reason %q does not name the exhausted attempts", v.Error)
	}
	if s.cQuarantined.Value() != 1 {
		t.Errorf("server_jobs_quarantined = %d, want 1", s.cQuarantined.Value())
	}
	// Its partial artifacts are gone from the store.
	if _, err := os.Stat(filepath.Join(stateDir, "artifacts", "j000002")); !os.IsNotExist(err) {
		t.Errorf("quarantined job's artifact dir survived (err %v)", err)
	}
	// Job 1 is untouched by the neighbour's quarantine.
	if v := waitJob(t, base, "j000001"); v.State != stateDone {
		t.Fatalf("job 1 is %s, want done", v.State)
	}
	shutdown()

	_, base2, shutdown2 := startDurableServer(t, stateDir, Options{MaxConcurrent: 1, MaxAttempts: 5})
	defer shutdown2()
	waitReady(t, base2)
	if v := waitJob(t, base2, "j000002"); v.State != stateFailedPermanent {
		t.Fatalf("quarantine did not survive restart: %s", v.State)
	}
}

// assertNoTempFiles walks the state dir checking the store's crash sweep
// left no .tmp files behind.
func assertNoTempFiles(t *testing.T, root string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			t.Errorf("temp file %s survived recovery", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
