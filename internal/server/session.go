package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	"sort"
	"strings"
	"time"

	"comparenb/internal/durable"
	"comparenb/internal/faultinject"
	"comparenb/internal/table"
)

// session is one loaded relation: the parsed table plus what the CSV
// loader decided about it. Relations load once and are shared (read-only)
// by every job; the *table.Relation pointer doubles as the cube cache's
// relation identity, so DropRelation can evict exactly this session's
// cubes.
type session struct {
	name   string
	rel    *table.Relation
	report *table.CSVReport
	source string
	loaded time.Time
}

// loadRequest is the JSON body of POST /v1/relations (path-based load).
// CSV uploads use a text/csv body with ?name= instead.
type loadRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`

	ForceCategorical          []string `json:"force_categorical,omitempty"`
	ForceNumeric              []string `json:"force_numeric,omitempty"`
	Drop                      []string `json:"drop,omitempty"`
	MaxCategoricalCardinality int      `json:"max_categorical_cardinality,omitempty"`
}

type sessionView struct {
	Name        string   `json:"name"`
	Rows        int      `json:"rows"`
	Categorical []string `json:"categorical"`
	Numeric     []string `json:"numeric"`
	Dropped     []string `json:"dropped,omitempty"`
	Source      string   `json:"source"`
	LoadedMS    int64    `json:"loaded_unix_ms"`
}

func (sess *session) view() sessionView {
	return sessionView{
		Name:        sess.name,
		Rows:        sess.report.Rows,
		Categorical: sess.report.Categorical,
		Numeric:     sess.report.Numeric,
		Dropped:     sess.report.Dropped,
		Source:      sess.source,
		LoadedMS:    sess.loaded.UnixMilli(),
	}
}

// validName vets relation names: they appear in URLs, cache diagnostics
// and metrics, so keep them boring.
func validName(name string) error {
	if name == "" {
		return errors.New("relation name must not be empty")
	}
	if len(name) > 64 {
		return fmt.Errorf("relation name too long (%d bytes, max 64)", len(name))
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("relation name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return nil
}

// handleLoadRelation is POST /v1/relations. Two request shapes:
//
//   - application/json {"name": ..., "path": ...}: the daemon reads the
//     CSV from its own filesystem — the operator-trusted path.
//   - any other content type: the body IS the CSV (bounded by
//     MaxUploadBytes), named by the ?name= query parameter.
//
// Loading is admission-controlled like jobs (503 while draining, 507
// when the registry is full) and duplicate names are refused with 409 —
// a relation's identity must stay stable while jobs and cached cubes
// reference it.
func (s *Server) handleLoadRelation(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, ready, full := s.draining, s.ready, len(s.sessions) >= s.opts.MaxRelations
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !ready {
		httpError(w, http.StatusServiceUnavailable, "server is recovering; retry when /readyz reports ready")
		return
	}
	if full {
		httpError(w, http.StatusInsufficientStorage,
			fmt.Sprintf("session registry full (%d relations); DELETE one first", s.opts.MaxRelations))
		return
	}

	// Both shapes read the full CSV into memory first: the bytes feed the
	// parser AND (durable mode) the state dir's relations/ copy, so the
	// relation a recovering server reloads is exactly what was loaded —
	// even when the original path has since changed or vanished.
	var (
		name   string
		source string
		csv    []byte
		lopts  loadRequest // option fields only; Name/Path stay zero
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req loadRequest
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := validName(req.Name); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if req.Path == "" {
			httpError(w, http.StatusBadRequest, "path must not be empty")
			return
		}
		name, source = req.Name, "path:"+req.Path
		lopts = loadRequest{
			ForceCategorical:          req.ForceCategorical,
			ForceNumeric:              req.ForceNumeric,
			Drop:                      req.Drop,
			MaxCategoricalCardinality: req.MaxCategoricalCardinality,
		}
		faultinject.Fire(faultinject.ServerSessionLoad)
		var err error
		csv, err = os.ReadFile(req.Path)
		if err != nil {
			httpError(w, http.StatusBadRequest, "loading relation: "+err.Error())
			return
		}
	} else {
		name, source = r.URL.Query().Get("name"), "upload"
		if err := validName(name); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		faultinject.Fire(faultinject.ServerSessionLoad)
		body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
		var err error
		csv, err = io.ReadAll(body)
		if err != nil {
			code := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
			}
			httpError(w, code, "reading upload: "+err.Error())
			return
		}
	}

	rel, rep, loadErr := table.FromCSV(bytes.NewReader(csv), table.CSVOptions{
		Name:                      name,
		ForceCategorical:          lopts.ForceCategorical,
		ForceNumeric:              lopts.ForceNumeric,
		Drop:                      lopts.Drop,
		MaxCategoricalCardinality: lopts.MaxCategoricalCardinality,
		MaxRows:                   s.opts.MaxRows,
	})
	if loadErr != nil {
		code := http.StatusBadRequest
		if errors.Is(loadErr, table.ErrTooManyRows) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "loading relation: "+loadErr.Error())
		return
	}

	sess := &session{name: name, rel: rel, report: rep, source: source, loaded: time.Now()}
	if code, err := s.registerSession(sess, csv, lopts); err != nil {
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, sess.view())
}

// registerSession claims the relation name in the registry, then (in
// durable mode) persists the CSV and journals the load. The claim is
// rolled back if persistence fails, so a registered relation is always a
// recoverable one. Claiming first means a crash between claim and
// journal can admit jobs against a relation the journal never saw —
// replay quarantines those with "relation not recoverable" rather than
// guessing.
func (s *Server) registerSession(sess *session, csv []byte, lopts loadRequest) (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return http.StatusServiceUnavailable, errors.New("server is draining")
	}
	if _, dup := s.sessions[sess.name]; dup {
		s.mu.Unlock()
		return http.StatusConflict, fmt.Errorf("relation %q already loaded; DELETE it first", sess.name)
	}
	if len(s.sessions) >= s.opts.MaxRelations {
		s.mu.Unlock()
		return http.StatusInsufficientStorage,
			fmt.Errorf("session registry full (%d relations); DELETE one first", s.opts.MaxRelations)
	}
	s.sessions[sess.name] = sess
	s.gSessions.Set(int64(len(s.sessions)))
	s.mu.Unlock()

	if err := s.persistSession(sess.name, csv, lopts); err != nil {
		s.mu.Lock()
		delete(s.sessions, sess.name)
		s.gSessions.Set(int64(len(s.sessions)))
		s.mu.Unlock()
		return http.StatusInternalServerError, fmt.Errorf("persisting relation: %w", err)
	}
	s.cSessLoad.Inc()
	return 0, nil
}

// persistSession stores the relation's CSV bytes and journals the load;
// a no-op in memory-only mode.
func (s *Server) persistSession(name string, csv []byte, lopts loadRequest) error {
	if s.journal == nil {
		return nil
	}
	file := path.Join(durable.RelationsDir, name+".csv")
	if _, err := s.store.WriteFile(file, csv); err != nil {
		return err
	}
	loadJSON, err := json.Marshal(lopts)
	if err != nil {
		return fmt.Errorf("encoding load options: %w", err)
	}
	return s.journalAppendStrict(durable.Record{
		Type: durable.RecSessionLoad, Name: name, File: file, Load: loadJSON,
	})
}

// LoadRelationFile loads a CSV from the daemon's filesystem into the
// session registry — the programmatic face of POST /v1/relations, used
// by cmd/comparenbd's -load preload flag and by tests. Unlike the HTTP
// handler it is allowed before Run's replay finishes: preloads run
// between New and Run, and replay skips names they already claimed.
func (s *Server) LoadRelationFile(name, file string) error {
	if err := validName(name); err != nil {
		return err
	}
	faultinject.Fire(faultinject.ServerSessionLoad)
	csv, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("loading relation %q: %w", name, err)
	}
	rel, rep, err := table.FromCSV(bytes.NewReader(csv), table.CSVOptions{Name: name, MaxRows: s.opts.MaxRows})
	if err != nil {
		return fmt.Errorf("loading relation %q: %w", name, err)
	}
	sess := &session{name: name, rel: rel, report: rep, source: "path:" + file, loaded: time.Now()}
	if _, err := s.registerSession(sess, csv, loadRequest{}); err != nil {
		return err
	}
	return nil
}

// handleListRelations is GET /v1/relations: every session, name-sorted.
func (s *Server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]sessionView, 0, len(s.sessions))
	for _, sess := range s.sessions {
		views = append(views, sess.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	writeJSON(w, http.StatusOK, views)
}

// handleDropRelation is DELETE /v1/relations/{name}: removes the session
// and evicts its cubes from the shared cache. Running jobs holding the
// relation pointer finish unaffected — the relation is immutable and the
// cache rebuilds on demand — but new jobs can no longer name it.
func (s *Server) handleDropRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	sess := s.sessions[name]
	if sess != nil {
		delete(s.sessions, name)
		s.gSessions.Set(int64(len(s.sessions)))
	}
	s.mu.Unlock()
	if sess == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("relation %q not loaded", name))
		return
	}
	if s.journal != nil {
		s.journalAppend(durable.Record{Type: durable.RecSessionDrop, Name: name})
		// Best-effort: the journal record alone already stops recovery
		// from reloading the relation.
		_ = s.store.Remove(path.Join(durable.RelationsDir, name+".csv"))
	}
	dropped := s.cache.DropRelation(sess.rel)
	s.cSessDrop.Inc()
	writeJSON(w, http.StatusOK, dropResponse{Name: name, CacheEntriesDropped: dropped})
}

type dropResponse struct {
	Name                string `json:"name"`
	CacheEntriesDropped int    `json:"cache_entries_dropped"`
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client disconnect; nowhere to report
}

// decodeJSON parses a bounded JSON request body, refusing unknown fields
// so typos in quota-sensitive knobs fail loudly instead of silently
// taking defaults.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}
