package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"comparenb/internal/testutil"
)

// TestServerSoakConcurrentTenants is the concurrency gate for the
// serving path, meant to run under -race: several tenants fire bursts of
// jobs at one daemon, all jobs share the one cube cache, and afterwards
//
//   - every job's notebook is byte-identical to its one-shot reference
//     (same seed ⇒ same bytes, no matter which tenants ran concurrently
//     or what order the shared cache was filled in),
//   - the shared cache's counters moved monotonically,
//   - shutting the server down leaves zero goroutines behind.
func TestServerSoakConcurrentTenants(t *testing.T) {
	before := runtime.NumGoroutine()
	csvPath := writeTinyCSV(t, 1, 400)

	s, base, shutdown := startTestServer(t, Options{MaxConcurrent: 4, QueueDepth: 256})
	loadRelation(t, base, "tiny", csvPath)

	const tenants, jobsPer = 4, 5

	// One-shot reference bytes per seed, computed against a private cache.
	refs := make(map[int64][]byte, jobsPer)
	for k := 0; k < jobsPer; k++ {
		seed := int64(100 + k)
		nb, _, _ := oneShot(t, csvPath, soakRequest(seed), Options{})
		refs[seed] = nb
	}

	statsBefore := s.Cache().Stats()
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		for k := 0; k < jobsPer; k++ {
			wg.Add(1)
			go func(tn, k int) {
				defer wg.Done()
				seed := int64(100 + k)
				tenant := fmt.Sprintf("tenant-%d", tn)
				if err := soakOneJob(base, tenant, seed, refs[seed]); err != nil {
					t.Errorf("tenant %s seed %d: %v", tenant, seed, err)
				}
			}(tn, k)
		}
	}
	wg.Wait()

	statsAfter := s.Cache().Stats()
	if statsAfter.Hits < statsBefore.Hits || statsAfter.RollupHits < statsBefore.RollupHits ||
		statsAfter.Misses < statsBefore.Misses || statsAfter.Evictions < statsBefore.Evictions {
		t.Errorf("shared cache counters moved backwards: before %+v, after %+v", statsBefore, statsAfter)
	}
	if statsAfter.Hits == statsBefore.Hits {
		t.Errorf("soak of %d identical-shape jobs produced no shared-cache hits (before %+v, after %+v)",
			tenants*jobsPer, statsBefore, statsAfter)
	}

	shutdown()
	testutil.WaitGoroutinesSettle(t, before)
}

func soakRequest(seed int64) jobRequest {
	return jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: seed, Threads: 2}
}

// soakOneJob submits one job and verifies its notebook bytes against the
// reference. It returns errors instead of calling t.Fatal because it
// runs on a non-test goroutine.
func soakOneJob(base, tenant string, seed int64, want []byte) error {
	req := soakRequest(seed)
	req.Tenant = tenant
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/notebooks", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var admit admitResponse
	err = json.NewDecoder(resp.Body).Decode(&admit)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("admission status %d (%s)", resp.StatusCode, admit.Error)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s never finished", admit.JobID)
		}
		st, body, err := soakGet(base + "/v1/jobs/" + admit.JobID)
		if err != nil {
			return err
		}
		if st != http.StatusOK {
			return fmt.Errorf("status poll: %d", st)
		}
		var v jobStatusView
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		switch v.State {
		case stateDone:
			st, got, err := soakGet(base + "/v1/jobs/" + admit.JobID + "/result?format=ipynb")
			if err != nil {
				return err
			}
			if st != http.StatusOK {
				return fmt.Errorf("result fetch: %d", st)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("notebook bytes differ from one-shot reference (%d vs %d bytes)", len(got), len(want))
			}
			return nil
		case stateFailed, stateCancelled:
			return fmt.Errorf("job finished %s (%s)", v.State, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func soakGet(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// TestServerShedsAtQueueBounds fills the admission queue past both the
// per-tenant and global bounds and asserts 429s with the governor's shed
// vocabulary, then drains cleanly.
func TestServerShedsAtQueueBounds(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 400)
	_, base, shutdown := startTestServer(t, Options{
		MaxConcurrent:    1,
		QueueDepth:       3,
		TenantQueueDepth: 2,
	})
	defer shutdown()
	loadRelation(t, base, "tiny", csvPath)

	// A slow job pins the single worker so everything behind it queues.
	slow := jobRequest{Relation: "tiny", Queries: 4, Perms: 40000, Seed: 1}
	slowID := submitJob(t, base, slow)

	submit := func(tenant string, seed int64) (int, admitResponse) {
		req := soakRequest(seed)
		req.Tenant = tenant
		status, body := postJSON(t, base+"/v1/notebooks", req)
		var resp admitResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("admission response not JSON: %v: %s", err, body)
		}
		return status, resp
	}

	// Tenant a fills its per-tenant share of 2, then sheds.
	if st, r := submit("a", 1); st != http.StatusAccepted || r.Admit != "degrade" {
		t.Fatalf("first queued job: status %d admit %q, want 202 degrade", st, r.Admit)
	}
	if st, _ := submit("a", 2); st != http.StatusAccepted {
		t.Fatalf("second queued job: status %d, want 202", st)
	}
	if st, r := submit("a", 3); st != http.StatusTooManyRequests || r.Admit != "shed" {
		t.Errorf("tenant over its queue share: status %d admit %q, want 429 shed", st, r.Admit)
	}
	// Tenant b still fits (global queue 2/3), then the global bound trips.
	if st, _ := submit("b", 4); st != http.StatusAccepted {
		t.Errorf("other tenant with queue room: status %d, want 202", st)
	}
	if st, r := submit("b", 5); st != http.StatusTooManyRequests || r.Admit != "shed" {
		t.Errorf("global queue full: status %d admit %q, want 429 shed", st, r.Admit)
	}

	// Cancel the pinned job so shutdown doesn't wait out 40k permutations.
	delReq, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+slowID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
}
