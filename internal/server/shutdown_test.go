package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"comparenb/internal/faultinject"
	"comparenb/internal/testutil"
)

// bootServer starts a Server whose Run context the test cancels itself —
// the shape every drain test needs. Cleanup closes the HTTP front end,
// cancels Run, and joins it; awaitRun lets the test observe Run's return
// earlier (it is safe to call more than once).
func bootServer(t *testing.T, opts Options) (s *Server, base string, cancel func(), awaitRun func() error) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, c := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()
	hs := httptest.NewServer(s.Handler())
	var once sync.Once
	var runErr error
	awaitRun = func() error {
		once.Do(func() { runErr = <-runDone })
		return runErr
	}
	t.Cleanup(func() {
		hs.Close()
		c()
		_ = awaitRun()
	})
	return s, hs.URL, c, awaitRun
}

// blockStats parks the first job that reaches its stats phase: started
// closes when the job is provably mid-pipeline, and every StatsPermEval
// firing then blocks until release is called. release is idempotent and
// also registered as cleanup, so a failing test cannot wedge the worker.
func blockStats(t *testing.T) (started chan struct{}, release func()) {
	t.Helper()
	started = make(chan struct{})
	gate := make(chan struct{})
	var startOnce, relOnce sync.Once
	release = func() { relOnce.Do(func() { close(gate) }) }
	t.Cleanup(release)
	t.Cleanup(faultinject.Set(faultinject.StatsPermEval, func(string) {
		startOnce.Do(func() { close(started) })
		<-gate
	}))
	return started, release
}

// holdSite blocks one firing of a faultinject site until release is
// called; entered closes when the handler is inside the held region.
func holdSite(t *testing.T, site string) (entered chan struct{}, release func()) {
	t.Helper()
	entered = make(chan struct{})
	gate := make(chan struct{})
	var entOnce, relOnce sync.Once
	release = func() { relOnce.Do(func() { close(gate) }) }
	t.Cleanup(release)
	t.Cleanup(faultinject.Set(site, func(string) {
		entOnce.Do(func() { close(entered) })
		<-gate
	}))
	return entered, release
}

// waitDraining polls until the server has observed its Run context's
// cancellation and begun refusing work.
func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Draining() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never began draining")
}

// postStatus is postJSON for non-test goroutines: no t, errors returned.
func postStatus(url string, v any) (int, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

func doDelete(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestServerDrainSemantics is the graceful-shutdown contract: once the
// Run context is cancelled, new admissions and relation loads are
// refused with 503, queued jobs fail with clean 503s without ever
// running, and the in-flight job finishes and keeps its artifacts.
func TestServerDrainSemantics(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Cleanup(func() { testutil.WaitGoroutinesSettle(t, before) })

	csvPath := writeTinyCSV(t, 1, 400)
	s, base, cancel, awaitRun := bootServer(t, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csvPath)
	started, release := blockStats(t)

	running := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 1})
	<-started // the single worker is now parked mid-pipeline
	queued1 := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 2})
	queued2 := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 3})

	cancel()
	waitDraining(t, s)

	if status, body := postJSON(t, base+"/v1/notebooks",
		jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 4}); status != http.StatusServiceUnavailable {
		t.Errorf("admission during drain: status %d (%s), want 503", status, body)
	}
	if status, _ := postJSON(t, base+"/v1/relations",
		map[string]any{"name": "late", "path": csvPath}); status != http.StatusServiceUnavailable {
		t.Errorf("relation load during drain: status %d, want 503", status)
	}

	for _, id := range []string{queued1, queued2} {
		v := waitJob(t, base, id)
		if v.State != stateFailed || !strings.Contains(v.Error, "shutting down") {
			t.Errorf("queued job %s after drain: state %s (%s), want failed by shutdown", id, v.State, v.Error)
		}
		if status, _ := httpGet(t, base+"/v1/jobs/"+id+"/result"); status != http.StatusServiceUnavailable {
			t.Errorf("queued job %s result after drain: status %d, want 503", id, status)
		}
	}

	// The running job was admitted before the drain: it must finish.
	release()
	if err := awaitRun(); err != nil {
		t.Fatalf("Run returned %v after drain", err)
	}
	if v := waitJob(t, base, running); v.State != stateDone {
		t.Fatalf("in-flight job after drain: state %s (%s), want done", v.State, v.Error)
	}
	nb := mustGet(t, base+"/v1/jobs/"+running+"/result?format=ipynb")
	if !bytes.Contains(nb, []byte(`"cells"`)) {
		t.Errorf("drained job's notebook artifact looks empty (%d bytes)", len(nb))
	}
}

// TestServerAdmitRacesDrain holds an admission decision open at the
// ServerAdmit fault site while the server drains underneath it; when the
// handler resumes it must observe the drain and refuse — no job may
// sneak into a draining queue.
func TestServerAdmitRacesDrain(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 300)
	_, base, cancel, awaitRun := bootServer(t, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csvPath)
	entered, release := holdSite(t, faultinject.ServerAdmit)

	status := make(chan int, 1)
	go func() {
		st, err := postStatus(base+"/v1/notebooks", jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 1})
		if err != nil {
			t.Errorf("racing POST: %v", err)
		}
		status <- st
	}()
	<-entered
	cancel()
	if err := awaitRun(); err != nil { // idle workers: drain completes at once
		t.Fatalf("Run returned %v", err)
	}
	release()
	if st := <-status; st != http.StatusServiceUnavailable {
		t.Errorf("admission that raced the drain: status %d, want 503", st)
	}
}

// TestServerSessionLoadRacesDrain does the same on the load path: the
// ServerSessionLoad site fires after validation but before the CSV is
// read, and the insert re-checks the drain flag — a load that was
// in-flight when shutdown began must not register a relation.
func TestServerSessionLoadRacesDrain(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 300)
	_, base, cancel, awaitRun := bootServer(t, Options{MaxConcurrent: 1})
	entered, release := holdSite(t, faultinject.ServerSessionLoad)

	status := make(chan int, 1)
	go func() {
		st, err := postStatus(base+"/v1/relations", map[string]any{"name": "raced", "path": csvPath})
		if err != nil {
			t.Errorf("racing load: %v", err)
		}
		status <- st
	}()
	<-entered
	cancel()
	if err := awaitRun(); err != nil {
		t.Fatalf("Run returned %v", err)
	}
	release()
	if st := <-status; st != http.StatusServiceUnavailable {
		t.Errorf("relation load that raced the drain: status %d, want 503", st)
	}
	if body := mustGet(t, base+"/v1/relations"); strings.Contains(string(body), "raced") {
		t.Errorf("raced relation was registered despite the drain: %s", body)
	}
}

// TestServerCancelMidJobNoPartialResults cancels a job that is provably
// mid-pipeline and asserts the cancellation is clean: terminal state
// cancelled, 410 from the result endpoint with no notebook bytes, and
// the SSE log recording the transition.
func TestServerCancelMidJobNoPartialResults(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 400)
	_, base, _, _ := bootServer(t, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csvPath)
	started, release := blockStats(t)

	id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 1})
	<-started
	if status, body := doDelete(t, base+"/v1/jobs/"+id); status != http.StatusAccepted {
		t.Fatalf("cancelling running job: status %d (%s), want 202", status, body)
	}
	release() // let the pipeline reach its next checkpoint and observe the cancel

	if v := waitJob(t, base, id); v.State != stateCancelled {
		t.Fatalf("cancelled job finished %s (%s), want cancelled", v.State, v.Error)
	}
	status, body := httpGet(t, base+"/v1/jobs/"+id+"/result?format=ipynb")
	if status != http.StatusGone {
		t.Errorf("cancelled job's result: status %d, want 410", status)
	}
	if bytes.Contains(body, []byte(`"cells"`)) {
		t.Errorf("cancelled job leaked notebook bytes through the result endpoint")
	}
	if status, _ := doDelete(t, base+"/v1/jobs/"+id); status != http.StatusConflict {
		t.Errorf("cancelling a finished job: status %d, want 409", status)
	}
	if stream := string(mustGet(t, base+"/v1/jobs/"+id+"/events")); !strings.Contains(stream, `"state":"cancelled"`) {
		t.Errorf("SSE log of a cancelled job records no cancelled state:\n%s", stream)
	}
}

// TestServerCancelQueuedJob cancels a job that never left the queue: it
// must go terminal immediately, without a worker ever claiming it, while
// the job ahead of it is unaffected.
func TestServerCancelQueuedJob(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 400)
	_, base, _, _ := bootServer(t, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csvPath)
	started, release := blockStats(t)

	running := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 1})
	<-started
	queued := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 2})

	if status, body := doDelete(t, base+"/v1/jobs/"+queued); status != http.StatusAccepted {
		t.Fatalf("cancelling queued job: status %d (%s), want 202", status, body)
	}
	// Terminal before the worker frees up — no polling grace needed.
	if v := waitJob(t, base, queued); v.State != stateCancelled {
		t.Errorf("cancelled queued job: state %s (%s), want cancelled", v.State, v.Error)
	}
	if status, _ := httpGet(t, base+"/v1/jobs/"+queued+"/result"); status != http.StatusGone {
		t.Errorf("cancelled queued job's result: status %d, want 410", status)
	}

	release()
	if v := waitJob(t, base, running); v.State != stateDone {
		t.Errorf("job ahead of the cancelled one finished %s (%s), want done", v.State, v.Error)
	}
}

// TestServerHardStopFailsRunningJob drives the second-signal path: after
// a drain begins, HardStop cancels the in-flight job's context, the job
// fails with 503, and no partial artifacts are served.
func TestServerHardStopFailsRunningJob(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 400)
	s, base, cancel, awaitRun := bootServer(t, Options{MaxConcurrent: 1})
	loadRelation(t, base, "tiny", csvPath)
	started, release := blockStats(t)

	id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 1})
	<-started
	cancel()
	waitDraining(t, s)
	s.HardStop()
	release()
	if err := awaitRun(); err != nil {
		t.Fatalf("Run returned %v after hard stop", err)
	}

	v := waitJob(t, base, id)
	if v.State != stateFailed || !strings.Contains(v.Error, "shut down mid-job") {
		t.Errorf("hard-stopped job: state %s (%s), want failed mid-job", v.State, v.Error)
	}
	if status, _ := httpGet(t, base+"/v1/jobs/"+id+"/result"); status != http.StatusServiceUnavailable {
		t.Errorf("hard-stopped job's result: status %d, want 503", status)
	}
}

// TestServerDrainTimeoutHardCancels covers Run's own escalation: with a
// DrainTimeout set, a drain that cannot finish hard-cancels the running
// job by itself, without an explicit HardStop.
func TestServerDrainTimeoutHardCancels(t *testing.T) {
	csvPath := writeTinyCSV(t, 1, 400)
	_, base, cancel, awaitRun := bootServer(t, Options{MaxConcurrent: 1, DrainTimeout: 50 * time.Millisecond})
	loadRelation(t, base, "tiny", csvPath)
	started, release := blockStats(t)

	id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 4, Perms: 100, Seed: 1})
	<-started
	cancel()
	// Give the 50ms drain timer a wide margin to fire while the job is
	// still parked, so the release below resumes an already-cancelled job.
	time.Sleep(400 * time.Millisecond)
	release()
	if err := awaitRun(); err != nil {
		t.Fatalf("Run returned %v after drain timeout", err)
	}
	if v := waitJob(t, base, id); v.State != stateFailed || !strings.Contains(v.Error, "shut down mid-job") {
		t.Errorf("job past the drain timeout: state %s (%s), want failed mid-job", v.State, v.Error)
	}
}
