package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"comparenb/internal/obs"
)

func TestParseTraceparent(t *testing.T) {
	const tid = "0af7651916cd43dd8448eb211c80319c"
	cases := []struct {
		name   string
		header string
		want   string
		ok     bool
	}{
		{"valid v00", "00-" + tid + "-b7ad6b7169203331-01", tid, true},
		{"valid unsampled", "00-" + tid + "-b7ad6b7169203331-00", tid, true},
		{"future version extra fields", "cc-" + tid + "-b7ad6b7169203331-01-extra", tid, true},
		{"future version no extras", "cc-" + tid + "-b7ad6b7169203331-01", tid, true},
		{"empty", "", "", false},
		{"too short", "00-abc-def-01", "", false},
		{"uppercase trace id", "00-" + strings.ToUpper(tid) + "-b7ad6b7169203331-01", "", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", "", false},
		{"all-zero parent id", "00-" + tid + "-0000000000000000-01", "", false},
		{"version ff", "ff-" + tid + "-b7ad6b7169203331-01", "", false},
		{"non-hex version", "zz-" + tid + "-b7ad6b7169203331-01", "", false},
		{"v00 with trailing junk", "00-" + tid + "-b7ad6b7169203331-01-extra", "", false},
		{"future version missing separator", "cc-" + tid + "-b7ad6b7169203331-01xtra", "", false},
		{"wrong separators", "00_" + tid + "_b7ad6b7169203331_01", "", false},
		{"non-hex flags", "00-" + tid + "-b7ad6b7169203331-zz", "", false},
	}
	for _, tc := range cases {
		got, ok := parseTraceparent(tc.header)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: parseTraceparent(%q) = (%q, %v), want (%q, %v)",
				tc.name, tc.header, got, ok, tc.want, tc.ok)
		}
	}
}

func TestNewTraceIDShape(t *testing.T) {
	a, b := newTraceID(), newTraceID()
	if len(a) != 32 || !isHex(a) || allZero(a) {
		t.Fatalf("newTraceID() = %q, want 32 lowercase hex digits", a)
	}
	if a == b {
		t.Errorf("two trace ids collided: %q", a)
	}
	if hdr := responseTraceparent(a); len(hdr) != 55 {
		t.Errorf("responseTraceparent length %d, want 55: %q", len(hdr), hdr)
	} else if got, ok := parseTraceparent(hdr); !ok || got != a {
		t.Errorf("responseTraceparent does not round-trip: %q -> (%q, %v)", hdr, got, ok)
	}
}

// postJSONTraced is postJSON with a client traceparent header attached,
// returning the response traceparent alongside status and body.
func postJSONTraced(t *testing.T, url, traceparent string, v any) (int, []byte, string) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header.Get("traceparent")
}

// TestTracePropagationEndToEnd is the acceptance path: one client
// traceparent must surface, with the same trace id, in the 202 header
// and body, the status view, the SSE stream, the per-job Chrome trace,
// the flight recorder, and the journal-facing structures — while the
// notebook artifacts stay byte-identical to an untraced run.
func TestTracePropagationEndToEnd(t *testing.T) {
	csv := writeTinyCSV(t, 7, 60)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()
	loadRelation(t, base, "tiny", csv)

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	header := "00-" + tid + "-00f067aa0ba902b7-01"
	req := jobRequest{Relation: "tiny", Queries: 3, Perms: 60, Seed: 7, Threads: 2, Tenant: "acme"}

	status, body, respTP := postJSONTraced(t, base+"/v1/notebooks", header, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	if got, ok := parseTraceparent(respTP); !ok || got != tid {
		t.Errorf("202 traceparent header = %q, want trace id %s echoed", respTP, tid)
	}
	var admit admitResponse
	if err := json.Unmarshal(body, &admit); err != nil {
		t.Fatal(err)
	}
	if admit.TraceID != tid {
		t.Errorf("202 body trace_id = %q, want %q", admit.TraceID, tid)
	}

	if v := waitJob(t, base, admit.JobID); v.State != stateDone {
		t.Fatalf("job finished %s (%s), want done", v.State, v.Error)
	} else if v.TraceID != tid {
		t.Errorf("status trace_id = %q, want %q", v.TraceID, tid)
	}

	// SSE replay carries the trace event.
	events := string(mustGet(t, base+"/v1/jobs/"+admit.JobID+"/events"))
	if !strings.Contains(events, "event: trace") ||
		!strings.Contains(events, `{"trace_id":"`+tid+`"}`) {
		t.Errorf("SSE stream missing trace event for %s:\n%s", tid, events)
	}

	// Per-job Chrome trace: valid per obscheck rules, stamped with the id.
	jt := mustGet(t, base+"/v1/jobs/"+admit.JobID+"/trace")
	if err := obs.ValidateTrace(jt); err != nil {
		t.Errorf("job trace invalid: %v", err)
	}
	if !bytes.Contains(jt, []byte(`"trace_id":"`+tid+`"`)) {
		t.Errorf("job trace missing trace_id %s", tid)
	}

	// Flight recorder: the completed job is queryable with its trace id.
	flight := mustGet(t, base+"/debug/flight")
	if err := obs.ValidateFlight(flight); err != nil {
		t.Errorf("flight snapshot invalid: %v", err)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(flight, &snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range snap.Recent {
		if e.ID == admit.JobID {
			found = true
			if e.TraceID != tid {
				t.Errorf("flight entry trace_id = %q, want %q", e.TraceID, tid)
			}
			if e.Labels["tenant"] != "acme" || e.Labels["state"] != stateDone {
				t.Errorf("flight labels = %v", e.Labels)
			}
			if e.QueueWaitUS > e.E2EUS+1 || e.E2EUS <= 0 {
				t.Errorf("flight durations inconsistent: qw=%v e2e=%v", e.QueueWaitUS, e.E2EUS)
			}
		}
	}
	if !found {
		t.Errorf("job %s not in flight recorder recent ring", admit.JobID)
	}

	// Per-tenant SLO histogram appears on /metrics with cumulative
	// buckets and a count matching the one completed job.
	metrics := string(mustGet(t, base+"/metrics"))
	for _, want := range []string{
		`comparenb_server_job_e2e_seconds_bucket{tenant="acme",le="+Inf"} 1`,
		`comparenb_server_job_e2e_seconds_count{tenant="acme"} 1`,
		`comparenb_server_job_e2e_seconds_count 1`,
		`comparenb_server_job_queue_wait_seconds_count{tenant="acme"} 1`,
		`comparenb_server_job_wall_seconds_count{tenant="acme"} 1`,
		"comparenb_obs_spans_total ",
		"comparenb_obs_spans_dropped_total ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Tracing never perturbs artifact bytes: a second job with a
	// different trace id produces identical notebook output.
	const tid2 = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab"
	status2, body2, _ := postJSONTraced(t, base+"/v1/notebooks",
		"00-"+tid2+"-00f067aa0ba902b7-01", req)
	if status2 != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", status2, body2)
	}
	var admit2 admitResponse
	if err := json.Unmarshal(body2, &admit2); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, base, admit2.JobID); v.State != stateDone {
		t.Fatalf("second job finished %s (%s), want done", v.State, v.Error)
	}
	nb1 := mustGet(t, base+"/v1/jobs/"+admit.JobID+"/result?format=ipynb")
	nb2 := mustGet(t, base+"/v1/jobs/"+admit2.JobID+"/result?format=ipynb")
	if !bytes.Equal(nb1, nb2) {
		t.Error("notebook bytes differ between trace ids — trace leaked into artifacts")
	}
}

// TestTraceGeneratedWhenAbsent: requests without (or with malformed)
// traceparent get a fresh server-generated identity.
func TestTraceGeneratedWhenAbsent(t *testing.T) {
	csv := writeTinyCSV(t, 7, 60)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()
	loadRelation(t, base, "tiny", csv)

	id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 2, Perms: 40, Seed: 7, Threads: 1})
	v := waitJob(t, base, id)
	if len(v.TraceID) != 32 || !isHex(v.TraceID) || allZero(v.TraceID) {
		t.Errorf("generated trace id %q not a valid W3C trace id", v.TraceID)
	}

	// Malformed headers are replaced, not propagated.
	status, body, respTP := postJSONTraced(t, base+"/v1/notebooks",
		"00-ZZZZ-bad-01", jobRequest{Relation: "tiny", Queries: 2, Perms: 40, Seed: 7, Threads: 1})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var admit admitResponse
	if err := json.Unmarshal(body, &admit); err != nil {
		t.Fatal(err)
	}
	if len(admit.TraceID) != 32 || !isHex(admit.TraceID) {
		t.Errorf("malformed header produced trace id %q", admit.TraceID)
	}
	if got, ok := parseTraceparent(respTP); !ok || got != admit.TraceID {
		t.Errorf("response traceparent %q does not carry the generated id %q", respTP, admit.TraceID)
	}
	waitJob(t, base, admit.JobID)
}

// TestJobTraceNotFound: unknown job ids 404 on the trace endpoint.
func TestJobTraceNotFound(t *testing.T) {
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1})
	defer shutdown()
	if status, _ := httpGet(t, base+"/v1/jobs/j999999/trace"); status != http.StatusNotFound {
		t.Errorf("trace of unknown job: status %d, want 404", status)
	}
}

// TestFlightRecorderSlowestRetention: with a tiny recent ring the
// server keeps slow outliers queryable after they age out of recent.
func TestFlightRecorderSlowestRetention(t *testing.T) {
	csv := writeTinyCSV(t, 7, 60)
	_, base, shutdown := startTestServer(t, Options{MaxConcurrent: 1, FlightRecent: 2, FlightSlowest: 4})
	defer shutdown()
	loadRelation(t, base, "tiny", csv)

	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		id := submitJob(t, base, jobRequest{Relation: "tiny", Queries: 2, Perms: 40, Seed: 7, Threads: 1})
		if v := waitJob(t, base, id); v.State != stateDone {
			t.Fatalf("job %s finished %s", id, v.State)
		}
		ids = append(ids, id)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(mustGet(t, base+"/debug/flight"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != 5 {
		t.Errorf("flight total = %d, want 5", snap.Total)
	}
	if len(snap.Recent) != 2 || snap.Recent[0].ID != ids[4] || snap.Recent[1].ID != ids[3] {
		t.Errorf("recent ring wrong: %+v", snap.Recent)
	}
	if len(snap.Slowest) != 4 {
		t.Errorf("slowest has %d entries, want 4", len(snap.Slowest))
	}
	// Every retained job's trace endpoint still serves a valid trace,
	// including ones that only survive in the slowest list.
	retained := map[string]bool{}
	for _, e := range append(append([]obs.FlightEntry{}, snap.Recent...), snap.Slowest...) {
		retained[e.ID] = true
	}
	n := 0
	for _, id := range ids {
		if !retained[id] {
			continue
		}
		n++
		if err := obs.ValidateTrace(mustGet(t, base+"/v1/jobs/"+id+"/trace")); err != nil {
			t.Errorf("retained job %s trace invalid: %v", id, err)
		}
	}
	if n < 4 {
		t.Errorf("only %d of 5 jobs retained across recent+slowest, want >= 4", n)
	}
}
