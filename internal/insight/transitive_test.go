package insight

import (
	"testing"
	"testing/quick"
)

func mkMean(val, val2 int32) Insight {
	return Insight{Meas: 0, Attr: 0, Val: val, Val2: val2, Type: MeanGreater}
}

func keys(ins []Insight) map[Key]bool {
	out := map[Key]bool{}
	for _, i := range ins {
		out[i.Key()] = true
	}
	return out
}

func TestPruneTransitiveChain(t *testing.T) {
	// a>b, b>c, a>c: the last is deducible.
	in := []Insight{mkMean(0, 1), mkMean(1, 2), mkMean(0, 2)}
	out := PruneTransitive(in)
	k := keys(out)
	if len(out) != 2 {
		t.Fatalf("kept %d insights, want 2: %v", len(out), out)
	}
	if k[mkMean(0, 2).Key()] {
		t.Error("a>c should have been pruned")
	}
	if !k[mkMean(0, 1).Key()] || !k[mkMean(1, 2).Key()] {
		t.Error("direct edges must survive")
	}
}

func TestPruneTransitiveLongChain(t *testing.T) {
	// Total order over 4 values: 6 edges, only the 3 adjacent ones survive.
	var in []Insight
	for a := int32(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			in = append(in, mkMean(a, b))
		}
	}
	out := PruneTransitive(in)
	if len(out) != 3 {
		t.Fatalf("kept %d, want 3 adjacent edges", len(out))
	}
	k := keys(out)
	for a := int32(0); a < 3; a++ {
		if !k[mkMean(a, a+1).Key()] {
			t.Errorf("adjacent edge %d>%d missing", a, a+1)
		}
	}
}

func TestPruneTransitiveKeepsIndependentFamilies(t *testing.T) {
	in := []Insight{
		mkMean(0, 1), mkMean(1, 2), mkMean(0, 2),
		{Meas: 1, Attr: 0, Val: 0, Val2: 2, Type: MeanGreater},     // other measure
		{Meas: 0, Attr: 1, Val: 0, Val2: 2, Type: MeanGreater},     // other attribute
		{Meas: 0, Attr: 0, Val: 0, Val2: 2, Type: VarianceGreater}, // other type
	}
	out := PruneTransitive(in)
	if len(out) != 5 {
		t.Fatalf("kept %d, want 5 (only the deducible mean edge pruned): %v", len(out), out)
	}
}

func TestPruneTransitiveNoChain(t *testing.T) {
	in := []Insight{mkMean(0, 1), mkMean(2, 3)}
	out := PruneTransitive(in)
	if len(out) != 2 {
		t.Errorf("disconnected edges must all survive, kept %d", len(out))
	}
}

func TestPruneTransitiveEmpty(t *testing.T) {
	if got := PruneTransitive(nil); len(got) != 0 {
		t.Errorf("PruneTransitive(nil) = %v", got)
	}
}

// Property: pruning is idempotent and never grows the set.
func TestQuickPruneIdempotent(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		seen := map[[2]int32]bool{}
		var in []Insight
		for _, e := range edges {
			a, b := int32(e[0]%6), int32(e[1]%6)
			if a == b || seen[[2]int32{a, b}] {
				continue
			}
			seen[[2]int32{a, b}] = true
			in = append(in, mkMean(a, b))
		}
		once := PruneTransitive(append([]Insight(nil), in...))
		if len(once) > len(in) {
			return false
		}
		twice := PruneTransitive(append([]Insight(nil), once...))
		return len(twice) == len(once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every pruned edge is indeed deducible from the kept edges.
func TestQuickPrunedAreDeducible(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		seen := map[[2]int32]bool{}
		var in []Insight
		for _, e := range edges {
			a, b := int32(e[0]%5), int32(e[1]%5)
			if a == b || seen[[2]int32{a, b}] || seen[[2]int32{b, a}] {
				continue // keep it a simple orientation, closer to real data
			}
			seen[[2]int32{a, b}] = true
			in = append(in, mkMean(a, b))
		}
		out := PruneTransitive(append([]Insight(nil), in...))
		kept := map[[2]int32]bool{}
		succ := map[int32][]int32{}
		for _, i := range out {
			kept[[2]int32{i.Val, i.Val2}] = true
			succ[i.Val] = append(succ[i.Val], i.Val2)
		}
		for _, i := range in {
			e := [2]int32{i.Val, i.Val2}
			if kept[e] {
				continue
			}
			if !reachableWithout(succ, i.Val, i.Val2, [2]int32{-1, -1}, len(in)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
