package insight

import (
	"strings"
	"testing"

	"comparenb/internal/engine"
	"comparenb/internal/table"
)

func covidRelation() *table.Relation {
	b := table.NewBuilder("covid", []string{"continent", "month"}, []string{"cases"})
	rows := []struct {
		cont, month string
		cases       float64
	}{
		{"Africa", "4", 31598}, {"Africa", "5", 92626},
		{"America", "4", 1104862}, {"America", "5", 1404912},
		{"Asia", "4", 333821}, {"Asia", "5", 537584},
		{"Europe", "4", 863874}, {"Europe", "5", 608110},
		{"Oceania", "4", 2812}, {"Oceania", "5", 467},
	}
	for _, r := range rows {
		b.AddRow([]string{r.cont, r.month}, []float64{r.cases})
	}
	return b.Build()
}

func TestSupportsPaperExample(t *testing.T) {
	rel := covidRelation()
	v4, _ := rel.CodeOf(1, "4")
	v5, _ := rel.CodeOf(1, "5")
	cube := engine.BuildCube(rel, []int{0, 1})
	// Insight of Figure 3: avg(May) > avg(April), i.e. val=5 side greater.
	res := engine.CompareFromCube(cube, 0, 1, v5, v4, 0, engine.Sum)
	if !Supports(res, MeanGreater) {
		t.Error("May-vs-April mean-greater insight should be supported at the continent level")
	}
	// Reverse orientation must not be supported.
	rev := engine.CompareFromCube(cube, 0, 1, v4, v5, 0, engine.Sum)
	if Supports(rev, MeanGreater) {
		t.Error("April-vs-May mean-greater should not be supported")
	}
}

func TestSupportsVariance(t *testing.T) {
	b := table.NewBuilder("r", []string{"g", "s"}, []string{"m"})
	// Side "wide" has spread-out group aggregates, side "narrow" does not.
	vals := map[string][]float64{"wide": {0, 100, 200, 300}, "narrow": {49, 50, 51, 52}}
	for side, vs := range vals {
		for gi, v := range vs {
			b.AddRow([]string{string(rune('a' + gi)), side}, []float64{v})
		}
	}
	rel := b.Build()
	w, _ := rel.CodeOf(1, "wide")
	n, _ := rel.CodeOf(1, "narrow")
	res := engine.CompareDirect(rel, 0, 1, w, n, 0, engine.Sum)
	if !Supports(res, VarianceGreater) {
		t.Error("wide side should have greater variance")
	}
	if Supports(engine.CompareDirect(rel, 0, 1, n, w, 0, engine.Sum), VarianceGreater) {
		t.Error("narrow side should not have greater variance")
	}
}

func TestSupportsEmptyResult(t *testing.T) {
	res := &engine.ComparisonResult{}
	if Supports(res, MeanGreater) || Supports(res, VarianceGreater) {
		t.Error("empty result must support nothing")
	}
}

func TestSupportsSingleRowVariance(t *testing.T) {
	res := &engine.ComparisonResult{Groups: []int32{0}, Left: []float64{5}, Right: []float64{1}}
	if Supports(res, VarianceGreater) {
		t.Error("single-row variance comparison is undefined and must not support")
	}
	if !Supports(res, MeanGreater) {
		t.Error("single-row mean comparison is fine")
	}
}

// TestCountLemmas checks Lemma 3.2 and 3.5 against a hand computation and
// against the paper's Vaccine row of Table 2 shape.
func TestCountLemmas(t *testing.T) {
	rel := covidRelation() // n=2, doms {5, 2}, m=1
	// Lemma 3.2 with f aggregates: [C(5,2) + C(2,2)] × (n−1) × m × f.
	f := len(engine.AllAggs)
	want := (10 + 1) * 1 * 1 * f
	if got := CountComparisonQueries(rel, f); got != want {
		t.Errorf("CountComparisonQueries = %d, want %d", got, want)
	}
	// Lemma 3.5 with T types: [C(5,2) + C(2,2)] × m × T.
	if got := CountInsights(rel, len(AllTypes)); got != 11*1*2 {
		t.Errorf("CountInsights = %d, want 22", got)
	}
}

func TestInsightDescribe(t *testing.T) {
	rel := covidRelation()
	v4, _ := rel.CodeOf(1, "4")
	v5, _ := rel.CodeOf(1, "5")
	i := Insight{Meas: 0, Attr: 1, Val: v5, Val2: v4, Type: MeanGreater, Sig: 0.99, Credibility: 1, NumHypo: 1}
	d := i.Describe(rel)
	for _, want := range []string{"average cases", "month = 5", "month = 4", "0.990", "1/1"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() = %q missing %q", d, want)
		}
	}
}

func TestQueryDescribe(t *testing.T) {
	rel := covidRelation()
	v4, _ := rel.CodeOf(1, "4")
	v5, _ := rel.CodeOf(1, "5")
	q := Query{GroupBy: 0, Attr: 1, Val: v4, Val2: v5, Meas: 0, Agg: engine.Sum}
	d := q.Describe(rel)
	if !strings.Contains(d, "sum(cases) by continent") || !strings.Contains(d, "month = 4 vs 5") {
		t.Errorf("Describe() = %q", d)
	}
}

func TestInsightKey(t *testing.T) {
	a := Insight{Meas: 1, Attr: 2, Val: 3, Val2: 4, Type: VarianceGreater, Sig: 0.9}
	b := Insight{Meas: 1, Attr: 2, Val: 3, Val2: 4, Type: VarianceGreater, Sig: 0.5, Credibility: 7}
	if a.Key() != b.Key() {
		t.Error("keys must ignore statistics")
	}
	c := Insight{Meas: 1, Attr: 2, Val: 4, Val2: 3, Type: VarianceGreater}
	if a.Key() == c.Key() {
		t.Error("orientation must be part of the key")
	}
}

func TestTypeStrings(t *testing.T) {
	if MeanGreater.String() != "mean greater" || VarianceGreater.String() != "variance greater" {
		t.Error("type names wrong")
	}
}

// TestHypothesisPlanMatchesSupports: the literal Def. 3.7 operator tree
// must emit a row exactly when the support relation ⊢ holds.
func TestHypothesisPlanMatchesSupports(t *testing.T) {
	rel := covidRelation()
	v4, _ := rel.CodeOf(1, "4")
	v5, _ := rel.CodeOf(1, "5")
	for _, typ := range ExtendedTypes {
		for _, pair := range [][2]int32{{v5, v4}, {v4, v5}} {
			plan := engine.HypothesisPlan(rel, 0, 1, pair[0], pair[1], 0, engine.Sum,
				typ.SeriesPredicate(), typ.String())
			rows, err := plan.Run()
			if err != nil {
				t.Fatal(err)
			}
			res := engine.CompareDirect(rel, 0, 1, pair[0], pair[1], 0, engine.Sum)
			want := Supports(res, typ)
			if got := rows.N == 1; got != want {
				t.Errorf("%v %v: plan emits=%v, Supports=%v", typ, pair, got, want)
			}
			if rows.N == 1 && rows.Strs[0][0] != typ.String() {
				t.Errorf("label = %q", rows.Strs[0][0])
			}
		}
	}
}
