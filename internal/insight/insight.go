// Package insight implements the logical framework of §3: comparison
// queries (Def. 3.1), insights and their types (Def. 3.4), hypothesis
// queries (Def. 3.7), the support relation ⊢ (Def. 3.8), significance
// (Def. 3.9), credibility (Def. 3.11), and the transitivity pruning of
// §3.3.
package insight

import (
	"fmt"

	"comparenb/internal/engine"
	"comparenb/internal/stats"
	"comparenb/internal/table"
)

// Type is an insight type: the name giving the semantics of an insight
// (Def. 3.4). The paper instantiates two.
type Type int

const (
	// MeanGreater is type M: avg(val) > avg(val').
	MeanGreater Type = iota
	// VarianceGreater is type V: variance(val) > variance(val').
	VarianceGreater
	// MedianGreater is the extension type of §7 ("our approach can be
	// extended to other forms of insights"): median(val) > median(val'),
	// tested with the |median(X) − median(Y)| permutation statistic. Not
	// enabled by default — the paper's T = 2.
	MedianGreater
)

// AllTypes lists the paper's insight types; its length is the paper's T.
var AllTypes = []Type{MeanGreater, VarianceGreater}

// ExtendedTypes additionally enables the median-greater extension.
var ExtendedTypes = []Type{MeanGreater, VarianceGreater, MedianGreater}

func (t Type) String() string {
	switch t {
	case MeanGreater:
		return "mean greater"
	case VarianceGreater:
		return "variance greater"
	case MedianGreater:
		return "median greater"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// TestStat returns the permutation-test statistic of Table 1 for the type.
func (t Type) TestStat() stats.TestStat {
	switch t {
	case MeanGreater:
		return stats.MeanDiff
	case VarianceGreater:
		return stats.VarDiff
	default:
		return stats.MedianDiff
	}
}

// Insight is a tuple i = (M, B, val, val', p) (Def. 3.4), oriented so that
// the predicate reads "Val's statistic is greater than Val2's". Sig and
// Credibility are filled by the pipeline.
type Insight struct {
	Meas int   // M: measure index
	Attr int   // B: selection attribute index
	Val  int32 // val (the greater side)
	Val2 int32 // val'
	Type Type

	// Sig is the significance sig(i) = 1 − p with p the BH-adjusted
	// permutation p-value (Def. 3.9 + §5.1.1).
	Sig float64
	// Effect is the observed effect size on the test relation: Cohen's d
	// ((μval − μval')/pooled σ) for mean- and median-greater insights, and
	// the variance ratio σ²val/σ²val' for variance-greater ones. Always
	// ≥ 0 (d) or ≥ 1 (ratio) thanks to the orientation. Purely
	// informational — interestingness (Def. 4.3) does not use it.
	Effect float64
	// Credibility is the number of hypothesis queries supporting i
	// (Def. 3.11): the number of grouping attributes A for which some
	// aggregate's hypothesis query supports i.
	Credibility int
	// NumHypo is |Qⁱ|: the number of candidate hypothesis queries, n−1
	// minus the grouping attributes excluded by FD pre-processing.
	NumHypo int
}

// Key identifies an insight independently of its statistics, for use as a
// map key.
type Key struct {
	Meas int
	Attr int
	Val  int32
	Val2 int32
	Type Type
}

// Key returns the identifying key of the insight.
func (i Insight) Key() Key {
	return Key{Meas: i.Meas, Attr: i.Attr, Val: i.Val, Val2: i.Val2, Type: i.Type}
}

// Describe renders the insight as the natural-language declaration the
// paper uses ("On average there were more COVID cases in May compared to
// April").
func (i Insight) Describe(rel *table.Relation) string {
	stat := "average"
	switch i.Type {
	case VarianceGreater:
		stat = "variance of"
	case MedianGreater:
		stat = "median"
	}
	return fmt.Sprintf("The %s %s is greater for %s = %s than for %s = %s (sig %.3f, credibility %d/%d)",
		stat, rel.MeasName(i.Meas),
		rel.CatName(i.Attr), rel.Value(i.Attr, i.Val),
		rel.CatName(i.Attr), rel.Value(i.Attr, i.Val2),
		i.Sig, i.Credibility, i.NumHypo)
}

// Query is the 6-tuple (A, B, val, val', M, agg) describing a comparison
// query (Def. 3.1).
type Query struct {
	GroupBy int   // A
	Attr    int   // B
	Val     int32 // val
	Val2    int32 // val'
	Meas    int   // M
	Agg     engine.Agg
}

// Describe renders the query in words.
func (q Query) Describe(rel *table.Relation) string {
	return fmt.Sprintf("%s(%s) by %s: %s = %s vs %s",
		q.Agg, rel.MeasName(q.Meas), rel.CatName(q.GroupBy),
		rel.CatName(q.Attr), rel.Value(q.Attr, q.Val), rel.Value(q.Attr, q.Val2))
}

// Supports implements Def. 3.8 on a materialised comparison result: the
// hypothesis query's selection σ_p holds iff the insight-type statistic of
// the val series exceeds that of the val' series. An empty result supports
// nothing (no comparison a user sees could trigger the insight).
func Supports(res *engine.ComparisonResult, typ Type) bool {
	if res.Len() == 0 {
		return false
	}
	switch typ {
	case MeanGreater:
		return stats.Mean(res.Left) > stats.Mean(res.Right)
	case VarianceGreater:
		if res.Len() < 2 {
			return false
		}
		return stats.Variance(res.Left) > stats.Variance(res.Right)
	case MedianGreater:
		return stats.Median(res.Left) > stats.Median(res.Right)
	default:
		panic("insight: unknown type")
	}
}

// SeriesPredicate returns the type's predicate over the two comparison
// series, for building literal Def. 3.7 hypothesis plans
// (engine.HypothesisPlan).
func (t Type) SeriesPredicate() engine.SeriesPredicate {
	switch t {
	case MeanGreater:
		return engine.SeriesPredicate{
			Desc: "avg(left) > avg(right)",
			Holds: func(l, r []float64) bool {
				return len(l) > 0 && stats.Mean(l) > stats.Mean(r)
			},
		}
	case VarianceGreater:
		return engine.SeriesPredicate{
			Desc: "var_samp(left) > var_samp(right)",
			Holds: func(l, r []float64) bool {
				return len(l) >= 2 && stats.Variance(l) > stats.Variance(r)
			},
		}
	default:
		return engine.SeriesPredicate{
			Desc: "median(left) > median(right)",
			Holds: func(l, r []float64) bool {
				return len(l) > 0 && stats.Median(l) > stats.Median(r)
			},
		}
	}
}

// CountComparisonQueries evaluates Lemma 3.2: the number of possible
// comparison queries over rel given f aggregation functions.
func CountComparisonQueries(rel *table.Relation, f int) int {
	n := rel.NumCatAttrs()
	m := rel.NumMeasures()
	total := 0
	for a := 0; a < n; a++ {
		d := rel.DomSize(a)
		total += d * (d - 1) / 2 * (n - 1) * m * f
	}
	return total
}

// CountInsights evaluates Lemma 3.5: the number of insights over rel given
// T insight types.
func CountInsights(rel *table.Relation, T int) int {
	n := rel.NumCatAttrs()
	m := rel.NumMeasures()
	total := 0
	for a := 0; a < n; a++ {
		d := rel.DomSize(a)
		total += d * (d - 1) / 2 * m * T
	}
	return total
}
