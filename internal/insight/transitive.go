package insight

import "sort"

// PruneTransitive removes insights that can be deduced by transitivity
// (§3.3): within one family (same measure, attribute and type), if
// val1 > val2 and val2 > val3 are present, then val1 > val3 is deducible
// and pruned. This is a transitive reduction of each family's dominance
// graph; significant-but-deducible insights add no information to the
// notebook.
//
// The input order is preserved for the survivors.
func PruneTransitive(ins []Insight) []Insight {
	type famKey struct {
		Meas int
		Attr int
		Type Type
	}
	fams := make(map[famKey][]int) // indexes into ins
	for idx, i := range ins {
		k := famKey{i.Meas, i.Attr, i.Type}
		fams[k] = append(fams[k], idx)
	}
	drop := make([]bool, len(ins))
	for _, idxs := range fams {
		pruneFamily(ins, idxs, drop)
	}
	out := ins[:0]
	for idx, i := range ins {
		if !drop[idx] {
			out = append(out, i)
		}
	}
	return out
}

// pruneFamily marks deducible edges of one family. Edges val→val' mean
// "val greater than val'". An edge (x,z) is deducible when a directed path
// x→…→z of length ≥ 2 exists using the currently kept edges. Edges are
// examined one at a time against the current graph (in a deterministic
// order), so reachability is preserved even if ties in the underlying
// statistics created a cycle — every pruned insight stays deducible from
// the survivors.
func pruneFamily(ins []Insight, idxs []int, drop []bool) {
	order := append([]int(nil), idxs...)
	sort.Slice(order, func(a, b int) bool {
		x, y := ins[order[a]], ins[order[b]]
		if x.Val != y.Val {
			return x.Val < y.Val
		}
		return x.Val2 < y.Val2
	})
	succ := make(map[int32][]int32)
	for _, idx := range order {
		i := ins[idx]
		succ[i.Val] = append(succ[i.Val], i.Val2)
	}
	removeEdge := func(from, to int32) {
		vs := succ[from]
		for k, v := range vs {
			if v == to {
				succ[from] = append(vs[:k:k], vs[k+1:]...)
				return
			}
		}
	}
	for _, idx := range order {
		e := [2]int32{ins[idx].Val, ins[idx].Val2}
		if reachableWithout(succ, e[0], e[1], e, len(idxs)) {
			drop[idx] = true
			removeEdge(e[0], e[1])
		}
	}
}

// reachableWithout reports whether dst is reachable from src using at
// least two edges and not using the excluded edge itself.
func reachableWithout(succ map[int32][]int32, src, dst int32, excl [2]int32, maxDepth int) bool {
	type state struct {
		node  int32
		depth int
	}
	seen := map[int32]bool{}
	stack := []state{}
	for _, nxt := range succ[src] {
		if src == excl[0] && nxt == excl[1] {
			continue
		}
		stack = append(stack, state{nxt, 1})
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.node == dst && s.depth >= 2 {
			return true
		}
		if s.depth >= maxDepth || seen[s.node] {
			continue
		}
		seen[s.node] = true
		for _, nxt := range succ[s.node] {
			if s.node == excl[0] && nxt == excl[1] {
				continue
			}
			stack = append(stack, state{nxt, s.depth + 1})
		}
	}
	return false
}
