package tap

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// bruteForce enumerates every subset of size ≤ budget and every ordering
// feasibility via Held–Karp, returning the optimal interest. Only for tiny
// instances.
func bruteForce(inst *Instance, epsT, epsD float64) float64 {
	n := inst.N()
	best := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		var subset []int
		cost, interest := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, i)
				cost += inst.Cost[i]
				interest += inst.Interest[i]
			}
		}
		if cost > epsT+1e-12 || interest <= best {
			continue
		}
		if minPathHeldKarp(inst, subset) <= epsD+1e-12 {
			best = interest
		}
	}
	return best
}

func TestHeldKarpAgainstBruteForcePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inst := RandomInstance(7, rng)
	subset := []int{0, 2, 3, 5, 6}
	want := math.Inf(1)
	perm := make([]int, len(subset))
	var rec func(used []bool, k int, cur float64)
	rec = func(used []bool, k int, cur float64) {
		if cur >= want {
			return
		}
		if k == len(subset) {
			want = cur
			return
		}
		for i, u := range used {
			if u {
				continue
			}
			used[i] = true
			perm[k] = subset[i]
			add := 0.0
			if k > 0 {
				add = inst.Dist(perm[k-1], subset[i])
			}
			rec(used, k+1, cur+add)
			used[i] = false
		}
	}
	rec(make([]bool, len(subset)), 0, 0)
	got := minPathHeldKarp(inst, subset)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Held–Karp = %v, brute force = %v", got, want)
	}
	order, dist := heldKarpPath(inst, subset)
	if math.Abs(dist-want) > 1e-9 {
		t.Errorf("heldKarpPath dist = %v, want %v", dist, want)
	}
	if got := inst.Evaluate(order).TotalDist; math.Abs(got-want) > 1e-9 {
		t.Errorf("reconstructed order has dist %v, want %v", got, want)
	}
}

func TestHeldKarpSmallCases(t *testing.T) {
	inst := lineInstance([]float64{1, 1, 1}, []float64{0, 3, 10})
	if got := minPathHeldKarp(inst, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := minPathHeldKarp(inst, []int{1}); got != 0 {
		t.Errorf("single = %v", got)
	}
	if got := minPathHeldKarp(inst, []int{0, 2}); got != 10 {
		t.Errorf("pair = %v", got)
	}
	if got := minPathHeldKarp(inst, []int{0, 1, 2}); got != 10 {
		t.Errorf("line of three = %v, want 10 (visit in order)", got)
	}
}

func TestMSTLowerBoundsPath(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	inst := RandomInstance(12, rng)
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(8)
		subset := rng.Perm(12)[:k]
		mst := mstWeight(inst, subset)
		path := minPathHeldKarp(inst, subset)
		if mst > path+1e-9 {
			t.Fatalf("MST %v exceeds min path %v", mst, path)
		}
	}
}

// TestMinPathMonotoneUnderAddition verifies the property the exact
// solver's superset pruning actually relies on: in a metric space the
// minimum Hamiltonian path can only grow when a vertex is added. (MST
// weight alone is NOT monotone — a central "Steiner" point can shrink the
// tree — so the solver chains MST(S) ≤ minPath(S) ≤ minPath(S ∪ v).)
func TestMinPathMonotoneUnderAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := RandomInstance(15, rng)
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(8)
		perm := rng.Perm(15)
		subset := perm[:k]
		super := perm[:k+1]
		if minPathHeldKarp(inst, subset) > minPathHeldKarp(inst, super)+1e-9 {
			t.Fatalf("min path not monotone: %v > %v",
				minPathHeldKarp(inst, subset), minPathHeldKarp(inst, super))
		}
	}
}

func TestSolveExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		inst := RandomInstance(9, rng)
		epsT := float64(2 + rng.Intn(4))
		epsD := 0.5 + rng.Float64()*1.5
		want := bruteForce(inst, epsT, epsD)
		got, stats := SolveExact(inst, epsT, epsD, ExactOptions{})
		if !stats.Certified {
			t.Fatalf("trial %d: not certified", trial)
		}
		if math.Abs(got.TotalInterest-want) > 1e-9 {
			t.Errorf("trial %d: exact = %v, brute force = %v", trial, got.TotalInterest, want)
		}
		if err := inst.Feasible(got, epsT, epsD); err != nil {
			t.Errorf("trial %d: exact solution infeasible: %v", trial, err)
		}
	}
}

func TestSolveExactBeatsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		inst := RandomInstance(30, rng)
		epsT, epsD := 6.0, 1.2
		exact, stats := SolveExact(inst, epsT, epsD, ExactOptions{})
		if !stats.Certified {
			t.Fatal("not certified")
		}
		greedy := Greedy(inst, epsT, epsD)
		if greedy.TotalInterest > exact.TotalInterest+1e-9 {
			t.Errorf("greedy %v beat exact %v", greedy.TotalInterest, exact.TotalInterest)
		}
	}
}

func TestSolveExactTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	inst := RandomInstance(400, rng)
	sol, stats := SolveExact(inst, 12, 0.8, ExactOptions{Timeout: 20 * time.Millisecond})
	if !stats.TimedOut {
		t.Skip("instance solved within 20ms; timeout path not exercised")
	}
	if stats.Certified {
		t.Error("timed-out search must not be certified")
	}
	// Incumbent must still be feasible.
	if err := inst.Feasible(sol, 12, 0.8); err != nil {
		t.Errorf("incumbent infeasible: %v", err)
	}
}

func TestSolveExactEmptyFeasibleSet(t *testing.T) {
	inst := lineInstance([]float64{1, 1}, []float64{0, 100})
	sol, stats := SolveExact(inst, 0, 10, ExactOptions{})
	if len(sol.Order) != 0 {
		t.Errorf("budget 0 should select nothing, got %v", sol.Order)
	}
	if !stats.Certified {
		t.Error("trivial search should be certified")
	}
}

func TestSolveExactDistanceBinding(t *testing.T) {
	// Three queries on a line; budget allows all three but ε_d forces
	// dropping the far one even though it is the most interesting.
	inst := lineInstance([]float64{0.9, 0.5, 0.4}, []float64{100, 0, 0.5})
	sol, _ := SolveExact(inst, 3, 1.0, ExactOptions{})
	if math.Abs(sol.TotalInterest-0.9) > 1e-12 {
		// {1,2} yields 0.9 as well; either singleton {0} (0.9) or pair
		// {1,2} (0.9) is optimal.
		t.Errorf("optimal interest = %v, want 0.9", sol.TotalInterest)
	}
	if err := inst.Feasible(sol, 3, 1.0); err != nil {
		t.Error(err)
	}
}
