package tap

import (
	"context"

	"comparenb/internal/obs"
)

// Solver names reported by SolveAnytime. They name which rung of the
// degradation ladder produced the final solution.
const (
	// AnytimeExact: the branch-and-bound completed within budget.
	AnytimeExact = "exact"
	// AnytimeIncumbent2Opt: the search hit its budget and the improved
	// incumbent won the ladder.
	AnytimeIncumbent2Opt = "exact-incumbent+2opt"
	// AnytimeGreedy2Opt: the search hit its budget and the from-scratch
	// greedy + 2-opt construction beat the improved incumbent.
	AnytimeGreedy2Opt = "greedy+2opt"
	// AnytimeCancelled: the context was cancelled mid-search; the raw
	// incumbent is returned untouched because the caller is aborting.
	AnytimeCancelled = "exact-cancelled"
)

// AnytimeResult is what SolveAnytime produced and how.
type AnytimeResult struct {
	Solution Solution
	// Stats is the underlying branch-and-bound's report (nodes, elapsed,
	// certified upper bound).
	Stats ExactStats
	// Degraded is true when the search budget expired and a heuristic
	// rung of the ladder finished the job.
	Degraded bool
	// Solver names the rung that produced Solution (Anytime* constants).
	Solver string
	// Gap is the certified relative optimality gap of Solution against
	// Stats.BestBound: 0 when provably optimal, and the honest distance
	// bound a degraded run reports.
	Gap float64
}

// SolveAnytime is the deadline-aware exact solver with graceful
// degradation — the discipline the paper gets from CPLEX's time-limit
// parameter (§7 / Table 4), made explicit as a ladder:
//
//  1. run the branch-and-bound within the budget (Timeout, Deadline,
//     MaxNodes, ctx — whichever trips first);
//  2. if the budget expired, improve the search's best incumbent by
//     2-opt + re-insertion (ImproveFrom), so the truncated search's work
//     is kept;
//  3. also build Algorithm 3's greedy + 2-opt solution from scratch and
//     keep whichever of the two scores higher.
//
// The result is always Feasible, its interest is monotone in the budget
// (a longer search can only improve the incumbent), and the reported Gap
// bounds how far it can be from the true optimum. Context cancellation is
// different from budget expiry: the ladder is skipped and the raw
// incumbent returned, because the caller is abandoning the run — check
// ctx.Err() to distinguish.
func SolveAnytime(ctx context.Context, inst *Instance, epsT, epsD float64, opt ExactOptions) AnytimeResult {
	if ctx != nil {
		opt.Ctx = ctx
	}
	sol, stats := SolveExact(inst, epsT, epsD, opt)
	out := AnytimeResult{Solution: sol, Stats: stats, Solver: AnytimeExact, Gap: stats.Gap}
	if !stats.TimedOut {
		return out
	}
	out.Degraded = true
	obs.FromContext(ctx).Counter("tap_anytime_degraded").Inc()
	if ctx != nil && ctx.Err() != nil {
		out.Solver = AnytimeCancelled
		return out
	}

	lsp := obs.StartSpan(ctx, "tap/anytime-ladder")
	seeded := ImproveFrom(inst, sol.Order, epsT, epsD)
	greedy := GreedyPlus(inst, epsT, epsD)
	lsp.End()
	out.Solution, out.Solver = seeded, AnytimeIncumbent2Opt
	if greedy.TotalInterest > seeded.TotalInterest+1e-12 {
		out.Solution, out.Solver = greedy, AnytimeGreedy2Opt
	}
	_, out.Gap = boundAndGap(false, stats.BestBound, out.Solution.TotalInterest)
	return out
}
