package tap

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestRandomUniformInstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inst := RandomUniformInstance(30, rng)
	if !inst.NonMetric {
		t.Fatal("uniform instance must be flagged NonMetric")
	}
	for i := 0; i < 30; i++ {
		if inst.Dist(i, i) != 0 {
			t.Errorf("Dist(%d,%d) = %v", i, i, inst.Dist(i, i))
		}
		for j := 0; j < 30; j++ {
			if inst.Dist(i, j) != inst.Dist(j, i) {
				t.Fatal("asymmetric")
			}
			if d := inst.Dist(i, j); d < 0 || d > 1 {
				t.Fatalf("distance %v outside [0,1]", d)
			}
		}
	}
}

// TestSolveExactNonMetricMatchesBruteForce: with metric prunings disabled
// the solver must still be exact on instances violating the triangle
// inequality.
func TestSolveExactNonMetricMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 12; trial++ {
		inst := RandomUniformInstance(9, rng)
		epsT := float64(3 + rng.Intn(3))
		epsD := 0.3 + rng.Float64()
		want := bruteForce(inst, epsT, epsD)
		got, stats := SolveExact(inst, epsT, epsD, ExactOptions{})
		if !stats.Certified {
			t.Fatalf("trial %d: not certified", trial)
		}
		if math.Abs(got.TotalInterest-want) > 1e-9 {
			t.Errorf("trial %d: exact = %v, brute force = %v", trial, got.TotalInterest, want)
		}
		if err := inst.Feasible(got, epsT, epsD); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

// TestNonMetricTriangleViolationHandled builds an adversarial instance
// where a "shortcut through a hub" makes a superset cheaper than its
// subset — the exact case the metric prunings would get wrong.
func TestNonMetricTriangleViolationHandled(t *testing.T) {
	// Queries 0 and 1 are far apart (d=10) but both near query 2 (d=0.1):
	// the pair {0,1} is infeasible under ε_d=1, yet {0,1,2} is feasible
	// (path 0-2-1 costs 0.2). A metric-pruning solver would cut the {0,1}
	// branch and miss the optimum.
	d := [][]float64{
		{0, 10, 0.1},
		{10, 0, 0.1},
		{0.1, 0.1, 0},
	}
	inst := &Instance{
		Interest:  []float64{1, 1, 0.01},
		Cost:      []float64{1, 1, 1},
		Dist:      func(i, j int) float64 { return d[i][j] },
		NonMetric: true,
	}
	sol, stats := SolveExact(inst, 3, 1, ExactOptions{})
	if !stats.Certified {
		t.Fatal("not certified")
	}
	if math.Abs(sol.TotalInterest-2.01) > 1e-9 {
		t.Errorf("optimal interest = %v, want 2.01 (all three via the hub)", sol.TotalInterest)
	}
	if err := inst.Feasible(sol, 3, 1); err != nil {
		t.Error(err)
	}
}

func TestNonMetricGreedyStillFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		inst := RandomUniformInstance(80, rng)
		s := Greedy(inst, 10, 0.8)
		if err := inst.Feasible(s, 10, 0.8); err != nil {
			t.Fatalf("greedy infeasible on uniform instance: %v", err)
		}
	}
}

func TestNonMetricTimeoutIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	inst := RandomUniformInstance(300, rng)
	sol, stats := SolveExact(inst, 12, 0.5, ExactOptions{Timeout: 30 * time.Millisecond})
	if !stats.TimedOut {
		t.Skip("solved within 30ms")
	}
	if err := inst.Feasible(sol, 12, 0.5); err != nil {
		t.Errorf("incumbent infeasible: %v", err)
	}
}
