package tap

import "math"

// minPathHeldKarp computes the exact minimum open Hamiltonian path over
// the given query subset (free endpoints) by Held–Karp dynamic
// programming: O(2^k · k²) time, O(2^k · k) space. It is the feasibility
// oracle of the exact solver; k is capped by ExactOptions.MaxHeldKarp.
func minPathHeldKarp(inst *Instance, subset []int) float64 {
	k := len(subset)
	switch k {
	case 0, 1:
		return 0
	case 2:
		return inst.Dist(subset[0], subset[1])
	}
	d := make([][]float64, k)
	for i := range d {
		d[i] = make([]float64, k)
		for j := range d[i] {
			d[i][j] = inst.Dist(subset[i], subset[j])
		}
	}
	size := 1 << k
	dp := make([]float64, size*k)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	for j := 0; j < k; j++ {
		dp[(1<<j)*k+j] = 0
	}
	for mask := 1; mask < size; mask++ {
		for last := 0; last < k; last++ {
			if mask&(1<<last) == 0 {
				continue
			}
			cur := dp[mask*k+last]
			if math.IsInf(cur, 1) {
				continue
			}
			for next := 0; next < k; next++ {
				if mask&(1<<next) != 0 {
					continue
				}
				nm := mask | 1<<next
				if v := cur + d[last][next]; v < dp[nm*k+next] {
					dp[nm*k+next] = v
				}
			}
		}
	}
	best := math.Inf(1)
	full := size - 1
	for j := 0; j < k; j++ {
		if v := dp[full*k+j]; v < best {
			best = v
		}
	}
	return best
}

// insertionPath builds a path over subset by cheapest insertion and
// returns its total length: an upper bound on the minimum Hamiltonian
// path, used when the subset exceeds the Held–Karp cap.
func insertionPath(inst *Instance, subset []int) (order []int, total float64) {
	var seq []int
	cur := 0.0
	for _, q := range subset {
		pos, newDist := bestInsertion(inst, seq, cur, q)
		seq = append(seq, 0)
		copy(seq[pos+1:], seq[pos:])
		seq[pos] = q
		cur = newDist
	}
	return seq, cur
}

// mstWeight computes the minimum spanning tree weight over the subset
// (Prim's algorithm). The MST weight is a lower bound on the minimum
// Hamiltonian path over the same vertices (a path is a spanning tree), and
// in a metric space the minimum path itself is monotone under adding
// vertices (drop the new vertex and shortcut). Chaining the two:
// MST(S) > ε_d  ⇒  minPath(S) > ε_d  ⇒  minPath(S′) > ε_d for all S′ ⊇ S,
// which makes MST a valid superset-pruning bound for the branch-and-bound.
// (MST weight alone is not monotone under vertex addition — a Steiner-like
// point can shrink the tree — so the chain above is the needed argument.)
func mstWeight(inst *Instance, subset []int) float64 {
	k := len(subset)
	if k <= 1 {
		return 0
	}
	inTree := make([]bool, k)
	key := make([]float64, k)
	for i := range key {
		key[i] = math.Inf(1)
	}
	key[0] = 0
	total := 0.0
	for iter := 0; iter < k; iter++ {
		best := -1
		for i := 0; i < k; i++ {
			if !inTree[i] && (best == -1 || key[i] < key[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += key[best]
		for i := 0; i < k; i++ {
			if !inTree[i] {
				if d := inst.Dist(subset[best], subset[i]); d < key[i] {
					key[i] = d
				}
			}
		}
	}
	return total
}
