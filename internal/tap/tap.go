// Package tap implements the Traveling Analyst Problem (Def. 4.1): pick a
// sequence of queries maximising total interestingness under a cost budget
// ε_t, with the distance objective turned into the ε-constraint
// Σ dist(q_i, q_{i+1}) ≤ ε_d as in §5.3. It provides:
//
//   - Greedy: the paper's Algorithm 3 ("sort by item efficiency" with
//     best-position insertion);
//   - TopK: the baseline of §6.4 (top ε_t queries by interestingness);
//   - SolveExact: a branch-and-bound exact solver standing in for the
//     CPLEX model, with a wall-clock timeout (Table 4's behaviour);
//   - RandomInstance: the artificial instances of §6.2.
package tap

import (
	"fmt"
	"math"
	"math/rand"
)

// Instance is a TAP instance over N queries.
type Instance struct {
	Interest []float64
	Cost     []float64
	// Dist returns the distance between queries i and j. It must be
	// symmetric with zero diagonal.
	Dist func(i, j int) float64
	// NonMetric declares that Dist may violate the triangle inequality
	// (e.g. the i.i.d.-uniform artificial instances of §6.2). The exact
	// solver then disables its metric-only superset prunings and relies on
	// the interest bound alone — slower, still exact.
	NonMetric bool
}

// N returns the number of queries.
func (inst *Instance) N() int { return len(inst.Interest) }

// Solution is an ordered selection of queries.
type Solution struct {
	Order         []int
	TotalInterest float64
	TotalCost     float64
	TotalDist     float64
}

// Evaluate recomputes the totals of an ordering against the instance.
func (inst *Instance) Evaluate(order []int) Solution {
	s := Solution{Order: append([]int(nil), order...)}
	for k, q := range order {
		s.TotalInterest += inst.Interest[q]
		s.TotalCost += inst.Cost[q]
		if k > 0 {
			s.TotalDist += inst.Dist(order[k-1], q)
		}
	}
	return s
}

// Feasible reports whether the solution respects the budget and distance
// bounds and repeats no query.
func (inst *Instance) Feasible(s Solution, epsT, epsD float64) error {
	seen := make(map[int]bool, len(s.Order))
	for _, q := range s.Order {
		if q < 0 || q >= inst.N() {
			return fmt.Errorf("tap: query index %d out of range", q)
		}
		if seen[q] {
			return fmt.Errorf("tap: query %d repeated", q)
		}
		seen[q] = true
	}
	e := inst.Evaluate(s.Order)
	// The negated comparisons treat NaN totals (a NaN cost or distance
	// somewhere in the sequence) as infeasible: `x > budget` is false for
	// NaN and would wave the solution through.
	if !(e.TotalCost <= epsT+1e-9) {
		return fmt.Errorf("tap: cost %v exceeds budget %v", e.TotalCost, epsT)
	}
	if !(e.TotalDist <= epsD+1e-9) {
		return fmt.Errorf("tap: distance %v exceeds bound %v", e.TotalDist, epsD)
	}
	return nil
}

// RandomUniformInstance generates the §6.2 artificial instances exactly as
// described: uniform distributions of interestingness, cost (unit — §4.2)
// and pairwise distances. I.i.d. uniform distances are symmetric but not a
// metric, which is fine for the solvers (CPLEX in the paper does not
// assume metricity either); the instance is flagged NonMetric.
func RandomUniformInstance(n int, rng *rand.Rand) *Instance {
	interest := make([]float64, n)
	cost := make([]float64, n)
	d := make([][]float64, n)
	for i := 0; i < n; i++ {
		interest[i] = rng.Float64()
		cost[i] = 1
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			d[i][j], d[j][i] = v, v
		}
	}
	return &Instance{
		Interest:  interest,
		Cost:      cost,
		Dist:      func(i, j int) float64 { return d[i][j] },
		NonMetric: true,
	}
}

// RandomInstance generates a metric artificial instance: uniform
// interestingness, unit costs, and distances as Euclidean distances
// between points drawn uniformly in the unit square. Use this where the
// solver's metric prunings should stay active; RandomUniformInstance is
// the paper-faithful §6.2 generator.
func RandomInstance(n int, rng *rand.Rand) *Instance {
	interest := make([]float64, n)
	cost := make([]float64, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		interest[i] = rng.Float64()
		cost[i] = 1
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	return &Instance{
		Interest: interest,
		Cost:     cost,
		Dist: func(i, j int) float64 {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			return math.Sqrt(dx*dx + dy*dy)
		},
	}
}

// Recall is the proportion of queries of the reference (optimal) solution
// found by the candidate solution (§6.4, Table 6). Order is irrelevant.
func Recall(reference, candidate Solution) float64 {
	if len(reference.Order) == 0 {
		return 0
	}
	in := make(map[int]bool, len(candidate.Order))
	for _, q := range candidate.Order {
		in[q] = true
	}
	hit := 0
	for _, q := range reference.Order {
		if in[q] {
			hit++
		}
	}
	return float64(hit) / float64(len(reference.Order))
}

// Deviation is the relative objective gap (z_ref − z_cand) / z_ref used in
// Table 5 (in percent when multiplied by 100).
func Deviation(reference, candidate Solution) float64 {
	//nolint:floateq // interests are non-negative, so the sum is exactly 0 iff the reference solution is empty
	if reference.TotalInterest == 0 {
		return 0
	}
	return (reference.TotalInterest - candidate.TotalInterest) / reference.TotalInterest
}
