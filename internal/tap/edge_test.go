package tap

import (
	"context"
	"math"
	"testing"
)

// nanInstance builds a small instance whose distance matrix contains NaN
// and +Inf entries — the poisoned inputs a fuzzer produces. NonMetric is
// set because NaN/Inf certainly violate the triangle inequality.
func nanInstance() *Instance {
	d := [][]float64{
		{0, 0.2, math.NaN(), math.Inf(1)},
		{0.2, 0, 0.3, math.NaN()},
		{math.NaN(), 0.3, 0, 0.1},
		{math.Inf(1), math.NaN(), 0.1, 0},
	}
	return &Instance{
		Interest:  []float64{0.9, 0.8, 0.7, 0.6},
		Cost:      []float64{1, 1, 1, 1},
		Dist:      func(i, j int) float64 { return d[i][j] },
		NonMetric: true,
	}
}

// checkAllSolvers runs every solver on the instance and asserts each
// returns a feasible solution without panicking or looping.
func checkAllSolvers(t *testing.T, inst *Instance, epsT, epsD float64) {
	t.Helper()
	solvers := map[string]func() Solution{
		"Greedy":     func() Solution { return Greedy(inst, epsT, epsD) },
		"GreedyPlus": func() Solution { return GreedyPlus(inst, epsT, epsD) },
		"Exact": func() Solution {
			sol, _ := SolveExact(inst, epsT, epsD, ExactOptions{})
			return sol
		},
		"Anytime": func() Solution {
			return SolveAnytime(context.Background(), inst, epsT, epsD, ExactOptions{MaxNodes: 8}).Solution
		},
	}
	for name, run := range solvers {
		sol := run()
		if err := inst.Feasible(sol, epsT, epsD); err != nil {
			t.Errorf("%s: infeasible solution: %v", name, err)
		}
	}
}

func TestSolversEmptyInstance(t *testing.T) {
	inst := &Instance{Dist: func(i, j int) float64 { return 0 }}
	checkAllSolvers(t, inst, 5, 1)
	sol, stats := SolveExact(inst, 5, 1, ExactOptions{})
	if len(sol.Order) != 0 || !stats.Certified || stats.Gap != 0 {
		t.Errorf("empty instance: order=%v certified=%v gap=%v", sol.Order, stats.Certified, stats.Gap)
	}
	if r := Recall(sol, sol); r != 0 {
		t.Errorf("Recall of empty reference = %v, want 0", r)
	}
	if d := Deviation(sol, sol); d != 0 {
		t.Errorf("Deviation of empty reference = %v, want 0", d)
	}
}

func TestSolversSingleQuery(t *testing.T) {
	inst := &Instance{
		Interest: []float64{0.5},
		Cost:     []float64{1},
		Dist:     func(i, j int) float64 { return 0 },
	}
	checkAllSolvers(t, inst, 1, 0)
	sol, stats := SolveExact(inst, 1, 0, ExactOptions{})
	if len(sol.Order) != 1 || sol.Order[0] != 0 {
		t.Fatalf("single affordable query not selected: %v", sol.Order)
	}
	if !stats.Certified || stats.Gap != 0 {
		t.Errorf("single query: certified=%v gap=%v", stats.Certified, stats.Gap)
	}
	// And with a budget that cannot afford it.
	sol, _ = SolveExact(inst, 0.5, 0, ExactOptions{})
	if len(sol.Order) != 0 {
		t.Errorf("unaffordable query selected: %v", sol.Order)
	}
}

func TestSolversAllInfeasibleBudget(t *testing.T) {
	inst := nanInstance()
	// ε_t = 0: no query fits the cost budget.
	checkAllSolvers(t, inst, 0, 1)
	sol, stats := SolveExact(inst, 0, 1, ExactOptions{})
	if len(sol.Order) != 0 {
		t.Fatalf("zero budget selected %v", sol.Order)
	}
	if stats.Gap != 0 {
		t.Errorf("zero budget gap = %v, want 0", stats.Gap)
	}
	// ε_d < 0: any pair is too far apart; only singleton solutions remain.
	sol, _ = SolveExact(inst, 4, -1, ExactOptions{})
	if len(sol.Order) > 1 {
		t.Errorf("negative distance bound admitted sequence %v", sol.Order)
	}
}

func TestSolversNaNInfDistances(t *testing.T) {
	inst := nanInstance()
	checkAllSolvers(t, inst, 4, 0.5)
	// The feasibility checker itself must reject a NaN-distance sequence.
	bad := inst.Evaluate([]int{0, 2}) // Dist(0,2) = NaN
	if err := inst.Feasible(bad, 4, 100); err == nil {
		t.Error("Feasible accepted a NaN-distance sequence")
	}
	inf := inst.Evaluate([]int{0, 3}) // Dist(0,3) = +Inf
	if err := inst.Feasible(inf, 4, 100); err == nil {
		t.Error("Feasible accepted an Inf-distance sequence")
	}
}

func TestSolversNaNCost(t *testing.T) {
	inst := &Instance{
		Interest:  []float64{0.9, 0.8},
		Cost:      []float64{math.NaN(), 1},
		Dist:      func(i, j int) float64 { return 0.1 * float64(i+j) },
		NonMetric: true,
	}
	for name, sol := range map[string]Solution{
		"Greedy":     Greedy(inst, 5, 1),
		"GreedyPlus": GreedyPlus(inst, 5, 1),
		"TopK":       TopK(inst, 5),
	} {
		for _, q := range sol.Order {
			if q == 0 {
				t.Errorf("%s selected the NaN-cost query", name)
			}
		}
	}
}

func TestTopKNaNBudget(t *testing.T) {
	inst := nanInstance()
	sol := TopK(inst, math.NaN())
	if len(sol.Order) != 0 {
		t.Errorf("NaN budget selected %v", sol.Order)
	}
}
