package tap

import (
	"context"
	"math"
	"sort"
	"time"

	"comparenb/internal/faultinject"
	"comparenb/internal/obs"
)

// ExactOptions configures the exact branch-and-bound solver.
type ExactOptions struct {
	// Timeout aborts the search and returns the incumbent (0 = none).
	// Table 4's CPLEX runs used one hour; the benches scale this down.
	Timeout time.Duration
	// Deadline aborts the search at an absolute wall-clock instant (zero
	// = none). When both Timeout and Deadline are set the earlier one
	// wins. This is how a pipeline-wide time budget reaches the solver.
	Deadline time.Time
	// MaxNodes aborts the search after this many branch-and-bound nodes
	// (0 = unlimited). Unlike the wall-clock budgets it is perfectly
	// deterministic, which is what the anytime property tests rely on:
	// two runs with node budgets N1 ≤ N2 explore identical prefixes.
	MaxNodes int64
	// Ctx, when non-nil, is polled at the periodic budget checkpoint;
	// cancellation stops the search exactly like an expired deadline
	// (TimedOut=true, incumbent returned). Callers that need an error
	// check Ctx.Err() themselves afterwards.
	Ctx context.Context
	// MaxHeldKarp caps the subset size for which the minimum Hamiltonian
	// path is computed exactly (2^k DP). Larger subsets fall back to the
	// cheapest-insertion upper bound and the result is no longer
	// certified optimal. Default 13.
	MaxHeldKarp int
}

// ExactStats reports how the search went.
type ExactStats struct {
	Nodes     int64
	Elapsed   time.Duration
	TimedOut  bool // a budget (time, nodes, or context) stopped the search
	Certified bool // provably optimal (no timeout, no Held–Karp fallback)
	// BestBound is a certified upper bound on the optimal total interest:
	// the incumbent's interest when the search completed (Certified), the
	// root fractional-knapsack bound otherwise. Gap is the relative
	// optimality gap (BestBound − incumbent) / BestBound — 0 when the
	// solution is provably optimal, and the honest "how far might we be"
	// figure an anytime caller reports after a budget expiry.
	BestBound float64
	Gap       float64
}

// budgetCheckNodes is how many branch-and-bound nodes pass between two
// wall-clock/context budget checks (and faultinject ticks). Node counts,
// not time, trigger the check, so instrumentation cannot perturb which
// nodes are explored before a deterministic node budget trips.
const budgetCheckNodes = 4096

// SolveExact solves the TAP to optimality by branch-and-bound, standing in
// for the paper's CPLEX model: maximise Σ interest subject to
// Σ cost ≤ ε_t and min-Hamiltonian-path(S) ≤ ε_d.
//
// Branching is on queries in decreasing interest order. Pruning uses
// (i) a fractional-knapsack upper bound on the remaining interest, and
// (ii) the MST weight of the chosen subset: MST(S) lower-bounds the
// minimum Hamiltonian path over S, which in a metric space is itself
// monotone under adding queries, so MST(S) > ε_d rules out every superset
// of S. Feasibility of an incumbent is decided exactly by Held–Karp when
// the subset is small enough.
func SolveExact(inst *Instance, epsT, epsD float64, opt ExactOptions) (Solution, ExactStats) {
	if opt.MaxHeldKarp <= 0 {
		opt.MaxHeldKarp = 13
	}
	start := time.Now()
	n := inst.N()
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	sort.SliceStable(items, func(a, b int) bool {
		return inst.Interest[items[a]] > inst.Interest[items[b]]
	})

	s := &exactSearch{
		inst:      inst,
		items:     items,
		epsT:      epsT,
		epsD:      epsD,
		opt:       opt,
		start:     start,
		deadline:  effectiveDeadline(start, opt),
		certified: true,
	}
	rootBound := s.fractionalBound(0, epsT)
	faultinject.Fire(faultinject.TapSearchTick)
	searchCtx := opt.Ctx
	if searchCtx == nil {
		searchCtx = context.Background()
	}
	sp := obs.StartSpan(searchCtx, "tap/bnb")
	// An already-spent budget skips the search entirely: the caller gets
	// an empty incumbent and TimedOut, and the anytime layer degrades.
	if s.budgetSpent() {
		s.timedOut = true
	} else {
		s.dfs(0, nil, 0, 0)
	}
	sp.End()
	// The search keeps plain local tallies (the DFS is single-threaded)
	// and flushes them in one batch; absent any budget they are a pure
	// function of the instance, so thread- and run-invariant.
	if reg := obs.FromContext(searchCtx); reg != nil {
		reg.Counter("tap_nodes_expanded").Add(s.nodes)
		reg.Counter("tap_bound_prunes").Add(s.boundPrunes)
		reg.Counter("tap_infeasible_prunes").Add(s.infeasPrunes)
		reg.Counter("tap_incumbent_updates").Add(s.incumbentUpdates)
	}
	stats := ExactStats{
		Nodes:     s.nodes,
		Elapsed:   time.Since(start),
		TimedOut:  s.timedOut,
		Certified: s.certified && !s.timedOut,
	}
	var sol Solution
	if s.bestOrder != nil {
		sol = inst.Evaluate(s.bestOrder)
	}
	stats.BestBound, stats.Gap = boundAndGap(stats.Certified, rootBound, sol.TotalInterest)
	return sol, stats
}

// effectiveDeadline resolves Timeout and Deadline to the earliest
// absolute instant, or zero when neither is set.
func effectiveDeadline(start time.Time, opt ExactOptions) time.Time {
	d := opt.Deadline
	if opt.Timeout > 0 {
		if t := start.Add(opt.Timeout); d.IsZero() || t.Before(d) {
			d = t
		}
	}
	return d
}

// boundAndGap derives the certified upper bound and relative optimality
// gap from the root relaxation and the incumbent. A completed search's
// own optimum is the tightest bound; otherwise the root bound stands.
func boundAndGap(certified bool, rootBound, incumbent float64) (bound, gap float64) {
	bound = rootBound
	if certified || bound < incumbent || math.IsNaN(bound) {
		bound = incumbent
	}
	if bound > 0 && incumbent < bound {
		gap = (bound - incumbent) / bound
	}
	return bound, gap
}

// budgetSpent reports whether a wall-clock deadline has passed or the
// context was cancelled. The node budget is checked separately in dfs.
func (s *exactSearch) budgetSpent() bool {
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	return s.opt.Ctx != nil && s.opt.Ctx.Err() != nil
}

type exactSearch struct {
	inst      *Instance
	items     []int
	epsT      float64
	epsD      float64
	opt       ExactOptions
	start     time.Time
	deadline  time.Time
	nodes     int64
	timedOut  bool
	certified bool

	// Search-shape tallies flushed to the obs registry after the search.
	boundPrunes      int64 // fractional-knapsack bound cut the branch
	infeasPrunes     int64 // MST / exact-path infeasibility cut the branch
	incumbentUpdates int64

	bestInterest float64
	bestOrder    []int
}

func (s *exactSearch) dfs(idx int, chosen []int, interest, cost float64) {
	if s.timedOut {
		return
	}
	s.nodes++
	if s.opt.MaxNodes > 0 && s.nodes > s.opt.MaxNodes {
		s.timedOut = true
		return
	}
	if s.nodes%budgetCheckNodes == 0 {
		faultinject.Fire(faultinject.TapSearchTick)
		if s.budgetSpent() {
			s.timedOut = true
			return
		}
	}
	if idx == len(s.items) {
		return
	}
	// Upper bound: current interest plus the fractional-knapsack optimum
	// of the remaining items within the remaining budget.
	if interest+s.fractionalBound(idx, s.epsT-cost) <= s.bestInterest+1e-12 {
		s.boundPrunes++
		return
	}

	// Branch 1: include items[idx].
	q := s.items[idx]
	if cost+s.inst.Cost[q] <= s.epsT+1e-12 {
		next := append(chosen, q)
		// MST(next) lower-bounds minPath(next) for any weights, and in a
		// metric space minPath is monotone under adding queries — so for
		// metric instances MST(next) > ε_d rules out every superset. For
		// non-metric instances neither step holds and the branch must be
		// explored regardless.
		if !s.inst.NonMetric && mstWeight(s.inst, next) > s.epsD+1e-12 {
			s.infeasPrunes++
		} else {
			ni := interest + s.inst.Interest[q]
			// Candidate incumbent: check exact feasibility.
			prune := false
			if ni > s.bestInterest {
				order, dist, exact := s.minPath(next)
				switch {
				case dist <= s.epsD+1e-12:
					s.bestInterest = ni
					s.bestOrder = append([]int(nil), order...)
					s.incumbentUpdates++
				case exact && !s.inst.NonMetric:
					// The minimum path of this subset already exceeds ε_d;
					// in a metric space the minimum path is monotone under
					// adding queries, so every superset is infeasible too.
					prune = true
					s.infeasPrunes++
				case exact:
					// Non-metric: this subset is infeasible but a superset
					// might not be; keep exploring.
				default:
					// Insertion bound exceeded ε_d on an oversized subset:
					// feasibility unknown, optimality can no longer be
					// certified.
					s.certified = false
				}
			}
			if !prune {
				s.dfs(idx+1, next, ni, cost+s.inst.Cost[q])
			}
		}
	}
	// Branch 2: exclude items[idx].
	s.dfs(idx+1, chosen, interest, cost)
}

// minPath returns an ordering of subset with (near-)minimal total
// distance. The cheap insertion upper bound is tried first: if it already
// fits ε_d the subset is certainly feasible and the DP is skipped. Only
// otherwise is the exact Held–Karp minimum computed (subset size
// permitting; exact=false when it does not).
func (s *exactSearch) minPath(subset []int) (order []int, dist float64, exact bool) {
	order, dist = insertionPath(s.inst, subset)
	if dist <= s.epsD+1e-12 {
		return order, dist, true
	}
	if len(subset) <= s.opt.MaxHeldKarp {
		order, dist = heldKarpPath(s.inst, subset)
		return order, dist, true
	}
	return order, dist, false
}

// fractionalBound is the LP relaxation of the knapsack over items
// idx..end with the given remaining budget.
func (s *exactSearch) fractionalBound(idx int, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	// Items are sorted by interest; with unit costs this is also the
	// efficiency order. For general costs re-sorting per node would be
	// exact but costly; interest order keeps the bound valid because we
	// cap by both count and budget below only when costs are uniform.
	// To stay admissible with arbitrary costs, take the best-ratio order.
	total := 0.0
	remaining := budget
	type ic struct{ i, c float64 }
	rest := make([]ic, 0, len(s.items)-idx)
	uniform := true
	first := -1.0
	for _, q := range s.items[idx:] {
		c := s.inst.Cost[q]
		if first < 0 {
			first = c
			//nolint:floateq // fast-path detection only: inexactly-equal costs just take the general sorted path, which is always correct
		} else if c != first {
			uniform = false
		}
		rest = append(rest, ic{s.inst.Interest[q], c})
	}
	if !uniform {
		sort.Slice(rest, func(a, b int) bool { return rest[a].i/rest[a].c > rest[b].i/rest[b].c })
	}
	for _, it := range rest {
		if remaining <= 0 {
			break
		}
		if it.c <= remaining {
			total += it.i
			remaining -= it.c
		} else {
			total += it.i * remaining / it.c
			remaining = 0
		}
	}
	return total
}

// heldKarpPath is minPathHeldKarp with path reconstruction.
func heldKarpPath(inst *Instance, subset []int) ([]int, float64) {
	k := len(subset)
	switch k {
	case 0:
		return nil, 0
	case 1:
		return []int{subset[0]}, 0
	case 2:
		return []int{subset[0], subset[1]}, inst.Dist(subset[0], subset[1])
	}
	d := make([][]float64, k)
	for i := range d {
		d[i] = make([]float64, k)
		for j := range d[i] {
			d[i][j] = inst.Dist(subset[i], subset[j])
		}
	}
	size := 1 << k
	dp := make([]float64, size*k)
	parent := make([]int8, size*k)
	for i := range dp {
		dp[i] = math.Inf(1)
		parent[i] = -1
	}
	for j := 0; j < k; j++ {
		dp[(1<<j)*k+j] = 0
	}
	for mask := 1; mask < size; mask++ {
		for last := 0; last < k; last++ {
			if mask&(1<<last) == 0 {
				continue
			}
			cur := dp[mask*k+last]
			if math.IsInf(cur, 1) {
				continue
			}
			for next := 0; next < k; next++ {
				if mask&(1<<next) != 0 {
					continue
				}
				nm := mask | 1<<next
				if v := cur + d[last][next]; v < dp[nm*k+next] {
					dp[nm*k+next] = v
					parent[nm*k+next] = int8(last)
				}
			}
		}
	}
	full := size - 1
	bestJ, best := 0, math.Inf(1)
	for j := 0; j < k; j++ {
		if v := dp[full*k+j]; v < best {
			best, bestJ = v, j
		}
	}
	// Reconstruct backwards.
	orderLocal := make([]int, 0, k)
	mask, j := full, bestJ
	for j >= 0 {
		orderLocal = append(orderLocal, j)
		pj := parent[mask*k+j]
		mask &^= 1 << j
		j = int(pj)
	}
	out := make([]int, len(orderLocal))
	for i, lj := range orderLocal {
		out[len(orderLocal)-1-i] = subset[lj]
	}
	return out, best
}
