package tap

import (
	"context"
	"math"
	"testing"
)

// decodeInstance turns arbitrary fuzzer bytes into a small TAP instance
// plus budgets. The encoding is deliberately forgiving — every byte slice
// decodes to something — so the fuzzer explores instance space instead of
// fighting a parser. Two sentinel bytes inject the adversarial values the
// solvers must survive: 0xFE → +Inf distance, 0xFF → NaN distance.
func decodeInstance(data []byte) (inst *Instance, epsT, epsD float64) {
	at := func(i int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[i%len(data)]
	}
	n := 2 + int(at(0))%7 // 2..8 queries: exact solve stays fast
	epsT = 1 + float64(int(at(1))%n)
	epsD = float64(at(2)) / 64.0

	interest := make([]float64, n)
	cost := make([]float64, n)
	d := make([][]float64, n)
	k := 3
	for i := 0; i < n; i++ {
		interest[i] = float64(at(k)) / 255.0
		k++
		cost[i] = 1
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			switch b := at(k); b {
			case 0xFE:
				v = math.Inf(1)
			case 0xFF:
				v = math.NaN()
			default:
				v = float64(b) / 253.0
			}
			d[i][j], d[j][i] = v, v
			k++
		}
	}
	return &Instance{
		Interest:  interest,
		Cost:      cost,
		Dist:      func(i, j int) float64 { return d[i][j] },
		NonMetric: true,
	}, epsT, epsD
}

// FuzzInstance cross-checks every solver on fuzzer-generated instances:
// all must return feasible solutions, the exact solver must dominate the
// heuristics, the anytime ladder must stay within its certified bound,
// and the §6.4 metrics must stay in range. Any panic, hang, or violated
// invariant is a finding.
func FuzzInstance(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{6, 3, 200, 10, 250, 30, 90, 170, 60, 220, 5, 80, 130})
	f.Add([]byte{3, 1, 255, 0xFE, 0xFF, 0xFE, 0xFF, 128})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, epsT, epsD := decodeInstance(data)

		greedy := Greedy(inst, epsT, epsD)
		if err := inst.Feasible(greedy, epsT, epsD); err != nil {
			t.Fatalf("Greedy infeasible: %v", err)
		}
		plus := GreedyPlus(inst, epsT, epsD)
		if err := inst.Feasible(plus, epsT, epsD); err != nil {
			t.Fatalf("GreedyPlus infeasible: %v", err)
		}
		if plus.TotalInterest < greedy.TotalInterest-1e-9 {
			t.Fatalf("GreedyPlus %.9f below Greedy %.9f", plus.TotalInterest, greedy.TotalInterest)
		}

		exact, stats := SolveExact(inst, epsT, epsD, ExactOptions{})
		if err := inst.Feasible(exact, epsT, epsD); err != nil {
			t.Fatalf("SolveExact infeasible: %v", err)
		}
		if stats.TimedOut {
			t.Fatalf("unbudgeted SolveExact reported TimedOut")
		}
		if exact.TotalInterest < plus.TotalInterest-1e-9 {
			t.Fatalf("exact %.9f below GreedyPlus %.9f", exact.TotalInterest, plus.TotalInterest)
		}
		if exact.TotalInterest > stats.BestBound+1e-9 {
			t.Fatalf("exact %.9f above its own bound %.9f", exact.TotalInterest, stats.BestBound)
		}

		any := SolveAnytime(context.Background(), inst, epsT, epsD, ExactOptions{MaxNodes: 16})
		if err := inst.Feasible(any.Solution, epsT, epsD); err != nil {
			t.Fatalf("SolveAnytime infeasible: %v", err)
		}
		if any.Gap < -1e-12 || math.IsNaN(any.Gap) {
			t.Fatalf("bad anytime gap %v", any.Gap)
		}
		if any.Solution.TotalInterest > exact.TotalInterest+1e-9 {
			t.Fatalf("anytime %.9f beats exact %.9f", any.Solution.TotalInterest, exact.TotalInterest)
		}

		if r := Recall(exact, greedy); r < 0 || r > 1 || math.IsNaN(r) {
			t.Fatalf("Recall out of range: %v", r)
		}
		if len(exact.Order) > 0 {
			// exact: recall of a solution against itself is exactly 1 by construction
			if r := Recall(exact, exact); r != 1 {
				t.Fatalf("Recall(exact, exact) = %v, want 1", r)
			}
		}
		if dev := Deviation(exact, greedy); dev < -1e-9 || dev > 1+1e-9 || math.IsNaN(dev) {
			t.Fatalf("Deviation out of range: %v", dev)
		}
	})
}
