package tap

import "sort"

// Improve2Opt applies 2-opt segment reversals to an ordering until no
// reversal shortens the path, returning the improved order and its total
// distance. For an open path, reversing order[i..j] replaces the two
// boundary edges; endpoints are handled by treating the missing edge as
// zero. This is the classic TSP local search, used here to free distance
// budget so more queries fit under ε_d.
func Improve2Opt(inst *Instance, order []int) ([]int, float64) {
	out := append([]int(nil), order...)
	n := len(out)
	if n < 3 {
		return out, inst.Evaluate(out).TotalDist
	}
	edge := func(a, b int) float64 {
		if a < 0 || b >= n {
			return 0 // virtual edge beyond an endpoint
		}
		return inst.Dist(out[a], out[b])
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reverse out[i..j]: edges (i−1,i) and (j,j+1) become
				// (i−1,j) and (i,j+1).
				before := edge(i-1, i) + edge(j, j+1)
				after := 0.0
				if i-1 >= 0 {
					after += inst.Dist(out[i-1], out[j])
				}
				if j+1 < n {
					after += inst.Dist(out[i], out[j+1])
				}
				if after < before-1e-12 {
					for l, r := i, j; l < r; l, r = l+1, r-1 {
						out[l], out[r] = out[r], out[l]
					}
					improved = true
				}
			}
		}
	}
	return out, inst.Evaluate(out).TotalDist
}

// GreedyPlus extends Algorithm 3 with local search (a "tuning of the
// notebook generators" of the kind §7 lists as future work): after the
// greedy construction, alternate 2-opt path improvement with further
// insertion attempts — the distance freed by reordering often lets
// queries rejected by plain Algorithm 3 fit after all. The result is
// never worse than Greedy's in total interest.
func GreedyPlus(inst *Instance, epsT, epsD float64) Solution {
	return ImproveFrom(inst, Greedy(inst, epsT, epsD).Order, epsT, epsD)
}

// ImproveFrom runs the 2-opt + re-insertion improvement loop starting
// from an arbitrary feasible seed ordering. Seeded queries are never
// dropped and insertions respect both ε_t and ε_d, so the result's total
// interest is never below the seed's. It is the degradation step of the
// anytime solver: the branch-and-bound incumbent becomes the seed, so
// whatever the truncated search learned is kept, not thrown away.
func ImproveFrom(inst *Instance, seed []int, epsT, epsD float64) Solution {
	seq := append([]int(nil), seed...)
	in := make([]bool, inst.N())
	cost := 0.0
	for _, q := range seq {
		in[q] = true
		cost += inst.Cost[q]
	}

	order := make([]int, inst.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa := inst.Interest[order[a]] / inst.Cost[order[a]]
		wb := inst.Interest[order[b]] / inst.Cost[order[b]]
		return wa > wb
	})

	for rounds := 0; rounds < 8; rounds++ {
		var dist float64
		seq, dist = Improve2Opt(inst, seq)
		added := false
		for _, q := range order {
			// The negated forms reject NaN costs and distances (every
			// comparison with NaN is false, so `cost > epsT` would let a
			// NaN-costed query through).
			if in[q] || !(cost+inst.Cost[q] <= epsT) {
				continue
			}
			pos, newDist := bestInsertion(inst, seq, dist, q)
			if !(newDist <= epsD) {
				continue
			}
			seq = append(seq, 0)
			copy(seq[pos+1:], seq[pos:])
			seq[pos] = q
			in[q] = true
			cost += inst.Cost[q]
			dist = newDist
			added = true
		}
		if !added {
			break
		}
	}
	return inst.Evaluate(seq)
}
