package tap

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestIncumbentMonotoneOverNodeBudgets pins the anytime property the
// deadline degradation rests on: the branch-and-bound explores the same
// node sequence under any budget, so the incumbent's interest can only
// grow as the budget does, every incumbent is feasible, and with an
// unlimited budget the incumbent is the certified optimum.
func TestIncumbentMonotoneOverNodeBudgets(t *testing.T) {
	budgets := []int64{1, 16, 64, 256, 1024, 8192, 0} // 0 = unlimited
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := RandomInstance(16, rng)
		prev := -1.0
		var last Solution
		var lastStats ExactStats
		for _, budget := range budgets {
			sol, stats := SolveExact(inst, 6, 1.2, ExactOptions{MaxNodes: budget})
			if err := inst.Feasible(sol, 6, 1.2); err != nil {
				t.Fatalf("seed %d budget %d: incumbent infeasible: %v", seed, budget, err)
			}
			if sol.TotalInterest < prev-1e-9 {
				t.Errorf("seed %d: interest dropped from %.6f to %.6f at budget %d",
					seed, prev, sol.TotalInterest, budget)
			}
			if sol.TotalInterest > stats.BestBound+1e-9 {
				t.Errorf("seed %d budget %d: incumbent %.6f exceeds certified bound %.6f",
					seed, budget, sol.TotalInterest, stats.BestBound)
			}
			if stats.Gap < -1e-12 || (stats.Certified && stats.Gap != 0) {
				t.Errorf("seed %d budget %d: bad gap %.6f (certified=%v)",
					seed, budget, stats.Gap, stats.Certified)
			}
			prev = sol.TotalInterest
			last, lastStats = sol, stats
		}
		if !lastStats.Certified || lastStats.TimedOut {
			t.Fatalf("seed %d: unlimited run not certified (timedOut=%v)", seed, lastStats.TimedOut)
		}
		if lastStats.Gap != 0 {
			t.Errorf("seed %d: certified optimum reports gap %.6f", seed, lastStats.Gap)
		}
		// The certified optimum dominates every heuristic.
		if g := GreedyPlus(inst, 6, 1.2); g.TotalInterest > last.TotalInterest+1e-9 {
			t.Errorf("seed %d: greedy+2opt %.6f beats the certified optimum %.6f",
				seed, g.TotalInterest, last.TotalInterest)
		}
	}
}

// TestSolveAnytimeGenerousBudgetIsExact: with a budget the search never
// hits, SolveAnytime is exactly SolveExact — no degradation, gap 0.
func TestSolveAnytimeGenerousBudgetIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := RandomInstance(14, rng)
	exact, _ := SolveExact(inst, 5, 1.0, ExactOptions{})
	res := SolveAnytime(context.Background(), inst, 5, 1.0, ExactOptions{Timeout: time.Hour})
	if res.Degraded || res.Solver != AnytimeExact {
		t.Fatalf("generous budget degraded: solver=%q degraded=%v", res.Solver, res.Degraded)
	}
	if res.Gap != 0 {
		t.Errorf("generous budget reports gap %.6f", res.Gap)
	}
	if res.Solution.TotalInterest != exact.TotalInterest { // exact: same deterministic search, bit-identical result
		t.Errorf("anytime %.9f != exact %.9f", res.Solution.TotalInterest, exact.TotalInterest)
	}
}

// TestSolveAnytimeDegradesFeasibly: under a tiny node budget the ladder
// must still return a feasible solution at least as good as both plain
// Greedy and the truncated incumbent, with an honest gap.
func TestSolveAnytimeDegradesFeasibly(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := RandomInstance(18, rng)
		// Two nodes can never finish a search over 18 queries, so every
		// seed must take the degradation ladder.
		res := SolveAnytime(context.Background(), inst, 6, 1.2, ExactOptions{MaxNodes: 2})
		if !res.Degraded {
			t.Fatalf("seed %d: 2-node budget did not degrade", seed)
		}
		if res.Solver != AnytimeIncumbent2Opt && res.Solver != AnytimeGreedy2Opt {
			t.Fatalf("seed %d: unexpected ladder rung %q", seed, res.Solver)
		}
		if err := inst.Feasible(res.Solution, 6, 1.2); err != nil {
			t.Fatalf("seed %d: degraded solution infeasible: %v", seed, err)
		}
		if g := Greedy(inst, 6, 1.2); res.Solution.TotalInterest < g.TotalInterest-1e-9 {
			t.Errorf("seed %d: degraded %.6f below plain greedy %.6f",
				seed, res.Solution.TotalInterest, g.TotalInterest)
		}
		if res.Gap < -1e-12 {
			t.Errorf("seed %d: negative gap %.6f", seed, res.Gap)
		}
		// The gap is sound: optimum ≤ bound, so solution ≥ bound·(1−gap)
		// must not exceed the true optimum.
		opt, _ := SolveExact(inst, 6, 1.2, ExactOptions{})
		if res.Solution.TotalInterest > opt.TotalInterest+1e-9 {
			t.Errorf("seed %d: degraded %.6f beats the true optimum %.6f",
				seed, res.Solution.TotalInterest, opt.TotalInterest)
		}
		if opt.TotalInterest > res.Stats.BestBound+1e-9 {
			t.Errorf("seed %d: true optimum %.6f exceeds reported bound %.6f",
				seed, opt.TotalInterest, res.Stats.BestBound)
		}
	}
}

// TestSolveAnytimeCancelledReturnsIncumbent: a cancelled context stops
// the search and skips the degradation ladder.
func TestSolveAnytimeCancelledReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := RandomInstance(20, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveAnytime(ctx, inst, 8, 1.5, ExactOptions{})
	if !res.Degraded || res.Solver != AnytimeCancelled {
		t.Fatalf("cancelled context: solver=%q degraded=%v", res.Solver, res.Degraded)
	}
	if len(res.Solution.Order) != 0 {
		t.Errorf("pre-cancelled search produced a %d-query incumbent", len(res.Solution.Order))
	}
	if !res.Stats.TimedOut {
		t.Error("cancelled search not reported as budget-stopped")
	}
}

// TestSolveAnytimeExpiredDeadline: a deadline already in the past yields
// the degraded heuristic solution immediately (the bounded-latency path).
func TestSolveAnytimeExpiredDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := RandomInstance(20, rng)
	start := time.Now()
	res := SolveAnytime(context.Background(), inst, 8, 1.5,
		ExactOptions{Deadline: start.Add(-time.Second)})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("expired deadline still took %v", elapsed)
	}
	if !res.Degraded {
		t.Fatal("expired deadline did not degrade")
	}
	if err := inst.Feasible(res.Solution, 8, 1.5); err != nil {
		t.Fatalf("degraded solution infeasible: %v", err)
	}
	if g := GreedyPlus(inst, 8, 1.5); res.Solution.TotalInterest < g.TotalInterest-1e-9 {
		t.Errorf("degraded %.6f below greedy+2opt %.6f", res.Solution.TotalInterest, g.TotalInterest)
	}
}

// TestImproveFromKeepsSeed: the improvement loop never drops seeded
// queries, so its interest is never below the seed's.
func TestImproveFromKeepsSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := RandomInstance(15, rng)
	seed, _ := SolveExact(inst, 5, 1.0, ExactOptions{MaxNodes: 64})
	improved := ImproveFrom(inst, seed.Order, 5, 1.0)
	if improved.TotalInterest < seed.TotalInterest-1e-9 {
		t.Errorf("ImproveFrom lost interest: %.6f -> %.6f", seed.TotalInterest, improved.TotalInterest)
	}
	in := make(map[int]bool)
	for _, q := range improved.Order {
		in[q] = true
	}
	for _, q := range seed.Order {
		if !in[q] {
			t.Errorf("seeded query %d dropped by ImproveFrom", q)
		}
	}
	if err := inst.Feasible(improved, 5, 1.0); err != nil {
		t.Fatalf("improved solution infeasible: %v", err)
	}
}
