package tap

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandomInstanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := RandomInstance(50, rng)
	if inst.N() != 50 {
		t.Fatalf("N = %d", inst.N())
	}
	for i := 0; i < 50; i++ {
		if inst.Cost[i] != 1 {
			t.Errorf("cost[%d] = %v, want 1", i, inst.Cost[i])
		}
		if inst.Interest[i] < 0 || inst.Interest[i] > 1 {
			t.Errorf("interest[%d] = %v out of [0,1]", i, inst.Interest[i])
		}
		if inst.Dist(i, i) != 0 {
			t.Errorf("Dist(%d,%d) = %v", i, i, inst.Dist(i, i))
		}
	}
	// Metric sanity on random triples.
	for k := 0; k < 500; k++ {
		a, b, c := rng.Intn(50), rng.Intn(50), rng.Intn(50)
		if inst.Dist(a, b) != inst.Dist(b, a) {
			t.Fatal("asymmetric distance")
		}
		if inst.Dist(a, c) > inst.Dist(a, b)+inst.Dist(b, c)+1e-12 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestEvaluate(t *testing.T) {
	inst := lineInstance([]float64{3, 1, 2}, []float64{0, 1, 3})
	s := inst.Evaluate([]int{0, 1, 2})
	if s.TotalInterest != 6 || s.TotalCost != 3 {
		t.Errorf("interest=%v cost=%v", s.TotalInterest, s.TotalCost)
	}
	if s.TotalDist != 3 { // |0-1| + |1-3|
		t.Errorf("dist = %v, want 3", s.TotalDist)
	}
}

// lineInstance puts queries on a 1-D line: distances are absolute
// differences of positions, costs are 1.
func lineInstance(interest, pos []float64) *Instance {
	cost := make([]float64, len(interest))
	for i := range cost {
		cost[i] = 1
	}
	return &Instance{
		Interest: interest,
		Cost:     cost,
		Dist:     func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) },
	}
}

func TestFeasible(t *testing.T) {
	inst := lineInstance([]float64{1, 1, 1}, []float64{0, 1, 2})
	good := inst.Evaluate([]int{0, 1})
	if err := inst.Feasible(good, 2, 5); err != nil {
		t.Errorf("feasible solution rejected: %v", err)
	}
	if err := inst.Feasible(good, 1, 5); err == nil {
		t.Error("over-budget solution accepted")
	}
	if err := inst.Feasible(inst.Evaluate([]int{0, 2}), 5, 1); err == nil {
		t.Error("over-distance solution accepted")
	}
	if err := inst.Feasible(Solution{Order: []int{0, 0}}, 5, 5); err == nil {
		t.Error("repeated query accepted")
	}
	if err := inst.Feasible(Solution{Order: []int{7}}, 5, 5); err == nil {
		t.Error("out-of-range query accepted")
	}
}

func TestRecallAndDeviation(t *testing.T) {
	ref := Solution{Order: []int{1, 2, 3, 4}, TotalInterest: 10}
	cand := Solution{Order: []int{4, 9, 2}, TotalInterest: 8}
	if got := Recall(ref, cand); got != 0.5 {
		t.Errorf("Recall = %v, want 0.5", got)
	}
	if got := Deviation(ref, cand); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Deviation = %v, want 0.2", got)
	}
	if got := Recall(Solution{}, cand); got != 0 {
		t.Errorf("Recall vs empty ref = %v", got)
	}
}

func TestGreedyRespectsBudgetAndDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		inst := RandomInstance(60, rng)
		epsT, epsD := 8.0, 1.5
		s := Greedy(inst, epsT, epsD)
		if err := inst.Feasible(s, epsT, epsD); err != nil {
			t.Fatalf("greedy infeasible: %v", err)
		}
		if len(s.Order) == 0 {
			t.Fatal("greedy found nothing on a generous instance")
		}
	}
}

func TestGreedyPicksHighInterestWhenUnconstrained(t *testing.T) {
	inst := lineInstance([]float64{0.9, 0.1, 0.8, 0.2}, []float64{0, 0, 0, 0})
	s := Greedy(inst, 2, 100)
	if len(s.Order) != 2 {
		t.Fatalf("picked %d queries, want 2", len(s.Order))
	}
	picked := map[int]bool{s.Order[0]: true, s.Order[1]: true}
	if !picked[0] || !picked[2] {
		t.Errorf("greedy picked %v, want {0, 2}", s.Order)
	}
}

func TestGreedyHonorsDistanceBound(t *testing.T) {
	// Two interesting queries far apart; a cluster of close mediocre ones.
	inst := lineInstance(
		[]float64{0.99, 0.98, 0.5, 0.5, 0.5},
		[]float64{0, 100, 50, 50.1, 50.2},
	)
	s := Greedy(inst, 3, 1.0)
	if err := inst.Feasible(s, 3, 1.0); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	// It cannot hold both far queries under ε_d = 1.
	both := 0
	for _, q := range s.Order {
		if q == 0 || q == 1 {
			both++
		}
	}
	if both == 2 {
		t.Error("greedy kept two queries 100 apart under distance bound 1")
	}
}

func TestTopKIgnoresDistance(t *testing.T) {
	inst := lineInstance(
		[]float64{0.99, 0.98, 0.5, 0.5},
		[]float64{0, 100, 50, 50.1},
	)
	s := TopK(inst, 2)
	picked := map[int]bool{}
	for _, q := range s.Order {
		picked[q] = true
	}
	if !picked[0] || !picked[1] {
		t.Errorf("TopK picked %v, want the two most interesting", s.Order)
	}
}

func TestBestInsertionPositions(t *testing.T) {
	inst := lineInstance([]float64{1, 1, 1}, []float64{0, 10, 5})
	// seq = [0, 1] (dist 10); inserting 2 (pos 5) in the middle keeps 10.
	pos, d := bestInsertion(inst, []int{0, 1}, 10, 2)
	if pos != 1 || d != 10 {
		t.Errorf("insertion pos=%d dist=%v, want middle with dist 10", pos, d)
	}
	// Inserting 1 into [0] must append or prepend with dist 10.
	pos, d = bestInsertion(inst, []int{0}, 0, 1)
	if d != 10 {
		t.Errorf("single insertion dist = %v", d)
	}
	_ = pos
}
