package tap

import "sort"

// Greedy is the paper's Algorithm 3: an adaptation of the classic "sort by
// item efficiency" knapsack heuristic. Queries are sorted by
// interest/cost descending; each is inserted at the position minimising
// the sequence's total distance, and kept only if both the budget ε_t and
// the distance bound ε_d still hold.
func Greedy(inst *Instance, epsT, epsD float64) Solution {
	n := inst.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa := inst.Interest[order[a]] / inst.Cost[order[a]]
		wb := inst.Interest[order[b]] / inst.Cost[order[b]]
		return wa > wb
	})

	var seq []int
	t := 0.0
	curDist := 0.0
	for _, q := range order {
		// Negated comparisons so NaN costs and NaN/Inf insertion
		// distances are rejected rather than silently accepted (every
		// comparison with NaN is false).
		if !(t+inst.Cost[q] <= epsT) {
			continue
		}
		pos, newDist := bestInsertion(inst, seq, curDist, q)
		if !(newDist <= epsD) {
			continue
		}
		seq = append(seq, 0)
		copy(seq[pos+1:], seq[pos:])
		seq[pos] = q
		t += inst.Cost[q]
		curDist = newDist
	}
	return inst.Evaluate(seq)
}

// bestInsertion finds the position (0..len(seq)) at which inserting q
// minimises the sequence's total consecutive distance, returning the
// position and the resulting total.
func bestInsertion(inst *Instance, seq []int, curDist float64, q int) (pos int, newDist float64) {
	if len(seq) == 0 {
		return 0, 0
	}
	bestPos, bestDelta := 0, inst.Dist(q, seq[0])
	if d := inst.Dist(seq[len(seq)-1], q); d < bestDelta {
		bestPos, bestDelta = len(seq), d
	}
	for i := 0; i+1 < len(seq); i++ {
		delta := inst.Dist(seq[i], q) + inst.Dist(q, seq[i+1]) - inst.Dist(seq[i], seq[i+1])
		if delta < bestDelta {
			bestPos, bestDelta = i+1, delta
		}
	}
	return bestPos, curDist + bestDelta
}

// TopK is the baseline of §6.4: pick the ε_t/min-cost most interesting
// queries regardless of distance, then order them with the same insertion
// rule so the sequence is comparable. It ignores ε_d by design — that is
// what makes it a baseline.
func TopK(inst *Instance, epsT float64) Solution {
	n := inst.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return inst.Interest[order[a]] > inst.Interest[order[b]]
	})
	var seq []int
	t := 0.0
	curDist := 0.0
	for _, q := range order {
		if !(t+inst.Cost[q] <= epsT) { // NaN-safe, as in Greedy
			continue
		}
		pos, newDist := bestInsertion(inst, seq, curDist, q)
		seq = append(seq, 0)
		copy(seq[pos+1:], seq[pos:])
		seq[pos] = q
		t += inst.Cost[q]
		curDist = newDist
	}
	return inst.Evaluate(seq)
}
