package tap

import (
	"math/rand"
	"testing"
)

func TestImprove2OptReducesDistance(t *testing.T) {
	// Points on a line visited in a zig-zag: 2-opt must recover the
	// monotone order.
	inst := lineInstance([]float64{1, 1, 1, 1, 1}, []float64{0, 10, 2, 8, 4})
	order := []int{0, 1, 2, 3, 4} // zig-zag: 0,10,2,8,4 → dist 34
	improved, dist := Improve2Opt(inst, order)
	if dist > 10+1e-9 {
		t.Errorf("2-opt dist = %v, want the monotone path length 10", dist)
	}
	if len(improved) != 5 {
		t.Fatal("2-opt lost items")
	}
	seen := map[int]bool{}
	for _, q := range improved {
		seen[q] = true
	}
	if len(seen) != 5 {
		t.Error("2-opt duplicated items")
	}
}

func TestImprove2OptSmallInputs(t *testing.T) {
	inst := lineInstance([]float64{1, 1}, []float64{0, 5})
	if _, d := Improve2Opt(inst, nil); d != 0 {
		t.Errorf("empty: %v", d)
	}
	if _, d := Improve2Opt(inst, []int{1}); d != 0 {
		t.Errorf("single: %v", d)
	}
	if _, d := Improve2Opt(inst, []int{0, 1}); d != 5 {
		t.Errorf("pair: %v", d)
	}
}

func TestImprove2OptNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		inst := RandomInstance(20, rng)
		order := rng.Perm(20)[:5+rng.Intn(10)]
		before := inst.Evaluate(order).TotalDist
		_, after := Improve2Opt(inst, order)
		if after > before+1e-9 {
			t.Fatalf("2-opt worsened the path: %v → %v", before, after)
		}
	}
}

// TestGreedyPlusDominatesGreedy: the local-search extension must be at
// least as good as Algorithm 3 in total interest and stay feasible.
func TestGreedyPlusDominatesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	improvedSomewhere := false
	for trial := 0; trial < 25; trial++ {
		var inst *Instance
		if trial%2 == 0 {
			inst = RandomInstance(80, rng)
		} else {
			inst = RandomUniformInstance(80, rng)
		}
		// ε_d tight enough that plain Algorithm 3 is distance-starved —
		// the regime where freeing budget by reordering pays off.
		epsT, epsD := 10.0, 0.45
		g := Greedy(inst, epsT, epsD)
		gp := GreedyPlus(inst, epsT, epsD)
		if err := inst.Feasible(gp, epsT, epsD); err != nil {
			t.Fatalf("trial %d: GreedyPlus infeasible: %v", trial, err)
		}
		if gp.TotalInterest < g.TotalInterest-1e-9 {
			t.Fatalf("trial %d: GreedyPlus %v worse than Greedy %v",
				trial, gp.TotalInterest, g.TotalInterest)
		}
		if gp.TotalInterest > g.TotalInterest+1e-9 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("GreedyPlus never improved on Greedy across 25 instances; local search inert")
	}
}

func TestGreedyPlusRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	inst := RandomInstance(50, rng)
	gp := GreedyPlus(inst, 6, 1.0)
	if len(gp.Order) > 6 {
		t.Errorf("GreedyPlus exceeded budget: %d queries", len(gp.Order))
	}
}
