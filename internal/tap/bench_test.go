package tap

import (
	"math/rand"
	"testing"
	"time"
)

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := RandomUniformInstance(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(inst, 10, 0.8)
	}
}

func BenchmarkGreedyPlus(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := RandomUniformInstance(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyPlus(inst, 10, 0.8)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := RandomUniformInstance(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(inst, 10)
	}
}

func BenchmarkExactSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := RandomUniformInstance(30, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveExact(inst, 8, 0.8, ExactOptions{Timeout: 10 * time.Second})
	}
}

func BenchmarkHeldKarp12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := RandomInstance(20, rng)
	subset := rng.Perm(20)[:12]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minPathHeldKarp(inst, subset)
	}
}
