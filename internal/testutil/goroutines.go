// Package testutil holds small stdlib-only helpers shared by the
// repository's test suites. Production code must not import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitGoroutinesSettle retries until the live goroutine count returns to
// its pre-test level (plus a small runtime allowance) — the stdlib-only
// stand-in for a leak detector. Call with `before` captured via
// runtime.NumGoroutine() immediately before the code under test; a leak
// fails the test with a full goroutine dump.
func WaitGoroutinesSettle(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutine leak after cancellation: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}
