package engine

import (
	"sort"

	"comparenb/internal/faultinject"
	"comparenb/internal/table"
)

// SetMemBudget arms the cache's hard memory budget, in MemoryFootprint
// bytes. Unlike the soft budget passed to NewCubeCache — which only
// bounds what survives a phase-boundary Trim — the memory budget is
// enforced at admission time, before a build's result is inserted:
// entries are evicted largest-first to make room, and a cube whose
// footprint alone exceeds the budget is never cached at all (the build
// still happens and the answer is still returned, so queries always
// complete — the run just loses reuse, which the pipeline records as a
// degradation). b <= 0 disarms the budget, restoring the Trim-only
// behaviour that the byte-identity contract relies on.
func (cc *CubeCache) SetMemBudget(b int64) {
	cc.mu.Lock()
	cc.memBudget = b
	cc.mu.Unlock()
}

// EstimateCubeBytes upper-bounds the MemoryFootprint of a cube over
// attrs before building it: the group count is at most both the row
// count and the product of the active-domain sizes, and each group
// costs the same fixed record as Cube.MemoryFootprint charges. The
// estimate is what admission compares against the memory budget, so it
// must never under-count — both bounds are exact upper bounds.
func EstimateCubeBytes(rel *table.Relation, attrs []int) int64 {
	groups := int64(rel.NumRows())
	prod := int64(1)
	for _, a := range attrs {
		d := int64(rel.DomSize(a))
		if d < 1 {
			d = 1
		}
		prod *= d
		if prod >= groups {
			// Already at the row-count cap; stop before prod can overflow
			// (each factor is <= rows, so prod <= rows^2 fits comfortably).
			prod = groups
			break
		}
	}
	if prod < groups {
		groups = prod
	}
	perGroup := int64(len(attrs))*4 + 8 + int64(rel.NumMeasures())*3*8
	return groups * perGroup
}

// admitPrepare is the pre-build half of memory-budget admission: it
// fires the CacheAdmit fault-injection site, estimates the candidate's
// footprint, evicts largest-first to open headroom, and reports whether
// the candidate may be cached at all. A false return means the estimate
// alone exceeds the budget — the caller must still build (answers are
// never refused, only caching is) but must not insert.
//
// Called without cc.mu held: registered hooks may sleep, and sleeping
// under the cache lock would stall every concurrent lookup.
func (cc *CubeCache) admitPrepare(rel *table.Relation, sorted []int) bool {
	cc.mu.Lock()
	budget := cc.memBudget
	cc.mu.Unlock()
	if budget <= 0 {
		return true
	}
	faultinject.Fire(faultinject.CacheAdmit)
	est := EstimateCubeBytes(rel, sorted)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if est > cc.memBudget-cc.encBytes {
		cc.admitRefusals.Inc()
		return false
	}
	cc.evictForLocked(est)
	return true
}

// admitInsertLocked performs the post-build half of admission and, when
// the cube is admitted, inserts it. `admitted` is admitPrepare's
// verdict; the actual footprint is re-checked because the pre-build
// number was only an estimate. Callers hold cc.mu.
func (cc *CubeCache) admitInsertLocked(key cacheKey, cube *Cube, sorted []int, admitted bool) {
	if cc.memBudget > 0 {
		if !admitted {
			return
		}
		actual := cube.MemoryFootprint()
		if actual > cc.memBudget-cc.encBytes {
			cc.admitRefusals.Inc()
			return
		}
		cc.evictForLocked(actual)
	}
	cc.insertLocked(key, cube, sorted)
}

// evictForLocked removes entries largest-footprint-first (ties broken
// by key string — the same victim rule as Trim, a pure function of the
// entry set) until `need` more bytes fit under the memory budget. The
// retained payload of encoded relations (encBytes) occupies budget that
// eviction can never reclaim — encodings are shared by every future
// build — so it narrows the headroom instead of nominating victims.
// Callers hold cc.mu.
func (cc *CubeCache) evictForLocked(need int64) {
	if cc.memBudget <= 0 || cc.bytes+cc.encBytes+need <= cc.memBudget {
		return
	}
	type victim struct {
		key   cacheKey
		bytes int64
	}
	// Collect keys, then sort: the iteration feeds a deterministic sort,
	// so map order cannot leak into which entries survive.
	var all []victim
	for key, e := range cc.entries {
		all = append(all, victim{key: key, bytes: e.bytes})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].bytes != all[j].bytes {
			return all[i].bytes > all[j].bytes
		}
		return all[i].key.attrs < all[j].key.attrs
	})
	for _, v := range all {
		if cc.bytes+cc.encBytes+need <= cc.memBudget {
			break
		}
		delete(cc.entries, v.key)
		cc.bytes -= v.bytes
		cc.admitEvictions.Inc()
	}
	cc.nEntries = len(cc.entries)
}
