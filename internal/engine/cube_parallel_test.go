package engine

import (
	"math"
	"testing"

	"comparenb/internal/table"
)

// refGroup / referenceBuildCube is an independent, deliberately naive cube
// builder used as ground truth for the sharded kernel: one full sequential
// scan, string-keyed map, first-occurrence group order. Sums accumulate in
// row order, so they may differ from the sharded build's merged partials in
// the last ulps — equivalence checks use a relative tolerance for sums and
// exact equality for everything else.
type refGroup struct {
	key   []int32
	count int64
	sums  []float64
	mins  []float64
	maxs  []float64
}

func referenceBuildCube(rel *table.Relation, attrs []int) []*refGroup {
	cols := make([][]int32, len(attrs))
	for i, a := range attrs {
		cols[i] = rel.CatCol(a)
	}
	meas := make([][]float64, rel.NumMeasures())
	for j := range meas {
		meas[j] = rel.MeasCol(j)
	}
	index := map[string]*refGroup{}
	var order []*refGroup
	buf := make([]byte, 4*len(attrs))
	for row := 0; row < rel.NumRows(); row++ {
		for k := range cols {
			c := cols[k][row]
			buf[4*k] = byte(c)
			buf[4*k+1] = byte(c >> 8)
			buf[4*k+2] = byte(c >> 16)
			buf[4*k+3] = byte(c >> 24)
		}
		g := index[string(buf)]
		if g == nil {
			key := make([]int32, len(attrs))
			for k := range cols {
				key[k] = cols[k][row]
			}
			g = &refGroup{
				key:  key,
				sums: make([]float64, len(meas)),
				mins: make([]float64, len(meas)),
				maxs: make([]float64, len(meas)),
			}
			for j := range meas {
				g.mins[j] = math.NaN()
				g.maxs[j] = math.NaN()
			}
			index[string(buf)] = g
			order = append(order, g)
		}
		g.count++
		for j := range meas {
			v := meas[j][row]
			if math.IsNaN(v) {
				continue
			}
			g.sums[j] += v
			if math.IsNaN(g.mins[j]) || v < g.mins[j] {
				g.mins[j] = v
			}
			if math.IsNaN(g.maxs[j]) || v > g.maxs[j] {
				g.maxs[j] = v
			}
		}
	}
	return order
}

// requireCubesBitIdentical fails unless the two cubes are bit-for-bit the
// same: keys, counts, and every float compared through Float64bits (so NaN
// patterns and signed zeros count too).
func requireCubesBitIdentical(t *testing.T, label string, a, b *Cube) {
	t.Helper()
	if a.NumGroups() != b.NumGroups() {
		t.Fatalf("%s: groups %d vs %d", label, a.NumGroups(), b.NumGroups())
	}
	if a.SourceRows != b.SourceRows {
		t.Fatalf("%s: SourceRows %d vs %d", label, a.SourceRows, b.SourceRows)
	}
	for g := 0; g < a.NumGroups(); g++ {
		ka, kb := a.GroupKey(g), b.GroupKey(g)
		for k := range ka {
			if ka[k] != kb[k] {
				t.Fatalf("%s: group %d key %v vs %v", label, g, ka, kb)
			}
		}
		if a.Count(g) != b.Count(g) {
			t.Fatalf("%s: group %d count %d vs %d", label, g, a.Count(g), b.Count(g))
		}
		for m := 0; m < a.rel.NumMeasures(); m++ {
			for _, agg := range []Agg{Sum, Min, Max} {
				va, vb := a.Value(g, m, agg), b.Value(g, m, agg)
				if math.Float64bits(va) != math.Float64bits(vb) {
					t.Fatalf("%s: group %d %s(m%d) = %v (bits %x) vs %v (bits %x)",
						label, g, agg, m, va, math.Float64bits(va), vb, math.Float64bits(vb))
				}
			}
		}
	}
}

// TestBuildCubeParallelBitIdentical pins the tentpole contract: the sharded
// build produces byte-identical cubes at every thread count, on relations
// large enough to span several shards (so the merge path actually runs).
func TestBuildCubeParallelBitIdentical(t *testing.T) {
	rows := 3*buildShardRows + 123 // 4 shards, last one partial
	rel := randomRelation(3, []int{7, 13, 5}, 2, rows, 42)
	for _, attrs := range [][]int{{0}, {0, 1}, {0, 1, 2}} {
		serial := BuildCube(rel, attrs)
		for _, threads := range []int{2, 3, 4, 8} {
			par := BuildCubeParallel(rel, attrs, threads)
			requireCubesBitIdentical(t, "attrs/threads", serial, par)
		}
	}
}

// TestBuildCubeParallelSingleShard checks the zero-goroutine fast path: a
// relation that fits one shard takes the merge-free route at any width.
func TestBuildCubeParallelSingleShard(t *testing.T) {
	rel := randomRelation(2, []int{4, 6}, 1, 500, 9)
	serial := BuildCube(rel, []int{0, 1})
	par := BuildCubeParallel(rel, []int{0, 1}, 8)
	requireCubesBitIdentical(t, "single shard", serial, par)
}

// TestBuildCubeMatchesReference is the property test against the naive
// ground-truth builder, over several seeded random relations that cross
// shard boundaries: group order, keys, counts and min/max must be exact;
// sums within relative tolerance (shard merge reassociates the FP adds).
func TestBuildCubeMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		rows int
		doms []int
	}{
		{seed: 1, rows: buildShardRows + 17, doms: []int{3, 5}},
		{seed: 2, rows: 2*buildShardRows + 1, doms: []int{10, 2}},
		{seed: 3, rows: 2 * buildShardRows, doms: []int{6, 4}},
	} {
		rel := randomRelation(len(tc.doms), tc.doms, 2, tc.rows, tc.seed)
		attrs := []int{0, 1}
		want := referenceBuildCube(rel, attrs)
		got := BuildCube(rel, attrs)
		if got.NumGroups() != len(want) {
			t.Fatalf("seed %d: groups %d, reference %d", tc.seed, got.NumGroups(), len(want))
		}
		for g := 0; g < got.NumGroups(); g++ {
			ref := want[g]
			key := got.GroupKey(g)
			for k := range key {
				if key[k] != ref.key[k] {
					t.Fatalf("seed %d: group %d key %v, reference %v (first-occurrence order broken)",
						tc.seed, g, key, ref.key)
				}
			}
			if got.Count(g) != ref.count {
				t.Fatalf("seed %d: group %d count %d, reference %d", tc.seed, g, got.Count(g), ref.count)
			}
			for m := 0; m < rel.NumMeasures(); m++ {
				if s := got.Value(g, m, Sum); math.Abs(s-ref.sums[m]) > 1e-9*(1+math.Abs(ref.sums[m])) {
					t.Errorf("seed %d: group %d Sum(m%d) = %v, reference %v", tc.seed, g, m, s, ref.sums[m])
				}
				if v := got.Value(g, m, Min); math.Float64bits(v) != math.Float64bits(ref.mins[m]) {
					t.Errorf("seed %d: group %d Min(m%d) = %v, reference %v", tc.seed, g, m, v, ref.mins[m])
				}
				if v := got.Value(g, m, Max); math.Float64bits(v) != math.Float64bits(ref.maxs[m]) {
					t.Errorf("seed %d: group %d Max(m%d) = %v, reference %v", tc.seed, g, m, v, ref.maxs[m])
				}
			}
		}
	}
}

// TestBuildCubeParallelNaN checks the merge handles all-NaN and mixed-NaN
// groups across shard boundaries: the NaN min/max sentinel must survive a
// merge with a shard that saw no finite value.
func TestBuildCubeParallelNaN(t *testing.T) {
	b := table.NewBuilder("nan", []string{"g"}, []string{"m"})
	rows := buildShardRows + 100
	for r := 0; r < rows; r++ {
		val := math.NaN()
		// Group "y" (odd rows) gets its single finite value in the second
		// shard only.
		if r == buildShardRows+51 {
			val = 7
		}
		g := "x"
		if r%2 == 1 {
			g = "y"
		}
		b.AddRow([]string{g}, []float64{val})
	}
	rel := b.Build()
	serial := BuildCube(rel, []int{0})
	par := BuildCubeParallel(rel, []int{0}, 4)
	requireCubesBitIdentical(t, "NaN merge", serial, par)
	for g := 0; g < par.NumGroups(); g++ {
		switch rel.Value(0, par.GroupKey(g)[0]) {
		case "x":
			if v := par.Value(g, 0, Min); !math.IsNaN(v) {
				t.Errorf("Min(all-NaN group) = %v, want NaN", v)
			}
		case "y":
			if v := par.Value(g, 0, Min); v != 7 {
				t.Errorf("Min(y) = %v, want 7", v)
			}
		}
	}
}
