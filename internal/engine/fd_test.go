package engine

import (
	"testing"

	"comparenb/internal/table"
)

// dateRelation has day → month (every day belongs to one month) but not
// month → day.
func dateRelation() *table.Relation {
	b := table.NewBuilder("dates", []string{"day", "month", "city"}, nil)
	rows := [][3]string{
		{"2021-04-01", "4", "Paris"},
		{"2021-04-02", "4", "Tours"},
		{"2021-04-02", "4", "Paris"},
		{"2021-05-01", "5", "Paris"},
		{"2021-05-02", "5", "Blois"},
	}
	for _, r := range rows {
		b.AddRow(r[:], nil)
	}
	return b.Build()
}

func TestDetectFDs(t *testing.T) {
	rel := dateRelation()
	fds := DetectFDs(rel)
	want := map[FD]bool{{Det: 0, Dep: 1}: true}
	got := map[FD]bool{}
	for _, fd := range fds {
		got[fd] = true
	}
	if !got[FD{Det: 0, Dep: 1}] {
		t.Errorf("day→month not detected; got %v", fds)
	}
	if got[FD{Det: 1, Dep: 0}] {
		t.Error("month→day should not hold")
	}
	if got[FD{Det: 2, Dep: 0}] || got[FD{Det: 0, Dep: 2}] {
		t.Error("city/day dependency should not hold")
	}
	_ = want
}

func TestFDSetMeaninglessPair(t *testing.T) {
	rel := dateRelation()
	s := NewFDSet(DetectFDs(rel))
	if !s.MeaninglessPair(0, 1) {
		t.Error("grouping by day while selecting months should be meaningless")
	}
	if !s.MeaninglessPair(1, 0) {
		t.Error("grouping by month while selecting days should be meaningless")
	}
	if s.MeaninglessPair(2, 1) {
		t.Error("city/month pair should be fine")
	}
}

func TestFDOnConstantColumn(t *testing.T) {
	b := table.NewBuilder("r", []string{"const", "x"}, nil)
	b.AddRow([]string{"k", "a"}, nil)
	b.AddRow([]string{"k", "b"}, nil)
	rel := b.Build()
	s := NewFDSet(DetectFDs(rel))
	// x → const holds trivially (const has one value), so the pair is
	// meaningless in both grouping directions.
	if !s.MeaninglessPair(0, 1) || !s.MeaninglessPair(1, 0) {
		t.Error("constant column should induce an FD with every attribute")
	}
}

func TestFDErrorAndApprox(t *testing.T) {
	b := table.NewBuilder("dirty", []string{"commune", "dept"}, nil)
	// 96 clean rows: commune determines dept…
	for i := 0; i < 96; i++ {
		b.AddRow([]string{string(rune('A' + i%8)), string(rune('a' + i%8/2))}, nil)
	}
	// …plus 4 dirty rows breaking the dependency.
	for i := 0; i < 4; i++ {
		b.AddRow([]string{"A", string(rune('z' - i))}, nil)
	}
	rel := b.Build()
	errG3 := FDError(rel, 0, 1)
	if errG3 <= 0 || errG3 > 0.05 {
		t.Fatalf("g3 error = %v, want (0, 0.05] for 4 dirty of 100", errG3)
	}
	exact := NewFDSet(DetectFDsApprox(rel, 0))
	if exact.MeaninglessPair(0, 1) {
		t.Error("exact detection should reject the dirty FD")
	}
	approx := NewFDSet(DetectFDsApprox(rel, 0.05))
	if !approx.MeaninglessPair(0, 1) {
		t.Error("approximate detection should accept the dirty FD")
	}
}

func TestFDErrorExactIsZero(t *testing.T) {
	rel := dateRelation()
	if got := FDError(rel, 0, 1); got != 0 {
		t.Errorf("exact FD g3 error = %v, want 0", got)
	}
	if got := FDError(rel, 1, 0); got <= 0 {
		t.Errorf("non-FD g3 error = %v, want > 0", got)
	}
}
