package engine

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"

	"comparenb/internal/obs"
	"comparenb/internal/table"
)

// CacheStats is a snapshot of CubeCache counters. Hits are exact-key
// matches, RollupHits answered a subset group-by by rolling up a cached
// superset cube, Misses fell through to a base-relation build, Evictions
// counts entries removed by Trim. Bytes/Entries describe current contents.
// AdmitEvictions and AdmitRefusals count memory-budget admission actions
// (see SetMemBudget); both stay zero — and absent from JSON — when no
// memory budget is armed, preserving report byte-identity.
type CacheStats struct {
	Hits           int64 `json:"hits"`
	RollupHits     int64 `json:"rollup_hits"`
	Misses         int64 `json:"misses"`
	Evictions      int64 `json:"evictions"`
	Bytes          int64 `json:"bytes"`
	Entries        int   `json:"entries"`
	AdmitEvictions int64 `json:"admit_evictions,omitempty"`
	AdmitRefusals  int64 `json:"admit_refusals,omitempty"`
	// EncodedBytes is the retained payload of encoded relations whose
	// builds went through this cache (see table.EncodedRelation). It is
	// charged against the hard memory budget at admission time and stays
	// zero — and absent from JSON — when no build used the encoded path.
	EncodedBytes int64 `json:"encoded_bytes,omitempty"`
}

// Delta returns the counter movement from base to s: the monotone
// counters (hits, rollups, misses, evictions, admission actions) become
// differences, while the instantaneous fields (Bytes, Entries,
// EncodedBytes) keep s's absolute values. A run sharing a long-lived
// cache (pipeline.Config.Cache) snapshots Stats before and Deltas after
// to report its own traffic; when the cache serves one run at a time the
// delta is exact, under concurrent runs it attributes interleaved
// traffic approximately (the cache-level totals stay exact and monotone).
func (s CacheStats) Delta(base CacheStats) CacheStats {
	s.Hits -= base.Hits
	s.RollupHits -= base.RollupHits
	s.Misses -= base.Misses
	s.Evictions -= base.Evictions
	s.AdmitEvictions -= base.AdmitEvictions
	s.AdmitRefusals -= base.AdmitRefusals
	return s
}

// cacheKey identifies a cube: the relation identity plus the canonical
// (sorted) attribute set.
type cacheKey struct {
	rel   *table.Relation
	attrs string
}

type cacheEntry struct {
	cube  *Cube
	attrs []int // sorted
	bytes int64
}

// CubeCache is a size-bounded, rollup-aware store of partial aggregates
// keyed by (relation, attribute set). It lets Algorithm 2's set cover, the
// hypothesis phase and the notebook's verification queries share cubes
// instead of rescanning the base relation: an exact key is returned as-is,
// and a subset group-by is answered by rolling up the cheapest cached
// superset (count/sum/min/max are distributive, so roll-up is exact).
//
// Concurrency and determinism: every method is safe for concurrent use,
// but eviction only happens in Trim, never inside Get/Add. Pipelines call
// Trim at single-threaded phase boundaries; combined with a victim rule
// that is a pure function of the entry set (not of arrival order), the
// cache contents at every decision point are independent of goroutine
// scheduling, which is what keeps notebooks byte-identical across thread
// counts (see docs/PERFORMANCE.md).
type CubeCache struct {
	mu        sync.Mutex
	budget    int64 // soft bytes bound, enforced only by Trim; <= 0 unbounded
	memBudget int64 // hard bytes bound, enforced at admission; <= 0 disarmed
	entries   map[cacheKey]*cacheEntry
	bytes     int64 // current footprint, guarded by mu
	nEntries  int   // len(entries), guarded by mu

	// noEncode forces every build issued through this cache onto the raw
	// float64 kernels (pipeline Config.NoCompress / -no-compress).
	noEncode bool
	// encSeen/encBytes track the retained payload of relations whose
	// builds used the encoded path, so the hard memory budget sees the
	// compressed columns as part of the engine's footprint. Guarded by mu.
	encSeen  map[*table.Relation]bool
	encBytes int64

	// Counters live in obs handles so the cache is its own single source
	// of truth for hit/rollup/miss/evict accounting: NewCubeCache starts
	// them standalone, Instrument rebinds them into a run's registry, and
	// both Stats() and the exported metrics read the same cells.
	hits           *obs.Counter
	rollupHits     *obs.Counter
	misses         *obs.Counter
	evictions      *obs.Counter
	admitEvictions *obs.Counter
	admitRefusals  *obs.Counter
}

// NewCubeCache returns a cache bounded to roughly `budget` bytes of cube
// footprint (MemoryFootprint units). budget <= 0 means unbounded.
func NewCubeCache(budget int64) *CubeCache {
	return &CubeCache{
		budget:         budget,
		entries:        make(map[cacheKey]*cacheEntry),
		encSeen:        make(map[*table.Relation]bool),
		hits:           obs.NewCounter(),
		rollupHits:     obs.NewCounter(),
		misses:         obs.NewCounter(),
		evictions:      obs.NewCounter(),
		admitEvictions: obs.NewCounter(),
		admitRefusals:  obs.NewCounter(),
	}
}

// Instrument rebinds the cache's counters to reg under the
// engine_cache_* names, making the registry the single source of truth
// for cache accounting. Call once, on a fresh cache, before any lookups;
// counts accumulated before Instrument are discarded with the standalone
// counters. A nil reg leaves the standalone counters in place.
func (cc *CubeCache) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.hits = reg.Counter("engine_cache_hits")
	cc.rollupHits = reg.Counter("engine_cache_rollup_hits")
	cc.misses = reg.Counter("engine_cache_misses")
	cc.evictions = reg.Counter("engine_cache_evictions")
	cc.admitEvictions = reg.Counter("engine_cache_admit_evictions")
	cc.admitRefusals = reg.Counter("engine_cache_admit_refusals")
}

// SetNoEncode routes every subsequent build issued through the cache onto
// the raw float64 kernels. Results are bit-identical either way (the
// encoded kernels are differential-tested against the raw path), so this
// is purely a performance/debugging escape hatch.
func (cc *CubeCache) SetNoEncode(b bool) {
	cc.mu.Lock()
	cc.noEncode = b
	cc.mu.Unlock()
}

// buildOpts snapshots the cache's kernel options for one build.
func (cc *CubeCache) buildOpts() BuildOptions {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return BuildOptions{NoEncode: cc.noEncode}
}

// noteEncodedLocked charges the retained payload of rel's encoded view
// against the cache's admission accounting, once per relation. Callers
// hold cc.mu and call this after a build, when any lazy encode has
// already happened (EncodedCached never triggers one).
func (cc *CubeCache) noteEncodedLocked(rel *table.Relation) {
	if cc.encSeen[rel] {
		return
	}
	enc := rel.EncodedCached()
	if enc == nil {
		return
	}
	cc.encSeen[rel] = true
	cc.encBytes += int64(enc.RetainedBytes())
}

// attrsKey canonicalises a sorted attribute set as a string map key.
func attrsKey(sorted []int) string {
	var sb strings.Builder
	for i, a := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(a))
	}
	return sb.String()
}

func sortedAttrs(attrs []int) []int {
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	return sorted
}

// Get returns the cached cube for exactly this attribute set, or nil.
// An exact match counts as a hit; a miss is only counted by the *OrBuild
// variants, which know whether a build actually happened.
func (cc *CubeCache) Get(rel *table.Relation, attrs []int) *Cube {
	sorted := sortedAttrs(attrs)
	key := cacheKey{rel: rel, attrs: attrsKey(sorted)}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if e, ok := cc.entries[key]; ok {
		cc.hits.Inc()
		return e.cube
	}
	return nil
}

// GetOrBuild returns a cube over attrs, in order of preference: the exact
// cached cube, a roll-up of the cheapest cached strict superset, or a fresh
// sharded build from the relation (threads as in BuildCubeParallel). The
// result is inserted into the cache. The superset choice — fewest groups,
// then fewest attributes, then smallest key string — is a deterministic
// function of the cache contents.
func (cc *CubeCache) GetOrBuild(rel *table.Relation, attrs []int, threads int) *Cube {
	// The background context never cancels, so the error is impossible.
	cube, _ := cc.GetOrBuildCtx(context.Background(), rel, attrs, threads)
	return cube
}

// BuildThrough returns the exact cached cube or builds one from the base
// relation, never answering via roll-up. Algorithm 2 uses it for the base
// cubes of the chosen cover, whose bit-exact provenance must be "built from
// the relation" regardless of what else the cache holds.
func (cc *CubeCache) BuildThrough(rel *table.Relation, attrs []int, threads int) *Cube {
	// The background context never cancels, so the error is impossible.
	cube, _ := cc.BuildThroughCtx(context.Background(), rel, attrs, threads)
	return cube
}

// Add inserts a cube built elsewhere. It never evicts (see Trim).
func (cc *CubeCache) Add(cube *Cube) {
	sorted := sortedAttrs(cube.attrs)
	key := cacheKey{rel: cube.rel, attrs: attrsKey(sorted)}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if _, ok := cc.entries[key]; ok {
		return
	}
	cc.admitInsertLocked(key, cube, sorted, true)
}

func (cc *CubeCache) insertLocked(key cacheKey, cube *Cube, sorted []int) {
	e := &cacheEntry{cube: cube, attrs: sorted, bytes: cube.MemoryFootprint()}
	cc.entries[key] = e
	cc.bytes += e.bytes
	cc.nEntries = len(cc.entries)
}

// bestSupersetLocked picks the cached strict superset of sorted (same
// relation) that is cheapest to roll up: fewest groups, then fewest
// attributes, then smallest attribute-key string. Returns nil when none.
func (cc *CubeCache) bestSupersetLocked(rel *table.Relation, sorted []int) *Cube {
	var best *cacheEntry
	var bestKey string
	for key, e := range cc.entries {
		if key.rel != rel || len(e.attrs) <= len(sorted) || !isSubset(sorted, e.attrs) {
			continue
		}
		if best == nil ||
			e.cube.NumGroups() < best.cube.NumGroups() ||
			(e.cube.NumGroups() == best.cube.NumGroups() && (len(e.attrs) < len(best.attrs) ||
				(len(e.attrs) == len(best.attrs) && key.attrs < bestKey))) {
			best = e
			bestKey = key.attrs
		}
	}
	if best == nil {
		return nil
	}
	return best.cube
}

// isSubset reports whether every element of sub (sorted) occurs in sup
// (sorted).
func isSubset(sub, sup []int) bool {
	j := 0
	for _, want := range sub {
		for j < len(sup) && sup[j] < want {
			j++
		}
		if j >= len(sup) || sup[j] != want {
			return false
		}
		j++
	}
	return true
}

// Trim evicts entries until the total footprint fits the budget. Victims
// are chosen largest-footprint-first (ties broken by key string), a pure
// function of the entry set, so the surviving contents do not depend on
// the order entries were inserted in. Call it from a single-threaded phase
// boundary; it is the only method that removes entries.
func (cc *CubeCache) Trim() {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.budget <= 0 || cc.bytes <= cc.budget {
		return
	}
	type victim struct {
		key   cacheKey
		bytes int64
	}
	// Collect keys, then sort: the iteration feeds a deterministic sort,
	// so map order cannot leak into which entries survive.
	var all []victim
	for key, e := range cc.entries {
		all = append(all, victim{key: key, bytes: e.bytes})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].bytes != all[j].bytes {
			return all[i].bytes > all[j].bytes
		}
		return all[i].key.attrs < all[j].key.attrs
	})
	for _, v := range all {
		if cc.bytes <= cc.budget {
			break
		}
		delete(cc.entries, v.key)
		cc.bytes -= v.bytes
		cc.evictions.Inc()
	}
	cc.nEntries = len(cc.entries)
}

// DropRelation evicts every entry built over rel, plus its encoded-bytes
// admission charge, and returns how many entries were removed. It exists
// for long-lived caches whose relations come and go (a server session
// being deleted): entries keyed by a dropped relation can never be hit
// again — the key is the pointer — so removing them cannot change any
// other run's answers, only free the bytes. Removals count as evictions.
func (cc *CubeCache) DropRelation(rel *table.Relation) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	// Collect keys, then sort: the removed set is "every entry of rel"
	// either way, but deterministic order keeps the walk reviewable.
	var victims []cacheKey
	for key := range cc.entries {
		if key.rel == rel {
			victims = append(victims, key)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].attrs < victims[j].attrs })
	for _, key := range victims {
		cc.bytes -= cc.entries[key].bytes
		delete(cc.entries, key)
		cc.evictions.Inc()
	}
	cc.nEntries = len(cc.entries)
	if cc.encSeen[rel] {
		delete(cc.encSeen, rel)
		if enc := rel.EncodedCached(); enc != nil {
			cc.encBytes -= int64(enc.RetainedBytes())
		}
	}
	return len(victims)
}

// Stats returns a snapshot of the counters.
func (cc *CubeCache) Stats() CacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CacheStats{
		Hits:           cc.hits.Value(),
		RollupHits:     cc.rollupHits.Value(),
		Misses:         cc.misses.Value(),
		Evictions:      cc.evictions.Value(),
		Bytes:          cc.bytes,
		Entries:        cc.nEntries,
		AdmitEvictions: cc.admitEvictions.Value(),
		AdmitRefusals:  cc.admitRefusals.Value(),
		EncodedBytes:   cc.encBytes,
	}
}
