package engine

import "comparenb/internal/table"

// FD records a functional dependency between two categorical attributes:
// every value of Det determines a single value of Dep.
type FD struct {
	Det int // determinant attribute index
	Dep int // dependent attribute index
}

// DetectFDs finds all pairwise functional dependencies between categorical
// attributes. This is the pre-processing step of the paper (footnote 2):
// the pipeline later skips comparison queries (A, B, ...) where A→B or
// B→A, e.g. selecting two days and grouping over months.
func DetectFDs(rel *table.Relation) []FD {
	return DetectFDsApprox(rel, 0)
}

// DetectFDsApprox finds approximate pairwise functional dependencies: a
// dependency det → dep holds when its g3 error — the minimum fraction of
// tuples that must be removed for the FD to hold exactly — is at most
// maxError. Real data is dirty; a commune column with a handful of
// mistyped departments should still disqualify the degenerate queries the
// FD pre-processing exists to prevent. maxError = 0 is the exact check.
func DetectFDsApprox(rel *table.Relation, maxError float64) []FD {
	n := rel.NumCatAttrs()
	var fds []FD
	for det := 0; det < n; det++ {
		for dep := 0; dep < n; dep++ {
			if det == dep {
				continue
			}
			if FDError(rel, det, dep) <= maxError {
				fds = append(fds, FD{Det: det, Dep: dep})
			}
		}
	}
	return fds
}

// FDError computes the g3 error of det → dep: 1 − (Σ over det values of
// the most common dep value's count) / N. Zero means the FD holds exactly;
// an empty relation has error 0.
func FDError(rel *table.Relation, det, dep int) float64 {
	nRows := rel.NumRows()
	if nRows == 0 {
		return 0
	}
	detCol := rel.CatCol(det)
	depCol := rel.CatCol(dep)
	// counts[(d, e)] over a compact composite key.
	depDom := int64(rel.DomSize(dep))
	counts := make(map[int64]int)
	for row, d := range detCol {
		counts[int64(d)*depDom+int64(depCol[row])]++
	}
	best := make(map[int32]int, rel.DomSize(det))
	for key, c := range counts {
		d := int32(key / depDom)
		if c > best[d] {
			best[d] = c
		}
	}
	keep := 0
	for _, c := range best {
		keep += c
	}
	return 1 - float64(keep)/float64(nRows)
}

// FDSet is a lookup structure over detected FDs.
type FDSet struct {
	related map[[2]int]bool
}

// NewFDSet indexes the given FDs for MeaninglessPair queries.
func NewFDSet(fds []FD) *FDSet {
	s := &FDSet{related: make(map[[2]int]bool, 2*len(fds))}
	for _, fd := range fds {
		s.related[[2]int{fd.Det, fd.Dep}] = true
	}
	return s
}

// MeaninglessPair reports whether a comparison query grouping by a and
// selecting on b is degenerate: if b→a every selected value contributes at
// most one group, and if a→b one of the two selections is empty within
// every group, so the join of Def. 3.1 collapses.
func (s *FDSet) MeaninglessPair(a, b int) bool {
	return s.related[[2]int{a, b}] || s.related[[2]int{b, a}]
}
