package engine

import (
	"fmt"
	"testing"

	"comparenb/internal/table"
)

// wideRelation has enough attributes × domain sizes that the mixed-radix
// composite key overflows uint64, forcing the string-key fallback.
func wideRelation(t *testing.T) *table.Relation {
	t.Helper()
	const nAttr = 11
	names := make([]string, nAttr)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	b := table.NewBuilder("wide", names, []string{"m"})
	cats := make([]string, nAttr)
	// 100 rows; every attribute sees 97 distinct values, so the code
	// space is 97^11 ≫ 2^63.
	for r := 0; r < 100; r++ {
		for a := range cats {
			cats[a] = fmt.Sprintf("v%d", (r+a)%97)
		}
		b.AddRow(cats, []float64{float64(r)})
	}
	rel := b.Build()
	attrs := make([]int, nAttr)
	prod := 1.0
	for i := range attrs {
		attrs[i] = i
		prod *= float64(rel.DomSize(i))
	}
	if prod < 1e19 {
		t.Fatalf("test premise broken: code space %.3g does not overflow uint64", prod)
	}
	if _, ok := mixedRadixForTest(rel, attrs); ok {
		t.Fatal("mixed radix unexpectedly fits; fallback not exercised")
	}
	return rel
}

func mixedRadixForTest(rel *table.Relation, attrs []int) ([]uint64, bool) {
	return mixedRadix(rel, attrs)
}

func TestBuildCubeStringKeyFallback(t *testing.T) {
	rel := wideRelation(t)
	attrs := make([]int, rel.NumCatAttrs())
	for i := range attrs {
		attrs[i] = i
	}
	c := BuildCube(rel, attrs)
	// Every row has a distinct composite key by construction? Not
	// necessarily — but group count must match the exact distinct count.
	if got, want := c.NumGroups(), CountGroups(rel, attrs); got != want {
		t.Errorf("fallback cube groups = %d, distinct count = %d", got, want)
	}
	if c.SourceRows != 100 {
		t.Errorf("SourceRows = %d", c.SourceRows)
	}
	// Rolling the wide cube down to two attributes must agree with a
	// direct cube (the rollup also runs through the radix/fallback choice).
	up := c.Rollup([]int{0, 10})
	direct := BuildCube(rel, []int{0, 10})
	if up.NumGroups() != direct.NumGroups() {
		t.Errorf("rollup groups = %d, direct = %d", up.NumGroups(), direct.NumGroups())
	}
	// Sum of counts is preserved.
	var total int64
	for g := 0; g < up.NumGroups(); g++ {
		total += up.Count(g)
	}
	if total != 100 {
		t.Errorf("rollup total count = %d, want 100", total)
	}
}

func TestEstimateGroupsFallbackPath(t *testing.T) {
	rel := wideRelation(t)
	attrs := make([]int, rel.NumCatAttrs())
	for i := range attrs {
		attrs[i] = i
	}
	if got, want := CountGroups(rel, attrs), BuildCube(rel, attrs).NumGroups(); got != want {
		t.Errorf("CountGroups fallback = %d, cube = %d", got, want)
	}
}
