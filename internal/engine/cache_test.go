package engine

import (
	"math"
	"sync"
	"testing"
)

func TestCacheExactHitReturnsSameCube(t *testing.T) {
	rel := randomRelation(2, []int{4, 5}, 1, 300, 1)
	cc := NewCubeCache(0)
	c1 := cc.GetOrBuild(rel, []int{0, 1}, 1)
	c2 := cc.GetOrBuild(rel, []int{1, 0}, 1) // order-insensitive key
	if c1 != c2 {
		t.Fatal("second GetOrBuild did not return the cached cube")
	}
	s := cc.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.RollupHits != 0 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit", s)
	}
	if s.Entries != 1 || s.Bytes != c1.MemoryFootprint() {
		t.Errorf("contents = %d entries / %d B, want 1 entry / %d B", s.Entries, s.Bytes, c1.MemoryFootprint())
	}
}

// TestCacheRollupAnswersSubset checks the rollup-aware path: with only a
// superset cube cached, a subset group-by is answered by roll-up (counted
// as RollupHits, not Misses) and matches a fresh direct build.
func TestCacheRollupAnswersSubset(t *testing.T) {
	rel := randomRelation(3, []int{4, 5, 3}, 2, 2000, 7)
	cc := NewCubeCache(0)
	cc.GetOrBuild(rel, []int{0, 1, 2}, 1)
	rolled := cc.GetOrBuild(rel, []int{0, 2}, 1)
	s := cc.Stats()
	if s.RollupHits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 rollup hit + 1 miss", s)
	}
	direct := BuildCube(rel, []int{0, 2})
	if rolled.NumGroups() != direct.NumGroups() {
		t.Fatalf("rolled groups = %d, direct = %d", rolled.NumGroups(), direct.NumGroups())
	}
	// Same relation + deterministic group order on both paths, so compare
	// group-by-group; sums via tolerance (roll-up reassociates the adds).
	for g := 0; g < rolled.NumGroups(); g++ {
		ka, kb := rolled.GroupKey(g), direct.GroupKey(g)
		if ka[0] != kb[0] || ka[1] != kb[1] {
			t.Fatalf("group %d key %v vs direct %v", g, ka, kb)
		}
		if rolled.Count(g) != direct.Count(g) {
			t.Fatalf("group %d count %d vs direct %d", g, rolled.Count(g), direct.Count(g))
		}
		for m := 0; m < rel.NumMeasures(); m++ {
			for _, agg := range AllAggs {
				a, b := rolled.Value(g, m, agg), direct.Value(g, m, agg)
				if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
					t.Errorf("group %d %s(m%d) = %v via rollup, %v direct", g, agg, m, a, b)
				}
			}
		}
	}
}

// TestCacheBuildThroughIgnoresSupersets pins BuildThrough's provenance
// contract: even with a covering superset cached, it aggregates the base
// relation, so its output is bit-identical to a plain BuildCube.
func TestCacheBuildThroughIgnoresSupersets(t *testing.T) {
	rel := randomRelation(3, []int{4, 5, 3}, 1, 1500, 3)
	cc := NewCubeCache(0)
	cc.GetOrBuild(rel, []int{0, 1, 2}, 1)
	through := cc.BuildThrough(rel, []int{0, 1}, 1)
	requireCubesBitIdentical(t, "BuildThrough", BuildCube(rel, []int{0, 1}), through)
	s := cc.Stats()
	if s.RollupHits != 0 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 2 misses and no rollup hits", s)
	}
	// A second call is an exact hit on the now-cached cube.
	if cc.BuildThrough(rel, []int{0, 1}, 1) != through {
		t.Error("second BuildThrough did not return the cached cube")
	}
}

func TestCacheTrimRespectsBudget(t *testing.T) {
	rel := randomRelation(3, []int{6, 6, 6}, 1, 4000, 5)
	big := BuildCube(rel, []int{0, 1, 2})
	budget := big.MemoryFootprint() // room for roughly one big cube
	cc := NewCubeCache(budget)
	for _, attrs := range [][]int{{0, 1, 2}, {0, 1}, {0, 2}, {1, 2}, {0}} {
		cc.GetOrBuild(rel, attrs, 1)
	}
	before := cc.Stats()
	cc.Trim()
	after := cc.Stats()
	if after.Bytes > budget {
		t.Errorf("after Trim: %d B cached, budget %d", after.Bytes, budget)
	}
	if after.Evictions == 0 {
		t.Errorf("Trim evicted nothing from %d B over a %d B budget", before.Bytes, budget)
	}
	if after.Entries >= before.Entries {
		t.Errorf("entries %d -> %d, want fewer", before.Entries, after.Entries)
	}
	// Largest-first victim rule: the widest cube goes before the small ones.
	if cc.Get(rel, []int{0, 1, 2}) != nil {
		t.Error("largest cube survived Trim despite being the first victim")
	}
	if cc.Get(rel, []int{0}) == nil {
		t.Error("smallest cube was evicted before the budget required it")
	}
}

// TestCacheTrimVictimsIndependentOfInsertionOrder checks the determinism
// half of the eviction contract: two caches holding the same entries, filled
// in different orders, keep exactly the same survivors.
func TestCacheTrimVictimsIndependentOfInsertionOrder(t *testing.T) {
	rel := randomRelation(3, []int{5, 5, 5}, 1, 3000, 8)
	sets := [][]int{{0, 1, 2}, {0, 1}, {0, 2}, {1, 2}, {0}, {1}, {2}}
	budget := BuildCube(rel, []int{0, 1}).MemoryFootprint() * 2
	a := NewCubeCache(budget)
	b := NewCubeCache(budget)
	for _, s := range sets {
		a.GetOrBuild(rel, s, 1)
	}
	for i := len(sets) - 1; i >= 0; i-- {
		// Reverse order, and rollups now resolve differently — force exact
		// builds so both caches hold the same entry set.
		b.BuildThrough(rel, sets[i], 1)
	}
	a.Trim()
	b.Trim()
	for _, s := range sets {
		if (a.Get(rel, s) != nil) != (b.Get(rel, s) != nil) {
			t.Errorf("attrs %v: survived in one cache but not the other", s)
		}
	}
	if sa, sb := a.Stats(), b.Stats(); sa.Bytes != sb.Bytes || sa.Entries != sb.Entries {
		t.Errorf("post-Trim contents differ: %d B/%d entries vs %d B/%d entries",
			a.Stats().Bytes, a.Stats().Entries, b.Stats().Bytes, b.Stats().Entries)
	}
}

// TestCacheConcurrentGetOrBuild exercises the lock discipline under -race:
// many goroutines demand overlapping attribute sets; every caller of a key
// must observe one canonical cube.
func TestCacheConcurrentGetOrBuild(t *testing.T) {
	rel := randomRelation(3, []int{4, 4, 4}, 1, 2000, 6)
	cc := NewCubeCache(0)
	sets := [][]int{{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}, {0}, {1}, {2}}
	const workers = 8
	got := make([][]*Cube, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]*Cube, len(sets))
			for i := range sets {
				out[(i+w)%len(sets)] = cc.GetOrBuild(rel, sets[(i+w)%len(sets)], 1)
			}
			got[w] = out
		}(w)
	}
	wg.Wait()
	for i := range sets {
		for w := 1; w < workers; w++ {
			if got[w][i] != got[0][i] {
				t.Fatalf("attrs %v: worker %d observed a different cube", sets[i], w)
			}
		}
	}
	s := cc.Stats()
	if s.Entries != len(sets) {
		t.Errorf("entries = %d, want %d", s.Entries, len(sets))
	}
}
