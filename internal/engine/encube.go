// Encoded cube kernels: the sharded cube build specialised to the
// compressed columnar layer of internal/table. Group keys are computed by
// fusing the mixed radix directly over blocks of unpacked dictionary codes
// (no per-row key slice, no per-row indexer call), and measures accumulate
// from encoded blocks — exactly-integer columns entirely in int64.
//
// The kernels preserve every invariant of the raw float64 path: the fixed
// shard width (buildShardRows), first-occurrence group order, in-order
// shard merge, and SQL NULL semantics for NaN. Output is bit-identical to
// the raw path at every thread count; see docs/PERFORMANCE.md ("Encoded
// columnar storage") for the argument.
//
// Memory layout: shard accumulators pack each group's statistics into one
// contiguous line ([sum,min,max] per measure), so the random-access writes
// of the scan touch one cache line per group instead of one per statistic.
// The global merge target keeps separate per-statistic arrays, which are
// handed to the Cube without copying.
package engine

import (
	"context"
	"math"
	"sort"

	"comparenb/internal/faultinject"
	"comparenb/internal/obs"
	"comparenb/internal/table"
)

// minEncodeRows gates the encoded kernels: relations with fewer rows build
// from raw columns, where encoding overhead would not pay for itself. A var
// so tests can lower it to exercise the encoded path on small fixtures.
var minEncodeRows = 2048

// encBlock is the number of rows unpacked per kernel block. The scratch
// working set (codes + cells + gids + one value buffer) stays around 36 KiB
// per worker — well inside L1/L2 — and is reused across every block and
// shard a worker scans.
const encBlock = 1024

// maxEncCapHint bounds the preallocation of group-indexed arrays. Group
// counts above the hint fall back to append growth, which only costs when
// a relation has more distinct groups than this.
const maxEncCapHint = 1 << 16

// BuildOptions selects between the encoded and raw cube kernels.
type BuildOptions struct {
	// NoEncode forces the raw float64 path (the -no-compress escape
	// hatch). Results are bit-identical either way; this is a
	// performance/debugging knob, not a semantic one.
	NoEncode bool
}

// BuildCubeParallelOptsCtx is BuildCubeParallelCtx with explicit kernel
// options. The encoded kernels engage when the relation is large enough
// (minEncodeRows), the composite code space fits uint64 (the string-keyed
// indexer regime has no encoded equivalent), and the lazy encode was not
// fault-injected; anything else falls back to the raw path.
func BuildCubeParallelOptsCtx(ctx context.Context, rel *table.Relation, attrs []int, threads int, opts BuildOptions) (*Cube, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	mustUniqueAttrs(sorted)

	if !opts.NoEncode && rel.NumRows() >= minEncodeRows {
		if radix, ok := mixedRadix(rel, sorted); ok {
			if enc := rel.Encoded(); enc != nil {
				if reg := obs.FromContext(ctx); reg != nil {
					reg.Counter("engine_cube_build_encoded").Inc()
				}
				return buildCubeEncodedCtx(ctx, rel, enc, sorted, radix, threads)
			}
		}
	}
	if reg := obs.FromContext(ctx); reg != nil {
		reg.Counter("engine_cube_build_raw").Inc()
	}
	return buildCubeRawCtx(ctx, rel, sorted, threads)
}

// encMeasKind classifies how the encoded kernels accumulate one measure.
type encMeasKind uint8

const (
	// encMeasRaw: the float64 slice shared with the relation; accumulate
	// exactly like the raw path.
	encMeasRaw encMeasKind = iota
	// encMeasDecode: an integer encoding whose sums are not provably
	// exact; decode blocks to float64 and accumulate like the raw path.
	encMeasDecode
	// encMeasConst: one shared bit pattern for every row.
	encMeasConst
	// encMeasIntExact: an integer encoding with SumExact; accumulate
	// count/delta-sum/delta-min/delta-max in int64 and convert once at
	// the end (bit-identical by the exact-integer argument).
	encMeasIntExact
)

// encPlan is the per-measure kernel plan of one encoded build.
type encPlan struct {
	kind     encMeasKind
	vals     []float64        // encMeasRaw: shared with the relation
	col      table.MeasColumn // encMeasDecode
	im       table.IntMeas    // encMeasIntExact
	base     int64            // encMeasIntExact
	constV   float64          // encMeasConst
	constNaN bool             // encMeasConst
	off      int              // offset of this measure's line slot (fstats or istats)
}

// encLayout fixes the packed statistics layout of one build: float-
// accumulated measures share fstats lines of width fw, int-exact measures
// share istats lines of width iw.
type encLayout struct {
	plans []encPlan
	fw    int       // floats per group line: 3 * (# float-accumulated measures)
	iw    int       // uint64s per group line: 3 * (# int-exact measures)
	finit []float64 // one empty float line: sum=0, min=NaN, max=NaN
	iinit []uint64  // one empty int line: sum=0, min=^0, max=0
}

func planMeasures(rel *table.Relation, enc *table.EncodedRelation) *encLayout {
	l := &encLayout{plans: make([]encPlan, rel.NumMeasures())}
	for m := range l.plans {
		switch c := enc.Meas(m).(type) {
		case table.ConstMeas:
			v := math.Float64frombits(c.ConstBits())
			l.plans[m] = encPlan{kind: encMeasConst, constV: v, constNaN: math.IsNaN(v), off: l.fw}
			l.fw += 3
		case table.IntMeas:
			if c.SumExact() {
				l.plans[m] = encPlan{kind: encMeasIntExact, im: c, base: c.Base(), off: l.iw}
				l.iw += 3
			} else {
				l.plans[m] = encPlan{kind: encMeasDecode, col: c, off: l.fw}
				l.fw += 3
			}
		default:
			l.plans[m] = encPlan{kind: encMeasRaw, vals: rel.MeasCol(m), off: l.fw}
			l.fw += 3
		}
	}
	l.finit = make([]float64, l.fw)
	for j := 0; j < l.fw; j += 3 {
		l.finit[j+1] = math.NaN()
		l.finit[j+2] = math.NaN()
	}
	l.iinit = make([]uint64, l.iw)
	for j := 0; j < l.iw; j += 3 {
		l.iinit[j+1] = ^uint64(0)
	}
	return l
}

// encScratch is one worker's reusable block buffers.
type encScratch struct {
	codes [][]int32 // per key position
	cells []uint64
	gids  []int32
	dbuf  []uint64  // deltas, int-exact measures only
	vbuf  []float64 // decoded values, decode measures only
}

func newEncScratch(stride int, l *encLayout) *encScratch {
	sc := &encScratch{
		codes: make([][]int32, stride),
		cells: make([]uint64, encBlock),
		gids:  make([]int32, encBlock),
	}
	for k := range sc.codes {
		sc.codes[k] = make([]int32, encBlock)
	}
	for _, p := range l.plans {
		if p.kind == encMeasIntExact && sc.dbuf == nil {
			sc.dbuf = make([]uint64, encBlock)
		}
		if p.kind == encMeasDecode && sc.vbuf == nil {
			sc.vbuf = make([]float64, encBlock)
		}
	}
	return sc
}

func encCapHint(rows int, cells uint64) int {
	h := rows
	if cells < uint64(h) {
		h = int(cells)
	}
	if h > maxEncCapHint {
		h = maxEncCapHint
	}
	return h
}

// encShard is a shard's private partial aggregate with packed per-group
// statistics lines. Arrays are preallocated at the group-count upper
// bound, so hot-path appends never reallocate for typical shapes.
type encShard struct {
	stride int
	dense  []int32 // cell → group+1 (0 = unassigned) when cells is small
	m      map[uint64]int32
	cells  []uint64 // cells[g] = composite cell of group g

	keyData []int32
	counts  []int64
	fstats  []float64 // group g: fstats[g*fw : (g+1)*fw]
	istats  []uint64  // group g: istats[g*iw : (g+1)*iw]
	l       *encLayout
	n       int
	rows    int
}

func newEncShard(l *encLayout, stride int, cells uint64, capHint int) *encShard {
	s := &encShard{stride: stride, l: l}
	if cells <= maxDenseCells {
		s.dense = make([]int32, cells)
	} else {
		s.m = make(map[uint64]int32, capHint)
	}
	s.cells = make([]uint64, 0, capHint)
	s.keyData = make([]int32, 0, capHint*stride)
	s.counts = make([]int64, 0, capHint)
	s.fstats = make([]float64, 0, capHint*l.fw)
	s.istats = make([]uint64, 0, capHint*l.iw)
	return s
}

// addGroup assigns the next group id to cell, taking the key from position
// i of the unpacked code buffers. Returns the 1-based id.
func (s *encShard) addGroup(cell uint64, codes [][]int32, i int) int32 {
	for k := 0; k < s.stride; k++ {
		s.keyData = append(s.keyData, codes[k][i])
	}
	s.cells = append(s.cells, cell)
	s.counts = append(s.counts, 0)
	s.fstats = append(s.fstats, s.l.finit...)
	s.istats = append(s.istats, s.l.iinit...)
	s.n++
	id := int32(s.n)
	if s.dense != nil {
		s.dense[cell] = id
	} else {
		s.m[cell] = id - 1
	}
	return id
}

// reset clears the accumulator for reuse on the next shard (serial build).
// The dense table is wiped via the group cell list, so the cost is
// O(groups), not O(cells).
func (s *encShard) reset() {
	if s.dense != nil {
		for _, cell := range s.cells {
			s.dense[cell] = 0
		}
	} else {
		clear(s.m)
	}
	s.cells = s.cells[:0]
	s.keyData = s.keyData[:0]
	s.counts = s.counts[:0]
	s.fstats = s.fstats[:0]
	s.istats = s.istats[:0]
	s.n = 0
	s.rows = 0
}

// scan aggregates rows [lo, hi) into the shard, block by block, in row
// order — the same visit order as the raw path's cubeAccum.scan.
func (s *encShard) scan(b *encBuilder, sc *encScratch, lo, hi int) {
	for blo := lo; blo < hi; blo += encBlock {
		bhi := blo + encBlock
		if bhi > hi {
			bhi = hi
		}
		s.scanBlock(b, sc, blo, bhi)
	}
	s.rows += hi - lo
}

func (s *encShard) scanBlock(b *encBuilder, sc *encScratch, blo, bhi int) {
	bn := bhi - blo
	for k, c := range b.cats {
		c.UnpackCodes(sc.codes[k][:bn], blo, bhi)
	}

	// Fused mixed-radix: composite cells for the whole block. The first
	// key position assigns (no zeroing pass), the rest accumulate.
	cells := sc.cells[:bn]
	if len(b.cats) == 0 {
		for i := range cells {
			cells[i] = 0
		}
	}
	for k := range b.cats {
		rk := b.radix[k]
		ck := sc.codes[k]
		if k == 0 {
			for i := 0; i < bn; i++ {
				cells[i] = uint64(uint32(ck[i])) * rk
			}
			continue
		}
		for i := 0; i < bn; i++ {
			cells[i] += uint64(uint32(ck[i])) * rk
		}
	}

	// Group ids, assigning fresh ids in first-occurrence order.
	gids := sc.gids[:bn]
	if s.dense != nil {
		for i, cell := range cells {
			id := s.dense[cell]
			if id == 0 {
				id = s.addGroup(cell, sc.codes, i)
			}
			gids[i] = id - 1
		}
	} else {
		for i, cell := range cells {
			id, ok := s.m[cell]
			if !ok {
				id = s.addGroup(cell, sc.codes, i) - 1
			}
			gids[i] = id
		}
	}

	counts := s.counts
	for _, g := range gids {
		counts[g]++
	}

	for m := range s.l.plans {
		p := &s.l.plans[m]
		switch p.kind {
		case encMeasRaw:
			accumFloatBlock(s.fstats, s.l.fw, p.off, p.vals[blo:bhi], gids)
		case encMeasDecode:
			p.col.UnpackValues(sc.vbuf[:bn], blo, bhi)
			accumFloatBlock(s.fstats, s.l.fw, p.off, sc.vbuf[:bn], gids)
		case encMeasConst:
			if p.constNaN {
				continue // NaN rows are counted but never aggregated
			}
			accumConstBlock(s.fstats, s.l.fw, p.off, p.constV, gids)
		case encMeasIntExact:
			p.im.UnpackDeltas(sc.dbuf[:bn], blo, bhi)
			accumDeltaBlock(s.istats, s.l.iw, p.off, sc.dbuf[:bn], gids)
		}
	}
}

// accumFloatBlock replays the raw path's per-row float accumulation over
// one block: same values, same order, same NaN skip — bit-identical. Each
// group's [sum,min,max] slot is contiguous, so a row touches one line.
func accumFloatBlock(stats []float64, fw, off int, vals []float64, gids []int32) {
	for i, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		p := int(gids[i])*fw + off
		st := stats[p : p+3 : p+3]
		st[0] += v
		if math.IsNaN(st[1]) || v < st[1] {
			st[1] = v
		}
		if math.IsNaN(st[2]) || v > st[2] {
			st[2] = v
		}
	}
}

func accumConstBlock(stats []float64, fw, off int, v float64, gids []int32) {
	for _, g := range gids {
		p := int(g)*fw + off
		st := stats[p : p+3 : p+3]
		st[0] += v
		if math.IsNaN(st[1]) || v < st[1] {
			st[1] = v
		}
		if math.IsNaN(st[2]) || v > st[2] {
			st[2] = v
		}
	}
}

func accumDeltaBlock(stats []uint64, iw, off int, deltas []uint64, gids []int32) {
	for i, d := range deltas {
		p := int(gids[i])*iw + off
		st := stats[p : p+3 : p+3]
		st[0] += d // delta sum in wrapping uint64 ≡ int64
		if d < st[1] {
			st[1] = d
		}
		if d > st[2] {
			st[2] = d
		}
	}
}

// toCube materialises a single-shard build: the packed statistics unpack
// into the Cube's per-statistic arrays bit-for-bit.
func (s *encShard) toCube(rel *table.Relation, sorted []int) *Cube {
	n := s.n
	l := s.l
	sums := make([][]float64, len(l.plans))
	mins := make([][]float64, len(l.plans))
	maxs := make([][]float64, len(l.plans))
	for m := range l.plans {
		p := &l.plans[m]
		sm := make([]float64, n)
		mn := make([]float64, n)
		mx := make([]float64, n)
		if p.kind == encMeasIntExact {
			base := p.base
			for g := 0; g < n; g++ {
				st := s.istats[g*l.iw+p.off:]
				sm[g] = float64(base*s.counts[g] + int64(st[0]))
				mn[g] = float64(base + int64(st[1]))
				mx[g] = float64(base + int64(st[2]))
			}
		} else {
			for g := 0; g < n; g++ {
				st := s.fstats[g*l.fw+p.off:]
				sm[g] = st[0]
				mn[g] = st[1]
				mx[g] = st[2]
			}
		}
		sums[m], mins[m], maxs[m] = sm, mn, mx
	}
	return &Cube{
		rel: rel, attrs: sorted, stride: s.stride,
		keyData: s.keyData, counts: s.counts,
		sums: sums, mins: mins, maxs: maxs,
		SourceRows: s.rows,
	}
}

// encGlobal is the merge target of a multi-shard build. Statistics live in
// separate per-statistic arrays — exactly the Cube's own layout, so toCube
// hands them over without copying. Arrays are slot-dense: fs[j] is the sum
// array of the j-th float-accumulated measure (slot j covers line offset
// 3j of the shard's fstats), is[j] of the j-th int-exact measure — the
// merge loops run over exactly the slots that exist, branch-free.
type encGlobal struct {
	stride int
	dense  []int32
	m      map[uint64]int32

	keyData      []int32
	counts       []int64
	fs, fmn, fmx [][]float64
	is           [][]int64
	imn, imx     [][]uint64 // delta domain (monotone in the value)
	l            *encLayout
	n            int
	rows         int
}

func newEncGlobal(l *encLayout, stride int, cells uint64, capHint int) *encGlobal {
	g := &encGlobal{stride: stride, l: l}
	if cells <= maxDenseCells {
		g.dense = make([]int32, cells)
	} else {
		g.m = make(map[uint64]int32, capHint)
	}
	g.keyData = make([]int32, 0, capHint*stride)
	g.counts = make([]int64, 0, capHint)
	nf, ni := l.fw/3, l.iw/3
	g.fs = make([][]float64, nf)
	g.fmn = make([][]float64, nf)
	g.fmx = make([][]float64, nf)
	for j := range g.fs {
		g.fs[j] = make([]float64, 0, capHint)
		g.fmn[j] = make([]float64, 0, capHint)
		g.fmx[j] = make([]float64, 0, capHint)
	}
	g.is = make([][]int64, ni)
	g.imn = make([][]uint64, ni)
	g.imx = make([][]uint64, ni)
	for j := range g.is {
		g.is[j] = make([]int64, 0, capHint)
		g.imn[j] = make([]uint64, 0, capHint)
		g.imx[j] = make([]uint64, 0, capHint)
	}
	return g
}

// initFrom seeds an empty global accumulator from the first shard. It is
// merge specialised to the empty target — every group is new, ids land in
// shard order — so the group data copies over in bulk, with no lookups.
func (a *encGlobal) initFrom(s *encShard) {
	l := a.l
	a.keyData = append(a.keyData, s.keyData...)
	a.counts = append(a.counts, s.counts[:s.n]...)
	for j := range a.fs {
		o := 3 * j
		fs, fmn, fmx := a.fs[j], a.fmn[j], a.fmx[j]
		for g := 0; g < s.n; g++ {
			st := s.fstats[g*l.fw+o:]
			fs = append(fs, st[0])
			fmn = append(fmn, st[1])
			fmx = append(fmx, st[2])
		}
		a.fs[j], a.fmn[j], a.fmx[j] = fs, fmn, fmx
	}
	for j := range a.is {
		o := 3 * j
		is, imn, imx := a.is[j], a.imn[j], a.imx[j]
		for g := 0; g < s.n; g++ {
			st := s.istats[g*l.iw+o:]
			is = append(is, int64(st[0]))
			imn = append(imn, st[1])
			imx = append(imx, st[2])
		}
		a.is[j], a.imn[j], a.imx[j] = is, imn, imx
	}
	if a.dense != nil {
		for sg, cell := range s.cells[:s.n] {
			a.dense[cell] = int32(sg + 1)
		}
	} else {
		for sg, cell := range s.cells[:s.n] {
			a.m[cell] = int32(sg)
		}
	}
	a.n = s.n
	a.rows = s.rows
}

// merge folds a shard partial into the global accumulator, in ascending
// shard order — the same discipline, and the same float operation order,
// as the raw path's cubeAccum.merge. A first-seen group adopts the shard's
// statistics wholesale, which is bit-identical to merging into the empty
// stats: min/max start NaN, and a shard sum is never -0.0 (it starts from
// +0.0, and IEEE addition from +0.0 cannot produce -0.0), so copying it
// equals adding it to +0.0.
func (a *encGlobal) merge(s *encShard) {
	l := a.l
	for sg := 0; sg < s.n; sg++ {
		cell := s.cells[sg]
		var g int32
		if a.dense != nil {
			id := a.dense[cell]
			if id == 0 {
				a.addGroupFromShard(cell, s, sg)
				continue
			}
			g = id - 1
		} else {
			id, ok := a.m[cell]
			if !ok {
				a.addGroupFromShard(cell, s, sg)
				continue
			}
			g = id
		}
		sf := s.fstats[sg*l.fw : (sg+1)*l.fw]
		a.counts[g] += s.counts[sg]
		for j := range a.fs {
			o := 3 * j
			a.fs[j][g] += sf[o]
			if v := sf[o+1]; !math.IsNaN(v) && (math.IsNaN(a.fmn[j][g]) || v < a.fmn[j][g]) {
				a.fmn[j][g] = v
			}
			if v := sf[o+2]; !math.IsNaN(v) && (math.IsNaN(a.fmx[j][g]) || v > a.fmx[j][g]) {
				a.fmx[j][g] = v
			}
		}
		if l.iw == 0 {
			continue
		}
		si := s.istats[sg*l.iw : (sg+1)*l.iw]
		for j := range a.is {
			o := 3 * j
			a.is[j][g] += int64(si[o])
			if d := si[o+1]; d < a.imn[j][g] {
				a.imn[j][g] = d
			}
			if d := si[o+2]; d > a.imx[j][g] {
				a.imx[j][g] = d
			}
		}
	}
	a.rows += s.rows
}

// addGroupFromShard appends a fresh group carrying shard group sg's
// statistics directly — one write per statistic instead of an empty
// append immediately overwritten.
func (a *encGlobal) addGroupFromShard(cell uint64, s *encShard, sg int) {
	l := a.l
	a.keyData = append(a.keyData, s.keyData[sg*s.stride:(sg+1)*s.stride]...)
	a.counts = append(a.counts, s.counts[sg])
	sf := s.fstats[sg*l.fw:]
	for j := range a.fs {
		o := 3 * j
		a.fs[j] = append(a.fs[j], sf[o])
		a.fmn[j] = append(a.fmn[j], sf[o+1])
		a.fmx[j] = append(a.fmx[j], sf[o+2])
	}
	if l.iw > 0 {
		si := s.istats[sg*l.iw:]
		for j := range a.is {
			o := 3 * j
			a.is[j] = append(a.is[j], int64(si[o]))
			a.imn[j] = append(a.imn[j], si[o+1])
			a.imx[j] = append(a.imx[j], si[o+2])
		}
	}
	a.n++
	id := int32(a.n)
	if a.dense != nil {
		a.dense[cell] = id
	} else {
		a.m[cell] = id - 1
	}
}

// toCube finalises the global accumulator. Float-accumulated measures hand
// their arrays over directly; int-exact measures materialise sum/min/max
// from the integer state (exact, hence bit-identical to float
// accumulation).
func (a *encGlobal) toCube(rel *table.Relation, sorted []int) *Cube {
	n := a.n
	nm := len(a.l.plans)
	sums := make([][]float64, nm)
	mins := make([][]float64, nm)
	maxs := make([][]float64, nm)
	for m := range a.l.plans {
		p := &a.l.plans[m]
		j := p.off / 3
		if p.kind != encMeasIntExact {
			sums[m], mins[m], maxs[m] = a.fs[j], a.fmn[j], a.fmx[j]
			continue
		}
		sm := make([]float64, n)
		mn := make([]float64, n)
		mx := make([]float64, n)
		base := p.base
		is, imn, imx := a.is[j], a.imn[j], a.imx[j]
		for g := 0; g < n; g++ {
			sm[g] = float64(base*a.counts[g] + is[g])
			mn[g] = float64(base + int64(imn[g]))
			mx[g] = float64(base + int64(imx[g]))
		}
		sums[m], mins[m], maxs[m] = sm, mn, mx
	}
	return &Cube{
		rel: rel, attrs: sorted, stride: a.stride,
		keyData: a.keyData, counts: a.counts,
		sums: sums, mins: mins, maxs: maxs,
		SourceRows: a.rows,
	}
}

// encBuilder carries the immutable inputs of one encoded build.
type encBuilder struct {
	rel   *table.Relation
	enc   *table.EncodedRelation
	attrs []int
	cats  []table.CatColumn
	l     *encLayout
	radix []uint64
	cells uint64
}

// buildCubeEncodedCtx is the encoded counterpart of buildCubeRawCtx: same
// shard layout, same faultinject site, same cancellation points, same
// in-order merge — different kernels.
func buildCubeEncodedCtx(ctx context.Context, rel *table.Relation, enc *table.EncodedRelation, sorted []int, radix []uint64, threads int) (*Cube, error) {
	cells := uint64(1)
	for _, at := range sorted {
		d := uint64(rel.DomSize(at))
		if d == 0 {
			d = 1
		}
		cells *= d // mixedRadix already proved this cannot overflow
	}
	b := &encBuilder{
		rel: rel, enc: enc, attrs: sorted,
		cats:  make([]table.CatColumn, len(sorted)),
		l:     planMeasures(rel, enc),
		radix: radix, cells: cells,
	}
	for k, at := range sorted {
		b.cats[k] = enc.Cat(at)
	}

	sp := obs.StartSpan(ctx, "engine/cube/build")
	defer sp.End()

	n := rel.NumRows()
	numShards := (n + buildShardRows - 1) / buildShardRows

	scanShard := func(ctx context.Context, s int, acc *encShard, sc *encScratch) {
		ssp := obs.StartSpan(ctx, "engine/cube/shard")
		defer ssp.End()
		lo := s * buildShardRows
		hi := lo + buildShardRows
		if hi > n {
			hi = n
		}
		acc.scan(b, sc, lo, hi)
	}

	if numShards <= 1 {
		faultinject.Fire(faultinject.EngineCubeShard)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		acc := newEncShard(b.l, len(sorted), cells, encCapHint(n, cells))
		sc := newEncScratch(len(sorted), b.l)
		acc.scan(b, sc, 0, n)
		return acc.toCube(rel, sorted), nil
	}

	if threads > numShards {
		threads = numShards
	}
	if threads <= 1 {
		// Serial: one shard accumulator, reset and reused across shards
		// (the dense table is wiped via the group cell list), merged into
		// the global accumulator after each shard — the same shard-order
		// accumulation as batching the merges, with a fraction of the
		// allocations.
		sc := newEncScratch(len(sorted), b.l)
		shard := newEncShard(b.l, len(sorted), cells, encCapHint(buildShardRows, cells))
		global := newEncGlobal(b.l, len(sorted), cells, encCapHint(n, cells))
		for s := 0; s < numShards; s++ {
			faultinject.Fire(faultinject.EngineCubeShard)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			shard.reset()
			scanShard(ctx, s, shard, sc)
			if s == 0 {
				global.initFrom(shard)
			} else {
				global.merge(shard)
			}
		}
		return global.toCube(rel, sorted), nil
	}

	shards := make([]*encShard, numShards)
	done := make(chan struct{}, threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			wctx := obs.ForkTrack(ctx, "cube-shard")
			sc := newEncScratch(len(sorted), b.l)
			for s := w; s < numShards; s += threads {
				faultinject.Fire(faultinject.EngineCubeShard)
				if wctx.Err() != nil {
					return
				}
				lo := s * buildShardRows
				hi := lo + buildShardRows
				if hi > n {
					hi = n
				}
				acc := newEncShard(b.l, len(sorted), cells, encCapHint(hi-lo, cells))
				scanShard(wctx, s, acc, sc)
				shards[s] = acc
			}
		}(w)
	}
	for w := 0; w < threads; w++ {
		<-done
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	global := newEncGlobal(b.l, len(sorted), cells, encCapHint(n, cells))
	global.initFrom(shards[0])
	for _, s := range shards[1:] {
		global.merge(s)
	}
	return global.toCube(rel, sorted), nil
}
