package engine

import (
	"math"
	"math/rand"
	"sort"

	"comparenb/internal/table"
)

// EstimateGroups plays the role of the query optimizer's cardinality
// estimate in Algorithm 2: it estimates the number of distinct groups a
// group-by over attrs would produce, from a uniform row sample of the given
// size, using the GEE estimator of Charikar et al.:
//
//	D̂ = d + (sqrt(n/r) − 1) · f1
//
// where d is the number of distinct groups in the sample, f1 the number of
// groups seen exactly once, n the relation size and r the sample size. If
// sampleSize ≥ NumRows the count is exact.
func EstimateGroups(rel *table.Relation, attrs []int, sampleSize int, rng *rand.Rand) float64 {
	n := rel.NumRows()
	if n == 0 {
		return 0
	}
	if sampleSize <= 0 || sampleSize >= n {
		return float64(CountGroups(rel, attrs))
	}
	rows := sampleRows(n, sampleSize, rng)
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	radix, ok := mixedRadix(rel, sorted)

	freq := make(map[uint64]int)
	var freqStr map[string]int
	if !ok {
		freqStr = make(map[string]int)
	}
	byteBuf := make([]byte, 4*len(sorted))
	for _, row := range rows {
		if ok {
			h := uint64(0)
			for k, a := range sorted {
				h += uint64(rel.CatCol(a)[row]) * radix[k]
			}
			freq[h]++
		} else {
			for k, a := range sorted {
				code := rel.CatCol(a)[row]
				byteBuf[4*k] = byte(code)
				byteBuf[4*k+1] = byte(code >> 8)
				byteBuf[4*k+2] = byte(code >> 16)
				byteBuf[4*k+3] = byte(code >> 24)
			}
			freqStr[string(byteBuf)]++
		}
	}
	d, f1 := 0, 0
	count := func(c int) {
		d++
		if c == 1 {
			f1++
		}
	}
	for _, c := range freq {
		count(c)
	}
	for _, c := range freqStr {
		count(c)
	}
	est := float64(d) + (math.Sqrt(float64(n)/float64(len(rows)))-1)*float64(f1)

	// The estimate can never exceed the product of the active-domain sizes
	// nor the relation size.
	bound := float64(n)
	prod := 1.0
	for _, a := range sorted {
		prod *= float64(rel.DomSize(a))
		if prod > bound {
			prod = bound
			break
		}
	}
	return math.Min(est, math.Min(bound, prod))
}

// CountGroups counts the exact number of distinct groups over attrs.
func CountGroups(rel *table.Relation, attrs []int) int {
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	radix, ok := mixedRadix(rel, sorted)
	if ok {
		seen := make(map[uint64]struct{})
		for row := 0; row < rel.NumRows(); row++ {
			h := uint64(0)
			for k, a := range sorted {
				h += uint64(rel.CatCol(a)[row]) * radix[k]
			}
			seen[h] = struct{}{}
		}
		return len(seen)
	}
	seen := make(map[string]struct{})
	byteBuf := make([]byte, 4*len(sorted))
	for row := 0; row < rel.NumRows(); row++ {
		for k, a := range sorted {
			code := rel.CatCol(a)[row]
			byteBuf[4*k] = byte(code)
			byteBuf[4*k+1] = byte(code >> 8)
			byteBuf[4*k+2] = byte(code >> 16)
			byteBuf[4*k+3] = byte(code >> 24)
		}
		seen[string(byteBuf)] = struct{}{}
	}
	return len(seen)
}

// sampleRows draws k distinct row indexes uniformly without replacement
// (partial Fisher–Yates).
func sampleRows(n, k int, rng *rand.Rand) []int {
	if k >= n {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
