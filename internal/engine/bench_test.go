package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"comparenb/internal/table"
)

func benchRelation(b *testing.B, rows int) *table.Relation {
	b.Helper()
	return randomRelation(4, []int{8, 12, 24, 48}, 2, rows, 1)
}

func BenchmarkBuildCube2Attrs(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCube(rel, []int{0, 3})
	}
}

func BenchmarkBuildCube4Attrs(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCube(rel, []int{0, 1, 2, 3})
	}
}

// BenchmarkBuildCube4AttrsRaw pins the raw float64 kernel (the
// -no-compress path) on the same fixture as BenchmarkBuildCube4Attrs, so
// the encoded kernels' speedup stays measurable after they became the
// default.
func BenchmarkBuildCube4AttrsRaw(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCubeParallelOptsCtx(context.Background(), rel, []int{0, 1, 2, 3}, 1, BuildOptions{NoEncode: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRollup(b *testing.B) {
	rel := benchRelation(b, 50000)
	wide := BuildCube(rel, []int{0, 1, 2, 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wide.Rollup([]int{0, 3})
	}
}

func BenchmarkCompareFromCube(b *testing.B) {
	rel := benchRelation(b, 50000)
	cube := BuildCube(rel, []int{0, 1})
	dom := rel.SortedDomain(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompareFromCube(cube, 0, 1, dom[0], dom[1], 0, Avg)
	}
}

func BenchmarkDetectFDs(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectFDs(rel)
	}
}

func BenchmarkEstimateGroups(b *testing.B) {
	rel := benchRelation(b, 50000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateGroups(rel, []int{0, 1, 2, 3}, 4096, rng)
	}
}

func BenchmarkComparisonPlan(b *testing.B) {
	rel := benchRelation(b, 50000)
	dom := rel.SortedDomain(1)
	plan := ComparisonPlan(rel, 0, 1, dom[0], dom[1], 0, Sum)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCubeReference is the naive map-based builder the sharded
// kernel is measured against: same fixed seed and attribute set as
// BenchmarkBuildCube2Attrs, so scripts/bench.sh can report the kernel's
// speedup over it.
func BenchmarkBuildCubeReference(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceBuildCube(rel, []int{0, 3})
	}
}

// BenchmarkBuildCubeParallel exercises the sharded build at several worker
// widths (50000 rows = 4 shards). threads=1 is the zero-goroutine serial
// path; the other widths produce bit-identical cubes.
func BenchmarkBuildCubeParallel(b *testing.B) {
	rel := benchRelation(b, 50000)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BuildCubeParallel(rel, []int{0, 3}, threads)
			}
		})
	}
}

func BenchmarkCubeCacheExactHit(b *testing.B) {
	rel := benchRelation(b, 50000)
	cc := NewCubeCache(0)
	cc.GetOrBuild(rel, []int{0, 3}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.GetOrBuild(rel, []int{0, 3}, 1)
	}
}

// BenchmarkCubeCacheRollupHit measures answering a pair group-by by rolling
// up a cached 4-attribute superset instead of rescanning the relation.
func BenchmarkCubeCacheRollupHit(b *testing.B) {
	rel := benchRelation(b, 50000)
	cc := NewCubeCache(0)
	cc.GetOrBuild(rel, []int{0, 1, 2, 3}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := NewCubeCache(0)
		fresh.Add(cc.Get(rel, []int{0, 1, 2, 3}))
		b.StartTimer()
		fresh.GetOrBuild(rel, []int{0, 3}, 1)
	}
}
