package engine

import (
	"math/rand"
	"testing"

	"comparenb/internal/table"
)

func benchRelation(b *testing.B, rows int) *table.Relation {
	b.Helper()
	return randomRelation(4, []int{8, 12, 24, 48}, 2, rows, 1)
}

func BenchmarkBuildCube2Attrs(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCube(rel, []int{0, 3})
	}
}

func BenchmarkBuildCube4Attrs(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCube(rel, []int{0, 1, 2, 3})
	}
}

func BenchmarkRollup(b *testing.B) {
	rel := benchRelation(b, 50000)
	wide := BuildCube(rel, []int{0, 1, 2, 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wide.Rollup([]int{0, 3})
	}
}

func BenchmarkCompareFromCube(b *testing.B) {
	rel := benchRelation(b, 50000)
	cube := BuildCube(rel, []int{0, 1})
	dom := rel.SortedDomain(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompareFromCube(cube, 0, 1, dom[0], dom[1], 0, Avg)
	}
}

func BenchmarkDetectFDs(b *testing.B) {
	rel := benchRelation(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectFDs(rel)
	}
}

func BenchmarkEstimateGroups(b *testing.B) {
	rel := benchRelation(b, 50000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateGroups(rel, []int{0, 1, 2, 3}, 4096, rng)
	}
}

func BenchmarkComparisonPlan(b *testing.B) {
	rel := benchRelation(b, 50000)
	dom := rel.SortedDomain(1)
	plan := ComparisonPlan(rel, 0, 1, dom[0], dom[1], 0, Sum)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
