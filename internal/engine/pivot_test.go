package engine

import (
	"math"
	"testing"
)

// TestPivotMatchesDirect: the §3.1 alternative (single group-by + pivot)
// must produce exactly the join-form result.
func TestPivotMatchesDirect(t *testing.T) {
	rel := randomRelation(3, []int{5, 4, 6}, 2, 900, 31)
	for attrA := 0; attrA < 3; attrA++ {
		for attrB := 0; attrB < 3; attrB++ {
			if attrA == attrB {
				continue
			}
			dom := rel.SortedDomain(attrB)
			for _, agg := range AllAggs {
				a := ComparePivot(rel, attrA, attrB, dom[0], dom[1], 1, agg)
				b := CompareDirect(rel, attrA, attrB, dom[0], dom[1], 1, agg)
				if a.Len() != b.Len() {
					t.Fatalf("A=%d B=%d %s: pivot %d rows, direct %d", attrA, attrB, agg, a.Len(), b.Len())
				}
				for i := range a.Groups {
					if a.Groups[i] != b.Groups[i] ||
						math.Abs(a.Left[i]-b.Left[i]) > 1e-9*(1+math.Abs(b.Left[i])) ||
						math.Abs(a.Right[i]-b.Right[i]) > 1e-9*(1+math.Abs(b.Right[i])) {
						t.Errorf("A=%d B=%d %s row %d: pivot (%v,%v) direct (%v,%v)",
							attrA, attrB, agg, i, a.Left[i], a.Right[i], b.Left[i], b.Right[i])
					}
				}
			}
		}
	}
}

func TestPivotSelfComparison(t *testing.T) {
	rel := covidRelation()
	dom := rel.SortedDomain(1)
	res := ComparePivot(rel, 0, 1, dom[0], dom[0], 0, Sum)
	if res.Len() != 5 {
		t.Fatalf("self comparison rows = %d, want 5", res.Len())
	}
	for i := range res.Left {
		if res.Left[i] != res.Right[i] {
			t.Errorf("row %d differs in self comparison", i)
		}
	}
}

// BenchmarkCompareJoinForm / PivotForm reproduce the §3.1 cost comparison:
// the two plans should be in the same ballpark.
func BenchmarkCompareJoinForm(b *testing.B) {
	rel := randomRelation(4, []int{8, 10, 6, 12}, 2, 50000, 7)
	dom := rel.SortedDomain(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompareDirect(rel, 0, 1, dom[0], dom[1], 0, Sum)
	}
}

func BenchmarkComparePivotForm(b *testing.B) {
	rel := randomRelation(4, []int{8, 10, 6, 12}, 2, 50000, 7)
	dom := rel.SortedDomain(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComparePivot(rel, 0, 1, dom[0], dom[1], 0, Sum)
	}
}
