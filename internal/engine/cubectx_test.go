package engine

import (
	"context"
	"errors"
	"testing"

	"comparenb/internal/faultinject"
)

// TestBuildCubeParallelCtxMatchesUncancelled: with a live context the
// ctx build is bit-identical to the legacy build at every thread count.
func TestBuildCubeParallelCtxMatchesUncancelled(t *testing.T) {
	rel := randomRelation(2, []int{5, 7}, 2, 3*buildShardRows+100, 21)
	want := BuildCube(rel, []int{0, 1})
	for _, threads := range []int{1, 2, 8} {
		got, err := BuildCubeParallelCtx(context.Background(), rel, []int{0, 1}, threads)
		if err != nil {
			t.Fatalf("threads=%d: unexpected error %v", threads, err)
		}
		assertCubesEqual(t, want, got)
	}
}

// TestBuildCubeParallelCtxCancelled: a pre-cancelled context aborts the
// build before any shard is scanned.
func TestBuildCubeParallelCtxCancelled(t *testing.T) {
	rel := randomRelation(1, []int{4}, 1, 2*buildShardRows, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, threads := range []int{1, 4} {
		cube, err := BuildCubeParallelCtx(ctx, rel, []int{0}, threads)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		if cube != nil {
			t.Errorf("threads=%d: cancelled build returned a cube", threads)
		}
	}
}

// TestBuildCubeParallelCtxCancelMidShard injects a cancellation at the
// k-th shard checkpoint via the fault-injection registry: the build must
// abort with the context's error on both the serial and parallel paths.
func TestBuildCubeParallelCtxCancelMidShard(t *testing.T) {
	rel := randomRelation(1, []int{6}, 1, 6*buildShardRows, 8)
	for _, threads := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		restore := faultinject.Set(faultinject.EngineCubeShard, faultinject.OnCall(2, cancel))
		cube, err := BuildCubeParallelCtx(ctx, rel, []int{0}, threads)
		restore()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		if cube != nil {
			t.Errorf("threads=%d: mid-shard-cancelled build returned a cube", threads)
		}
	}
}

// TestCacheCtxCancelInsertsNothing: a cancelled GetOrBuildCtx or
// BuildThroughCtx leaves no entry behind, so the cache never serves a
// partial cube; and re-running with a live context succeeds.
func TestCacheCtxCancelInsertsNothing(t *testing.T) {
	rel := randomRelation(2, []int{3, 4}, 1, 2*buildShardRows, 13)
	cc := NewCubeCache(0)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := cc.GetOrBuildCtx(cancelled, rel, []int{0}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetOrBuildCtx err = %v, want context.Canceled", err)
	}
	if _, err := cc.BuildThroughCtx(cancelled, rel, []int{1}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildThroughCtx err = %v, want context.Canceled", err)
	}
	if s := cc.Stats(); s.Entries != 0 || s.Misses != 0 {
		t.Fatalf("cancelled builds touched the cache: %+v", s)
	}

	cube, err := cc.GetOrBuildCtx(context.Background(), rel, []int{0}, 2)
	if err != nil || cube == nil {
		t.Fatalf("live retry failed: cube=%v err=%v", cube, err)
	}
	if s := cc.Stats(); s.Entries != 1 || s.Misses != 1 {
		t.Fatalf("live retry stats: %+v", s)
	}
}

// TestGetOrBuildCtxRollupIgnoresCancel: answering from a cached superset
// is a cheap roll-up that deliberately does not observe ctx, so even a
// cancelled context gets the rolled-up answer (the caller aborts at its
// own next checkpoint).
func TestGetOrBuildCtxRollupIgnoresCancel(t *testing.T) {
	rel := randomRelation(2, []int{3, 4}, 1, 1000, 17)
	cc := NewCubeCache(0)
	if _, err := cc.GetOrBuildCtx(context.Background(), rel, []int{0, 1}, 1); err != nil {
		t.Fatalf("seeding superset: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cube, err := cc.GetOrBuildCtx(ctx, rel, []int{0}, 1)
	if err != nil || cube == nil {
		t.Fatalf("rollup under cancelled ctx: cube=%v err=%v", cube, err)
	}
	if s := cc.Stats(); s.RollupHits != 1 {
		t.Fatalf("expected a rollup hit: %+v", s)
	}
}

// assertCubesEqual compares two cubes group by group, bit for bit.
func assertCubesEqual(t *testing.T, want, got *Cube) {
	t.Helper()
	if got.NumGroups() != want.NumGroups() || got.SourceRows != want.SourceRows {
		t.Fatalf("shape mismatch: %d/%d groups, %d/%d rows",
			got.NumGroups(), want.NumGroups(), got.SourceRows, want.SourceRows)
	}
	for g := 0; g < want.NumGroups(); g++ {
		wk, gk := want.GroupKey(g), got.GroupKey(g)
		for k := range wk {
			if wk[k] != gk[k] {
				t.Fatalf("group %d key differs: %v vs %v", g, gk, wk)
			}
		}
		if want.Count(g) != got.Count(g) {
			t.Fatalf("group %d count differs", g)
		}
		for m := 0; m < want.Relation().NumMeasures(); m++ {
			for _, agg := range []Agg{Sum, Min, Max} {
				// exact: bit-identity across thread counts is the contract under test
				if want.Value(g, m, agg) != got.Value(g, m, agg) {
					t.Fatalf("group %d measure %d agg %v differs", g, m, agg)
				}
			}
		}
	}
}
