package engine

import (
	"math"
	"testing"

	"comparenb/internal/table"
)

func codes(t *testing.T, rel *table.Relation, attr int, vals ...string) []int32 {
	t.Helper()
	out := make([]int32, len(vals))
	for i, v := range vals {
		c, ok := rel.CodeOf(attr, v)
		if !ok {
			t.Fatalf("value %q not in dom(%s)", v, rel.CatName(attr))
		}
		out[i] = c
	}
	return out
}

// TestComparePaperExample reproduces the table of Figure 2: sum(cases) by
// continent for month 4 vs month 5.
func TestComparePaperExample(t *testing.T) {
	rel := covidRelation()
	cs := codes(t, rel, 1, "4", "5")
	cube := BuildCube(rel, []int{0, 1})
	res := CompareFromCube(cube, 0, 1, cs[0], cs[1], 0, Sum)
	if res.Len() != 5 {
		t.Fatalf("rows = %d, want 5", res.Len())
	}
	wantLeft := []float64{31598, 1104862, 333821, 863874, 2812}
	wantRight := []float64{92626, 1404912, 537584, 608110, 467}
	wantNames := []string{"Africa", "America", "Asia", "Europe", "Oceania"}
	for i := range wantLeft {
		if got := rel.Value(0, res.Groups[i]); got != wantNames[i] {
			t.Errorf("row %d group = %s, want %s", i, got, wantNames[i])
		}
		if res.Left[i] != wantLeft[i] || res.Right[i] != wantRight[i] {
			t.Errorf("row %d = (%v, %v), want (%v, %v)", i, res.Left[i], res.Right[i], wantLeft[i], wantRight[i])
		}
	}
}

// TestCompareCubeMatchesDirect cross-checks the cube evaluation against the
// literal two-scan join plan on random data, for all aggregates.
func TestCompareCubeMatchesDirect(t *testing.T) {
	rel := randomRelation(3, []int{5, 4, 6}, 2, 800, 23)
	cube := BuildCube(rel, []int{0, 1, 2})
	for attrA := 0; attrA < 3; attrA++ {
		for attrB := 0; attrB < 3; attrB++ {
			if attrA == attrB {
				continue
			}
			dom := rel.SortedDomain(attrB)
			val, val2 := dom[0], dom[1]
			for _, agg := range AllAggs {
				for m := 0; m < 2; m++ {
					a := CompareFromCube(cube, attrA, attrB, val, val2, m, agg)
					b := CompareDirect(rel, attrA, attrB, val, val2, m, agg)
					if a.Len() != b.Len() {
						t.Fatalf("A=%d B=%d %s: cube rows %d, direct rows %d", attrA, attrB, agg, a.Len(), b.Len())
					}
					for i := range a.Groups {
						if a.Groups[i] != b.Groups[i] {
							t.Fatalf("A=%d B=%d %s row %d: group %d vs %d", attrA, attrB, agg, i, a.Groups[i], b.Groups[i])
						}
						if math.Abs(a.Left[i]-b.Left[i]) > 1e-9*(1+math.Abs(b.Left[i])) ||
							math.Abs(a.Right[i]-b.Right[i]) > 1e-9*(1+math.Abs(b.Right[i])) {
							t.Errorf("A=%d B=%d %s row %d: (%v,%v) vs (%v,%v)",
								attrA, attrB, agg, i, a.Left[i], a.Right[i], b.Left[i], b.Right[i])
						}
					}
				}
			}
		}
	}
}

func TestCompareInnerJoinDropsOneSidedGroups(t *testing.T) {
	b := table.NewBuilder("r", []string{"g", "s"}, []string{"m"})
	b.AddRow([]string{"both", "l"}, []float64{1})
	b.AddRow([]string{"both", "r"}, []float64{2})
	b.AddRow([]string{"leftonly", "l"}, []float64{3})
	b.AddRow([]string{"rightonly", "r"}, []float64{4})
	rel := b.Build()
	cs := codes(t, rel, 1, "l", "r")
	res := CompareDirect(rel, 0, 1, cs[0], cs[1], 0, Sum)
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (inner join)", res.Len())
	}
	if rel.Value(0, res.Groups[0]) != "both" {
		t.Errorf("kept group = %s, want both", rel.Value(0, res.Groups[0]))
	}
}

func TestCompareEmptySelection(t *testing.T) {
	rel := covidRelation()
	cube := BuildCube(rel, []int{0, 1})
	// month "4" vs month "4" is a degenerate but well-defined comparison.
	cs := codes(t, rel, 1, "4")
	res := CompareFromCube(cube, 0, 1, cs[0], cs[0], 0, Sum)
	if res.Len() != 5 {
		t.Errorf("self comparison rows = %d, want 5", res.Len())
	}
	for i := range res.Left {
		if res.Left[i] != res.Right[i] {
			t.Errorf("self comparison row %d differs", i)
		}
	}
}

func TestFilterMeasure(t *testing.T) {
	b := table.NewBuilder("r", []string{"g"}, []string{"m"})
	b.AddRow([]string{"x"}, []float64{1})
	b.AddRow([]string{"y"}, []float64{2})
	b.AddRow([]string{"x"}, []float64{math.NaN()})
	b.AddRow([]string{"x"}, []float64{3})
	rel := b.Build()
	cx, _ := rel.CodeOf(0, "x")
	got := FilterMeasure(rel, 0, cx, 0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("FilterMeasure = %v, want [1 3] (NaN dropped)", got)
	}
}

func TestPairRows(t *testing.T) {
	rel := covidRelation()
	cs := codes(t, rel, 0, "Africa", "Asia")
	rows := PairRows(rel, 0, cs[0], cs[1])
	if len(rows) != 4 {
		t.Errorf("PairRows = %v, want 4 rows", rows)
	}
	for _, r := range rows {
		v := rel.Value(0, rel.CatCol(0)[r])
		if v != "Africa" && v != "Asia" {
			t.Errorf("row %d has value %s", r, v)
		}
	}
}
