package engine

import (
	"math"
	"math/rand"
	"testing"

	"comparenb/internal/table"
)

// covidRelation mirrors the paper's running example (Figure 2): COVID cases
// by continent and month.
func covidRelation() *table.Relation {
	b := table.NewBuilder("covid", []string{"continent", "month"}, []string{"cases"})
	rows := []struct {
		cont, month string
		cases       float64
	}{
		{"Africa", "4", 31598}, {"Africa", "5", 92626},
		{"America", "4", 1104862}, {"America", "5", 1404912},
		{"Asia", "4", 333821}, {"Asia", "5", 537584},
		{"Europe", "4", 863874}, {"Europe", "5", 608110},
		{"Oceania", "4", 2812}, {"Oceania", "5", 467},
	}
	for _, r := range rows {
		b.AddRow([]string{r.cont, r.month}, []float64{r.cases})
	}
	return b.Build()
}

func TestBuildCubeGroups(t *testing.T) {
	rel := covidRelation()
	c := BuildCube(rel, []int{0, 1})
	if c.NumGroups() != 10 {
		t.Errorf("NumGroups = %d, want 10", c.NumGroups())
	}
	if c.SourceRows != 10 {
		t.Errorf("SourceRows = %d, want 10", c.SourceRows)
	}
}

func TestCubeValueAggregates(t *testing.T) {
	b := table.NewBuilder("r", []string{"g"}, []string{"m"})
	for _, v := range []float64{1, 2, 3} {
		b.AddRow([]string{"x"}, []float64{v})
	}
	b.AddRow([]string{"y"}, []float64{10})
	rel := b.Build()
	c := BuildCube(rel, []int{0})
	var gx = -1
	for g := 0; g < c.NumGroups(); g++ {
		if rel.Value(0, c.GroupKey(g)[0]) == "x" {
			gx = g
		}
	}
	if gx < 0 {
		t.Fatal("group x not found")
	}
	checks := []struct {
		agg  Agg
		want float64
	}{{Sum, 6}, {Avg, 2}, {Min, 1}, {Max, 3}, {Count, 3}}
	for _, ck := range checks {
		if got := c.Value(gx, 0, ck.agg); got != ck.want {
			t.Errorf("%s(x) = %v, want %v", ck.agg, got, ck.want)
		}
	}
}

func TestCubeNaNHandling(t *testing.T) {
	b := table.NewBuilder("r", []string{"g"}, []string{"m"})
	b.AddRow([]string{"x"}, []float64{math.NaN()})
	b.AddRow([]string{"x"}, []float64{5})
	b.AddRow([]string{"z"}, []float64{math.NaN()})
	rel := b.Build()
	c := BuildCube(rel, []int{0})
	for g := 0; g < c.NumGroups(); g++ {
		switch rel.Value(0, c.GroupKey(g)[0]) {
		case "x":
			if got := c.Value(g, 0, Sum); got != 5 {
				t.Errorf("Sum(x) = %v, want 5 (NaN ignored)", got)
			}
			if got := c.Value(g, 0, Count); got != 2 {
				t.Errorf("Count(x) = %v, want 2 (NaN rows still counted)", got)
			}
			if got := c.Value(g, 0, Min); got != 5 {
				t.Errorf("Min(x) = %v, want 5", got)
			}
		case "z":
			if got := c.Value(g, 0, Min); !math.IsNaN(got) {
				t.Errorf("Min(all-NaN group) = %v, want NaN", got)
			}
		}
	}
}

func TestRollupMatchesDirectCube(t *testing.T) {
	rel := randomRelation(3, []int{4, 5, 3}, 2, 500, 11)
	wide := BuildCube(rel, []int{0, 1, 2})
	for _, attrs := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}} {
		up := wide.Rollup(attrs)
		direct := BuildCube(rel, attrs)
		if up.NumGroups() != direct.NumGroups() {
			t.Fatalf("Rollup(%v) groups = %d, direct = %d", attrs, up.NumGroups(), direct.NumGroups())
		}
		// Compare group-by-group via key lookup.
		type key [3]int32
		index := make(map[key]int)
		for g := 0; g < direct.NumGroups(); g++ {
			var k key
			copy(k[:], direct.GroupKey(g))
			index[k] = g
		}
		for g := 0; g < up.NumGroups(); g++ {
			var k key
			copy(k[:], up.GroupKey(g))
			dg, ok := index[k]
			if !ok {
				t.Fatalf("Rollup(%v) produced unknown group %v", attrs, up.GroupKey(g))
			}
			for m := 0; m < rel.NumMeasures(); m++ {
				for _, agg := range AllAggs {
					a, b := up.Value(g, m, agg), direct.Value(dg, m, agg)
					if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
						t.Errorf("Rollup(%v) %s(m%d) group %v = %v, direct %v", attrs, agg, m, up.GroupKey(g), a, b)
					}
				}
			}
		}
	}
}

func TestRollupPanicsOnBadAttr(t *testing.T) {
	rel := covidRelation()
	c := BuildCube(rel, []int{0})
	defer func() {
		if recover() == nil {
			t.Error("Rollup with attribute outside cube did not panic")
		}
	}()
	c.Rollup([]int{1})
}

func TestBuildCubeDuplicateAttrPanics(t *testing.T) {
	rel := covidRelation()
	defer func() {
		if recover() == nil {
			t.Error("BuildCube with duplicate attrs did not panic")
		}
	}()
	BuildCube(rel, []int{0, 0})
}

func TestMemoryFootprintGrowsWithGroups(t *testing.T) {
	rel := randomRelation(2, []int{10, 10}, 1, 2000, 3)
	small := BuildCube(rel, []int{0})
	big := BuildCube(rel, []int{0, 1})
	if small.MemoryFootprint() >= big.MemoryFootprint() {
		t.Errorf("footprint(1 attr)=%d >= footprint(2 attrs)=%d", small.MemoryFootprint(), big.MemoryFootprint())
	}
}

// randomRelation builds a relation with the given categorical domain sizes
// and uniform random measures; used across engine tests.
func randomRelation(ncat int, domSizes []int, nmeas, rows int, seed int64) *table.Relation {
	rng := rand.New(rand.NewSource(seed))
	catNames := make([]string, ncat)
	for i := range catNames {
		catNames[i] = string(rune('A' + i))
	}
	measNames := make([]string, nmeas)
	for i := range measNames {
		measNames[i] = "m" + string(rune('0'+i))
	}
	b := table.NewBuilder("rand", catNames, measNames)
	cats := make([]string, ncat)
	meas := make([]float64, nmeas)
	for r := 0; r < rows; r++ {
		for a := 0; a < ncat; a++ {
			cats[a] = catNames[a] + "_" + string(rune('a'+rng.Intn(domSizes[a])))
		}
		for m := 0; m < nmeas; m++ {
			meas[m] = rng.Float64() * 100
		}
		b.AddRow(cats, meas)
	}
	return b.Build()
}
