package engine

import (
	"sync/atomic"
	"testing"

	"comparenb/internal/faultinject"
)

func TestEstimateCubeBytesNeverUnderCounts(t *testing.T) {
	rel := randomRelation(3, []int{6, 5, 4}, 2, 2500, 9)
	for _, attrs := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}} {
		est := EstimateCubeBytes(rel, attrs)
		actual := BuildCube(rel, attrs).MemoryFootprint()
		if est < actual {
			t.Errorf("attrs %v: estimate %d < actual footprint %d", attrs, est, actual)
		}
	}
	// Tiny domains on a large relation: the domain product, not the row
	// count, must bound the estimate.
	small := randomRelation(2, []int{2, 2}, 1, 10000, 4)
	perGroup := int64(2*4 + 8 + 1*3*8)
	if est := EstimateCubeBytes(small, []int{0, 1}); est > 4*perGroup {
		t.Errorf("estimate %d ignores the domain-product bound %d", est, 4*perGroup)
	}
}

func TestAdmitRefusesOversizedCube(t *testing.T) {
	rel := randomRelation(2, []int{6, 6}, 1, 2000, 2)
	cc := NewCubeCache(0)
	cc.SetMemBudget(1) // nothing fits
	c1 := cc.GetOrBuild(rel, []int{0, 1}, 1)
	c2 := cc.GetOrBuild(rel, []int{0, 1}, 1)
	if c1 == nil || c2 == nil {
		t.Fatal("refusal must not refuse the answer, only the caching")
	}
	if c1 == c2 {
		t.Error("oversized cube was cached despite the memory budget")
	}
	s := cc.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("contents = %d entries / %d B, want empty", s.Entries, s.Bytes)
	}
	if s.AdmitRefusals == 0 {
		t.Error("no AdmitRefusals recorded for a cube over the budget")
	}
	if s.Misses != 2 {
		t.Errorf("misses = %d, want 2 (both calls fell through to a build)", s.Misses)
	}
}

func TestAdmitEvictsLargestFirstToFit(t *testing.T) {
	rel := randomRelation(3, []int{6, 6, 6}, 1, 4000, 5)
	big := BuildCube(rel, []int{0, 1, 2})
	cc := NewCubeCache(0)
	// Room for roughly one big cube. The relation is large enough that
	// builds run on the encoded path, whose retained payload also charges
	// against the budget — budget for it explicitly so the cube math
	// below is unchanged.
	cc.SetMemBudget(big.MemoryFootprint() + int64(rel.Encoded().RetainedBytes()))
	for _, attrs := range [][]int{{0, 1, 2}, {0, 1}, {0, 2}, {0}} {
		// BuildThrough, not GetOrBuild: rollups of the wide cube would
		// change which entries exist depending on eviction timing.
		if cc.BuildThrough(rel, attrs, 1) == nil {
			t.Fatalf("build of %v failed under the memory budget", attrs)
		}
	}
	s := cc.Stats()
	if s.Bytes > big.MemoryFootprint() {
		t.Errorf("cache holds %d B, budget %d — admission never enforced", s.Bytes, big.MemoryFootprint())
	}
	if s.AdmitEvictions == 0 {
		t.Error("no AdmitEvictions recorded despite overflowing inserts")
	}
	// Largest-first victim rule: the wide cube is gone, the narrow survives.
	if cc.Get(rel, []int{0, 1, 2}) != nil {
		t.Error("widest cube survived admission eviction")
	}
	if cc.Get(rel, []int{0}) == nil {
		t.Error("narrowest cube was evicted before the budget required it")
	}
}

func TestAdmitDisarmedKeepsTrimOnlyBehaviour(t *testing.T) {
	rel := randomRelation(2, []int{4, 4}, 1, 1000, 3)
	cc := NewCubeCache(0) // no soft budget, no mem budget
	for _, attrs := range [][]int{{0, 1}, {0}, {1}} {
		cc.GetOrBuild(rel, attrs, 1)
	}
	s := cc.Stats()
	if s.AdmitEvictions != 0 || s.AdmitRefusals != 0 {
		t.Errorf("disarmed cache recorded admission actions: %+v", s)
	}
	if s.Entries != 3 {
		t.Errorf("entries = %d, want 3", s.Entries)
	}
}

func TestAdmitFiresCacheAdmitSite(t *testing.T) {
	var fired atomic.Int64
	defer faultinject.Set(faultinject.CacheAdmit,
		faultinject.Always(func() { fired.Add(1) }))()
	rel := randomRelation(2, []int{4, 4}, 1, 500, 1)

	unarmed := NewCubeCache(0)
	unarmed.GetOrBuild(rel, []int{0}, 1)
	if fired.Load() != 0 {
		t.Fatalf("CacheAdmit fired %d times with no memory budget armed", fired.Load())
	}

	armed := NewCubeCache(0)
	armed.SetMemBudget(1 << 30)
	armed.GetOrBuild(rel, []int{0}, 1)
	armed.BuildThrough(rel, []int{1}, 1)
	armed.GetOrBuild(rel, []int{0}, 1) // exact hit: no admission decision
	if fired.Load() != 2 {
		t.Errorf("CacheAdmit fired %d times, want 2 (one per build-path admission)", fired.Load())
	}
}
