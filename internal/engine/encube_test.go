package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"comparenb/internal/faultinject"
	"comparenb/internal/obs"
	"comparenb/internal/table"
)

// mixedRelation builds a relation whose measures land in every encoded
// kernel regime at once: a raw float column, an exactly-summable small-int
// column, a constant, an arithmetic sequence, a column with NaN holes, and
// one with -0.0 (which must force the raw fallback bit-for-bit).
func mixedRelation(rows int, seed int64) *table.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := table.NewBuilder("mixed",
		[]string{"region", "product", "channel"},
		[]string{"score", "units", "flat", "day", "gappy", "negz"})
	cats := make([]string, 3)
	meas := make([]float64, 6)
	negZero := math.Copysign(0, -1)
	for i := 0; i < rows; i++ {
		cats[0] = string(rune('a' + rng.Intn(9)))
		cats[1] = string(rune('A' + rng.Intn(23)))
		cats[2] = string(rune('0' + rng.Intn(4)))
		meas[0] = rng.NormFloat64() * 1e3
		meas[1] = float64(rng.Intn(500))
		meas[2] = 42.5
		meas[3] = float64(100 + 2*i)
		meas[4] = float64(rng.Intn(50))
		if rng.Intn(7) == 0 {
			meas[4] = math.NaN()
		}
		meas[5] = float64(rng.Intn(3))
		if rng.Intn(11) == 0 {
			meas[5] = negZero
		}
		b.AddRow(cats, meas)
	}
	return b.Build()
}

// TestEncodedCubeBitIdenticalToRaw is the differential gate of the encoded
// kernels: on a multi-shard relation spanning every measure regime, the
// encoded build must equal the raw build bit-for-bit, at every thread
// count, for single- and multi-attribute group-bys.
func TestEncodedCubeBitIdenticalToRaw(t *testing.T) {
	rows := 2*buildShardRows + 777 // 3 shards, last partial
	rel := mixedRelation(rows, 17)
	if rel.Encoded() == nil {
		t.Fatal("fixture relation failed to encode")
	}
	ctx := context.Background()
	for _, attrs := range [][]int{{0}, {2}, {0, 1}, {0, 1, 2}} {
		raw, err := BuildCubeParallelOptsCtx(ctx, rel, attrs, 1, BuildOptions{NoEncode: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 2, 8} {
			enc, err := BuildCubeParallelOptsCtx(ctx, rel, attrs, threads, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			requireCubesBitIdentical(t, "encoded vs raw", raw, enc)
		}
	}
}

// TestEncodedCubeSingleShard covers the single-shard materialisation path
// (rows between minEncodeRows and buildShardRows).
func TestEncodedCubeSingleShard(t *testing.T) {
	rel := mixedRelation(minEncodeRows+137, 3)
	raw, err := BuildCubeParallelOptsCtx(context.Background(), rel, []int{0, 1}, 1, BuildOptions{NoEncode: true})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := BuildCubeParallelOptsCtx(context.Background(), rel, []int{0, 1}, 4, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireCubesBitIdentical(t, "single shard", raw, enc)
}

// TestEncodedKernelGate pins when the encoded path engages: the obs
// counters distinguish the two kernels, small relations and NoEncode use
// raw, and large encodable relations use the encoded kernels.
func TestEncodedKernelGate(t *testing.T) {
	reg := obs.New()
	ctx := obs.NewContext(context.Background(), reg)
	count := func(name string) int64 {
		return reg.Counter(name).Value()
	}

	small := randomRelation(2, []int{4, 4}, 1, minEncodeRows-1, 1)
	if _, err := BuildCubeParallelOptsCtx(ctx, small, []int{0}, 1, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := count("engine_cube_build_raw"); got != 1 {
		t.Fatalf("small relation: raw builds = %d, want 1", got)
	}

	big := randomRelation(2, []int{4, 4}, 1, minEncodeRows, 1)
	if _, err := BuildCubeParallelOptsCtx(ctx, big, []int{0}, 1, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := count("engine_cube_build_encoded"); got != 1 {
		t.Fatalf("large relation: encoded builds = %d, want 1", got)
	}

	if _, err := BuildCubeParallelOptsCtx(ctx, big, []int{0}, 1, BuildOptions{NoEncode: true}); err != nil {
		t.Fatal(err)
	}
	if got := count("engine_cube_build_raw"); got != 2 {
		t.Fatalf("NoEncode: raw builds = %d, want 2", got)
	}
}

// TestEncodeAbortFallsBackToRawKernel: a fault-injected encode abort must
// leave builds on the raw path with identical results — degradation, not
// failure.
func TestEncodeAbortFallsBackToRawKernel(t *testing.T) {
	rel := mixedRelation(minEncodeRows+50, 29)
	restore := faultinject.Set(faultinject.TableEncodeColumn,
		//nolint:nopanic // injected fault: EncodeAbort is the codec's sanctioned abort signal
		faultinject.Always(func() { panic(table.EncodeAbort{Reason: "test"}) }))
	defer restore()

	reg := obs.New()
	ctx := obs.NewContext(context.Background(), reg)
	got, err := BuildCubeParallelOptsCtx(ctx, rel, []int{0, 1}, 2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("engine_cube_build_raw").Value(); n != 1 {
		t.Fatalf("raw builds = %d, want 1 (encode aborted)", n)
	}
	want, err := BuildCubeParallelOptsCtx(ctx, rel, []int{0, 1}, 1, BuildOptions{NoEncode: true})
	if err != nil {
		t.Fatal(err)
	}
	requireCubesBitIdentical(t, "aborted encode", want, got)
}

// TestCacheChargesEncodedBytes: after a build that used the encoded path,
// the cache stats expose the retained payload, and it is charged once per
// relation no matter how many cubes build from it.
func TestCacheChargesEncodedBytes(t *testing.T) {
	rel := mixedRelation(minEncodeRows+10, 41)
	cc := NewCubeCache(0)
	cc.GetOrBuild(rel, []int{0}, 1)
	cc.GetOrBuild(rel, []int{1}, 1)
	enc := rel.EncodedCached()
	if enc == nil {
		t.Fatal("builds above minEncodeRows left no cached encoding")
	}
	if got, want := cc.Stats().EncodedBytes, int64(enc.RetainedBytes()); got != want {
		t.Fatalf("EncodedBytes = %d, want %d (charged once)", got, want)
	}

	off := NewCubeCache(0)
	off.SetNoEncode(true)
	rel2 := mixedRelation(minEncodeRows+10, 43)
	off.GetOrBuild(rel2, []int{0}, 1)
	if got := off.Stats().EncodedBytes; got != 0 {
		t.Fatalf("EncodedBytes = %d with SetNoEncode(true), want 0", got)
	}
	if rel2.EncodedCached() != nil {
		t.Error("SetNoEncode cache still triggered a lazy encode")
	}
}
