package engine

import (
	"math"
	"math/rand"
	"testing"

	"comparenb/internal/table"
)

func TestCountGroupsExact(t *testing.T) {
	rel := covidRelation()
	if got := CountGroups(rel, []int{0}); got != 5 {
		t.Errorf("CountGroups(continent) = %d, want 5", got)
	}
	if got := CountGroups(rel, []int{0, 1}); got != 10 {
		t.Errorf("CountGroups(continent, month) = %d, want 10", got)
	}
}

func TestEstimateGroupsFullSampleIsExact(t *testing.T) {
	rel := randomRelation(2, []int{7, 9}, 1, 400, 5)
	rng := rand.New(rand.NewSource(1))
	exact := float64(CountGroups(rel, []int{0, 1}))
	if got := EstimateGroups(rel, []int{0, 1}, rel.NumRows(), rng); got != exact {
		t.Errorf("full-sample estimate = %v, want exact %v", got, exact)
	}
	if got := EstimateGroups(rel, []int{0, 1}, 0, rng); got != exact {
		t.Errorf("sampleSize=0 estimate = %v, want exact %v", got, exact)
	}
}

func TestEstimateGroupsReasonable(t *testing.T) {
	rel := randomRelation(2, []int{20, 20}, 1, 20000, 9)
	rng := rand.New(rand.NewSource(2))
	exact := float64(CountGroups(rel, []int{0, 1}))
	est := EstimateGroups(rel, []int{0, 1}, 2000, rng)
	if est < exact/3 || est > exact*3 {
		t.Errorf("estimate %v too far from exact %v", est, exact)
	}
}

func TestEstimateGroupsBounded(t *testing.T) {
	rel := randomRelation(1, []int{4}, 1, 1000, 3)
	rng := rand.New(rand.NewSource(3))
	est := EstimateGroups(rel, []int{0}, 50, rng)
	if est > 4 {
		t.Errorf("estimate %v exceeds domain bound 4", est)
	}
}

func TestEstimateGroupsEmptyRelation(t *testing.T) {
	b := table.NewBuilder("empty", []string{"a"}, nil)
	rel := b.Build()
	rng := rand.New(rand.NewSource(4))
	if got := EstimateGroups(rel, []int{0}, 10, rng); got != 0 {
		t.Errorf("estimate on empty relation = %v, want 0", got)
	}
}

func TestSampleRowsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := sampleRows(100, 30, rng)
	if len(rows) != 30 {
		t.Fatalf("len = %d, want 30", len(rows))
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if r < 0 || r >= 100 {
			t.Errorf("row %d out of range", r)
		}
		if seen[r] {
			t.Errorf("row %d duplicated", r)
		}
		seen[r] = true
	}
	if got := sampleRows(5, 10, rng); len(got) != 5 {
		t.Errorf("oversized sample len = %d, want 5", len(got))
	}
}

func TestEstimateNeverNaN(t *testing.T) {
	rel := randomRelation(3, []int{3, 3, 3}, 1, 100, 6)
	rng := rand.New(rand.NewSource(6))
	for _, size := range []int{1, 2, 10, 50, 99, 100} {
		if got := EstimateGroups(rel, []int{0, 1, 2}, size, rng); math.IsNaN(got) || got < 0 {
			t.Errorf("estimate(size=%d) = %v", size, got)
		}
	}
}
