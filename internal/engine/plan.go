package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"comparenb/internal/table"
)

// The plan layer implements the extended relational algebra the paper's
// queries are written in (Def. 3.1/3.7): σ (selection), γ (grouping /
// aggregation), ⋈ (equi-join), τ (sort) and π (projection), composed as an
// operator tree over materialised intermediate results. The fast paths
// used by the pipeline (cubes, CompareDirect/CompareFromCube) are
// specialised implementations of these plans; the plan layer exists so
// arbitrary queries can be built, executed, and explained, and serves as a
// test oracle for the fast paths.

// ColKind is the type of a derived column.
type ColKind int

const (
	// Str columns hold categorical values.
	Str ColKind = iota
	// Num columns hold numeric values.
	Num
)

// Rows is a materialised intermediate result: a small column-oriented
// table with named, typed columns.
type Rows struct {
	Names []string
	Kinds []ColKind
	Strs  map[int][]string  // column index → values (Str columns)
	Nums  map[int][]float64 // column index → values (Num columns)
	N     int
}

// NewRows creates an empty result with the given schema.
func NewRows(names []string, kinds []ColKind) *Rows {
	r := &Rows{Names: names, Kinds: kinds, Strs: map[int][]string{}, Nums: map[int][]float64{}}
	for i, k := range kinds {
		if k == Str {
			r.Strs[i] = nil
		} else {
			r.Nums[i] = nil
		}
	}
	return r
}

// Col returns the index of the named column, or -1.
func (r *Rows) Col(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// appendRow adds one row given per-column values (string or float64).
func (r *Rows) appendRow(vals []any) {
	for i, v := range vals {
		switch r.Kinds[i] {
		case Str:
			r.Strs[i] = append(r.Strs[i], v.(string))
		case Num:
			r.Nums[i] = append(r.Nums[i], v.(float64))
		}
	}
	r.N++
}

// String renders the rows as an aligned text table (for examples/tests).
func (r *Rows) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Names, " | "))
	sb.WriteString("\n")
	for row := 0; row < r.N; row++ {
		parts := make([]string, len(r.Names))
		for c := range r.Names {
			if r.Kinds[c] == Str {
				parts[c] = r.Strs[c][row]
			} else {
				parts[c] = fmt.Sprintf("%g", r.Nums[c][row])
			}
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Plan is a node of the operator tree.
type Plan interface {
	// Run executes the subtree and materialises its result.
	Run() (*Rows, error)
	// Explain renders the subtree one operator per line.
	Explain() string
}

// ScanOp reads the base relation: one output column per categorical
// attribute (Str) and per measure (Num).
type ScanOp struct {
	Rel *table.Relation
}

// Scan creates a scan of the relation.
func Scan(rel *table.Relation) *ScanOp { return &ScanOp{Rel: rel} }

// Run implements Plan.
func (s *ScanOp) Run() (*Rows, error) {
	rel := s.Rel
	names := append(rel.CatNames(), rel.MeasNames()...)
	kinds := make([]ColKind, len(names))
	for i := rel.NumCatAttrs(); i < len(names); i++ {
		kinds[i] = Num
	}
	out := NewRows(names, kinds)
	out.N = rel.NumRows()
	for a := 0; a < rel.NumCatAttrs(); a++ {
		col := make([]string, rel.NumRows())
		for i, c := range rel.CatCol(a) {
			col[i] = rel.Value(a, c)
		}
		out.Strs[a] = col
	}
	for m := 0; m < rel.NumMeasures(); m++ {
		out.Nums[rel.NumCatAttrs()+m] = append([]float64(nil), rel.MeasCol(m)...)
	}
	return out, nil
}

// Explain implements Plan.
func (s *ScanOp) Explain() string { return "Scan(" + s.Rel.Name() + ")" }

// SelectOp is σ_pred.
type SelectOp struct {
	Input Plan
	Desc  string
	Pred  func(r *Rows, row int) bool
}

// SelectEq builds σ_{col=val} over string columns (the paper's B = val).
func SelectEq(input Plan, col, val string) *SelectOp {
	return &SelectOp{
		Input: input,
		Desc:  fmt.Sprintf("σ(%s = %q)", col, val),
		Pred: func(r *Rows, row int) bool {
			c := r.Col(col)
			return c >= 0 && r.Kinds[c] == Str && r.Strs[c][row] == val
		},
	}
}

// SelectIn builds σ_{col ∈ vals}.
func SelectIn(input Plan, col string, vals ...string) *SelectOp {
	set := map[string]bool{}
	for _, v := range vals {
		set[v] = true
	}
	return &SelectOp{
		Input: input,
		Desc:  fmt.Sprintf("σ(%s ∈ %v)", col, vals),
		Pred: func(r *Rows, row int) bool {
			c := r.Col(col)
			return c >= 0 && r.Kinds[c] == Str && set[r.Strs[c][row]]
		},
	}
}

// Run implements Plan.
func (s *SelectOp) Run() (*Rows, error) {
	in, err := s.Input.Run()
	if err != nil {
		return nil, err
	}
	out := NewRows(in.Names, in.Kinds)
	for row := 0; row < in.N; row++ {
		if !s.Pred(in, row) {
			continue
		}
		for c := range in.Names {
			if in.Kinds[c] == Str {
				out.Strs[c] = append(out.Strs[c], in.Strs[c][row])
			} else {
				out.Nums[c] = append(out.Nums[c], in.Nums[c][row])
			}
		}
		out.N++
	}
	return out, nil
}

// Explain implements Plan.
func (s *SelectOp) Explain() string { return s.Desc + "\n  " + indent(s.Input.Explain()) }

// AggSpec is one aggregate of a γ operator.
type AggSpec struct {
	Agg Agg
	Col string // input measure column (ignored for Count)
	As  string // output column name
}

// GroupByOp is γ_{keys, aggs}.
type GroupByOp struct {
	Input Plan
	Keys  []string
	Aggs  []AggSpec
}

// GroupBy builds a grouping/aggregation node.
func GroupBy(input Plan, keys []string, aggs ...AggSpec) *GroupByOp {
	return &GroupByOp{Input: input, Keys: keys, Aggs: aggs}
}

// Run implements Plan.
func (g *GroupByOp) Run() (*Rows, error) {
	in, err := g.Input.Run()
	if err != nil {
		return nil, err
	}
	keyCols := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		keyCols[i] = in.Col(k)
		if keyCols[i] < 0 || in.Kinds[keyCols[i]] != Str {
			return nil, fmt.Errorf("engine: group-by key %q is not a string column", k)
		}
	}
	type state struct {
		vals     []string
		count    int64
		sum      []float64
		min, max []float64
	}
	aggCols := make([]int, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Agg == Count {
			aggCols[i] = -1
			continue
		}
		aggCols[i] = in.Col(a.Col)
		if aggCols[i] < 0 || in.Kinds[aggCols[i]] != Num {
			return nil, fmt.Errorf("engine: aggregate input %q is not a numeric column", a.Col)
		}
	}
	groups := map[string]*state{}
	var order []string
	var keyBuf strings.Builder
	for row := 0; row < in.N; row++ {
		keyBuf.Reset()
		for _, kc := range keyCols {
			keyBuf.WriteString(in.Strs[kc][row])
			keyBuf.WriteByte(0)
		}
		key := keyBuf.String()
		st := groups[key]
		if st == nil {
			st = &state{
				sum: make([]float64, len(g.Aggs)),
				min: make([]float64, len(g.Aggs)),
				max: make([]float64, len(g.Aggs)),
			}
			for i := range st.min {
				st.min[i] = math.NaN()
				st.max[i] = math.NaN()
			}
			for _, kc := range keyCols {
				st.vals = append(st.vals, in.Strs[kc][row])
			}
			groups[key] = st
			order = append(order, key)
		}
		st.count++
		for i, ac := range aggCols {
			if ac < 0 {
				continue
			}
			v := in.Nums[ac][row]
			if math.IsNaN(v) {
				continue
			}
			st.sum[i] += v
			if math.IsNaN(st.min[i]) || v < st.min[i] {
				st.min[i] = v
			}
			if math.IsNaN(st.max[i]) || v > st.max[i] {
				st.max[i] = v
			}
		}
	}
	names := append([]string(nil), g.Keys...)
	kinds := make([]ColKind, len(g.Keys), len(g.Keys)+len(g.Aggs))
	for _, a := range g.Aggs {
		names = append(names, a.As)
		kinds = append(kinds, Num)
	}
	out := NewRows(names, kinds)
	for _, key := range order {
		st := groups[key]
		vals := make([]any, 0, len(names))
		for _, v := range st.vals {
			vals = append(vals, v)
		}
		for i, a := range g.Aggs {
			var v float64
			switch a.Agg {
			case Sum:
				v = st.sum[i]
			case Avg:
				v = st.sum[i] / float64(st.count)
			case Min:
				v = st.min[i]
			case Max:
				v = st.max[i]
			case Count:
				v = float64(st.count)
			}
			vals = append(vals, v)
		}
		out.appendRow(vals)
	}
	return out, nil
}

// Explain implements Plan.
func (g *GroupByOp) Explain() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Agg == Count {
			parts[i] = "count(*) as " + a.As
		} else {
			parts[i] = fmt.Sprintf("%s(%s) as %s", a.Agg, a.Col, a.As)
		}
	}
	return fmt.Sprintf("γ(keys=%v, %s)\n  %s", g.Keys, strings.Join(parts, ", "), indent(g.Input.Explain()))
}

// JoinOp is an equi-join on one shared string column (the ⋈ of Def. 3.1).
type JoinOp struct {
	Left, Right Plan
	On          string
}

// JoinOn builds the equi-join node.
func JoinOn(left, right Plan, on string) *JoinOp { return &JoinOp{Left: left, Right: right, On: on} }

// Run implements Plan.
func (j *JoinOp) Run() (*Rows, error) {
	l, err := j.Left.Run()
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Run()
	if err != nil {
		return nil, err
	}
	lc, rc := l.Col(j.On), r.Col(j.On)
	if lc < 0 || rc < 0 || l.Kinds[lc] != Str || r.Kinds[rc] != Str {
		return nil, fmt.Errorf("engine: join column %q missing or non-string", j.On)
	}
	// Hash join; right side indexed.
	index := map[string][]int{}
	for row := 0; row < r.N; row++ {
		k := r.Strs[rc][row]
		index[k] = append(index[k], row)
	}
	names := append([]string(nil), l.Names...)
	kinds := append([]ColKind(nil), l.Kinds...)
	for c, n := range r.Names {
		if c == rc {
			continue
		}
		name := n
		if l.Col(n) >= 0 {
			name = "r." + n
		}
		names = append(names, name)
		kinds = append(kinds, r.Kinds[c])
	}
	out := NewRows(names, kinds)
	for lrow := 0; lrow < l.N; lrow++ {
		for _, rrow := range index[l.Strs[lc][lrow]] {
			vals := make([]any, 0, len(names))
			for c := range l.Names {
				if l.Kinds[c] == Str {
					vals = append(vals, l.Strs[c][lrow])
				} else {
					vals = append(vals, l.Nums[c][lrow])
				}
			}
			for c := range r.Names {
				if c == rc {
					continue
				}
				if r.Kinds[c] == Str {
					vals = append(vals, r.Strs[c][rrow])
				} else {
					vals = append(vals, r.Nums[c][rrow])
				}
			}
			out.appendRow(vals)
		}
	}
	return out, nil
}

// Explain implements Plan.
func (j *JoinOp) Explain() string {
	return fmt.Sprintf("⋈(on=%s)\n  %s\n  %s", j.On, indent(j.Left.Explain()), indent(j.Right.Explain()))
}

// SortOp is τ_col (ascending string order, the paper's τ_A).
type SortOp struct {
	Input Plan
	By    string
}

// SortBy builds the sort node.
func SortBy(input Plan, by string) *SortOp { return &SortOp{Input: input, By: by} }

// Run implements Plan.
func (s *SortOp) Run() (*Rows, error) {
	in, err := s.Input.Run()
	if err != nil {
		return nil, err
	}
	c := in.Col(s.By)
	if c < 0 || in.Kinds[c] != Str {
		return nil, fmt.Errorf("engine: sort column %q missing or non-string", s.By)
	}
	perm := make([]int, in.N)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return in.Strs[c][perm[a]] < in.Strs[c][perm[b]] })
	out := NewRows(in.Names, in.Kinds)
	out.N = in.N
	for col := range in.Names {
		if in.Kinds[col] == Str {
			vals := make([]string, in.N)
			for i, p := range perm {
				vals[i] = in.Strs[col][p]
			}
			out.Strs[col] = vals
		} else {
			vals := make([]float64, in.N)
			for i, p := range perm {
				vals[i] = in.Nums[col][p]
			}
			out.Nums[col] = vals
		}
	}
	return out, nil
}

// Explain implements Plan.
func (s *SortOp) Explain() string { return "τ(" + s.By + ")\n  " + indent(s.Input.Explain()) }

// ProjectOp is π_cols.
type ProjectOp struct {
	Input Plan
	Cols  []string
}

// Project builds the projection node.
func Project(input Plan, cols ...string) *ProjectOp { return &ProjectOp{Input: input, Cols: cols} }

// Run implements Plan.
func (p *ProjectOp) Run() (*Rows, error) {
	in, err := p.Input.Run()
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(p.Cols))
	kinds := make([]ColKind, len(p.Cols))
	for i, c := range p.Cols {
		idx[i] = in.Col(c)
		if idx[i] < 0 {
			return nil, fmt.Errorf("engine: projected column %q missing", c)
		}
		kinds[i] = in.Kinds[idx[i]]
	}
	out := NewRows(append([]string(nil), p.Cols...), kinds)
	out.N = in.N
	for i, c := range idx {
		if kinds[i] == Str {
			out.Strs[i] = in.Strs[c]
		} else {
			out.Nums[i] = in.Nums[c]
		}
	}
	return out, nil
}

// Explain implements Plan.
func (p *ProjectOp) Explain() string {
	return fmt.Sprintf("π(%v)\n  %s", p.Cols, indent(p.Input.Explain()))
}

func indent(s string) string { return strings.ReplaceAll(s, "\n", "\n  ") }

// HavingOp implements the σ_p of a hypothesis query (Def. 3.7): a
// predicate over column aggregates of its input. When the predicate holds
// it emits a single row with the hypothesis label; otherwise it emits no
// rows — exactly the observable behaviour of Figure 3's SQL.
type HavingOp struct {
	Input Plan
	Label string
	Desc  string
	Pred  func(r *Rows) (bool, error)
}

// Run implements Plan.
func (h *HavingOp) Run() (*Rows, error) {
	in, err := h.Input.Run()
	if err != nil {
		return nil, err
	}
	out := NewRows([]string{"hypothesis"}, []ColKind{Str})
	ok, err := h.Pred(in)
	if err != nil {
		return nil, err
	}
	if ok {
		out.appendRow([]any{h.Label})
	}
	return out, nil
}

// Explain implements Plan.
func (h *HavingOp) Explain() string {
	return fmt.Sprintf("π(%q) σ(%s)\n  %s", h.Label, h.Desc, indent(h.Input.Explain()))
}

// numColumn extracts a numeric column by name.
func numColumn(r *Rows, name string) ([]float64, error) {
	c := r.Col(name)
	if c < 0 || r.Kinds[c] != Num {
		return nil, fmt.Errorf("engine: column %q missing or non-numeric", name)
	}
	return r.Nums[c][:r.N], nil
}

// HypothesisPlan builds the literal operator tree of Definition 3.7 on top
// of ComparisonPlan: σ_p over the comparison result, projecting the
// hypothesis label. The predicate is the insight type's (mean greater /
// variance greater / median greater over the two series).
func HypothesisPlan(rel *table.Relation, attrA, attrB int, val, val2 int32, meas int, agg Agg, predicate SeriesPredicate, label string) Plan {
	return &HavingOp{
		Input: ComparisonPlan(rel, attrA, attrB, val, val2, meas, agg),
		Label: label,
		Desc:  predicate.Desc,
		Pred: func(r *Rows) (bool, error) {
			left, err := numColumn(r, "left")
			if err != nil {
				return false, err
			}
			right, err := numColumn(r, "right")
			if err != nil {
				return false, err
			}
			return predicate.Holds(left, right), nil
		},
	}
}

// SeriesPredicate is a named predicate over the two comparison series.
type SeriesPredicate struct {
	Desc  string
	Holds func(left, right []float64) bool
}

// ComparisonPlan builds the literal operator tree of Definition 3.1:
//
//	τ_A( γ_{A,agg(M)}(σ_{B=val}(R)) ⋈_A γ_{A,agg(M)}(σ_{B=val'}(R)) )
//
// with column names matching the SQL that sqlgen emits.
func ComparisonPlan(rel *table.Relation, attrA, attrB int, val, val2 int32, meas int, agg Agg) Plan {
	a := rel.CatName(attrA)
	b := rel.CatName(attrB)
	m := rel.MeasName(meas)
	v1 := rel.Value(attrB, val)
	v2 := rel.Value(attrB, val2)
	left := GroupBy(SelectEq(Scan(rel), b, v1), []string{a}, AggSpec{Agg: agg, Col: m, As: "left"})
	right := GroupBy(SelectEq(Scan(rel), b, v2), []string{a}, AggSpec{Agg: agg, Col: m, As: "right"})
	return Project(SortBy(JoinOn(left, right, a), a), a, "left", "right")
}
