// Package engine executes the relational workload of the paper on top of
// internal/table: selections, multi-attribute group-by aggregation (cubes),
// distributive roll-up, the join/sort shape of comparison queries
// (Def. 3.1), distinct-group-count estimation (the "query optimizer
// estimate" that weights Algorithm 2's set cover), and functional-dependency
// detection (the pre-processing of footnote 2).
package engine

import "fmt"

// Agg identifies an aggregation function applicable to a measure.
type Agg int

const (
	// Sum of measure values.
	Sum Agg = iota
	// Avg is the arithmetic mean.
	Avg
	// Min is the minimum.
	Min
	// Max is the maximum.
	Max
	// Count counts tuples (ignores the measure's values).
	Count
)

// AllAggs lists every aggregation function, in the order used to enumerate
// comparison queries. Its length is the paper's f.
var AllAggs = []Agg{Sum, Avg, Min, Max, Count}

// String returns the SQL name of the aggregate.
func (a Agg) String() string {
	switch a {
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case Count:
		return "count"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// ParseAgg maps a SQL aggregate name to an Agg.
func ParseAgg(s string) (Agg, error) {
	for _, a := range AllAggs {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown aggregate %q", s)
}
