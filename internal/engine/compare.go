package engine

import (
	"math"
	"sort"

	"comparenb/internal/table"
)

// ComparisonResult is the tabular result of a comparison query
// (Def. 3.1): one row per group-by value a of A that occurs on both sides,
// with Left = agg(M) where B=val and Right = agg(M) where B=val'. Rows are
// sorted by the string value of A (the τ_A of the definition).
type ComparisonResult struct {
	Groups []int32 // codes of A
	Left   []float64
	Right  []float64
}

// Len returns the number of rows of the result.
func (cr *ComparisonResult) Len() int { return len(cr.Groups) }

// CompareFromCube answers the comparison query (A, B, val, val', M, agg)
// from a cube whose attributes include A and B (rolling up first if the
// cube is wider). The inner join of Def. 3.1 keeps only the A-groups
// present for both selections.
func CompareFromCube(c *Cube, attrA, attrB int, val, val2 int32, meas int, agg Agg) *ComparisonResult {
	if len(c.attrs) != 2 || c.attrs[0] != minInt(attrA, attrB) || c.attrs[1] != maxInt(attrA, attrB) {
		c = c.Rollup([]int{attrA, attrB})
	}
	posA, posB := 0, 1
	if c.attrs[0] == attrB {
		posA, posB = 1, 0
	}
	left := make(map[int32]float64)
	right := make(map[int32]float64)
	for g := 0; g < c.NumGroups(); g++ {
		key := c.GroupKey(g)
		b := key[posB]
		if b != val && b != val2 {
			continue
		}
		a := key[posA]
		v := c.Value(g, meas, agg)
		if b == val {
			left[a] = v
		}
		if b == val2 {
			right[a] = v
		}
	}
	return joinSeries(c.rel, attrA, left, right)
}

// CompareDirect evaluates the comparison query by scanning the base
// relation twice (once per selection), grouping, joining and sorting —
// the literal query plan of Def. 3.1, used to time query execution
// (Figure 5) and as a test oracle for the cube path.
func CompareDirect(rel *table.Relation, attrA, attrB int, val, val2 int32, meas int, agg Agg) *ComparisonResult {
	left := aggBySelection(rel, attrA, attrB, val, meas, agg)
	right := aggBySelection(rel, attrA, attrB, val2, meas, agg)
	return joinSeries(rel, attrA, left, right)
}

func aggBySelection(rel *table.Relation, attrA, attrB int, val int32, meas int, agg Agg) map[int32]float64 {
	colA := rel.CatCol(attrA)
	colB := rel.CatCol(attrB)
	mcol := rel.MeasCol(meas)
	type state struct {
		count    int64
		sum      float64
		min, max float64
	}
	states := make(map[int32]*state)
	for i, b := range colB {
		if b != val {
			continue
		}
		s := states[colA[i]]
		if s == nil {
			s = &state{min: math.NaN(), max: math.NaN()}
			states[colA[i]] = s
		}
		s.count++
		v := mcol[i]
		if math.IsNaN(v) {
			continue
		}
		s.sum += v
		if math.IsNaN(s.min) || v < s.min {
			s.min = v
		}
		if math.IsNaN(s.max) || v > s.max {
			s.max = v
		}
	}
	out := make(map[int32]float64, len(states))
	for a, s := range states {
		switch agg {
		case Sum:
			out[a] = s.sum
		case Avg:
			out[a] = s.sum / float64(s.count)
		case Min:
			out[a] = s.min
		case Max:
			out[a] = s.max
		case Count:
			out[a] = float64(s.count)
		}
	}
	return out
}

func joinSeries(rel *table.Relation, attrA int, left, right map[int32]float64) *ComparisonResult {
	res := &ComparisonResult{}
	for a, lv := range left {
		rv, ok := right[a]
		if !ok {
			continue
		}
		res.Groups = append(res.Groups, a)
		res.Left = append(res.Left, lv)
		res.Right = append(res.Right, rv)
	}
	sort.Sort(&byValue{rel: rel, attr: attrA, res: res})
	return res
}

type byValue struct {
	rel  *table.Relation
	attr int
	res  *ComparisonResult
}

func (s *byValue) Len() int { return len(s.res.Groups) }
func (s *byValue) Less(i, j int) bool {
	return s.rel.Value(s.attr, s.res.Groups[i]) < s.rel.Value(s.attr, s.res.Groups[j])
}
func (s *byValue) Swap(i, j int) {
	r := s.res
	r.Groups[i], r.Groups[j] = r.Groups[j], r.Groups[i]
	r.Left[i], r.Left[j] = r.Left[j], r.Left[i]
	r.Right[i], r.Right[j] = r.Right[j], r.Right[i]
}

// ComparePivot evaluates the comparison query with the alternative plan of
// §3.1: a single scan computing γ_{A,B,agg(M)}(σ_{B=val ∨ B=val'}(R))
// followed by a pivot to the two-column tabular form. The paper found the
// two forms "similar in terms of execution cost" [12]; CompareDirect and
// ComparePivot let the benchmarks check that claim on this engine.
func ComparePivot(rel *table.Relation, attrA, attrB int, val, val2 int32, meas int, agg Agg) *ComparisonResult {
	colA := rel.CatCol(attrA)
	colB := rel.CatCol(attrB)
	mcol := rel.MeasCol(meas)
	type state struct {
		count    int64
		sum      float64
		min, max float64
	}
	// One grouped pass over (A, side); side 0 = val, side 1 = val'.
	states := make(map[[2]int32]*state)
	for i, b := range colB {
		var side int32
		switch b {
		case val:
			side = 0
		case val2:
			side = 1
		default:
			continue
		}
		k := [2]int32{colA[i], side}
		s := states[k]
		if s == nil {
			s = &state{min: math.NaN(), max: math.NaN()}
			states[k] = s
		}
		s.count++
		v := mcol[i]
		if math.IsNaN(v) {
			continue
		}
		s.sum += v
		if math.IsNaN(s.min) || v < s.min {
			s.min = v
		}
		if math.IsNaN(s.max) || v > s.max {
			s.max = v
		}
	}
	if val == val2 {
		// A single selection matches both sides; mirror it.
		for k, s := range states {
			if k[1] == 0 {
				states[[2]int32{k[0], 1}] = s
			}
		}
	}
	// Pivot: one output row per A value present on both sides.
	finalize := func(s *state) float64 {
		switch agg {
		case Sum:
			return s.sum
		case Avg:
			return s.sum / float64(s.count)
		case Min:
			return s.min
		case Max:
			return s.max
		case Count:
			return float64(s.count)
		default:
			//nolint:nopanic // exhaustive switch over the Agg enum; a new value is a programming error every test hits immediately
			panic("engine: bad agg")
		}
	}
	left := make(map[int32]float64)
	right := make(map[int32]float64)
	for k, s := range states {
		if k[1] == 0 {
			left[k[0]] = finalize(s)
		} else {
			right[k[0]] = finalize(s)
		}
	}
	return joinSeries(rel, attrA, left, right)
}

// FilterMeasure returns the non-NaN values of measure meas on the tuples
// where attr = code: the random-variable sample X of Def. 3.6 that the
// statistical tests run on.
func FilterMeasure(rel *table.Relation, attr int, code int32, meas int) []float64 {
	col := rel.CatCol(attr)
	mcol := rel.MeasCol(meas)
	var out []float64
	for i, c := range col {
		if c == code && !math.IsNaN(mcol[i]) {
			out = append(out, mcol[i])
		}
	}
	return out
}

// PairRows returns the row indexes where attr is code a or code b, in row
// order. The permutation tests pool exactly these rows.
func PairRows(rel *table.Relation, attr int, a, b int32) []int {
	col := rel.CatCol(attr)
	var out []int
	for i, c := range col {
		if c == a || c == b {
			out = append(out, i)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
