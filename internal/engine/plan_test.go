package engine

import (
	"math"
	"strings"
	"testing"
)

func TestScanShape(t *testing.T) {
	rel := covidRelation()
	rows, err := Scan(rel).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.N != 10 || len(rows.Names) != 3 {
		t.Fatalf("scan shape: %d rows, %d cols", rows.N, len(rows.Names))
	}
	if rows.Col("continent") != 0 || rows.Col("cases") != 2 {
		t.Error("column order wrong")
	}
	if rows.Col("nope") != -1 {
		t.Error("missing column lookup should be -1")
	}
	if rows.Kinds[2] != Num {
		t.Error("measure column should be numeric")
	}
}

func TestSelectEq(t *testing.T) {
	rel := covidRelation()
	rows, err := SelectEq(Scan(rel), "month", "4").Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.N != 5 {
		t.Errorf("σ(month=4) rows = %d, want 5", rows.N)
	}
	rows, err = SelectIn(Scan(rel), "continent", "Africa", "Asia").Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.N != 4 {
		t.Errorf("σ(continent∈{Africa,Asia}) rows = %d, want 4", rows.N)
	}
}

func TestGroupByPlanAggregates(t *testing.T) {
	rel := covidRelation()
	plan := GroupBy(Scan(rel), []string{"continent"},
		AggSpec{Agg: Sum, Col: "cases", As: "total"},
		AggSpec{Agg: Count, As: "n"},
		AggSpec{Agg: Min, Col: "cases", As: "lo"},
	)
	rows, err := plan.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.N != 5 {
		t.Fatalf("groups = %d, want 5", rows.N)
	}
	ci := rows.Col("continent")
	for row := 0; row < rows.N; row++ {
		if rows.Strs[ci][row] != "Africa" {
			continue
		}
		if got := rows.Nums[rows.Col("total")][row]; got != 31598+92626 {
			t.Errorf("sum(Africa) = %v", got)
		}
		if got := rows.Nums[rows.Col("n")][row]; got != 2 {
			t.Errorf("count(Africa) = %v", got)
		}
		if got := rows.Nums[rows.Col("lo")][row]; got != 31598 {
			t.Errorf("min(Africa) = %v", got)
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	rel := covidRelation()
	if _, err := GroupBy(Scan(rel), []string{"cases"}).Run(); err == nil {
		t.Error("grouping by a measure should fail")
	}
	if _, err := GroupBy(Scan(rel), []string{"continent"},
		AggSpec{Agg: Sum, Col: "continent", As: "x"}).Run(); err == nil {
		t.Error("aggregating a string column should fail")
	}
}

func TestJoinProjectSortErrors(t *testing.T) {
	rel := covidRelation()
	if _, err := JoinOn(Scan(rel), Scan(rel), "cases").Run(); err == nil {
		t.Error("joining on a numeric column should fail")
	}
	if _, err := SortBy(Scan(rel), "missing").Run(); err == nil {
		t.Error("sorting by a missing column should fail")
	}
	if _, err := Project(Scan(rel), "missing").Run(); err == nil {
		t.Error("projecting a missing column should fail")
	}
}

func TestJoinDisambiguatesColumns(t *testing.T) {
	rel := covidRelation()
	l := GroupBy(Scan(rel), []string{"continent"}, AggSpec{Agg: Sum, Col: "cases", As: "total"})
	r := GroupBy(Scan(rel), []string{"continent"}, AggSpec{Agg: Count, As: "total"})
	rows, err := JoinOn(l, r, "continent").Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Col("total") < 0 || rows.Col("r.total") < 0 {
		t.Errorf("duplicate columns not disambiguated: %v", rows.Names)
	}
}

// TestComparisonPlanMatchesDirect: the literal Def. 3.1 operator tree must
// agree with the specialised CompareDirect evaluator.
func TestComparisonPlanMatchesDirect(t *testing.T) {
	rel := randomRelation(3, []int{4, 5, 3}, 2, 600, 37)
	for _, agg := range AllAggs {
		dom := rel.SortedDomain(1)
		plan := ComparisonPlan(rel, 0, 1, dom[0], dom[1], 1, agg)
		rows, err := plan.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := CompareDirect(rel, 0, 1, dom[0], dom[1], 1, agg)
		if rows.N != want.Len() {
			t.Fatalf("%s: plan %d rows, direct %d", agg, rows.N, want.Len())
		}
		gi, li, ri := rows.Col(rel.CatName(0)), rows.Col("left"), rows.Col("right")
		for i := 0; i < rows.N; i++ {
			if rows.Strs[gi][i] != rel.Value(0, want.Groups[i]) {
				t.Fatalf("%s row %d: group %q vs %q", agg, i, rows.Strs[gi][i], rel.Value(0, want.Groups[i]))
			}
			if math.Abs(rows.Nums[li][i]-want.Left[i]) > 1e-9*(1+math.Abs(want.Left[i])) ||
				math.Abs(rows.Nums[ri][i]-want.Right[i]) > 1e-9*(1+math.Abs(want.Right[i])) {
				t.Errorf("%s row %d: (%v,%v) vs (%v,%v)", agg, i,
					rows.Nums[li][i], rows.Nums[ri][i], want.Left[i], want.Right[i])
			}
		}
	}
}

func TestExplainTree(t *testing.T) {
	rel := covidRelation()
	dom := rel.SortedDomain(1)
	plan := ComparisonPlan(rel, 0, 1, dom[0], dom[1], 0, Sum)
	out := plan.Explain()
	for _, want := range []string{"π(", "τ(continent)", "⋈(on=continent)", "γ(keys=[continent]", `σ(month = "4")`, "Scan(covid)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestRowsString(t *testing.T) {
	rel := covidRelation()
	rows, err := GroupBy(Scan(rel), []string{"continent"}, AggSpec{Agg: Count, As: "n"}).Run()
	if err != nil {
		t.Fatal(err)
	}
	s := rows.String()
	if !strings.Contains(s, "continent | n") || !strings.Contains(s, "Africa | 2") {
		t.Errorf("render:\n%s", s)
	}
}
