package engine

import (
	"context"

	"comparenb/internal/faultinject"
	"comparenb/internal/obs"
	"comparenb/internal/table"
)

// BuildCubeParallelCtx is BuildCubeParallel with cooperative
// cancellation: each shard worker polls ctx before starting a shard and
// the build aborts with ctx's error once cancelled. A shard that has
// started runs to completion, so the merge never sees a half-scanned
// partial. When ctx is never cancelled the output is bit-identical to
// BuildCubeParallel's for every thread count — the checkpoints read,
// never perturb, the fixed shard layout and merge order.
//
// Large relations route through the encoded kernels of encube.go by
// default; BuildCubeParallelOptsCtx exposes the switch.
func BuildCubeParallelCtx(ctx context.Context, rel *table.Relation, attrs []int, threads int) (*Cube, error) {
	return BuildCubeParallelOptsCtx(ctx, rel, attrs, threads, BuildOptions{})
}

// buildCubeRawCtx is the raw float64 build path: attrs arrive sorted and
// validated. It is both the fallback for degenerate encodings and the
// reference the encoded kernels are tested bit-identical against.
func buildCubeRawCtx(ctx context.Context, rel *table.Relation, sorted []int, threads int) (*Cube, error) {
	cols := make([][]int32, len(sorted))
	for i, a := range sorted {
		cols[i] = rel.CatCol(a)
	}
	meas := make([][]float64, rel.NumMeasures())
	for j := range meas {
		meas[j] = rel.MeasCol(j)
	}

	sp := obs.StartSpan(ctx, "engine/cube/build")
	defer sp.End()

	n := rel.NumRows()
	numShards := (n + buildShardRows - 1) / buildShardRows
	if numShards <= 1 {
		faultinject.Fire(faultinject.EngineCubeShard)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		acc := newCubeAccum(rel, sorted, 0)
		acc.scan(cols, meas, 0, n)
		return acc.toCube(rel, sorted), nil
	}

	shards := make([]*cubeAccum, numShards)
	buildShard := func(ctx context.Context, s int) {
		ssp := obs.StartSpan(ctx, "engine/cube/shard")
		defer ssp.End()
		lo := s * buildShardRows
		hi := lo + buildShardRows
		if hi > n {
			hi = n
		}
		acc := newCubeAccum(rel, sorted, 0)
		acc.scan(cols, meas, lo, hi)
		shards[s] = acc
	}
	if err := forEachShardCtx(ctx, threads, numShards, buildShard); err != nil {
		return nil, err
	}

	global := newCubeAccum(rel, sorted, len(shards[0].counts))
	for _, s := range shards {
		global.merge(s)
	}
	return global.toCube(rel, sorted), nil
}

// forEachShardCtx runs fn(0..n-1) on up to `threads` goroutines, firing
// the EngineCubeShard fault-injection site and polling ctx before each
// shard. Cancellation stops every worker at its next shard boundary.
// Each parallel worker gets its own trace track so shard spans never
// interleave on one track. Returns ctx's error, if any.
func forEachShardCtx(ctx context.Context, threads, n int, fn func(ctx context.Context, s int)) error {
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for s := 0; s < n; s++ {
			faultinject.Fire(faultinject.EngineCubeShard)
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(ctx, s)
		}
		return ctx.Err()
	}
	done := make(chan struct{}, threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			wctx := obs.ForkTrack(ctx, "cube-shard")
			for s := w; s < n; s += threads {
				faultinject.Fire(faultinject.EngineCubeShard)
				if wctx.Err() != nil {
					return
				}
				fn(wctx, s)
			}
		}(w)
	}
	for w := 0; w < threads; w++ {
		<-done
	}
	return ctx.Err()
}

// GetOrBuildCtx is GetOrBuild with cooperative cancellation of the
// underlying base-relation build. Cache lookups and roll-ups are cheap
// and never interrupted; only a fresh sharded build observes ctx. A
// cancelled build inserts nothing, so the cache never holds a partial
// cube.
func (cc *CubeCache) GetOrBuildCtx(ctx context.Context, rel *table.Relation, attrs []int, threads int) (*Cube, error) {
	sorted := sortedAttrs(attrs)
	key := cacheKey{rel: rel, attrs: attrsKey(sorted)}

	cc.mu.Lock()
	if e, ok := cc.entries[key]; ok {
		cc.hits.Inc()
		cc.mu.Unlock()
		return e.cube, nil
	}
	super := cc.bestSupersetLocked(rel, sorted)
	cc.mu.Unlock()

	admitted := cc.admitPrepare(rel, sorted)
	var cube *Cube
	if super != nil {
		sp := obs.StartSpan(ctx, "engine/cube/rollup")
		cube = super.Rollup(sorted)
		sp.End()
	} else {
		var err error
		cube, err = BuildCubeParallelOptsCtx(ctx, rel, sorted, threads, cc.buildOpts())
		if err != nil {
			return nil, err
		}
	}

	cc.mu.Lock()
	defer cc.mu.Unlock()
	if e, ok := cc.entries[key]; ok {
		cc.hits.Inc()
		return e.cube, nil
	}
	if super != nil {
		cc.rollupHits.Inc()
	} else {
		cc.misses.Inc()
		cc.noteEncodedLocked(rel)
	}
	cc.admitInsertLocked(key, cube, sorted, admitted)
	return cube, nil
}

// BuildThroughCtx is BuildThrough with cooperative cancellation of the
// base-relation build; like GetOrBuildCtx it inserts nothing when the
// build is cancelled.
func (cc *CubeCache) BuildThroughCtx(ctx context.Context, rel *table.Relation, attrs []int, threads int) (*Cube, error) {
	sorted := sortedAttrs(attrs)
	key := cacheKey{rel: rel, attrs: attrsKey(sorted)}
	cc.mu.Lock()
	if e, ok := cc.entries[key]; ok {
		cc.hits.Inc()
		cc.mu.Unlock()
		return e.cube, nil
	}
	cc.mu.Unlock()

	admitted := cc.admitPrepare(rel, sorted)
	cube, err := BuildCubeParallelOptsCtx(ctx, rel, sorted, threads, cc.buildOpts())
	if err != nil {
		return nil, err
	}

	cc.mu.Lock()
	defer cc.mu.Unlock()
	if e, ok := cc.entries[key]; ok {
		cc.hits.Inc()
		return e.cube, nil
	}
	cc.misses.Inc()
	cc.noteEncodedLocked(rel)
	cc.admitInsertLocked(key, cube, sorted, admitted)
	return cube, nil
}
