package engine

import (
	"fmt"
	"math"
	"sort"

	"comparenb/internal/table"
)

// Cube is a partial aggregate: the result of γ over a set of categorical
// attributes, carrying count/sum/min/max for every measure so that any Agg
// (and any roll-up to a subset of the attributes — the trick behind
// Algorithm 2's group-by merging) can be answered from it without touching
// the base relation again.
type Cube struct {
	rel   *table.Relation
	attrs []int // sorted categorical attribute indexes

	keys   [][]int32 // keys[g][k] = code of attrs[k] in group g
	counts []int64
	sums   [][]float64 // sums[m][g]
	mins   [][]float64
	maxs   [][]float64

	// SourceRows is θ_q of §4.2: the number of tuples aggregated.
	SourceRows int
}

// Attrs returns the (sorted) categorical attribute indexes the cube groups by.
func (c *Cube) Attrs() []int { return append([]int(nil), c.attrs...) }

// NumGroups returns γ_q: the number of groups.
func (c *Cube) NumGroups() int { return len(c.keys) }

// Relation returns the relation the cube was built from.
func (c *Cube) Relation() *table.Relation { return c.rel }

// GroupKey returns the attribute codes identifying group g, aligned with
// Attrs(). The slice is owned by the cube.
func (c *Cube) GroupKey(g int) []int32 { return c.keys[g] }

// Count returns the tuple count of group g.
func (c *Cube) Count(g int) int64 { return c.counts[g] }

// Value returns agg(measure m) for group g. Avg of an empty group and
// Min/Max of an all-NaN group are NaN.
func (c *Cube) Value(g, m int, agg Agg) float64 {
	switch agg {
	case Sum:
		return c.sums[m][g]
	case Avg:
		if c.counts[g] == 0 {
			return math.NaN()
		}
		return c.sums[m][g] / float64(c.counts[g])
	case Min:
		return c.mins[m][g]
	case Max:
		return c.maxs[m][g]
	case Count:
		return float64(c.counts[g])
	default:
		//nolint:nopanic // exhaustive switch over the Agg enum; a new value is a programming error every test hits immediately
		panic(fmt.Sprintf("engine: bad agg %d", int(agg)))
	}
}

// MemoryFootprint estimates the in-memory size of the cube in bytes. This
// is the weight used by Algorithm 2's weighted set cover.
func (c *Cube) MemoryFootprint() int64 {
	g := int64(len(c.keys))
	perGroup := int64(len(c.attrs))*4 + 8 + int64(c.rel.NumMeasures())*3*8
	return g * perGroup
}

// BuildCube aggregates the relation over the given categorical attributes
// (order-insensitive; the cube stores them sorted). NaN measure values are
// ignored by Sum/Min/Max but still counted, matching SQL aggregates over a
// table where the dirty cells were NULL.
func BuildCube(rel *table.Relation, attrs []int) *Cube {
	return buildCubeRows(rel, attrs, nil)
}

// buildCubeRows aggregates the given rows (nil means all rows).
func buildCubeRows(rel *table.Relation, attrs []int, rows []int) *Cube {
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	mustUniqueAttrs(sorted)
	c := &Cube{rel: rel, attrs: sorted}
	m := rel.NumMeasures()
	c.sums = make([][]float64, m)
	c.mins = make([][]float64, m)
	c.maxs = make([][]float64, m)

	cols := make([][]int32, len(sorted))
	for i, a := range sorted {
		cols[i] = rel.CatCol(a)
	}
	meas := make([][]float64, m)
	for j := 0; j < m; j++ {
		meas[j] = rel.MeasCol(j)
	}

	// Mixed-radix composite key when the code space fits in uint64;
	// otherwise fall back to string keys over the raw code bytes.
	radix, ok := mixedRadix(rel, sorted)
	groupOf := make(map[uint64]int)
	var groupOfStr map[string]int
	if !ok {
		groupOfStr = make(map[string]int)
	}

	n := rel.NumRows()
	iter := func(yield func(row int)) {
		if rows == nil {
			for i := 0; i < n; i++ {
				yield(i)
			}
			return
		}
		for _, i := range rows {
			yield(i)
		}
	}

	keyBuf := make([]int32, len(sorted))
	byteBuf := make([]byte, 4*len(sorted))
	iter(func(row int) {
		c.SourceRows++
		for k := range cols {
			keyBuf[k] = cols[k][row]
		}
		var g int
		var found bool
		if ok {
			h := uint64(0)
			for k, code := range keyBuf {
				h += uint64(code) * radix[k]
			}
			g, found = groupOf[h]
			if !found {
				g = len(c.keys)
				groupOf[h] = g
			}
		} else {
			for k, code := range keyBuf {
				byteBuf[4*k] = byte(code)
				byteBuf[4*k+1] = byte(code >> 8)
				byteBuf[4*k+2] = byte(code >> 16)
				byteBuf[4*k+3] = byte(code >> 24)
			}
			g, found = groupOfStr[string(byteBuf)]
			if !found {
				g = len(c.keys)
				groupOfStr[string(byteBuf)] = g
			}
		}
		if !found {
			c.keys = append(c.keys, append([]int32(nil), keyBuf...))
			c.counts = append(c.counts, 0)
			for j := 0; j < m; j++ {
				c.sums[j] = append(c.sums[j], 0)
				c.mins[j] = append(c.mins[j], math.NaN())
				c.maxs[j] = append(c.maxs[j], math.NaN())
			}
		}
		c.counts[g]++
		for j := 0; j < m; j++ {
			v := meas[j][row]
			if math.IsNaN(v) {
				continue
			}
			c.sums[j][g] += v
			if math.IsNaN(c.mins[j][g]) || v < c.mins[j][g] {
				c.mins[j][g] = v
			}
			if math.IsNaN(c.maxs[j][g]) || v > c.maxs[j][g] {
				c.maxs[j][g] = v
			}
		}
	})
	return c
}

// mixedRadix returns per-position multipliers so that composite keys over
// the given attributes are unique uint64s, or ok=false if the combined code
// space overflows.
func mixedRadix(rel *table.Relation, attrs []int) ([]uint64, bool) {
	radix := make([]uint64, len(attrs))
	prod := uint64(1)
	for i, a := range attrs {
		radix[i] = prod
		d := uint64(rel.DomSize(a))
		if d == 0 {
			d = 1
		}
		if prod > (1<<63)/d {
			return nil, false
		}
		prod *= d
	}
	return radix, true
}

// Rollup aggregates the cube down to a subset of its attributes. All stored
// statistics are distributive (count, sum, min, max), and Avg is derived as
// sum/count, so roll-up is exact. Rollup panics if attrs is not a subset of
// the cube's attributes.
func (c *Cube) Rollup(attrs []int) *Cube {
	sorted := append([]int(nil), attrs...)
	sort.Ints(sorted)
	pos := make([]int, len(sorted))
	for i, want := range sorted {
		pos[i] = mustAttrPos(c.attrs, want)
	}

	out := &Cube{rel: c.rel, attrs: sorted, SourceRows: c.SourceRows}
	m := c.rel.NumMeasures()
	out.sums = make([][]float64, m)
	out.mins = make([][]float64, m)
	out.maxs = make([][]float64, m)

	radix, ok := mixedRadix(c.rel, sorted)
	groupOf := make(map[uint64]int)
	var groupOfStr map[string]int
	if !ok {
		groupOfStr = make(map[string]int)
	}
	keyBuf := make([]int32, len(sorted))
	byteBuf := make([]byte, 4*len(sorted))
	for src := range c.keys {
		for i, p := range pos {
			keyBuf[i] = c.keys[src][p]
		}
		var g int
		var found bool
		if ok {
			h := uint64(0)
			for k, code := range keyBuf {
				h += uint64(code) * radix[k]
			}
			g, found = groupOf[h]
			if !found {
				g = len(out.keys)
				groupOf[h] = g
			}
		} else {
			for k, code := range keyBuf {
				byteBuf[4*k] = byte(code)
				byteBuf[4*k+1] = byte(code >> 8)
				byteBuf[4*k+2] = byte(code >> 16)
				byteBuf[4*k+3] = byte(code >> 24)
			}
			g, found = groupOfStr[string(byteBuf)]
			if !found {
				g = len(out.keys)
				groupOfStr[string(byteBuf)] = g
			}
		}
		if !found {
			out.keys = append(out.keys, append([]int32(nil), keyBuf...))
			out.counts = append(out.counts, 0)
			for j := 0; j < m; j++ {
				out.sums[j] = append(out.sums[j], 0)
				out.mins[j] = append(out.mins[j], math.NaN())
				out.maxs[j] = append(out.maxs[j], math.NaN())
			}
		}
		out.counts[g] += c.counts[src]
		for j := 0; j < m; j++ {
			out.sums[j][g] += c.sums[j][src]
			v := c.mins[j][src]
			if !math.IsNaN(v) && (math.IsNaN(out.mins[j][g]) || v < out.mins[j][g]) {
				out.mins[j][g] = v
			}
			v = c.maxs[j][src]
			if !math.IsNaN(v) && (math.IsNaN(out.maxs[j][g]) || v > out.maxs[j][g]) {
				out.maxs[j][g] = v
			}
		}
	}
	return out
}

// mustUniqueAttrs panics when a sorted group-by attribute set contains a
// duplicate. It is a guarded invariant helper (see the nopanic rule in
// internal/analysis): attribute sets reaching the cube builder come from
// cover.Pair values and candidate enumerations, which are duplicate-free
// by construction, so a duplicate here is a caller bug worth crashing on.
func mustUniqueAttrs(sorted []int) {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			panic(fmt.Sprintf("engine: duplicate attribute %d in group-by set", sorted[i]))
		}
	}
}

// mustAttrPos returns the index of want within attrs, panicking when it is
// absent. Guarded invariant helper: Rollup's documented contract is that
// the target attributes are a subset of the cube's, and every call site
// derives them from the cube's own attribute set.
func mustAttrPos(attrs []int, want int) int {
	for k, have := range attrs {
		if have == want {
			return k
		}
	}
	panic(fmt.Sprintf("engine: Rollup attribute %d not in cube attrs %v", want, attrs))
}
